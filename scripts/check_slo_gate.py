#!/usr/bin/env python3
"""SLO gate for the open-loop driver.

Compares a fresh ``BENCH_OPENLOOP.json`` (quick-mode run on the CI host)
against the checked-in baseline and fails on a latency or shed-rate
regression. CI machines vary a lot, so the budgets are deliberately
loose multiples: the gate is meant to catch a seeded or structural
regression (an accidental O(n) in the hot path, a queue that stopped
shedding, a p99 that exploded), not a noisy-neighbour blip.

Usage: check_slo_gate.py <fresh.json> <baseline.json>
Exit codes: 0 = within budget, 1 = regression, 2 = malformed input.
"""

import json
import sys

# A fresh p99 may be at most this multiple of the baseline's (plus an
# absolute floor so microsecond-scale baselines don't gate on noise).
P99_BUDGET_MULTIPLE = 5.0
P99_FLOOR_US = 20_000.0
# A fresh shed rate may exceed the baseline's by at most this much
# (absolute, of total arrivals) on any step.
SHED_RATE_SLACK = 0.25


def load(path):
    with open(path) as f:
        doc = json.load(f)
    for key in ("benchmark", "steps", "slo"):
        if key not in doc:
            print(f"{path}: missing top-level key {key!r}", file=sys.stderr)
            sys.exit(2)
    for step in doc["steps"]:
        for key in ("offeredLoad", "completed", "shed", "p50Us", "p99Us"):
            if key not in step:
                print(f"{path}: step missing {key!r}: {step}", file=sys.stderr)
                sys.exit(2)
        if step["completed"] + step["shed"] <= 0:
            print(f"{path}: degenerate step: {step}", file=sys.stderr)
            sys.exit(2)
    slo = doc["slo"]
    if "objective" not in slo or not slo.get("serviceLevels"):
        print(f"{path}: slo export has no objective/serviceLevels", file=sys.stderr)
        sys.exit(2)
    for level in slo["serviceLevels"]:
        seconds = [w["seconds"] for w in level["windows"]]
        if seconds != [1, 10, 60]:
            print(f"{path}: {level['key']}: bad window set {seconds}", file=sys.stderr)
            sys.exit(2)
    return doc


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    fresh = load(sys.argv[1])
    baseline = load(sys.argv[2])

    base_steps = {s["offeredLoad"]: s for s in baseline["steps"]}
    failures = []
    for step in fresh["steps"]:
        rate = step["offeredLoad"]
        base = base_steps.get(rate)
        if base is None:
            # The sweep grew a step the baseline predates: informational.
            print(f"note: no baseline step at {rate:.0f}/s, skipping")
            continue
        p99_budget = max(base["p99Us"] * P99_BUDGET_MULTIPLE, P99_FLOOR_US)
        if step["p99Us"] > p99_budget:
            failures.append(
                f"{rate:.0f}/s: p99 {step['p99Us']:.0f} µs exceeds budget "
                f"{p99_budget:.0f} µs (baseline {base['p99Us']:.0f} µs "
                f"x {P99_BUDGET_MULTIPLE})"
            )
        base_total = base["completed"] + base["shed"]
        fresh_total = step["completed"] + step["shed"]
        base_shed_rate = base["shed"] / base_total
        fresh_shed_rate = step["shed"] / fresh_total
        if fresh_shed_rate > base_shed_rate + SHED_RATE_SLACK:
            failures.append(
                f"{rate:.0f}/s: shed rate {fresh_shed_rate:.2%} exceeds baseline "
                f"{base_shed_rate:.2%} + {SHED_RATE_SLACK:.0%} slack"
            )

    if failures:
        print("SLO gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print(f"SLO gate OK: {len(fresh['steps'])} step(s) within budget")


if __name__ == "__main__":
    main()
