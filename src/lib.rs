//! # dais — a Rust realisation of the GGF DAIS specification family
//!
//! This umbrella crate re-exports the whole stack described in
//! `DESIGN.md`, reproducing *An Outline of the Global Grid Forum Data
//! Access and Integration Service Specifications* (Antonioletti, Krause &
//! Paton, VLDB DMG 2005):
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | WS-DAI core | [`core`] | abstract names, property documents, direct/indirect access, core operations |
//! | WS-DAIR | [`dair`] | the relational realisation (SQLAccess/SQLFactory/ResponseAccess/ResponseFactory/RowsetAccess) |
//! | WS-DAIX | [`daix`] | the XML realisation (collections, XPath/XQuery/XUpdate, sequences) |
//! | federation | [`federation`] | sharded logical resources: scatter-gather, streaming k-way merge, replica failover |
//! | WSRF | [`wsrf`] | WS-ResourceProperties + WS-ResourceLifetime layering |
//! | messaging | [`soap`] | SOAP envelopes, WS-Addressing EPRs, the in-process bus |
//! | observability | [`obs`] | correlated tracing, latency histograms, trace rendering |
//! | substrates | [`sql`], [`xmldb`], [`xml`], [`cim`] | the embedded relational engine, the XML store, the XML/XPath toolkit, CIM metadata rendering |
//!
//! ## Quickstart
//!
//! ```
//! use dais::prelude::*;
//!
//! // A bus plays the role of the network; a relational data service
//! // wraps an embedded database.
//! let bus = Bus::new();
//! let db = Database::new("demo");
//! db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR)", &[]).unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')", &[]).unwrap();
//! let service = RelationalService::launch(&bus, "bus://demo", db, Default::default());
//!
//! // Direct access (paper Figure 2). A `dais://` resource ref names the
//! // endpoint and the data resource in one address.
//! let r = ResourceRef::from_parts("bus://demo", &service.db_resource).unwrap();
//! let client = SqlClient::builder().bus(bus.clone()).resource(&r).build();
//! let data = client.execute(r.resource(), "SELECT name FROM t ORDER BY id", &[]).unwrap();
//! assert_eq!(data.rowset().unwrap().row_count(), 2);
//!
//! // Indirect access (paper Figure 3): factory → EPR → pull.
//! let epr = client.execute_factory(r.resource(), "SELECT * FROM t", &[], None, None).unwrap();
//! let name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
//! let consumer2 = SqlClient::builder().bus(bus).epr(epr).build();
//! assert_eq!(consumer2.get_sql_rowset(&name, 1).unwrap().row_count(), 2);
//! ```

pub use dais_cim as cim;
pub use dais_core as core;
pub use dais_daif as daif;
pub use dais_dair as dair;
pub use dais_daix as daix;
pub use dais_federation as federation;
pub use dais_obs as obs;
pub use dais_soap as soap;
pub use dais_sql as sql;
pub use dais_wsrf as wsrf;
pub use dais_xml as xml;
pub use dais_xmldb as xmldb;

/// The most common imports for building and consuming DAIS services.
pub mod prelude {
    pub use dais_core::{
        AbstractName, ClientBuilder, ConfigurationDocument, CoreClient, CoreProperties, DaisClient,
        DataResource, NameGenerator, ResourceRef, ResourceRegistry, Sensitivity, ServiceContext,
    };
    pub use dais_daif::{FileClient, FileService, FileServiceOptions, FileStore};
    pub use dais_dair::{RelationalService, RelationalServiceOptions, SqlClient};
    pub use dais_daix::{XmlClient, XmlService, XmlServiceOptions};
    pub use dais_federation::{
        FederationService, FleetOptions, RelationalFleet, ShardScheme, XmlFleet,
    };
    pub use dais_soap::{
        Bus, Epr, ExecutorConfig, FaultInjector, FaultPolicy, Pending, PendingReply, RetryPolicy,
    };
    pub use dais_sql::{Database, Value};
    pub use dais_wsrf::{LifetimeRegistry, ManualClock, SystemClock};
    pub use dais_xmldb::XmlDatabase;
}
