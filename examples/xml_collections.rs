//! A tour of the WS-DAIX realisation: collections, XPath, XQuery,
//! XUpdate and derived sequence resources.
//!
//! Run with: `cargo run --example xml_collections`

use dais::prelude::*;
use dais::xml::parse;

fn main() {
    let bus = Bus::new();
    let store = XmlDatabase::new("library");
    let service = XmlService::launch(&bus, "bus://library", store, Default::default());
    let client = XmlClient::builder().bus(bus.clone()).address("bus://library").build();
    let root = service.root_collection.clone();
    println!("XML data service up; root collection resource {root}");

    // ---- Document management (XMLCollectionAccess) ----------------------
    let books = [
        ("tp", "<book><title>Transaction Processing</title><year>1992</year><price>89</price></book>"),
        ("ddia", "<book><title>Designing Data-Intensive Applications</title><year>2017</year><price>45</price></book>"),
        ("ostep", "<book><title>Operating Systems: Three Easy Pieces</title><year>2018</year><price>0</price></book>"),
    ];
    let docs: Vec<(String, _)> =
        books.iter().map(|(n, x)| (n.to_string(), parse(x).unwrap())).collect();
    for (name, status) in client.add_documents(&root, &docs).unwrap() {
        println!("  added {name}: {status}");
    }

    // Sub-collections become data resources of their own.
    let archive = client.create_subcollection(&root, "archive").unwrap();
    client
        .add_documents(
            &archive,
            &[("k_and_r".into(), parse("<book><title>The C Programming Language</title><year>1978</year><price>60</price></book>").unwrap())],
        )
        .unwrap();
    println!("created sub-collection resource {archive}");

    let props = client.get_collection_property_document(&root).unwrap();
    println!(
        "root collection: {} documents, {} subcollections",
        props.child_text(dais::xml::ns::WSDAIX, "NumberOfDocuments").unwrap(),
        props.child_text(dais::xml::ns::WSDAIX, "NumberOfSubcollections").unwrap(),
    );

    // ---- Direct access: XPathExecute -------------------------------------
    let hits = client.xpath(&root, "/book[price > 40]/title").unwrap();
    println!("\nXPath /book[price > 40]/title:");
    for h in &hits {
        println!("  {}", h.text());
    }

    // ---- Direct access: XQueryExecute ------------------------------------
    let items = client
        .xquery(
            &root,
            "for $b in /book where $b/year >= 2000 \
             return <modern title=\"{$b/title/text()}\">{$b/price/text()}</modern>",
        )
        .unwrap();
    println!("\nXQuery (books from this millennium):");
    for i in &items {
        println!("  {} costs {}", i.attribute("title").unwrap(), i.text());
    }

    // ---- XUpdateExecute ----------------------------------------------------
    let mods = parse(
        "<xu:modifications xmlns:xu='http://www.xmldb.org/xupdate'>\
           <xu:append select='/book'><currency>USD</currency></xu:append>\
           <xu:update select='/book[price=0]/price'>10</xu:update>\
         </xu:modifications>",
    )
    .unwrap();
    let touched = client.xupdate(&root, mods).unwrap();
    println!("\nXUpdate touched {touched} nodes (currency tags + a price fix)");
    let free = client.xpath(&root, "/book[price=0]").unwrap();
    println!("books still free: {}", free.len());

    // ---- Indirect access: XQueryExecuteFactory → SequenceAccess ----------
    let epr = client
        .xquery_factory(&root, "for $b in /book return <entry>{$b/title/text()}</entry>")
        .unwrap();
    let seq = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    println!("\nderived sequence resource {seq} at {}", epr.address);
    let consumer2 = XmlClient::builder().bus(bus).epr(epr).build();
    let page = consumer2.get_items(&seq, 0, 2).unwrap();
    println!("first page of the sequence:");
    for item in &page {
        println!("  {}", item.text());
    }
    let doc = consumer2.get_sequence_property_document(&seq).unwrap();
    println!(
        "sequence holds {} items in total",
        doc.child_text(dais::xml::ns::WSDAIX, "NumberOfItems").unwrap()
    );
    consumer2.core().destroy(&seq).unwrap();
    println!("sequence destroyed");
}
