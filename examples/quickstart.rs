//! Quickstart: stand up a relational DAIS data service and use both
//! access patterns from the paper.
//!
//! Run with: `cargo run --example quickstart`

use dais::prelude::*;

fn main() {
    // The bus plays the role of the SOAP/HTTP network; every call below
    // crosses it as serialised XML envelopes.
    let bus = Bus::new();

    // An embedded relational database — the substrate a DAIS service wraps.
    let db = Database::new("shop");
    db.execute_script(
        "CREATE TABLE product (
             id INTEGER PRIMARY KEY,
             name VARCHAR NOT NULL,
             price DOUBLE NOT NULL,
             CHECK (price >= 0)
         );
         INSERT INTO product VALUES
             (1, 'anvil', 100.0),
             (2, 'rope', 12.5),
             (3, 'rocket skates', 299.0);",
    )
    .expect("schema");

    // Launch the data service: WS-DAI core + all five WS-DAIR interfaces.
    let service = RelationalService::launch(&bus, "bus://shop", db, Default::default());
    println!("service up at bus://shop, resource {}", service.db_resource);

    let client = SqlClient::builder().bus(bus.clone()).address("bus://shop").build();

    // -- Property document (paper §4.2) ---------------------------------
    let props = client.core().get_property_document(&service.db_resource).unwrap();
    println!(
        "\nproperty document: management={:?} readable={} writeable={} languages={:?}",
        props.management, props.readable, props.writeable, props.generic_query_languages
    );

    // -- Direct access (paper Figure 2) ----------------------------------
    let data = client
        .execute(
            &service.db_resource,
            "SELECT name, price FROM product WHERE price > ? ORDER BY price DESC",
            &[Value::Double(50.0)],
        )
        .unwrap();
    println!("\ndirect access: SQLSTATE={}", data.communication_area.sqlstate);
    for row in &data.rowset().unwrap().rows {
        println!("  {} — {}", row[0], row[1]);
    }

    // -- Writes travel the same path --------------------------------------
    let update = client
        .execute(&service.db_resource, "UPDATE product SET price = price * 0.9", &[])
        .unwrap();
    println!("\nsale! {} rows discounted", update.update_count().unwrap());

    // -- Indirect access (paper Figure 3) ---------------------------------
    // The factory runs the query at the service and hands back an EPR to a
    // derived, service-managed response resource; no rows cross the wire.
    let epr = client
        .execute_factory(&service.db_resource, "SELECT * FROM product ORDER BY id", &[], None, None)
        .unwrap();
    let response_name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    println!("\nindirect access: derived resource {response_name}");

    // A second consumer (perhaps handed the EPR by the first) pulls the data.
    let consumer2 = SqlClient::builder().bus(bus).epr(epr).build();
    let rowset = consumer2.get_sql_rowset(&response_name, 1).unwrap();
    println!("consumer 2 pulled {} rows via the EPR", rowset.row_count());

    // Service-managed resources are destroyed explicitly (no WSRF here).
    consumer2.core().destroy(&response_name).unwrap();
    println!("derived resource destroyed; service keeps the database itself");
}
