//! Data *integration* across heterogeneous DAIS services — the "I" in
//! DAIS. Three data services with three different data models share one
//! service fabric:
//!
//! * a WS-DAIR service holding sensor readings in a relational table;
//! * a WS-DAIX service holding sensor metadata as XML documents;
//! * a WS-DAIF service (the paper's future-work files realisation)
//!   receiving the integrated report.
//!
//! A consumer joins the relational readings with the XML metadata
//! client-side — the paper's architecture deliberately leaves cross-source
//! integration to consumers and higher-level services (§2.2: the richer
//! request-composition language was cut in favour of "extensibility
//! points") — and files the report.
//!
//! Run with: `cargo run --example data_integration`

use dais::daif::{actions as file_actions, WSDAIF_NS};
use dais::prelude::*;
use dais::xml::{parse, XmlElement};
use std::collections::HashMap;

fn main() {
    let bus = Bus::new();

    // ---- Service 1: relational readings (WS-DAIR) ------------------------
    let db = Database::new("telemetry");
    db.execute_script(
        "CREATE TABLE reading (sensor VARCHAR NOT NULL, t INTEGER NOT NULL, value DOUBLE NOT NULL);
         INSERT INTO reading VALUES
            ('s1', 0, 20.0), ('s1', 1, 21.5), ('s1', 2, 23.9),
            ('s2', 0, 99.0), ('s2', 1, 98.5),
            ('s3', 0, 0.2),  ('s3', 1, 0.3),  ('s3', 2, 0.1);",
    )
    .unwrap();
    let sql_svc = RelationalService::launch(&bus, "bus://telemetry", db, Default::default());

    // ---- Service 2: XML sensor registry (WS-DAIX) -------------------------
    let registry = XmlDatabase::new("sensors");
    let xml_svc = XmlService::launch(&bus, "bus://sensors", registry, Default::default());
    let xml_client = XmlClient::builder().bus(bus.clone()).address("bus://sensors").build();
    let sensors = [
        ("s1", "<sensor id='s1'><kind>temperature</kind><unit>C</unit><max>40</max></sensor>"),
        ("s2", "<sensor id='s2'><kind>pressure</kind><unit>kPa</unit><max>110</max></sensor>"),
        ("s3", "<sensor id='s3'><kind>vibration</kind><unit>g</unit><max>1</max></sensor>"),
    ];
    let docs: Vec<(String, XmlElement)> =
        sensors.iter().map(|(n, x)| (n.to_string(), parse(x).unwrap())).collect();
    xml_client.add_documents(&xml_svc.root_collection, &docs).unwrap();

    // ---- Service 3: report store (WS-DAIF) --------------------------------
    let files = FileStore::new();
    let file_svc = FileService::launch(&bus, "bus://reports", files, Default::default());

    println!("fabric up: 3 services, 3 data models\n");

    // ---- The integrating consumer -----------------------------------------
    // 1. Aggregate the readings relationally (pushed down to the service).
    let sql_client = SqlClient::builder().bus(bus.clone()).address("bus://telemetry").build();
    let stats = sql_client
        .execute(
            &sql_svc.db_resource,
            "SELECT sensor, COUNT(*) AS n, AVG(value) AS avg_value, MAX(value) AS peak \
             FROM reading GROUP BY sensor ORDER BY sensor",
            &[],
        )
        .unwrap();

    // 2. Pull the metadata with XPath (pushed down to the XML service).
    let meta = xml_client.xpath(&xml_svc.root_collection, "/sensor").unwrap();
    let mut registry: HashMap<String, (String, String, f64)> = HashMap::new();
    for m in &meta {
        registry.insert(
            m.attribute("id").unwrap().to_string(),
            (
                m.child_text("", "kind").unwrap(),
                m.child_text("", "unit").unwrap(),
                m.child_text("", "max").unwrap().parse().unwrap(),
            ),
        );
    }

    // 3. Join client-side and build the report.
    let mut report = String::from("sensor,kind,n,avg,peak,unit,over_limit\n");
    println!("integrated view:");
    for row in &stats.rowset().unwrap().rows {
        let sensor = row[0].to_display_string();
        let (kind, unit, max) = registry.get(&sensor).expect("metadata for every sensor");
        let peak: f64 = row[3].to_display_string().parse().unwrap();
        let over = peak > *max;
        println!(
            "  {sensor} ({kind}): n={} avg={} peak={} {unit}{}",
            row[1],
            row[2],
            row[3],
            if over { "  ⚠ over limit" } else { "" }
        );
        report
            .push_str(&format!("{sensor},{kind},{},{},{},{unit},{over}\n", row[1], row[2], row[3]));
    }

    // 4. File the report through the WS-DAIF service.
    let body = dais::core::messages::request("WriteFileRequest", &file_svc.root)
        .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Path").with_text("reports/telemetry.csv"))
        .with_child(
            XmlElement::new(WSDAIF_NS, "wsdaif", "Contents")
                .with_text(dais::daif::base64::encode(report.as_bytes())),
        );
    let file_client = dais::soap::ServiceClient::new(bus.clone(), "bus://reports");
    let resp = file_client.request(file_actions::WRITE_FILE, body).unwrap();
    println!(
        "\nreport filed: reports/telemetry.csv ({} bytes via WS-DAIF)",
        resp.child_text(WSDAIF_NS, "Size").unwrap()
    );

    // 5. Anyone can list and read it back through the same interfaces.
    let body = dais::core::messages::request("ListFilesRequest", &file_svc.root)
        .with_child(XmlElement::new(WSDAIF_NS, "wsdaif", "Pattern").with_text("reports/*"));
    let resp = file_client.request(file_actions::LIST_FILES, body).unwrap();
    for f in resp.children_named(WSDAIF_NS, "File") {
        println!("  {} ({} bytes)", f.text(), f.attribute("size").unwrap());
    }

    let total = bus.stats();
    println!(
        "\nfabric traffic: {} messages, {} bytes — every byte crossed as XML envelopes",
        total.messages,
        total.request_bytes + total.response_bytes
    );
}
