//! The Figure 7 layering: the same DAIS service with and without WSRF.
//!
//! Without WSRF a consumer can only fetch whole property documents and
//! must destroy derived resources explicitly. With WSRF the consumer gets
//! fine-grained property access (`GetResourceProperty`,
//! `QueryResourceProperties`) and soft-state lifetime management
//! (`SetTerminationTime` + the sweeper). The paper describes this as an
//! upgrade path: "start off with a non-WSRF solution and then … exploit
//! the additional capabilities provided by WSRF" (§5).
//!
//! Run with: `cargo run --example wsrf_lifetime`

use dais::prelude::*;
use dais::wsrf::LifetimeRegistry;
use std::sync::Arc;

fn seeded_db(name: &str) -> Database {
    let db = Database::new(name);
    db.execute_script(
        "CREATE TABLE sensor (id INTEGER PRIMARY KEY, reading DOUBLE);
         INSERT INTO sensor VALUES (1, 20.5), (2, 21.0), (3, 19.8);",
    )
    .unwrap();
    db
}

fn main() {
    let bus = Bus::new();

    // ---- Plain (non-WSRF) deployment -------------------------------------
    let plain =
        RelationalService::launch(&bus, "bus://plain", seeded_db("plain"), Default::default());
    let client = SqlClient::builder().bus(bus.clone()).address("bus://plain").build();

    // Whole-document retrieval is all you get.
    let doc = client.core().get_property_document_xml(&plain.db_resource).unwrap();
    println!(
        "non-WSRF service: whole property document only ({} properties, {} serialized bytes)",
        doc.elements().count(),
        dais::xml::to_string(&doc).len(),
    );
    // Fine-grained access is simply not an operation here.
    let err =
        client.core().get_resource_property(&plain.db_resource, "wsdai:Readable").unwrap_err();
    println!("GetResourceProperty on the plain service: {err}");

    // Lifetime is explicit-destroy only.
    let epr = client
        .execute_factory(&plain.db_resource, "SELECT * FROM sensor", &[], None, None)
        .unwrap();
    let derived = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    let err = client.core().set_termination_time(&derived, Some(1000)).unwrap_err();
    println!("SetTerminationTime on the plain service: {err}");
    client.core().destroy(&derived).unwrap();
    println!("…so the consumer destroys the derived resource explicitly\n");

    // ---- WSRF deployment ---------------------------------------------------
    // A manual clock makes the soft-state demo deterministic.
    let clock = ManualClock::new();
    let lifetime = Arc::new(LifetimeRegistry::new(clock.clone()));
    let wsrf_service = RelationalService::launch(
        &bus,
        "bus://wsrf",
        seeded_db("wsrf"),
        RelationalServiceOptions { wsrf: Some(lifetime), ..Default::default() },
    );
    let client = SqlClient::builder().bus(bus.clone()).address("bus://wsrf").build();

    // Fine-grained property access.
    let readable =
        client.core().get_resource_property(&wsrf_service.db_resource, "wsdai:Readable").unwrap();
    println!(
        "WSRF service: GetResourceProperty(wsdai:Readable) → {} ({} bytes on the wire instead of the whole document)",
        readable[0].text(),
        dais::xml::to_string(&readable[0]).len(),
    );
    let count = client
        .core()
        .query_resource_properties(&wsrf_service.db_resource, "count(//wsdai:GenericQueryLanguage)")
        .unwrap();
    println!("QueryResourceProperties(count of query languages) → {}", count.text());

    // Soft-state lifetime: a derived resource with a lease.
    let epr = client
        .execute_factory(&wsrf_service.db_resource, "SELECT * FROM sensor", &[], None, None)
        .unwrap();
    let derived = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    let lease = client.core().set_termination_time(&derived, Some(5_000)).unwrap();
    println!("\nderived resource {derived} leased until t={}ms", lease.unwrap());

    clock.advance(3_000);
    client.get_sql_rowset(&derived, 1).unwrap();
    println!("t=3000ms: still alive, rows retrieved");

    // Renew the lease, drift past the original deadline, still alive.
    client.core().set_termination_time(&derived, Some(5_000)).unwrap();
    clock.advance(4_000);
    client.get_sql_rowset(&derived, 1).unwrap();
    println!("t=7000ms: lease was renewed at t=3000ms, so still alive");

    // Let it lapse: the resource is reaped on next access.
    clock.advance(5_000);
    let err = client.get_sql_rowset(&derived, 1).unwrap_err();
    println!("t=12000ms: {err}");

    // The sweeper does the same housekeeping proactively.
    let epr =
        client.execute_factory(&wsrf_service.db_resource, "SELECT 1", &[], None, None).unwrap();
    let short_lived = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    client.core().set_termination_time(&short_lived, Some(100)).unwrap();
    clock.advance(200);
    let swept = wsrf_service.ctx.sweep_expired();
    println!("sweeper reaped {swept:?}");
}
