//! Drives the chaos transport layer through the public `dais` prelude
//! exactly as a consumer would: corruption, drops and synthetic faults
//! against plain and retrying clients, including the abuse cases
//! (probability > 1, non-idempotent writes under total failure).

use dais::prelude::*;
use dais::soap::retry::RetryConfig;
use std::sync::Arc;

fn main() {
    // A relational service on a bus with a hostile transport.
    let bus = Bus::new();
    let db = Database::new("probe");
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)", &[]).unwrap();
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')", &[]).unwrap();
    let svc = RelationalService::launch(&bus, "bus://probe", db, Default::default());

    let injector = FaultInjector::new(0xBADCAFE);
    bus.add_interceptor(Arc::new(injector.clone()));

    // 1. Corruption at p=1.0, NO retry: the consumer sees the transport error.
    injector.set_default_policy(FaultPolicy::default().corrupt(1.0));
    let plain = SqlClient::builder().bus(bus.clone()).address("bus://probe").build();
    let err = plain.execute(&svc.db_resource, "SELECT * FROM t", &[]).unwrap_err();
    println!("1. corrupt(1.0), no retry  -> {err}");

    // 2. Same policy, retrying client: exhausts its budget, then errors.
    let retrying =
        SqlClient::builder().bus(bus.clone()).address("bus://probe").build().with_retry_config(
            RetryConfig::new(
                RetryPolicy::new(4).base_delay(std::time::Duration::from_micros(5)),
                dais::dair::client::idempotent_actions(),
            ),
        );
    let err = retrying.execute(&svc.db_resource, "SELECT * FROM t", &[]).unwrap_err();
    println!("2. corrupt(1.0), retry x4  -> {err} (bus retries: {})", bus.stats().retries);

    // 3. Abusive probability > 1.0: must behave as always-on, not panic.
    injector.set_default_policy(FaultPolicy::default().drop(7.5));
    let err = plain.execute(&svc.db_resource, "SELECT * FROM t", &[]).unwrap_err();
    println!("3. drop(7.5), no retry     -> {err}");

    // 4. Sustained moderate chaos against a deep retry budget: every
    //    read must converge to the right answer.
    injector.set_default_policy(FaultPolicy::default().corrupt(0.3).drop(0.15));
    let deep =
        SqlClient::builder().bus(bus.clone()).address("bus://probe").build().with_retry_config(
            RetryConfig::new(
                RetryPolicy::new(20).base_delay(std::time::Duration::from_micros(5)),
                dais::dair::client::idempotent_actions(),
            ),
        );
    let mut ok = 0;
    for _ in 0..50 {
        let data = deep.execute(&svc.db_resource, "SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(data.rowset().unwrap().rows[0][0], Value::Int(2));
        ok += 1;
    }
    println!(
        "4. corrupt(.3)+drop(.15), retry x20 -> {ok}/50 reads correct ({} events absorbed, {} retries)",
        injector.snapshot().total(),
        bus.stats().retries
    );

    // 5. Non-idempotent op under total chaos: fails immediately, no retry.
    let before = bus.stats().retries;
    injector.set_default_policy(FaultPolicy::default().busy(1.0));
    let err = retrying.execute(&svc.db_resource, "INSERT INTO t VALUES (3, 'x')", &[]).unwrap_err();
    println!("5. busy(1.0), INSERT       -> {err} (new retries: {})", bus.stats().retries - before);

    // 6. Chaos off: the insert never half-happened; reads are clean.
    injector.clear_default_policy();
    let data = plain.execute(&svc.db_resource, "SELECT COUNT(*) FROM t", &[]).unwrap();
    println!("6. chaos off               -> COUNT(*) = {:?}", data.rowset().unwrap().rows[0][0]);
}
