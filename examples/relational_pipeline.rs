//! The Figure 5 scenario, faithfully: three data services, three
//! consumers, two factory hops and a paged pull.
//!
//! * Data Service 1 (SQLAccess + SQLFactory) wraps the relational
//!   database. Consumer 1 calls `SQLExecuteFactory`, creating a derived
//!   SQL-response resource **on Data Service 2**.
//! * Consumer 2, given the EPR, calls `SQLRowsetFactory` on Data Service
//!   2, deriving a web-rowset resource **on Data Service 3**.
//! * Consumer 3, given that EPR, pages tuples out with `GetTuples`.
//!
//! Note how the result set never travels through consumers 1 or 2 — the
//! indirect access pattern as "an indirect form of third party delivery"
//! (paper §3).
//!
//! Run with: `cargo run --example relational_pipeline`

use dais::core::{register_core_ops, NameGenerator, ResourceRegistry, ServiceContext};
use dais::dair::resources::SqlDataResource;
use dais::dair::service as dair_service;
use dais::prelude::*;
use dais::soap::service::SoapDispatcher;
use std::sync::Arc;

fn main() {
    let bus = Bus::new();

    // ---- The substrate: an order database -------------------------------
    let db = Database::new("orders");
    db.execute("CREATE TABLE orders (id INTEGER PRIMARY KEY, customer VARCHAR, total DOUBLE)", &[])
        .unwrap();
    let mut rows = Vec::new();
    for i in 0..500 {
        rows.push(format!("({i}, 'customer{}', {}.50)", i % 40, (i * 7) % 900));
    }
    db.execute(&format!("INSERT INTO orders VALUES {}", rows.join(", ")), &[]).unwrap();

    // ---- Three data services, as in Figure 5 ----------------------------
    let names = Arc::new(NameGenerator::new("pipeline"));

    let svc3 = Arc::new(ServiceContext {
        address: "bus://data-service-3".into(),
        registry: ResourceRegistry::new(),
        lifetime: None,
        query_rewriter: None,
    });
    let mut d3 = SoapDispatcher::new();
    register_core_ops(&mut d3, svc3.clone());
    dair_service::register_rowset_access(&mut d3, svc3.clone()); // SQLRowsetAccess
    bus.register(&svc3.address, Arc::new(d3));

    let svc2 = Arc::new(ServiceContext {
        address: "bus://data-service-2".into(),
        registry: ResourceRegistry::new(),
        lifetime: None,
        query_rewriter: None,
    });
    let mut d2 = SoapDispatcher::new();
    register_core_ops(&mut d2, svc2.clone());
    dair_service::register_response_access(&mut d2, svc2.clone()); // SQLResponseAccess
    dair_service::register_response_factory(&mut d2, svc2.clone(), svc3.clone(), names.clone()); // → svc3
    bus.register(&svc2.address, Arc::new(d2));

    let svc1 = Arc::new(ServiceContext {
        address: "bus://data-service-1".into(),
        registry: ResourceRegistry::new(),
        lifetime: None,
        query_rewriter: None,
    });
    let mut d1 = SoapDispatcher::new();
    register_core_ops(&mut d1, svc1.clone());
    dair_service::register_sql_access(&mut d1, svc1.clone()); // SQLAccess
    dair_service::register_sql_factory(&mut d1, svc1.clone(), svc2.clone(), names.clone()); // → svc2
    bus.register(&svc1.address, Arc::new(d1));

    let db_name = names.mint("db");
    svc1.add_resource(Arc::new(SqlDataResource::new(db_name.clone(), db)));
    println!("three services up; database resource {db_name} on {}", svc1.address);

    // ---- Consumer 1: SQLExecuteFactory on Data Service 1 ----------------
    let consumer1 = SqlClient::builder().bus(bus.clone()).address(svc1.address.clone()).build();
    let response_epr = consumer1
        .execute_factory(
            &db_name,
            "SELECT customer, total FROM orders WHERE total > 500 ORDER BY total DESC",
            &[],
            Some("wsdair:SQLResponseAccessPT"),
            None,
        )
        .unwrap();
    println!(
        "\nconsumer 1: factory returned EPR → {} (resource {})",
        response_epr.address,
        response_epr.resource_abstract_name().unwrap()
    );
    assert_eq!(response_epr.address, svc2.address, "derived resource lives on Data Service 2");

    // Consumer 1 passes the EPR to consumer 2 (a plain value — that's the
    // whole point of third-party delivery).

    // ---- Consumer 2: SQLRowsetFactory on Data Service 2 -----------------
    let response_name = AbstractName::new(response_epr.resource_abstract_name().unwrap()).unwrap();
    let consumer2 = SqlClient::builder().bus(bus.clone()).epr(response_epr).build();
    let props = consumer2.get_response_property_document(&response_name).unwrap();
    println!(
        "consumer 2: response has {} rowset(s)",
        props.child_text(dais::xml::ns::WSDAIR, "NumberOfSQLRowsets").unwrap()
    );
    let rowset_epr = consumer2
        .rowset_factory(&response_name, Some(100), Some("wsdair:SQLRowsetAccessPT"))
        .unwrap();
    println!(
        "consumer 2: rowset factory returned EPR → {} (resource {})",
        rowset_epr.address,
        rowset_epr.resource_abstract_name().unwrap()
    );
    assert_eq!(rowset_epr.address, svc3.address, "rowset lives on Data Service 3");

    // ---- Consumer 3: GetTuples on Data Service 3 -------------------------
    let rowset_name = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();
    let consumer3 = SqlClient::builder().bus(bus.clone()).epr(rowset_epr).build();
    let mut fetched = 0;
    let mut page_no = 0;
    loop {
        let page = consumer3.get_tuples(&rowset_name, fetched, 30).unwrap();
        if page.row_count() == 0 {
            break;
        }
        page_no += 1;
        fetched += page.row_count();
        println!(
            "consumer 3: page {page_no}: {} tuples (first: {} / {})",
            page.row_count(),
            page.rows[0][0],
            page.rows[0][1]
        );
    }
    println!("consumer 3: fetched {fetched} tuples in {page_no} pages");

    // ---- Traffic accounting ----------------------------------------------
    let s1 = bus.endpoint_stats(&svc1.address);
    let s2 = bus.endpoint_stats(&svc2.address);
    let s3 = bus.endpoint_stats(&svc3.address);
    println!("\ntraffic per service (messages / bytes):");
    println!(
        "  data-service-1: {:>3} msgs, {:>8} B  (factory only — no rows)",
        s1.messages,
        s1.total_bytes()
    );
    println!(
        "  data-service-2: {:>3} msgs, {:>8} B  (response hop)",
        s2.messages,
        s2.total_bytes()
    );
    println!(
        "  data-service-3: {:>3} msgs, {:>8} B  (where the tuples flow)",
        s3.messages,
        s3.total_bytes()
    );
}
