//! Framing robustness for the TCP transport: torn reads, hostile length
//! prefixes, mid-frame connection loss, and a seeded byte-level fuzz of
//! the frame codec. Raw `TcpStream`s are used here to play a hostile or
//! broken peer — integration tests are exempt from the
//! `transport-bypass` lint, which confines socket use in library code to
//! `crates/soap/src/tcp.rs`.

use dais::soap::bus::BusError;
use dais::soap::retry::is_retryable;
use dais::soap::tcp::{
    decode_frame, encode_frame, Frame, FrameBody, FrameError, FrameReader, TcpServer, TcpTransport,
    MAX_FRAME_LEN,
};
use dais::soap::{Bus, CallError, Envelope, SoapDispatcher, Transport};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn echo_bus() -> Bus {
    let bus = Bus::new();
    let mut d = SoapDispatcher::new();
    d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
    bus.register("bus://svc", Arc::new(d));
    bus
}

fn sample_frame(id: u64) -> Frame {
    Frame {
        id,
        body: FrameBody::Request {
            to: "bus://svc".into(),
            action: "urn:echo".into(),
            envelope: b"<Envelope><Body><m>payload</m></Body></Envelope>".to_vec(),
        },
    }
}

// ---------------------------------------------------------------------------
// Torn and partial reads
// ---------------------------------------------------------------------------

#[test]
fn every_torn_prefix_is_incomplete_never_malformed() {
    let mut wire = Vec::new();
    encode_frame(&sample_frame(42), &mut wire);
    for cut in 0..wire.len() {
        match decode_frame(&wire[..cut]) {
            Err(FrameError::Incomplete { needed }) => {
                assert!(needed > cut, "cut at {cut} asked for only {needed} bytes");
            }
            other => panic!("cut at {cut} produced {other:?}"),
        }
    }
    let (decoded, used) = decode_frame(&wire).unwrap();
    assert_eq!(used, wire.len());
    assert_eq!(decoded, sample_frame(42));
}

#[test]
fn reader_reassembles_across_arbitrary_chunking() {
    let frames: Vec<Frame> = (0..5).map(sample_frame).collect();
    let mut wire = Vec::new();
    for f in &frames {
        encode_frame(f, &mut wire);
    }
    // Several chunk sizes, including pathological one-byte delivery.
    for chunk in [1usize, 2, 3, 7, 64, 1024] {
        let mut reader = FrameReader::new();
        let mut seen = Vec::new();
        for piece in wire.chunks(chunk) {
            reader.feed(piece);
            while let Some(frame) = reader.next_frame().expect("valid stream never errors") {
                seen.push(frame);
            }
        }
        assert_eq!(seen, frames, "chunk size {chunk} corrupted reassembly");
        assert_eq!(reader.pending_bytes(), 0);
    }
}

// ---------------------------------------------------------------------------
// Hostile length prefixes
// ---------------------------------------------------------------------------

#[test]
fn oversized_length_prefix_is_rejected_with_the_bound() {
    let mut wire = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes().to_vec();
    wire.extend_from_slice(&[0u8; 64]);
    match decode_frame(&wire) {
        Err(FrameError::TooLarge { len }) => assert_eq!(len, MAX_FRAME_LEN + 1),
        other => panic!("expected TooLarge, got {other:?}"),
    }
    // The largest legal prefix is still only Incomplete.
    let legal = (MAX_FRAME_LEN as u32).to_be_bytes().to_vec();
    assert!(matches!(decode_frame(&legal), Err(FrameError::Incomplete { .. })));
}

#[test]
fn server_drops_a_connection_announcing_an_oversized_frame() {
    let bus = echo_bus();
    let server = TcpServer::bind(&bus, "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Announce a body far past the bound; the server must hang up
    // rather than try to buffer it.
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    stream.write_all(&[0u8; 32]).unwrap();
    let mut sink = [0u8; 16];
    let n = stream.read(&mut sink).unwrap_or(0);
    assert_eq!(n, 0, "the server kept talking to an oversized-frame peer");
}

// ---------------------------------------------------------------------------
// Mid-frame connection close → retryable error, not a hang
// ---------------------------------------------------------------------------

#[test]
fn mid_frame_close_surfaces_as_retryable_connection_lost() {
    // A server that reads the request, writes *half* a response frame,
    // and slams the connection.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let betrayer = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut buf = [0u8; 4096];
        let _ = stream.read(&mut buf);
        let mut reply = Vec::new();
        encode_frame(
            &Frame { id: 1, body: FrameBody::Response(b"<Envelope/>".to_vec()) },
            &mut reply,
        );
        stream.write_all(&reply[..reply.len() / 2]).unwrap();
        // Dropping the stream closes it mid-frame.
    });

    let transport = TcpTransport::default();
    transport.set_default_route(addr);
    let mut response = Vec::new();
    let err = transport
        .call("bus://svc", "urn:echo", b"<Envelope/>", &mut response)
        .expect_err("half a frame is not a response");
    betrayer.join().unwrap();
    assert!(
        matches!(err, BusError::ConnectionLost(_)),
        "mid-frame close must be ConnectionLost, got {err:?}"
    );
    assert!(
        is_retryable(&CallError::Transport(err)),
        "connection loss must be retryable so the pool can reconnect"
    );
}

#[test]
fn connect_refused_surfaces_as_retryable_connection_lost() {
    // Bind-then-drop guarantees a port with no listener.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let transport = TcpTransport::default();
    transport.set_default_route(addr);
    let mut response = Vec::new();
    let err = transport.call("bus://svc", "urn:echo", b"<Envelope/>", &mut response).unwrap_err();
    assert!(matches!(err, BusError::ConnectionLost(_)), "got {err:?}");
    assert!(is_retryable(&CallError::Transport(err)));
}

// ---------------------------------------------------------------------------
// Seeded byte-level fuzz
// ---------------------------------------------------------------------------

/// SplitMix64 — the same deterministic generator the chaos layer uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    /// Up to `max` random bytes.
    fn blob(&mut self, max: usize) -> Vec<u8> {
        let len = self.below(max);
        (0..len).map(|_| self.next() as u8).collect()
    }

    /// Up to `max` random lowercase letters.
    fn word(&mut self, max: usize) -> String {
        let len = self.below(max);
        (0..len).map(|_| char::from(b'a' + (self.next() % 26) as u8)).collect()
    }
}

fn random_frame(rng: &mut Rng) -> Frame {
    let id = rng.next();
    let body = match rng.below(7) {
        0 => FrameBody::Response(rng.blob(2048)),
        1 => FrameBody::Error(BusError::NoSuchEndpoint(rng.word(64))),
        2 => FrameBody::Error(BusError::MalformedEnvelope(rng.word(64))),
        3 => FrameBody::Error(BusError::Timeout(rng.word(64))),
        4 => FrameBody::Error(BusError::Overloaded {
            endpoint: rng.word(64),
            retry_after: Duration::from_nanos(rng.next() >> 1),
        }),
        5 => FrameBody::Error(BusError::ConnectionLost(rng.word(64))),
        _ => FrameBody::Request {
            to: rng.word(128),
            action: rng.word(128),
            envelope: rng.blob(2048),
        },
    };
    Frame { id, body }
}

#[test]
fn fuzzed_frames_round_trip_under_any_chunking() {
    for seed in [1u64, 0xF00D, 0xDA15_0B5E] {
        let mut rng = Rng(seed);
        let frames: Vec<Frame> = (0..40).map(|_| random_frame(&mut rng)).collect();
        let mut wire = Vec::new();
        for f in &frames {
            encode_frame(f, &mut wire);
        }
        let mut reader = FrameReader::new();
        let mut seen = Vec::new();
        let mut offset = 0;
        while offset < wire.len() {
            let take = (rng.below(700) + 1).min(wire.len() - offset);
            reader.feed(&wire[offset..offset + take]);
            offset += take;
            while let Some(frame) = reader.next_frame().expect("valid stream never errors") {
                seen.push(frame);
            }
        }
        assert_eq!(seen, frames, "seed {seed:#x} failed the round trip");
    }
}

#[test]
fn fuzzed_garbage_never_panics_the_decoder() {
    // Random bytes and single-byte mutations of valid frames: the
    // decoder must always return — a frame, Incomplete, or an error —
    // and never panic or loop.
    let mut rng = Rng(0x0DD5_EED5);
    for _ in 0..200 {
        let garbage = rng.blob(512);
        let _ = decode_frame(&garbage);
    }
    for _ in 0..200 {
        let mut wire = Vec::new();
        encode_frame(&random_frame(&mut rng), &mut wire);
        let at = rng.below(wire.len());
        wire[at] ^= (rng.next() as u8) | 1;
        match decode_frame(&wire) {
            Ok((frame, used)) => {
                // A surviving decode must stay inside the input.
                assert!(used <= wire.len());
                drop(frame);
            }
            Err(FrameError::TooLarge { len }) => assert!(len > MAX_FRAME_LEN),
            Err(_) => {}
        }
    }
}
