//! Advertisement ↔ dispatch conformance.
//!
//! The `actions::ALL` inventories are the machine-readable versions of
//! the paper's Figure 6 operation tables; `dais-check` cross-references
//! their use sites statically. This test closes the remaining dynamic
//! gap: on *launched* services, everything advertised must actually
//! dispatch, and everything each realisation's inventory promises must
//! be advertised by the corresponding endpoint.

use dais::dair::RelationalServiceOptions;
use dais::prelude::*;
use dais::soap::Envelope;
use dais::xml::XmlElement;
use std::collections::BTreeSet;
use std::sync::Arc;

fn launch_all() -> Bus {
    let bus = Bus::new();
    let db = Database::new("ads");
    db.execute_script("CREATE TABLE t (a INTEGER PRIMARY KEY); INSERT INTO t VALUES (1);").unwrap();
    // WSRF layering is optional (paper §5); enable it on the relational
    // endpoint so the WSRF inventory is part of what must dispatch.
    let options = RelationalServiceOptions {
        wsrf: Some(Arc::new(LifetimeRegistry::new(Arc::new(SystemClock::new())))),
        ..Default::default()
    };
    RelationalService::launch(&bus, "bus://rel", db, options);
    XmlService::launch(&bus, "bus://xml", XmlDatabase::new("ads"), Default::default());
    FileService::launch(&bus, "bus://files", FileStore::new(), Default::default());
    bus
}

fn advertised(bus: &Bus, address: &str) -> BTreeSet<String> {
    bus.endpoint(address)
        .unwrap_or_else(|| panic!("no endpoint at {address}"))
        .actions()
        .into_iter()
        .collect()
}

/// Every action a live endpoint advertises must dispatch to a real
/// handler: probing with an empty body must never produce the
/// dispatcher's "unknown SOAP action" fault.
#[test]
fn every_advertisement_is_dispatchable() {
    let bus = launch_all();
    for address in bus.addresses() {
        for action in advertised(&bus, &address) {
            let probe = Envelope::with_body(XmlElement::new_local("probe"));
            match bus.call(&address, &action, &probe).unwrap() {
                Ok(_) => {}
                Err(fault) => {
                    assert!(
                        !fault.reason.contains("unknown SOAP action"),
                        "{address} advertises `{action}` but cannot dispatch it"
                    );
                }
            }
        }
    }
}

/// Each realisation's `ALL` inventory is fully advertised by its
/// launched service (the service also carries the core + WSRF layers,
/// so advertisement is a superset).
#[test]
fn inventories_are_advertised_per_realisation() {
    let bus = launch_all();
    let cases: &[(&str, &[&str])] = &[
        ("bus://rel", dais::dair::actions::ALL),
        ("bus://xml", dais::daix::actions::ALL),
        ("bus://files", dais::daif::actions::ALL),
    ];
    for (address, inventory) in cases {
        let ads = advertised(&bus, address);
        for action in *inventory {
            assert!(ads.contains(*action), "{address} does not advertise `{action}`");
        }
        // The shared layers ride along on every data service.
        for action in dais::core::messages::actions::ALL {
            assert!(ads.contains(*action), "{address} does not advertise core `{action}`");
        }
    }
}

/// WSRF layering is optional per the paper (§5); when enabled, the full
/// WSRF inventory must be advertised.
#[test]
fn wsrf_inventory_advertised_when_layered() {
    let bus = launch_all();
    let ads = advertised(&bus, "bus://rel");
    for action in dais::wsrf::actions::ALL {
        assert!(ads.contains(*action), "WSRF `{action}` not advertised");
    }
}
