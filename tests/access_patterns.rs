//! E1 (paper Figure 1): direct vs indirect access.
//!
//! The figure's point: with direct access, result data flows back to the
//! requesting consumer; with indirect access the requesting consumer only
//! receives an EPR, and the data is pulled later (possibly by someone
//! else). We verify both the mechanics and the quantitative claim —
//! "avoids unnecessary data movement" — using the bus byte meters.

use dais::prelude::*;
use dais_bench::workload::populate_items;

fn service_with_rows(bus: &Bus, address: &str, rows: usize) -> RelationalService {
    let db = Database::new("e1");
    populate_items(&db, rows, 32);
    RelationalService::launch(bus, address, db, Default::default())
}

#[test]
fn direct_access_returns_data_in_response() {
    let bus = Bus::new();
    let svc = service_with_rows(&bus, "bus://e1a", 200);
    let client = SqlClient::builder().bus(bus.clone()).address("bus://e1a").build();

    let m = dais_bench::measure(&bus, || {
        let data = client.execute(&svc.db_resource, "SELECT * FROM item", &[]).unwrap();
        assert_eq!(data.rowset().unwrap().row_count(), 200);
    });
    // One request/response pair; the response carries the rows.
    assert_eq!(m.messages, 1);
    assert!(
        m.response_bytes > 200 * 32,
        "direct response must carry the payload ({} B)",
        m.response_bytes
    );
}

#[test]
fn indirect_access_returns_only_an_epr() {
    let bus = Bus::new();
    let svc = service_with_rows(&bus, "bus://e1b", 200);
    let consumer1 = SqlClient::builder().bus(bus.clone()).address("bus://e1b").build();

    // Consumer 1 pays only for the factory exchange.
    let mut epr = None;
    let m1 = dais_bench::measure(&bus, || {
        epr = Some(
            consumer1
                .execute_factory(&svc.db_resource, "SELECT * FROM item", &[], None, None)
                .unwrap(),
        );
    });
    assert_eq!(m1.messages, 1);
    assert!(
        m1.response_bytes < 2048,
        "factory response is an EPR, not data ({} B)",
        m1.response_bytes
    );

    // Consumer 2 pulls the actual rows.
    let epr = epr.unwrap();
    let name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    let consumer2 = SqlClient::builder().bus(bus.clone()).epr(epr).build();
    let m2 = dais_bench::measure(&bus, || {
        let rowset = consumer2.get_sql_rowset(&name, 1).unwrap();
        assert_eq!(rowset.row_count(), 200);
    });
    assert!(m2.response_bytes > m1.response_bytes * 10, "the data dwarfs the EPR");
}

/// The crossover claim: as result size grows, the indirect pattern's
/// per-consumer1 cost stays flat while direct access grows linearly.
#[test]
fn indirect_cost_at_consumer1_is_size_independent() {
    let bus = Bus::new();
    let small = service_with_rows(&bus, "bus://e1small", 10);
    let large = service_with_rows(&bus, "bus://e1large", 1000);

    let direct_small = dais_bench::measure(&bus, || {
        SqlClient::builder()
            .bus(bus.clone())
            .address("bus://e1small")
            .build()
            .execute(&small.db_resource, "SELECT * FROM item", &[])
            .unwrap();
    });
    let direct_large = dais_bench::measure(&bus, || {
        SqlClient::builder()
            .bus(bus.clone())
            .address("bus://e1large")
            .build()
            .execute(&large.db_resource, "SELECT * FROM item", &[])
            .unwrap();
    });
    let factory_small = dais_bench::measure(&bus, || {
        SqlClient::builder()
            .bus(bus.clone())
            .address("bus://e1small")
            .build()
            .execute_factory(&small.db_resource, "SELECT * FROM item", &[], None, None)
            .unwrap();
    });
    let factory_large = dais_bench::measure(&bus, || {
        SqlClient::builder()
            .bus(bus.clone())
            .address("bus://e1large")
            .build()
            .execute_factory(&large.db_resource, "SELECT * FROM item", &[], None, None)
            .unwrap();
    });

    // Direct grows ~linearly with rows (100x rows ⇒ ≫10x bytes).
    assert!(direct_large.response_bytes > direct_small.response_bytes * 10);
    // Indirect's consumer-1 response is essentially constant.
    let ratio = factory_large.response_bytes as f64 / factory_small.response_bytes as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "factory response size should not scale with the result ({ratio:.2}x)"
    );
}

/// Third-party delivery: the EPR is a plain value that consumer 1 can hand
/// to consumer 2; consumer 2 needs no prior relationship with the service.
#[test]
fn epr_transfers_between_consumers() {
    let bus = Bus::new();
    let svc = service_with_rows(&bus, "bus://e1c", 50);
    let consumer1 = SqlClient::builder().bus(bus.clone()).address("bus://e1c").build();
    let epr = consumer1
        .execute_factory(
            &svc.db_resource,
            "SELECT id FROM item WHERE category = 0",
            &[],
            None,
            None,
        )
        .unwrap();

    // Serialise the EPR (as consumer 1 would to send it to consumer 2),
    // then reconstruct it on the other side.
    let wire = dais::xml::to_string(&epr.to_xml());
    let revived = Epr::from_xml(&dais::xml::parse(&wire).unwrap()).unwrap();
    assert_eq!(revived, epr);

    let name = AbstractName::new(revived.resource_abstract_name().unwrap()).unwrap();
    let consumer2 = SqlClient::builder().bus(bus).epr(revived).build();
    let rowset = consumer2.get_sql_rowset(&name, 1).unwrap();
    assert!(rowset.row_count() > 0);
}
