//! Chaos recovery: the whole stack (relational, XML and file
//! realisations on one bus) driven through a fault-injecting transport.
//!
//! Proves the three contracts of the chaos layer:
//! * retrying clients absorb every retryable fault (drops, synthetic
//!   busy/unavailable answers, corrupted envelopes) within their
//!   attempt budget — the seeded sweep completes with correct results;
//! * non-idempotent operations are never re-sent, no matter the policy;
//! * the whole run is deterministic — the same seed yields *identical*
//!   bus statistics, and an idle chaos layer yields statistics
//!   byte-identical to a bus that never heard of interceptors.

use dais::obs::Span;
use dais::prelude::*;
use dais::soap::bus::{BusError, StatsSnapshot};
use dais::soap::fault::DaisFault;
use dais::soap::interceptor::{CallInfo, InjectorSnapshot, Intercept, Interceptor};
use dais::soap::retry::{IdempotencySet, RetryConfig, RetryPolicy, SleepFn};
use dais::xml::parse;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const SQL_ADDR: &str = "bus://chaos/sql";
const XML_ADDR: &str = "bus://chaos/xml";
const FILE_ADDR: &str = "bus://chaos/files";

struct Stack {
    bus: Bus,
    sql: SqlClient,
    db: AbstractName,
    /// The relational service's live monitoring resource.
    monitoring: AbstractName,
    xml: XmlClient,
    collection: AbstractName,
    files: FileClient,
    root: AbstractName,
}

/// Retry hard enough that a sweep policy cannot exhaust the budget, and
/// never actually sleep — pacing is property-tested separately.
fn sweep_retry(seed: u64, actions: IdempotencySet) -> RetryConfig {
    let no_sleep: SleepFn = Arc::new(|_| {});
    let policy = RetryPolicy::new(30)
        .base_delay(Duration::from_micros(1))
        .max_delay(Duration::from_millis(1))
        .deadline(Duration::from_secs(1))
        .jitter_seed(seed);
    RetryConfig::new(policy, actions).with_sleep(no_sleep)
}

/// Launch all three realisations with fixed seed data. No chaos yet —
/// callers install the injector after setup so the workload under test
/// is exactly the read sweep.
fn build_stack(retry_seed: Option<u64>) -> Stack {
    let bus = Bus::new();

    let db = Database::new("chaos");
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR)", &[]).unwrap();
    for (k, v) in [(1, "alpha"), (2, "beta"), (3, "gamma")] {
        db.execute("INSERT INTO t VALUES (?, ?)", &[Value::Int(k), Value::Str(v.into())]).unwrap();
    }
    let sql_svc = RelationalService::launch(&bus, SQL_ADDR, db, Default::default());

    let xml_svc = XmlService::launch(&bus, XML_ADDR, XmlDatabase::new("chaos"), Default::default());
    let setup_xml = XmlClient::builder().bus(bus.clone()).address(XML_ADDR).build();
    setup_xml
        .add_documents(
            &xml_svc.root_collection,
            &[
                ("b1".into(), parse("<book><price>50</price></book>").unwrap()),
                ("b2".into(), parse("<book><price>40</price></book>").unwrap()),
            ],
        )
        .unwrap();

    let store = FileStore::new();
    store.write("data/a.csv", b"1,2,3".to_vec()).unwrap();
    store.write("readme.txt", b"hello".to_vec()).unwrap();
    let file_svc = FileService::launch(&bus, FILE_ADDR, store, Default::default());

    let (sql, xml, files) = match retry_seed {
        Some(seed) => (
            SqlClient::builder()
                .bus(bus.clone())
                .address(SQL_ADDR)
                .build()
                .with_retry_config(sweep_retry(seed, dais::dair::client::idempotent_actions())),
            XmlClient::builder()
                .bus(bus.clone())
                .address(XML_ADDR)
                .build()
                .with_retry_config(sweep_retry(seed, dais::daix::client::idempotent_actions())),
            FileClient::builder()
                .bus(bus.clone())
                .address(FILE_ADDR)
                .build()
                .with_retry_config(sweep_retry(seed, dais::daif::client::idempotent_actions())),
        ),
        None => (
            SqlClient::builder().bus(bus.clone()).address(SQL_ADDR).build(),
            XmlClient::builder().bus(bus.clone()).address(XML_ADDR).build(),
            FileClient::builder().bus(bus.clone()).address(FILE_ADDR).build(),
        ),
    };

    Stack {
        bus,
        sql,
        db: sql_svc.db_resource,
        monitoring: sql_svc.monitoring,
        xml,
        collection: xml_svc.root_collection,
        files,
        root: file_svc.root,
    }
}

/// The read sweep: every operation is idempotent and its result is
/// asserted, so an unabsorbed fault fails the test immediately.
fn run_read_sweep(stack: &Stack) {
    for _ in 0..3 {
        let data = stack.sql.execute(&stack.db, "SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(data.rowset().unwrap().rows[0][0], Value::Int(3));
        let props = stack.sql.core().get_property_document(&stack.db).unwrap();
        assert!(props.readable);

        let docs = stack.xml.get_documents(&stack.collection, &[]).unwrap();
        assert_eq!(docs.len(), 2);
        let hits = stack.xml.xpath(&stack.collection, "/book[price > 45]/price").unwrap();
        assert_eq!(hits.len(), 1);

        assert_eq!(stack.files.read_file(&stack.root, "readme.txt").unwrap(), b"hello");
        let listing = stack.files.list_files(&stack.root, "data/*").unwrap();
        assert_eq!(listing, vec![("data/a.csv".to_string(), 5)]);
    }
}

/// Everything observable about a finished run.
#[derive(Debug, PartialEq, Eq)]
struct RunSignature {
    total: StatsSnapshot,
    sql: StatsSnapshot,
    xml: StatsSnapshot,
    files: StatsSnapshot,
    injected: InjectorSnapshot,
}

fn chaos_run(seed: u64) -> RunSignature {
    let stack = build_stack(Some(seed));
    let injector = FaultInjector::new(seed);
    injector.set_default_policy(
        FaultPolicy::default().drop(0.15).busy(0.10).unavailable(0.05).corrupt(0.15),
    );
    stack.bus.add_interceptor(Arc::new(injector.clone()));

    run_read_sweep(&stack);

    // The injector's per-endpoint ledger arrives folded into the bus
    // snapshot — no separate accessor needed.
    let total = stack.bus.stats();
    RunSignature {
        total,
        sql: stack.bus.endpoint_stats(SQL_ADDR),
        xml: stack.bus.endpoint_stats(XML_ADDR),
        files: stack.bus.endpoint_stats(FILE_ADDR),
        injected: total.fault_injection,
    }
}

#[test]
fn seeded_sweep_absorbs_retryable_faults() {
    let mut faults_seen = 0u64;
    for seed in [0x01, 0xBEEF, 0xDA15, 0xF00D, 0x7777] {
        let run = chaos_run(seed);
        // The sweep asserted every result; here we check the chaos was real.
        faults_seen += run.injected.total();
        assert_eq!(
            run.total.injected,
            run.injected.total(),
            "bus and injector ledgers disagree for seed {seed:#x}"
        );
        assert_eq!(
            run.total.retries,
            run.injected.drops
                + run.injected.busy
                + run.injected.unavailable
                + run.injected.corruptions,
            "every injected failure costs exactly one retry for seed {seed:#x}"
        );
    }
    assert!(faults_seen > 20, "the sweep barely injected anything ({faults_seen} events)");
}

#[test]
fn same_seed_means_identical_statistics() {
    let first = chaos_run(0xD5EED);
    let second = chaos_run(0xD5EED);
    assert_eq!(first, second);
    // And a different seed really takes a different path.
    let other = chaos_run(0x0DD5EED);
    assert_ne!(first.injected, other.injected);
}

#[test]
fn non_idempotent_operations_are_never_retried() {
    let stack = build_stack(Some(42));
    let injector = FaultInjector::new(42);
    stack.bus.add_interceptor(Arc::new(injector.clone()));

    // Every call answered with ServiceBusy: a retryable fault...
    injector.set_default_policy(FaultPolicy::default().busy(1.0));

    // ...but writes must fail on the first answer, without a re-send.
    let err = stack.sql.execute(&stack.db, "INSERT INTO t VALUES (9, 'nine')", &[]).unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::ServiceBusy));
    let err = stack
        .xml
        .add_documents(&stack.collection, &[("b9".into(), parse("<book/>").unwrap())])
        .unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::ServiceBusy));
    let err = stack.files.write_file(&stack.root, "new.txt", b"x").unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::ServiceBusy));
    let err = stack.files.delete_file(&stack.root, "readme.txt").unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::ServiceBusy));

    assert_eq!(stack.bus.stats().retries, 0, "a non-idempotent operation was re-sent");
    assert_eq!(injector.snapshot().busy, 4);

    // The same fault on a read is retried to the attempt limit.
    let err = stack.sql.execute(&stack.db, "SELECT * FROM t", &[]).unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::ServiceBusy));
    assert_eq!(stack.bus.stats().retries, 29); // max_attempts - 1

    // Chaos off again: the uncommitted insert really never happened.
    injector.clear_default_policy();
    let data = stack.sql.execute(&stack.db, "SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(data.rowset().unwrap().rows[0][0], Value::Int(3));
}

/// Look up one span attribute, empty when absent.
fn attr<'s>(span: &'s Span, key: &str) -> &'s str {
    span.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str()).unwrap_or("")
}

/// Applies a scripted sequence of request-phase faults, then passes
/// everything — deterministic chaos for trace assertions.
struct ScriptedFaults(Mutex<std::collections::VecDeque<&'static str>>);

impl ScriptedFaults {
    fn new(steps: &[&'static str]) -> Self {
        Self(Mutex::new(steps.iter().copied().collect()))
    }
}

impl Interceptor for ScriptedFaults {
    fn on_request(&self, _call: &CallInfo<'_>, bytes: &[u8]) -> Intercept {
        match self.0.lock().unwrap().pop_front() {
            Some("drop") => Intercept::Abort(BusError::Timeout("scripted drop".into())),
            Some("tamper") => Intercept::Tamper(bytes[..bytes.len() / 2].to_vec()),
            _ => Intercept::Pass,
        }
    }
}

/// Records every response wire image so tests can inspect the bytes that
/// actually crossed.
#[derive(Default)]
struct CaptureResponses(Mutex<Vec<Vec<u8>>>);

impl Interceptor for CaptureResponses {
    fn on_response(&self, _call: &CallInfo<'_>, bytes: &[u8]) -> Intercept {
        self.0.lock().unwrap().push(bytes.to_vec());
        Intercept::Pass
    }
}

#[test]
fn trace_context_survives_retries_drop_and_tamper() {
    let stack = build_stack(Some(9));
    stack.bus.enable_tracing(0x0B5);
    // Attempt 1 is dropped, attempt 2 is corrupted in flight, attempt 3
    // goes through clean.
    stack.bus.add_interceptor(Arc::new(ScriptedFaults::new(&["drop", "tamper"])));

    let data = stack.sql.execute(&stack.db, "SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(data.rowset().unwrap().rows[0][0], Value::Int(3));

    let sink = stack.bus.obs().tracer.take();
    // Everything belongs to the one client-rooted trace.
    let root = sink.first("client.call").unwrap();
    assert!(root.parent_id.is_none());
    assert!(sink.spans.iter().all(|s| s.trace_id == root.trace_id));
    assert_eq!(attr(root, "outcome"), "ok");
    assert_eq!(attr(root, "attempts"), "3");

    // Three attempts, two retries, and each attempt's bus leg hangs off
    // the span whose context rode its `wsa:MessageID`.
    let bus_calls = sink.spans_named("bus.call");
    let retries = sink.spans_named("client.retry");
    assert_eq!((bus_calls.len(), retries.len()), (3, 2));
    assert_eq!(bus_calls[0].parent_id, Some(root.span_id));
    assert_eq!(bus_calls[1].parent_id, Some(retries[0].span_id));
    assert_eq!(bus_calls[2].parent_id, Some(retries[1].span_id));
    assert_eq!([attr(retries[0], "cause"), attr(retries[1], "cause")], ["timeout", "transport"]);

    // Only the clean attempt reaches the dispatcher, and its wire-decoded
    // parent is the second retry: the context survived the re-send.
    let dispatches = sink.spans_named("bus.dispatch");
    assert_eq!(dispatches.len(), 1, "dropped/tampered requests must not reach the service");
    assert_eq!(dispatches[0].parent_id, Some(retries[1].span_id));

    // The fault legs are visible on the request spans.
    let requests = sink.spans_named("bus.request");
    assert_eq!(requests.len(), 3);
    assert_eq!(attr(requests[0], "aborted"), "true");
    assert_eq!(attr(requests[1], "tampered"), "true");
    assert_eq!(sink.spans_named("bus.response").len(), 1);

    // The span ledger and the billing counters agree.
    let stats = stack.bus.stats();
    assert_eq!(stats.retries, retries.len() as u64);
    assert_eq!(stats.injected, 2);
}

#[test]
fn pipelined_requests_trace_enqueue_and_execute_under_chaos() {
    // The E5-style batch on the executor path: with tracing on, every
    // pipelined request's span tree must contain bus.enqueue →
    // bus.execute (with the queue wait measured) even while the fault
    // injector is dropping and delaying traffic.
    let stack = build_stack(None);
    stack.bus.enable_tracing(0xE5);
    let injector = FaultInjector::new(0xE5);
    injector.set_default_policy(
        FaultPolicy::default().drop(0.25).delay(0.25, Duration::from_micros(300)),
    );
    stack.bus.add_interceptor(Arc::new(injector.clone()));
    stack.bus.install_executor(ExecutorConfig::new(4).seed(0xE5));

    let paths = vec!["readme.txt"; 24];
    let results = stack.files.read_files(&stack.root, &paths, 6);
    stack.bus.shutdown_executor();

    // Every slot resolves: to the file's bytes or to the injected drop.
    assert_eq!(results.len(), 24);
    let failed = results.iter().filter(|r| r.is_err()).count() as u64;
    for contents in results.iter().filter_map(|r| r.as_deref().ok()) {
        assert_eq!(contents, b"hello");
    }
    let injected = injector.snapshot();
    assert_eq!(failed, injected.drops, "exactly the dropped requests fail their slot");
    assert!(injected.drops > 0 && injected.delays > 0, "the chaos was real: {injected:?}");

    let sink = stack.bus.obs().tracer.take();
    let roots = sink.spans_named("client.call");
    let enqueues = sink.spans_named("bus.enqueue");
    let executes = sink.spans_named("bus.execute");
    assert_eq!(roots.len(), 24);
    assert_eq!(enqueues.len(), executes.len(), "everything admitted was executed");
    for root in &roots {
        let enqueue = enqueues
            .iter()
            .find(|e| e.parent_id == Some(root.span_id))
            .expect("every pipelined call carries its context onto the queue");
        let execute = executes
            .iter()
            .find(|x| x.parent_id == Some(enqueue.span_id))
            .expect("every enqueued request reaches a worker");
        assert_eq!(execute.trace_id, root.trace_id, "one trace per request");
        assert!(attr(execute, "queue_wait_ns").parse::<u64>().is_ok());
        assert!(!attr(execute, "to").is_empty() && !attr(execute, "action").is_empty());
    }
}

#[test]
fn fault_envelopes_carry_the_correlation_header() {
    let stack = build_stack(None);
    let wires = Arc::new(CaptureResponses::default());
    stack.bus.add_interceptor(wires.clone());
    stack.bus.enable_tracing(0x0F);

    // A service-generated fault: the resource does not exist.
    let ghost = AbstractName::new("urn:dais:ghost:db:0").unwrap();
    let err = stack.sql.core().get_property_document(&ghost).unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::InvalidResourceName));

    let sink = stack.bus.obs().tracer.take();
    let root = sink.first("client.call").unwrap();
    assert_eq!(attr(root, "outcome"), "error");
    assert_eq!(attr(sink.first("bus.call").unwrap(), "outcome"), "fault");
    assert_eq!(attr(sink.first("bus.dispatch").unwrap(), "outcome"), "fault");

    // The fault envelope that crossed the wire echoes the request's
    // trace context in `wsa:RelatesTo`.
    let expected = format!("urn:dais:trace:{:016x}:{:016x}", root.trace_id, root.span_id);
    let captured = wires.0.lock().unwrap();
    let fault_wire = std::str::from_utf8(captured.last().unwrap()).unwrap();
    assert!(fault_wire.contains("Fault"), "expected a fault envelope, got: {fault_wire}");
    assert!(fault_wire.contains("RelatesTo"));
    assert!(fault_wire.contains(&expected));
}

#[test]
fn synthetic_replies_do_not_forge_correlation() {
    let stack = build_stack(Some(5));
    let injector = FaultInjector::new(5);
    injector.set_default_policy(FaultPolicy::default().busy(1.0));
    stack.bus.add_interceptor(Arc::new(injector.clone()));
    stack.bus.enable_tracing(0x5EED);

    // Non-idempotent write: one attempt, answered by the interceptor
    // before the service ever sees it.
    let err = stack.sql.execute(&stack.db, "INSERT INTO t VALUES (7, 'seven')", &[]).unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::ServiceBusy));

    let sink = stack.bus.obs().tracer.take();
    assert!(sink.first("bus.dispatch").is_none(), "the service was never reached");
    assert_eq!(attr(sink.first("bus.request").unwrap(), "replied-by-interceptor"), "true");
    let root = sink.first("client.call").unwrap();
    assert_eq!(attr(root, "outcome"), "error");
    assert_eq!(attr(root, "attempts"), "1");
    assert_eq!(attr(sink.first("bus.call").unwrap(), "outcome"), "fault");

    // The injector's synthetic fault is folded into the bus snapshot.
    let stats = stack.bus.stats();
    assert_eq!(stats.fault_injection.busy, 1);
    assert_eq!(stats.fault_injection.total(), stats.injected);
    assert_eq!(stack.bus.endpoint_stats(SQL_ADDR).fault_injection.busy, 1);
}

#[test]
fn monitoring_document_travels_the_wire_with_live_histograms() {
    use dais::core::monitoring::MON_NS;

    let stack = build_stack(None);
    run_read_sweep(&stack);

    let doc = stack.sql.core().get_property_document_xml(&stack.monitoring).unwrap();
    let mon = doc.child(MON_NS, "BusMonitoring").expect("mon:BusMonitoring extension");

    let traffic = mon.child(MON_NS, "Traffic").unwrap();
    let messages: u64 = traffic.attribute("messages").unwrap().parse().unwrap();
    assert!(messages >= 6, "the sweep sent at least six messages to the SQL endpoint");

    // The always-on latency histogram for the SQL endpoint crossed the
    // wire with real observations in its buckets.
    let sql_key = format!("endpoint:{SQL_ADDR}");
    let hist = mon
        .children_named(MON_NS, "LatencyHistogram")
        .find(|h| h.attribute("key") == Some(sql_key.as_str()))
        .expect("a histogram for the SQL endpoint");
    let count: u64 = hist.attribute("count").unwrap().parse().unwrap();
    assert!(count >= messages, "every bus call records one latency sample");
    let bucketed: u64 = hist
        .children_named(MON_NS, "Bucket")
        .map(|b| b.attribute("observations").unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(bucketed, count, "bucket observations add up to the recorded count");
    assert!(hist.attribute("p95Ns").unwrap().parse::<u64>().unwrap() > 0);
}

#[test]
fn idle_chaos_layer_is_invisible_in_the_statistics() {
    // Plain bus, plain clients — the pre-chaos baseline.
    let baseline = build_stack(None);
    run_read_sweep(&baseline);

    // Retry-configured clients on a healthy bus: no visible difference.
    let with_retry = build_stack(Some(7));
    run_read_sweep(&with_retry);

    // An installed injector with no policies: still no difference.
    let with_idle_injector = build_stack(Some(7));
    let injector = FaultInjector::new(7);
    with_idle_injector.bus.add_interceptor(Arc::new(injector.clone()));
    run_read_sweep(&with_idle_injector);

    let base = baseline.bus.stats();
    assert_eq!(base, with_retry.bus.stats());
    assert_eq!(base, with_idle_injector.bus.stats());
    assert_eq!(injector.snapshot(), InjectorSnapshot::default());
    assert_eq!(
        baseline.bus.endpoint_stats(SQL_ADDR),
        with_idle_injector.bus.endpoint_stats(SQL_ADDR)
    );
    assert_eq!(base.injected, 0);
    assert_eq!(base.retries, 0);
    assert!(base.faults == 0 && base.messages > 0);
}
