//! E9 (§3/§4.2 `Sensitivity`) and E10 (§4.2 `ConcurrentAccess`,
//! `TransactionInitiation`): derived-resource freshness semantics and the
//! per-message transactional guarantees.

use dais::prelude::*;
use dais::xml::ns;
use std::sync::Arc;

fn setup(rows_sql: &str) -> (Bus, SqlClient, AbstractName) {
    let bus = Bus::new();
    let db = Database::new("s");
    db.execute(
        "CREATE TABLE acct (id INTEGER PRIMARY KEY, balance DOUBLE, CHECK (balance >= 0))",
        &[],
    )
    .unwrap();
    db.execute(rows_sql, &[]).unwrap();
    let svc = RelationalService::launch(&bus, "bus://s", db, Default::default());
    (bus.clone(), SqlClient::builder().bus(bus).address("bus://s").build(), svc.db_resource)
}

// ---------------------------------------------------------------------------
// E9: Sensitivity
// ---------------------------------------------------------------------------

#[test]
fn sensitivity_controls_derived_freshness() {
    let (_, client, db) = setup("INSERT INTO acct VALUES (1, 100.0), (2, 50.0)");

    let make = |sensitivity: Sensitivity| {
        let config = ConfigurationDocument { sensitivity: Some(sensitivity), ..Default::default() };
        let epr = client
            .execute_factory(&db, "SELECT SUM(balance) FROM acct", &[], None, Some(&config))
            .unwrap();
        AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap()
    };
    let snapshot = make(Sensitivity::Insensitive);
    let live = make(Sensitivity::Sensitive);

    // Both agree initially.
    let read = |name: &AbstractName| client.get_sql_rowset(name, 1).unwrap().rows[0][0].clone();
    assert_eq!(read(&snapshot), Value::Double(150.0));
    assert_eq!(read(&live), Value::Double(150.0));

    // Mutate the parent.
    client.execute(&db, "UPDATE acct SET balance = balance + 25 WHERE id = 1", &[]).unwrap();

    // The sensitive resource reflects the parent; the snapshot does not.
    assert_eq!(read(&live), Value::Double(175.0));
    assert_eq!(read(&snapshot), Value::Double(150.0));

    // The property documents advertise which is which.
    let p = client.core().get_property_document(&live).unwrap();
    assert_eq!(p.sensitivity, Sensitivity::Sensitive);
    let p = client.core().get_property_document(&snapshot).unwrap();
    assert_eq!(p.sensitivity, Sensitivity::Insensitive);
}

#[test]
fn sensitive_resource_faults_if_parent_schema_vanishes() {
    let (_, client, db) = setup("INSERT INTO acct VALUES (1, 1.0)");
    let config =
        ConfigurationDocument { sensitivity: Some(Sensitivity::Sensitive), ..Default::default() };
    let epr = client.execute_factory(&db, "SELECT * FROM acct", &[], None, Some(&config)).unwrap();
    let live = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    client.execute(&db, "DROP TABLE acct", &[]).unwrap();
    // Re-evaluation now fails — surfaced as a DAIS fault, not a panic.
    let err = client.get_sql_rowset(&live, 1).unwrap_err();
    assert_eq!(err.dais_fault(), Some(dais::soap::fault::DaisFault::InvalidExpression));
}

// ---------------------------------------------------------------------------
// E10: per-message transactions and concurrency
// ---------------------------------------------------------------------------

/// TransactionInitiation=TransactionalPerMessage: a failing statement
/// leaves no partial effects, observed end-to-end through the service.
#[test]
fn per_message_atomicity_over_the_wire() {
    let (_, client, db) = setup("INSERT INTO acct VALUES (1, 100.0), (2, 50.0)");
    // This update succeeds on row 1 then violates the CHECK on row 2;
    // the whole message must roll back.
    let err = client
        .execute(&db, "UPDATE acct SET balance = balance - 60 WHERE id IN (1, 2)", &[])
        .unwrap_err();
    assert_eq!(err.dais_fault(), Some(dais::soap::fault::DaisFault::InvalidExpression));
    let data = client.execute(&db, "SELECT balance FROM acct ORDER BY id", &[]).unwrap();
    assert_eq!(
        data.rowset().unwrap().rows,
        vec![vec![Value::Double(100.0)], vec![Value::Double(50.0)]],
        "failed message left partial effects"
    );
}

#[test]
fn advertised_transaction_properties() {
    let (_, client, db) = setup("INSERT INTO acct VALUES (1, 1.0)");
    let props = client.core().get_property_document(&db).unwrap();
    assert_eq!(
        props.transaction_initiation,
        dais::core::TransactionInitiation::TransactionalPerMessage
    );
    // The engine's undo-based model gives READ UNCOMMITTED visibility —
    // and that is exactly what the service advertises (honesty check).
    assert_eq!(props.transaction_isolation, dais::core::TransactionIsolation::ReadUncommitted);
    assert!(props.concurrent_access);
}

/// ConcurrentAccess=true: many consumers hammer one service; totals add up.
#[test]
fn concurrent_consumers() {
    let (bus, _, db) = setup("INSERT INTO acct VALUES (1, 0.0)");
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let bus = bus.clone();
            let db = db.clone();
            std::thread::spawn(move || {
                let client = SqlClient::builder().bus(bus).address("bus://s").build();
                for _ in 0..25 {
                    if i % 2 == 0 {
                        client
                            .execute(&db, "UPDATE acct SET balance = balance + 1 WHERE id = 1", &[])
                            .unwrap();
                    } else {
                        let data = client.execute(&db, "SELECT balance FROM acct", &[]).unwrap();
                        assert_eq!(data.rowset().unwrap().row_count(), 1);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let client = SqlClient::builder().bus(bus).address("bus://s").build();
    let data = client.execute(&db, "SELECT balance FROM acct", &[]).unwrap();
    assert_eq!(data.rowset().unwrap().rows[0][0], Value::Double(100.0)); // 4 writers × 25
}

/// Concurrent factories mint distinct resources without collisions.
#[test]
fn concurrent_factories() {
    let (bus, _, db) = setup("INSERT INTO acct VALUES (1, 1.0)");
    let names: Vec<AbstractName> = (0..6)
        .map(|_| {
            let bus = bus.clone();
            let db = db.clone();
            std::thread::spawn(move || {
                let client = SqlClient::builder().bus(bus).address("bus://s").build();
                let epr =
                    client.execute_factory(&db, "SELECT * FROM acct", &[], None, None).unwrap();
                AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    let mut dedup = names.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "abstract names must be unique");
    // All of them resolve and serve data.
    let client = SqlClient::builder().bus(bus).address("bus://s").build();
    for n in &names {
        assert_eq!(client.get_sql_rowset(n, 1).unwrap().row_count(), 1);
    }
}

/// The communication area reports SQLSTATE 02000 for no-data outcomes,
/// end to end (Figure 2's diagnostic channel).
#[test]
fn communication_area_diagnostics() {
    let (_, client, db) = setup("INSERT INTO acct VALUES (1, 1.0)");
    let data = client.execute(&db, "DELETE FROM acct WHERE id = 999", &[]).unwrap();
    assert_eq!(data.communication_area.sqlstate, "02000");
    assert_eq!(data.update_count(), Some(0));

    let epr =
        client.execute_factory(&db, "SELECT * FROM acct WHERE id = 999", &[], None, None).unwrap();
    let name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    let comm = client.get_sql_communication_area(&name).unwrap();
    assert_eq!(comm.sqlstate, "02000");
}

/// Thick vs thin wrappers (E8, §2.1): a rewriting service intercepts
/// statements; a thin one passes them through untouched.
#[test]
fn thick_wrapper_rewrites_e2e() {
    let bus = Bus::new();
    let db = Database::new("wrap");
    db.execute_script(
        "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2), (3);
         CREATE TABLE audit (a INTEGER);",
    )
    .unwrap();
    // The thick wrapper redirects every statement to a canned audit query.
    let rewriter: dais::core::service::QueryRewriter = Arc::new(|lang: &str, _expr: &str| {
        (lang.to_string(), "SELECT COUNT(*) FROM t".to_string())
    });
    let svc = RelationalService::launch(
        &bus,
        "bus://thick",
        db,
        RelationalServiceOptions { query_rewriter: Some(rewriter), ..Default::default() },
    );
    let client = SqlClient::builder().bus(bus).address("bus://thick").build();
    // Whatever we send, the wrapper's rewrite executes.
    let data = client.execute(&svc.db_resource, "SELECT a FROM t WHERE a = 1", &[]).unwrap();
    assert_eq!(data.rowset().unwrap().rows[0][0], Value::Int(3));
    // The response structure is unchanged — wrappers are transparent to
    // the message pattern.
    assert!(data.communication_area.is_success());
    let _ = ns::WSDAIR; // silence unused import on some cfgs
}
