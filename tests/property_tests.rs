//! Cross-crate property-based tests (proptest) on the stack's key
//! invariants: wire-format round-trips, SQL engine behaviour against a
//! reference model, and name uniqueness.

use dais::prelude::*;
use dais::sql::{Rowset, RowsetColumn, SqlType};
use dais::xml::{parse, to_string, XmlElement};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// XML-safe text (the parser rejects raw control characters by design of
/// the subset; escaping covers the rest).
fn arb_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~&<>\"'a-zA-Z0-9]{0,24}").unwrap()
}

fn arb_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z][a-zA-Z0-9_.-]{0,8}").unwrap()
}

/// Arbitrary namespaced XML trees of bounded depth.
fn arb_element() -> impl Strategy<Value = XmlElement> {
    let leaf = (arb_name(), proptest::collection::vec((arb_name(), arb_text()), 0..3), arb_text())
        .prop_map(|(name, attrs, text)| {
            let mut e = XmlElement::new_local(name);
            for (an, av) in attrs {
                // Attribute names must be unique per element.
                if e.attribute(&an).is_none() {
                    e.set_attr(an, av);
                }
            }
            if !text.is_empty() {
                e.push_text(text);
            }
            e
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (arb_name(), proptest::collection::vec(inner, 0..4)).prop_map(|(name, children)| {
            let mut e = XmlElement::new_local(name);
            for c in children {
                e.push(c);
            }
            e
        })
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite doubles; the display format does not round-trip NaN/inf
        // (and SQL forbids them as literals anyway).
        (-1e12f64..1e12).prop_map(Value::Double),
        arb_text().prop_map(Value::Str),
    ]
}

fn type_of(v: &Value) -> SqlType {
    v.sql_type().unwrap_or(SqlType::Varchar)
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse(write(tree)) == tree for arbitrary trees. The preserving
    /// parser is the exact inverse of the writer; the protocol-default
    /// parser additionally drops whitespace-only text, which `normalized`
    /// accounts for.
    #[test]
    fn xml_roundtrip(e in arb_element()) {
        let text = to_string(&e);
        let exact = dais::xml::parse_preserving(&text).unwrap();
        prop_assert_eq!(&exact, &e);
        let stripped = parse(&text).unwrap();
        prop_assert_eq!(stripped.normalized(), exact.normalized());
    }

    /// SOAP envelopes survive the bus's serialise/parse cycle untouched.
    #[test]
    fn envelope_roundtrip(body in arb_element()) {
        // Strip whitespace-only text (the parser's protocol default).
        let body = body.normalized();
        let env = dais::soap::Envelope::with_body(body);
        let rt = dais::soap::Envelope::from_bytes(&env.to_bytes()).unwrap();
        prop_assert_eq!(rt, env);
    }

    /// WebRowSet encoding round-trips arbitrary typed tables.
    #[test]
    fn rowset_roundtrip(
        rows in proptest::collection::vec(
            (arb_value(), arb_value(), arb_text()), 0..12
        )
    ) {
        // Columns take their types from the first row's non-null values;
        // coerce every row to those types for a well-typed rowset.
        let col_types = [
            rows.first().map(|(a, _, _)| type_of(a)).unwrap_or(SqlType::Integer),
            rows.first().map(|(_, b, _)| type_of(b)).unwrap_or(SqlType::Double),
            SqlType::Varchar,
        ];
        let mut rs = Rowset::new(vec![
            RowsetColumn { name: "a".into(), ty: col_types[0] },
            RowsetColumn { name: "b".into(), ty: col_types[1] },
            RowsetColumn { name: "c".into(), ty: SqlType::Varchar },
        ]);
        for (a, b, c) in rows {
            let a = a.coerce_to(col_types[0]).unwrap_or(Value::Null);
            let b = b.coerce_to(col_types[1]).unwrap_or(Value::Null);
            rs.rows.push(vec![a, b, Value::Str(c)]);
        }
        let text = to_string(&rs.to_xml());
        let rt = Rowset::from_xml(&parse(&text).unwrap()).unwrap();
        prop_assert_eq!(rt.columns, rs.columns);
        prop_assert_eq!(rt.rows.len(), rs.rows.len());
        for (x, y) in rt.rows.iter().zip(&rs.rows) {
            // Doubles go through decimal text; compare displayed forms.
            for (xv, yv) in x.iter().zip(y) {
                prop_assert_eq!(xv.to_display_string(), yv.to_display_string());
            }
        }
    }

    /// INSERT-then-SELECT returns exactly what went in (engine vs model).
    #[test]
    fn sql_insert_select_agrees_with_model(
        values in proptest::collection::vec((any::<i64>(), arb_text()), 1..20)
    ) {
        let db = Database::new("prop");
        db.execute("CREATE TABLE t (k INTEGER, v VARCHAR)", &[]).unwrap();
        let mut model: Vec<(i64, String)> = Vec::new();
        for (i, (k, v)) in values.into_iter().enumerate() {
            db.execute(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(k), Value::Str(v.clone())],
            ).unwrap();
            model.push((k, v));
            // Every prefix stays consistent.
            if i % 5 == 0 {
                let got = db.execute("SELECT k, v FROM t", &[]).unwrap();
                prop_assert_eq!(got.rowset().unwrap().row_count(), model.len());
            }
        }
        let got = db.execute("SELECT COUNT(*), SUM(k) FROM t", &[]).unwrap();
        let rows = &got.rowset().unwrap().rows;
        prop_assert_eq!(&rows[0][0], &Value::Int(model.len() as i64));
        let model_sum: i64 = model.iter().map(|(k, _)| *k).fold(0, i64::wrapping_add);
        prop_assert_eq!(&rows[0][1], &Value::Int(model_sum));
    }

    /// WHERE filtering agrees with a reference filter.
    #[test]
    fn sql_where_agrees_with_model(
        keys in proptest::collection::vec(-1000i64..1000, 1..40),
        threshold in -1000i64..1000,
    ) {
        let db = Database::new("prop");
        db.execute("CREATE TABLE t (k INTEGER)", &[]).unwrap();
        for k in &keys {
            db.execute("INSERT INTO t VALUES (?)", &[Value::Int(*k)]).unwrap();
        }
        let got = db
            .execute("SELECT COUNT(*) FROM t WHERE k > ?", &[Value::Int(threshold)])
            .unwrap();
        let expected = keys.iter().filter(|k| **k > threshold).count() as i64;
        prop_assert_eq!(&got.rowset().unwrap().rows[0][0], &Value::Int(expected));
    }

    /// ORDER BY sorts like the standard library.
    #[test]
    fn sql_order_by_agrees_with_model(keys in proptest::collection::vec(any::<i32>(), 0..30)) {
        let db = Database::new("prop");
        db.execute("CREATE TABLE t (k INTEGER)", &[]).unwrap();
        for k in &keys {
            db.execute("INSERT INTO t VALUES (?)", &[Value::Int(*k as i64)]).unwrap();
        }
        let got = db.execute("SELECT k FROM t ORDER BY k", &[]).unwrap();
        let got_keys: Vec<i64> = got
            .rowset().unwrap()
            .rows
            .iter()
            .map(|r| match r[0] { Value::Int(i) => i, ref other => panic!("{other:?}") })
            .collect();
        let mut expected: Vec<i64> = keys.iter().map(|k| *k as i64).collect();
        expected.sort();
        prop_assert_eq!(got_keys, expected);
    }

    /// Transactions: rollback restores the exact pre-transaction state.
    #[test]
    fn rollback_restores_state(
        initial in proptest::collection::vec(any::<i32>(), 1..15),
        changes in proptest::collection::vec(any::<i32>(), 1..15),
    ) {
        let db = Database::new("prop");
        db.execute("CREATE TABLE t (k INTEGER)", &[]).unwrap();
        for k in &initial {
            db.execute("INSERT INTO t VALUES (?)", &[Value::Int(*k as i64)]).unwrap();
        }
        let before = db.execute("SELECT k FROM t ORDER BY k", &[]).unwrap();

        let mut session = db.connect();
        session.execute("BEGIN", &[]).unwrap();
        for k in &changes {
            session.execute("INSERT INTO t VALUES (?)", &[Value::Int(*k as i64)]).unwrap();
        }
        session.execute("DELETE FROM t WHERE k % 2 = 0", &[]).unwrap();
        session.execute("ROLLBACK", &[]).unwrap();

        let after = db.execute("SELECT k FROM t ORDER BY k", &[]).unwrap();
        prop_assert_eq!(after.rowset().unwrap().rows.clone(), before.rowset().unwrap().rows.clone());
    }

    /// The DAIS message body round-trips arbitrary SQL parameter vectors.
    #[test]
    fn sql_parameters_roundtrip_the_wire(params in proptest::collection::vec(arb_value(), 0..8)) {
        let name = AbstractName::new("urn:dais:p:db:0").unwrap();
        let req = dais::dair::messages::sql_execute_request(
            &name, dais::xml::ns::ROWSET, "SELECT 1", &params,
        );
        // Through text, like the bus does.
        let text = to_string(&req);
        let parsed = parse(&text).unwrap();
        let (sql, got) = dais::dair::messages::parse_sql_expression(&parsed).unwrap();
        prop_assert_eq!(sql, "SELECT 1");
        prop_assert_eq!(got.len(), params.len());
        for (x, y) in got.iter().zip(&params) {
            prop_assert_eq!(x.to_display_string(), y.to_display_string());
        }
    }
}

/// Abstract names from concurrent generators never collide (plain test —
/// determinism is the property).
#[test]
fn abstract_names_unique_across_threads() {
    let gen = std::sync::Arc::new(dais::core::NameGenerator::new("uniq"));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let gen = gen.clone();
            std::thread::spawn(move || (0..250).map(|_| gen.mint("r")).collect::<Vec<_>>())
        })
        .collect();
    let mut all: Vec<_> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    let n = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), n);
}
