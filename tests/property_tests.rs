//! Cross-crate property-based tests on the stack's key invariants: wire
//! format round-trips, SQL engine behaviour against a reference model,
//! and name uniqueness.
//!
//! Driven by the in-repo mini property harness (`dais_util::prop`);
//! failing cases print a replay seed.

use dais::prelude::*;
use dais::sql::{Rowset, RowsetColumn, SqlType};
use dais::xml::{parse, to_string, XmlElement};
use dais_util::prop::{run_cases, Gen};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Printable ASCII incl. the XML metacharacters — escaping must cover it.
const TEXT_ALPHABET: &str = " &<>\"'abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.,:;!?#$%()*+-/=@[]^_{}|~";
const NAME_HEAD: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
const NAME_TAIL: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";

/// XML-safe text (the parser rejects raw control characters by design of
/// the subset; escaping covers the rest).
fn arb_text(g: &mut Gen) -> String {
    g.string_from(TEXT_ALPHABET, 0, 24)
}

fn arb_name(g: &mut Gen) -> String {
    let mut s = g.string_from(NAME_HEAD, 1, 1);
    s.push_str(&g.string_from(NAME_TAIL, 0, 8));
    s
}

/// Arbitrary namespaced XML trees of bounded depth.
fn arb_element(g: &mut Gen) -> XmlElement {
    arb_element_depth(g, 3)
}

fn arb_element_depth(g: &mut Gen, depth: usize) -> XmlElement {
    let mut e = XmlElement::new_local(arb_name(g));
    for _ in 0..g.usize_in(0, 3) {
        let an = arb_name(g);
        // Attribute names must be unique per element.
        if e.attribute(&an).is_none() {
            e.set_attr(an, arb_text(g));
        }
    }
    if depth == 0 || g.bool_any() {
        // Leaf: optional text content.
        let text = arb_text(g);
        if !text.is_empty() {
            e.push_text(text);
        }
    } else {
        for _ in 0..g.usize_in(0, 4) {
            e.push(arb_element_depth(g, depth - 1));
        }
    }
    e
}

fn arb_value(g: &mut Gen) -> Value {
    match g.usize_in(0, 5) {
        0 => Value::Null,
        1 => Value::Bool(g.bool_any()),
        2 => Value::Int(g.i64_any()),
        // Finite doubles; the display format does not round-trip NaN/inf
        // (and SQL forbids them as literals anyway).
        3 => Value::Double(g.f64_in(-1e12, 1e12)),
        _ => Value::Str(arb_text(g)),
    }
}

fn type_of(v: &Value) -> SqlType {
    v.sql_type().unwrap_or(SqlType::Varchar)
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// parse(write(tree)) == tree for arbitrary trees. The preserving
/// parser is the exact inverse of the writer; the protocol-default
/// parser additionally drops whitespace-only text, which `normalized`
/// accounts for.
#[test]
fn xml_roundtrip() {
    run_cases("xml_roundtrip", 64, 0x304A, |g| {
        let e = arb_element(g);
        let text = to_string(&e);
        let exact = dais::xml::parse_preserving(&text).unwrap();
        assert_eq!(&exact, &e);
        let stripped = parse(&text).unwrap();
        assert_eq!(stripped.normalized(), exact.normalized());
    });
}

/// SOAP envelopes survive the bus's serialise/parse cycle untouched.
#[test]
fn envelope_roundtrip() {
    run_cases("envelope_roundtrip", 64, 0xE2F, |g| {
        // Strip whitespace-only text (the parser's protocol default).
        let body = arb_element(g).normalized();
        let env = dais::soap::Envelope::with_body(body);
        let rt = dais::soap::Envelope::from_bytes(&env.to_bytes()).unwrap();
        assert_eq!(rt, env);
    });
}

/// WebRowSet encoding round-trips arbitrary typed tables.
#[test]
fn rowset_roundtrip() {
    run_cases("rowset_roundtrip", 64, 0x5E7, |g| {
        let rows = g.vec_of(0, 11, |g| (arb_value(g), arb_value(g), arb_text(g)));
        // Columns take their types from the first row's non-null values;
        // coerce every row to those types for a well-typed rowset.
        let col_types = [
            rows.first().map(|(a, _, _)| type_of(a)).unwrap_or(SqlType::Integer),
            rows.first().map(|(_, b, _)| type_of(b)).unwrap_or(SqlType::Double),
            SqlType::Varchar,
        ];
        let mut rs = Rowset::new(vec![
            RowsetColumn { name: "a".into(), ty: col_types[0] },
            RowsetColumn { name: "b".into(), ty: col_types[1] },
            RowsetColumn { name: "c".into(), ty: SqlType::Varchar },
        ]);
        for (a, b, c) in rows {
            let a = a.coerce_to(col_types[0]).unwrap_or(Value::Null);
            let b = b.coerce_to(col_types[1]).unwrap_or(Value::Null);
            rs.rows.push(vec![a, b, Value::Str(c)]);
        }
        let text = to_string(&rs.to_xml());
        let rt = Rowset::from_xml(&parse(&text).unwrap()).unwrap();
        assert_eq!(rt.columns, rs.columns);
        assert_eq!(rt.rows.len(), rs.rows.len());
        for (x, y) in rt.rows.iter().zip(&rs.rows) {
            // Doubles go through decimal text; compare displayed forms.
            for (xv, yv) in x.iter().zip(y) {
                assert_eq!(xv.to_display_string(), yv.to_display_string());
            }
        }
    });
}

/// INSERT-then-SELECT returns exactly what went in (engine vs model).
#[test]
fn sql_insert_select_agrees_with_model() {
    run_cases("sql_insert_select_agrees_with_model", 64, 0x1235, |g| {
        let values = g.vec_of(1, 19, |g| (g.i64_any(), arb_text(g)));
        let db = Database::new("prop");
        db.execute("CREATE TABLE t (k INTEGER, v VARCHAR)", &[]).unwrap();
        let mut model: Vec<(i64, String)> = Vec::new();
        for (i, (k, v)) in values.into_iter().enumerate() {
            db.execute("INSERT INTO t VALUES (?, ?)", &[Value::Int(k), Value::Str(v.clone())])
                .unwrap();
            model.push((k, v));
            // Every prefix stays consistent.
            if i % 5 == 0 {
                let got = db.execute("SELECT k, v FROM t", &[]).unwrap();
                assert_eq!(got.rowset().unwrap().row_count(), model.len());
            }
        }
        let got = db.execute("SELECT COUNT(*), SUM(k) FROM t", &[]).unwrap();
        let rows = &got.rowset().unwrap().rows;
        assert_eq!(&rows[0][0], &Value::Int(model.len() as i64));
        let model_sum: i64 = model.iter().map(|(k, _)| *k).fold(0, i64::wrapping_add);
        assert_eq!(&rows[0][1], &Value::Int(model_sum));
    });
}

/// WHERE filtering agrees with a reference filter.
#[test]
fn sql_where_agrees_with_model() {
    run_cases("sql_where_agrees_with_model", 64, 0x3E3, |g| {
        let keys = g.vec_of(1, 39, |g| g.u64_in(0, 2000) as i64 - 1000);
        let threshold = g.u64_in(0, 2000) as i64 - 1000;
        let db = Database::new("prop");
        db.execute("CREATE TABLE t (k INTEGER)", &[]).unwrap();
        for k in &keys {
            db.execute("INSERT INTO t VALUES (?)", &[Value::Int(*k)]).unwrap();
        }
        let got =
            db.execute("SELECT COUNT(*) FROM t WHERE k > ?", &[Value::Int(threshold)]).unwrap();
        let expected = keys.iter().filter(|k| **k > threshold).count() as i64;
        assert_eq!(&got.rowset().unwrap().rows[0][0], &Value::Int(expected));
    });
}

/// ORDER BY sorts like the standard library.
#[test]
fn sql_order_by_agrees_with_model() {
    run_cases("sql_order_by_agrees_with_model", 64, 0x0B5, |g| {
        let keys = g.vec_of(0, 29, |g| g.i64_any() as i32);
        let db = Database::new("prop");
        db.execute("CREATE TABLE t (k INTEGER)", &[]).unwrap();
        for k in &keys {
            db.execute("INSERT INTO t VALUES (?)", &[Value::Int(*k as i64)]).unwrap();
        }
        let got = db.execute("SELECT k FROM t ORDER BY k", &[]).unwrap();
        let got_keys: Vec<i64> = got
            .rowset()
            .unwrap()
            .rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                ref other => panic!("{other:?}"),
            })
            .collect();
        let mut expected: Vec<i64> = keys.iter().map(|k| *k as i64).collect();
        expected.sort();
        assert_eq!(got_keys, expected);
    });
}

/// Transactions: rollback restores the exact pre-transaction state.
#[test]
fn rollback_restores_state() {
    run_cases("rollback_restores_state", 64, 0x2B11, |g| {
        let initial = g.vec_of(1, 14, |g| g.i64_any() as i32);
        let changes = g.vec_of(1, 14, |g| g.i64_any() as i32);
        let db = Database::new("prop");
        db.execute("CREATE TABLE t (k INTEGER)", &[]).unwrap();
        for k in &initial {
            db.execute("INSERT INTO t VALUES (?)", &[Value::Int(*k as i64)]).unwrap();
        }
        let before = db.execute("SELECT k FROM t ORDER BY k", &[]).unwrap();

        let mut session = db.connect();
        session.execute("BEGIN", &[]).unwrap();
        for k in &changes {
            session.execute("INSERT INTO t VALUES (?)", &[Value::Int(*k as i64)]).unwrap();
        }
        session.execute("DELETE FROM t WHERE k % 2 = 0", &[]).unwrap();
        session.execute("ROLLBACK", &[]).unwrap();

        let after = db.execute("SELECT k FROM t ORDER BY k", &[]).unwrap();
        assert_eq!(after.rowset().unwrap().rows.clone(), before.rowset().unwrap().rows.clone());
    });
}

/// The DAIS message body round-trips arbitrary SQL parameter vectors.
#[test]
fn sql_parameters_roundtrip_the_wire() {
    run_cases("sql_parameters_roundtrip_the_wire", 64, 0x50AF, |g| {
        let params = g.vec_of(0, 7, arb_value);
        let name = AbstractName::new("urn:dais:p:db:0").unwrap();
        let req = dais::dair::messages::sql_execute_request(
            &name,
            dais::xml::ns::ROWSET,
            "SELECT 1",
            &params,
        );
        // Through text, like the bus does.
        let text = to_string(&req);
        let parsed = parse(&text).unwrap();
        let (sql, got) = dais::dair::messages::parse_sql_expression(&parsed).unwrap();
        assert_eq!(sql, "SELECT 1");
        assert_eq!(got.len(), params.len());
        for (x, y) in got.iter().zip(&params) {
            assert_eq!(x.to_display_string(), y.to_display_string());
        }
    });
}

/// Abstract names from concurrent generators never collide (plain test —
/// determinism is the property).
#[test]
fn abstract_names_unique_across_threads() {
    let gen = std::sync::Arc::new(dais::core::NameGenerator::new("uniq"));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let gen = gen.clone();
            std::thread::spawn(move || (0..250).map(|_| gen.mint("r")).collect::<Vec<_>>())
        })
        .collect();
    let mut all: Vec<_> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    let n = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), n);
}
