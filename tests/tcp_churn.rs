//! Connection churn: the TCP client pool against a server that drops
//! every Nth connection (after dispatch, before the reply — the
//! worst-case failure for idempotency, because the work happened and
//! only the acknowledgement is lost).
//!
//! Proves three things:
//! * a retrying client survives the churn — idempotent reads reconnect
//!   lazily and complete;
//! * `IdempotencySet` semantics hold across reconnects — a
//!   non-idempotent write whose reply is lost surfaces
//!   [`BusError::ConnectionLost`] *without* a re-send, so the service
//!   dispatches it exactly once;
//! * a server past its in-flight cap refuses with the same
//!   `Overloaded` + retry-after taxonomy the executor uses.

use dais::soap::bus::BusError;
use dais::soap::retry::{IdempotencySet, RetryConfig, SleepFn};
use dais::soap::tcp::{TcpConfig, TcpServer, TcpServerConfig, TcpTransport};
use dais::soap::{
    Bus, CallError, Envelope, Fault, RetryPolicy, ServiceClient, SoapDispatcher, Transport,
};
use dais::xml::XmlElement;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

const ADDR: &str = "bus://churn";
const READ: &str = "urn:read";
const WRITE: &str = "urn:write";

/// A service counting how many times each action was really dispatched.
fn counting_bus() -> (Bus, Arc<AtomicU64>, Arc<AtomicU64>) {
    let bus = Bus::new();
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    let mut d = SoapDispatcher::new();
    let r = Arc::clone(&reads);
    d.register(READ, move |req: &Envelope| {
        r.fetch_add(1, Ordering::SeqCst);
        Ok(req.clone())
    });
    let w = Arc::clone(&writes);
    d.register(WRITE, move |req: &Envelope| {
        w.fetch_add(1, Ordering::SeqCst);
        Ok(req.clone())
    });
    bus.register(ADDR, Arc::new(d));
    (bus, reads, writes)
}

/// Single-connection pool, so the server's drop-every-Nth schedule maps
/// deterministically onto the request sequence.
fn serial_transport(server: &TcpServer) -> Arc<TcpTransport> {
    let transport = Arc::new(TcpTransport::new(TcpConfig { pool_size: 1, ..TcpConfig::default() }));
    transport.set_default_route(server.local_addr());
    transport
}

fn retry_client(bus: Bus, idempotent: IdempotencySet) -> ServiceClient {
    let no_sleep: SleepFn = Arc::new(|_| {});
    let policy = RetryPolicy::new(10)
        .base_delay(Duration::from_micros(1))
        .max_delay(Duration::from_millis(1))
        .deadline(Duration::from_secs(5))
        .jitter_seed(0xC0FF);
    ServiceClient::new(bus, ADDR)
        .with_retry(RetryConfig::new(policy, idempotent).with_sleep(no_sleep))
}

fn payload(n: u64) -> XmlElement {
    XmlElement::new_local("m").with_text(n.to_string())
}

#[test]
fn retrying_reads_survive_the_server_dropping_every_third_connection() {
    let (bus, reads, _) = counting_bus();
    let server = TcpServer::bind_with(
        &bus,
        "127.0.0.1:0",
        TcpServerConfig { drop_every: 3, ..TcpServerConfig::default() },
    )
    .unwrap();
    bus.set_transport(serial_transport(&server));
    let client = retry_client(bus.clone(), IdempotencySet::new([READ]));

    for n in 0..30u64 {
        let echoed = client.request(READ, payload(n)).unwrap_or_else(|e| {
            panic!("read {n} did not survive the churn: {e:?}");
        });
        assert_eq!(echoed.text(), n.to_string());
    }

    // The churn was real: replies were dropped, retries re-sent them on
    // fresh connections, and the pool reconnected at least once per
    // dropped connection.
    let retries = bus.stats().retries;
    assert!(retries >= 8, "expected roughly one retry per third response, saw {retries}");
    assert!(
        server.connections_accepted() > retries,
        "every dropped connection forces a reconnect ({} accepted, {retries} retries)",
        server.connections_accepted()
    );
    // Every successful read dispatched once, every dropped-reply attempt
    // dispatched once more before its retry.
    assert_eq!(reads.load(Ordering::SeqCst), 30 + retries);
}

#[test]
fn lost_replies_never_double_dispatch_non_idempotent_writes() {
    let (bus, _, writes) = counting_bus();
    let server = TcpServer::bind_with(
        &bus,
        "127.0.0.1:0",
        TcpServerConfig { drop_every: 3, ..TcpServerConfig::default() },
    )
    .unwrap();
    bus.set_transport(serial_transport(&server));
    // The idempotency set covers only reads: WRITE must never re-send.
    let client = retry_client(bus.clone(), IdempotencySet::new([READ]));

    let mut ok = 0u64;
    let mut lost = 0u64;
    for n in 0..20u64 {
        match client.request(WRITE, payload(n)) {
            Ok(echoed) => {
                assert_eq!(echoed.text(), n.to_string());
                ok += 1;
            }
            Err(CallError::Transport(BusError::ConnectionLost(_))) => lost += 1,
            Err(other) => panic!("write {n} failed with a non-churn error: {other:?}"),
        }
    }

    // Serial single-connection schedule: every third reply is dropped.
    assert_eq!((ok, lost), (14, 6), "the drop schedule drifted");
    assert_eq!(bus.stats().retries, 0, "a non-idempotent write was re-sent across a reconnect");
    // THE invariant: each write reached the service exactly once —
    // including the six whose acknowledgements were destroyed.
    assert_eq!(writes.load(Ordering::SeqCst), 20);
}

#[test]
fn pool_reconnects_lazily_after_total_connection_loss() {
    let (bus, _, _) = counting_bus();
    let server = TcpServer::bind_with(
        &bus,
        "127.0.0.1:0",
        // Drop EVERY connection after its first response.
        TcpServerConfig { drop_every: 1, ..TcpServerConfig::default() },
    )
    .unwrap();
    bus.set_transport(serial_transport(&server));
    let client = retry_client(bus.clone(), IdempotencySet::new([READ]));

    // Every reply is dropped: reads exhaust their attempt budget.
    let err = client.request(READ, payload(0)).unwrap_err();
    assert!(matches!(err, CallError::Transport(BusError::ConnectionLost(_))), "got {err:?}");
    assert_eq!(bus.stats().retries, 9, "budget of 10 attempts = 9 retries");
    assert!(server.connections_accepted() >= 10, "each attempt reconnected");
}

/// A handler that parks until released, reporting arrivals.
struct ParkedHandler {
    arrivals: Mutex<u64>,
    arrived: Condvar,
    open: Mutex<bool>,
    opened: Condvar,
}

impl ParkedHandler {
    fn new() -> Arc<ParkedHandler> {
        Arc::new(ParkedHandler {
            arrivals: Mutex::new(0),
            arrived: Condvar::new(),
            open: Mutex::new(false),
            opened: Condvar::new(),
        })
    }

    fn park(&self) {
        *self.arrivals.lock().unwrap() += 1;
        self.arrived.notify_all();
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.opened.wait(open).unwrap();
        }
    }

    fn wait_arrival(&self) {
        let mut n = self.arrivals.lock().unwrap();
        while *n == 0 {
            n = self.arrived.wait(n).unwrap();
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.opened.notify_all();
    }
}

#[test]
fn server_past_its_in_flight_cap_refuses_with_overloaded() {
    let bus = Bus::new();
    let parked = ParkedHandler::new();
    let handler = Arc::clone(&parked);
    let mut d = SoapDispatcher::new();
    d.register(READ, move |req: &Envelope| {
        handler.park();
        Ok(req.clone())
    });
    bus.register(ADDR, Arc::new(d));
    let hint = Duration::from_millis(9);
    let server = TcpServer::bind_with(
        &bus,
        "127.0.0.1:0",
        TcpServerConfig { max_in_flight: 1, retry_after: hint, ..TcpServerConfig::default() },
    )
    .unwrap();
    // Two connections, so the second request is not stuck behind the
    // first on a serial connection.
    let transport = Arc::new(TcpTransport::new(TcpConfig { pool_size: 2, ..TcpConfig::default() }));
    transport.set_default_route(server.local_addr());

    let occupier = {
        let transport = Arc::clone(&transport);
        std::thread::spawn(move || {
            let request = Envelope::with_body(payload(1)).to_bytes();
            let mut response = Vec::new();
            transport.call(ADDR, READ, &request, &mut response)
        })
    };
    parked.wait_arrival();

    // The cap is occupied: the concurrent request is refused with the
    // executor's own taxonomy, hint included.
    let request = Envelope::with_body(payload(2)).to_bytes();
    let mut response = Vec::new();
    match transport.call(ADDR, READ, &request, &mut response) {
        Err(BusError::Overloaded { endpoint, retry_after }) => {
            assert_eq!(endpoint, ADDR);
            assert_eq!(retry_after, hint);
        }
        other => panic!("expected Overloaded past the cap, got {other:?}"),
    }

    parked.release();
    assert!(occupier.join().unwrap().is_ok(), "the occupying request completes normally");

    // With the cap free again, the same request is served.
    let mut response = Vec::new();
    transport.call(ADDR, READ, &request, &mut response).unwrap();
    let env = Envelope::from_bytes(&response).unwrap();
    assert!(env.payload().and_then(Fault::from_xml).is_none());
}
