//! E7 (paper Figure 7 and §5): WSRF layering over core DAIS.
//!
//! The claims under test:
//! 1. WSRF is strictly additive — the core operations behave identically
//!    with and without the layer (the "upgrade path").
//! 2. Only WSRF deployments offer fine-grained property access.
//! 3. Only WSRF deployments offer soft-state lifetime; without it,
//!    resources live until explicit destroy.
//! 4. The abstract name stays in the message body in both deployments.

use dais::prelude::*;
use dais::soap::fault::DaisFault;
use dais::wsrf::LifetimeRegistry;
use dais::xml::ns;
use std::sync::Arc;

fn seeded() -> Database {
    let db = Database::new("w");
    db.execute_script(
        "CREATE TABLE t (a INTEGER PRIMARY KEY); INSERT INTO t VALUES (1), (2), (3);",
    )
    .unwrap();
    db
}

fn plain_service(bus: &Bus, address: &str) -> RelationalService {
    RelationalService::launch(bus, address, seeded(), Default::default())
}

fn wsrf_service(bus: &Bus, address: &str) -> (RelationalService, Arc<ManualClock>) {
    let clock = ManualClock::new();
    let svc = RelationalService::launch(
        bus,
        address,
        seeded(),
        RelationalServiceOptions {
            wsrf: Some(Arc::new(LifetimeRegistry::new(clock.clone()))),
            ..Default::default()
        },
    );
    (svc, clock)
}

#[test]
fn core_behaviour_is_identical_across_deployments() {
    let bus = Bus::new();
    let plain = plain_service(&bus, "bus://plain");
    let (wsrf, _) = wsrf_service(&bus, "bus://wsrf");
    let cp = SqlClient::builder().bus(bus.clone()).address("bus://plain").build();
    let cw = SqlClient::builder().bus(bus.clone()).address("bus://wsrf").build();

    // Same query, same result shape.
    let rp = cp.execute(&plain.db_resource, "SELECT * FROM t ORDER BY a", &[]).unwrap();
    let rw = cw.execute(&wsrf.db_resource, "SELECT * FROM t ORDER BY a", &[]).unwrap();
    assert_eq!(rp.rowset().unwrap().rows, rw.rowset().unwrap().rows);

    // Same property documents (modulo the abstract name / description).
    let pp = cp.core().get_property_document(&plain.db_resource).unwrap();
    let pw = cw.core().get_property_document(&wsrf.db_resource).unwrap();
    assert_eq!(pp.readable, pw.readable);
    assert_eq!(pp.generic_query_languages, pw.generic_query_languages);
    assert_eq!(pp.dataset_maps, pw.dataset_maps);
}

#[test]
fn fine_grained_properties_require_wsrf() {
    let bus = Bus::new();
    let plain = plain_service(&bus, "bus://plain");
    let (wsrf, _) = wsrf_service(&bus, "bus://wsrf");
    let cp = SqlClient::builder().bus(bus.clone()).address("bus://plain").build();
    let cw = SqlClient::builder().bus(bus.clone()).address("bus://wsrf").build();

    // Plain: the operation does not exist.
    assert!(cp.core().get_resource_property(&plain.db_resource, "wsdai:Readable").is_err());

    // WSRF: single-property retrieval, and its value agrees with the
    // whole document.
    let prop = cw.core().get_resource_property(&wsrf.db_resource, "wsdai:Readable").unwrap();
    let whole = cw.core().get_property_document_xml(&wsrf.db_resource).unwrap();
    assert_eq!(prop[0].text(), whole.child_text(ns::WSDAI, "Readable").unwrap());

    // The single property is much smaller on the wire.
    let prop_bytes = dais::xml::to_string(&prop[0]).len();
    let whole_bytes = dais::xml::to_string(&whole).len();
    assert!(prop_bytes * 5 < whole_bytes, "{prop_bytes} vs {whole_bytes}");

    // XPath queries over the property document.
    let result = cw
        .core()
        .query_resource_properties(&wsrf.db_resource, "//wsdai:DatasetMap/wsdai:DatasetFormatURI")
        .unwrap();
    assert_eq!(result.elements().count(), 1);
}

#[test]
fn soft_state_requires_wsrf() {
    let bus = Bus::new();
    let plain = plain_service(&bus, "bus://plain");
    let cp = SqlClient::builder().bus(bus.clone()).address("bus://plain").build();
    let epr = cp.execute_factory(&plain.db_resource, "SELECT 1", &[], None, None).unwrap();
    let derived = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    // No lifetime port on the plain service.
    assert!(cp.core().set_termination_time(&derived, Some(100)).is_err());
    // Explicit destroy is the only lifecycle mechanism, and it works.
    cp.core().destroy(&derived).unwrap();
}

#[test]
fn soft_state_expiry_and_renewal() {
    let bus = Bus::new();
    let (wsrf, clock) = wsrf_service(&bus, "bus://wsrf");
    let c = SqlClient::builder().bus(bus.clone()).address("bus://wsrf").build();

    let epr = c.execute_factory(&wsrf.db_resource, "SELECT * FROM t", &[], None, None).unwrap();
    let derived = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();

    // Lease, renew, lapse.
    assert_eq!(c.core().set_termination_time(&derived, Some(1_000)).unwrap(), Some(1_000));
    clock.advance(900);
    c.get_sql_rowset(&derived, 1).unwrap();
    c.core().set_termination_time(&derived, Some(1_000)).unwrap();
    clock.advance(900);
    c.get_sql_rowset(&derived, 1).unwrap(); // renewed, still alive
    clock.advance(200);
    let err = c.get_sql_rowset(&derived, 1).unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::DataResourceUnavailable));

    // Clearing the termination time makes a resource permanent.
    let epr = c.execute_factory(&wsrf.db_resource, "SELECT 1", &[], None, None).unwrap();
    let forever = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    c.core().set_termination_time(&forever, Some(10)).unwrap();
    assert_eq!(c.core().set_termination_time(&forever, None).unwrap(), None);
    clock.advance(1_000_000);
    c.get_sql_rowset(&forever, 1).unwrap();
}

#[test]
fn sweeper_reaps_in_bulk() {
    let bus = Bus::new();
    let (wsrf, clock) = wsrf_service(&bus, "bus://wsrf");
    let c = SqlClient::builder().bus(bus.clone()).address("bus://wsrf").build();

    let mut names = Vec::new();
    for i in 0..5 {
        let epr = c.execute_factory(&wsrf.db_resource, "SELECT 1", &[], None, None).unwrap();
        let name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
        c.core().set_termination_time(&name, Some(100 * (i + 1))).unwrap();
        names.push(name);
    }
    assert_eq!(wsrf.ctx.registry.len(), 7); // db + monitoring + 5 derived
    clock.advance(250);
    let mut swept = wsrf.ctx.sweep_expired();
    swept.sort();
    assert_eq!(swept.len(), 2); // the 100ms and 200ms leases
    assert_eq!(wsrf.ctx.registry.len(), 5);
    clock.advance(10_000);
    assert_eq!(wsrf.ctx.sweep_expired().len(), 3);
    // The database and monitoring resources never had termination
    // times: still there.
    assert_eq!(wsrf.ctx.registry.len(), 2);
}

#[test]
fn wsrf_destroy_and_core_destroy_interchangeable() {
    let bus = Bus::new();
    let (wsrf, _) = wsrf_service(&bus, "bus://wsrf");
    let c = SqlClient::builder().bus(bus.clone()).address("bus://wsrf").build();

    let epr = c.execute_factory(&wsrf.db_resource, "SELECT 1", &[], None, None).unwrap();
    let a = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    c.core().wsrf_destroy(&a).unwrap();
    assert!(c.get_sql_rowset(&a, 1).is_err());

    let epr = c.execute_factory(&wsrf.db_resource, "SELECT 1", &[], None, None).unwrap();
    let b = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    c.core().destroy(&b).unwrap();
    assert!(c.get_sql_rowset(&b, 1).is_err());
}
