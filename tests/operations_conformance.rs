//! E6 (paper Figure 6): the operation inventory.
//!
//! Every operation named in Figure 6 — the WS-DAI core interfaces and the
//! WS-DAIR extensions — plus the WS-DAIX inventory must be registered and
//! dispatchable on an assembled data service. Also checks the message
//! framing rules of §3/§5 (abstract name in every request body).

use dais::core::messages as core_messages;
use dais::prelude::*;
use dais::soap::fault::DaisFault;
use dais::xml::{ns, XmlElement};

fn relational_bus() -> (Bus, RelationalService) {
    let bus = Bus::new();
    let db = Database::new("conf");
    db.execute_script("CREATE TABLE t (a INTEGER PRIMARY KEY); INSERT INTO t VALUES (1), (2);")
        .unwrap();
    let svc = RelationalService::launch(&bus, "bus://conf", db, Default::default());
    (bus, svc)
}

/// Figure 6, CoreDataAccess + CoreResourceList: all five core operations.
#[test]
fn core_operations_inventory() {
    let (bus, svc) = relational_bus();
    let client = SqlClient::builder().bus(bus).address("bus://conf").build();

    // GetDataResourcePropertyDocument
    client.core().get_property_document(&svc.db_resource).unwrap();
    // GenericQuery
    client
        .core()
        .generic_query(&svc.db_resource, dais::dair::resources::SQL_LANGUAGE_URI, "SELECT 1")
        .unwrap();
    // GetResourceList
    assert!(!client.core().get_resource_list().unwrap().is_empty());
    // Resolve
    let epr = client.core().resolve(&svc.db_resource).unwrap();
    assert_eq!(epr.address, "bus://conf");
    // DestroyDataResource
    let derived = client.execute_factory(&svc.db_resource, "SELECT 1", &[], None, None).unwrap();
    let derived_name = AbstractName::new(derived.resource_abstract_name().unwrap()).unwrap();
    client.core().destroy(&derived_name).unwrap();
}

/// Figure 6, the WS-DAIR interfaces: every action registered.
#[test]
fn dair_action_inventory_registered() {
    let (bus, _svc) = relational_bus();
    // Probe each action with an intentionally empty body: a registered
    // action must answer with a *DAIS-level* fault (bad request), not the
    // dispatcher's "unknown SOAP action" client fault.
    for action in dais::dair::actions::ALL {
        let out = bus
            .call(
                "bus://conf",
                action,
                &dais::soap::Envelope::with_body(XmlElement::new_local("probe")),
            )
            .unwrap();
        let fault = out.expect_err("probe with empty body should fault");
        assert!(
            !fault.reason.contains("unknown SOAP action"),
            "action {action} is not registered: {fault}"
        );
    }
}

/// The complete WS-DAIX inventory on an XML service.
#[test]
fn daix_action_inventory_registered() {
    let bus = Bus::new();
    XmlService::launch(&bus, "bus://xconf", XmlDatabase::new("x"), Default::default());
    for action in dais::daix::actions::ALL {
        let out = bus
            .call(
                "bus://xconf",
                action,
                &dais::soap::Envelope::with_body(XmlElement::new_local("probe")),
            )
            .unwrap();
        let fault = out.expect_err("probe with empty body should fault");
        assert!(
            !fault.reason.contains("unknown SOAP action"),
            "action {action} is not registered: {fault}"
        );
    }
}

/// §3/§5: the abstract name is mandatory in the body; a request without
/// it faults with InvalidResourceName even when addressed via EPR
/// reference parameters.
#[test]
fn abstract_name_required_in_body() {
    let (bus, svc) = relational_bus();
    // Build a property-document request with NO name in the body...
    let body = XmlElement::new(ns::WSDAI, "wsdai", "GetDataResourcePropertyDocumentRequest");
    // ...sent through an EPR that names the resource in reference params.
    let epr = Epr::for_resource("bus://conf", svc.db_resource.as_str());
    let client = dais::soap::ServiceClient::from_epr(bus, epr);
    let err = client
        .request(dais::core::messages::actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT, body)
        .unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::InvalidResourceName));
}

/// E2 (Figure 2): the WS-DAIR direct-access message embeds the WS-DAI
/// template fields — abstract name + format URI — and the response embeds
/// the SQL communication area.
#[test]
fn direct_access_message_pattern_conformance() {
    let (bus, svc) = relational_bus();
    let request = dais::dair::messages::sql_execute_request(
        &svc.db_resource,
        ns::ROWSET,
        "SELECT * FROM t",
        &[],
    );
    // WS-DAI core fields present in the realisation's request:
    assert!(request.child(ns::WSDAI, "DataResourceAbstractName").is_some());
    assert!(request.child(ns::WSDAI, "DataFormatURI").is_some());
    // The SQL extension field:
    assert!(request.child(ns::WSDAIR, "SQLExpression").is_some());

    let response = bus
        .call(
            "bus://conf",
            dais::dair::actions::SQL_EXECUTE,
            &dais::soap::Envelope::with_body(request),
        )
        .unwrap()
        .unwrap();
    let payload = response.payload().unwrap();
    assert!(payload.name.is(ns::WSDAIR, "SQLExecuteResponse"));
    let sql_response = payload.child(ns::WSDAIR, "SQLResponse").unwrap();
    assert!(sql_response.child(ns::WSDAIR, "SQLRowset").is_some());
    assert!(
        sql_response.child(ns::WSDAIR, "SQLCommunicationArea").is_some(),
        "Figure 2: the SQL realisation includes the communication area"
    );
}

/// E3 (Figure 3): the factory response carries an EPR whose reference
/// parameters hold the new resource's abstract name, and the derived
/// resource honours the configuration document.
#[test]
fn indirect_access_message_pattern_conformance() {
    let (bus, svc) = relational_bus();
    let client = SqlClient::builder().bus(bus).address("bus://conf").build();
    let config = ConfigurationDocument {
        description: Some("my derived view".into()),
        sensitivity: Some(Sensitivity::Sensitive),
        ..Default::default()
    };
    let epr = client
        .execute_factory(
            &svc.db_resource,
            "SELECT * FROM t",
            &[],
            Some("wsdair:SQLResponseAccessPT"),
            Some(&config),
        )
        .unwrap();
    // Reference parameters carry the abstract name (§3).
    let name = epr.resource_abstract_name().expect("abstract name in reference parameters");
    let name = AbstractName::new(name).unwrap();
    // The configuration document was applied to the derived resource.
    let props = client.core().get_property_document(&name).unwrap();
    assert_eq!(props.description, "my derived view");
    assert_eq!(props.sensitivity, Sensitivity::Sensitive);
    assert_eq!(props.parent.as_ref(), Some(&svc.db_resource));
    assert_eq!(props.management, dais::core::properties::ResourceManagementKind::ServiceManaged);
}

/// §4.3: destroy semantics differ by management class — destroying the
/// externally managed database resource severs the relationship but the
/// data survives (observable by re-wrapping the same database).
#[test]
fn destroy_semantics_by_management_class() {
    let bus = Bus::new();
    let db = Database::new("persist");
    db.execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (42);").unwrap();
    let svc = RelationalService::launch(&bus, "bus://persist", db.clone(), Default::default());
    let client = SqlClient::builder().bus(bus.clone()).address("bus://persist").build();

    client.core().destroy(&svc.db_resource).unwrap();
    // The service no longer knows the resource...
    assert!(client.execute(&svc.db_resource, "SELECT * FROM t", &[]).is_err());
    // ...but the externally managed data is intact.
    let again = RelationalService::launch(&bus, "bus://persist2", db, Default::default());
    let client2 = SqlClient::builder().bus(bus).address("bus://persist2").build();
    let data = client2.execute(&again.db_resource, "SELECT a FROM t", &[]).unwrap();
    assert_eq!(data.rowset().unwrap().rows[0][0], Value::Int(42));
}

/// §4.2: a requested dataset format not advertised in the DatasetMap
/// faults with InvalidDatasetFormat.
#[test]
fn dataset_map_governs_return_formats() {
    let (bus, svc) = relational_bus();
    let client = SqlClient::builder().bus(bus).address("bus://conf").build();
    let err = client
        .execute_with_format(&svc.db_resource, "urn:example:csv", "SELECT 1", &[])
        .unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::InvalidDatasetFormat));
    // The advertised WebRowSet format works.
    client.execute_with_format(&svc.db_resource, ns::ROWSET, "SELECT 1", &[]).unwrap();
}

/// Property documents parse into the typed model and back identically
/// whether observed as XML or through the typed client (field-set
/// conformance for Figure 4).
#[test]
fn property_document_field_sets() {
    let (bus, svc) = relational_bus();
    let client = SqlClient::builder().bus(bus).address("bus://conf").build();
    let xml_doc = client.core().get_property_document_xml(&svc.db_resource).unwrap();
    for p in dais::dair::properties::CORE_PROPERTIES {
        assert!(xml_doc.child(ns::WSDAI, p).is_some(), "missing core property {p}");
    }
    for p in dais::dair::properties::SQL_ACCESS_PROPERTIES {
        assert!(xml_doc.child(ns::WSDAIR, p).is_some(), "missing WS-DAIR property {p}");
    }
    // Typed parse agrees with the raw document.
    let typed = client.core().get_property_document(&svc.db_resource).unwrap();
    assert_eq!(typed.abstract_name, svc.db_resource);
    assert_eq!(
        typed.to_xml().child_text(ns::WSDAI, "Writeable"),
        xml_doc.child_text(ns::WSDAI, "Writeable")
    );
    let probe = core_messages::request("x", &svc.db_resource);
    assert_eq!(core_messages::extract_resource_name(&probe).unwrap(), svc.db_resource);
}
