//! The DAIS fault taxonomy, end to end: every fault class the WS-DAI
//! family defines must be raisable through the wire, correctly classified
//! (client vs server), and carry its DAIS name in the detail section so
//! consumers can dispatch on it.

use dais::prelude::*;
use dais::soap::fault::{DaisFault, FaultCode};
use dais::soap::Envelope;
use dais::xml::{ns, XmlElement};

fn setup() -> (Bus, SqlClient, AbstractName) {
    let bus = Bus::new();
    let db = Database::new("faults");
    db.execute_script("CREATE TABLE t (a INTEGER PRIMARY KEY); INSERT INTO t VALUES (1);").unwrap();
    let svc = RelationalService::launch(&bus, "bus://faults", db, Default::default());
    (bus.clone(), SqlClient::builder().bus(bus).address("bus://faults").build(), svc.db_resource)
}

#[test]
fn invalid_resource_name_fault() {
    let (_, client, _) = setup();
    let ghost = AbstractName::new("urn:dais:faults:db:999").unwrap();
    let err = client.execute(&ghost, "SELECT 1", &[]).unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::InvalidResourceName));
    match err {
        dais::soap::client::CallError::Fault(f) => assert_eq!(f.code, FaultCode::Client),
        other => panic!("{other:?}"),
    }
}

#[test]
fn invalid_expression_fault_carries_sqlstate() {
    let (_, client, db) = setup();
    for (sql, state) in [
        ("SELEKT", "42601"),
        ("SELECT * FROM ghost", "42P01"),
        ("SELECT ghost FROM t", "42703"),
        ("SELECT 1 / 0", "22012"),
        ("SELECT a, COUNT(*) FROM t", "42803"),
    ] {
        let err = client.execute(&db, sql, &[]).unwrap_err();
        assert_eq!(err.dais_fault(), Some(DaisFault::InvalidExpression), "{sql}");
        match err {
            dais::soap::client::CallError::Fault(f) => {
                assert!(f.reason.contains(state), "{sql}: {}", f.reason)
            }
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn invalid_language_fault() {
    let (_, client, db) = setup();
    let err = client.core().generic_query(&db, "urn:made-up", "whatever").unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::InvalidLanguage));
}

#[test]
fn invalid_dataset_format_fault() {
    let (_, client, db) = setup();
    let err = client.execute_with_format(&db, "urn:csv", "SELECT 1", &[]).unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::InvalidDatasetFormat));
}

#[test]
fn invalid_port_type_fault() {
    let (_, client, db) = setup();
    let err =
        client.execute_factory(&db, "SELECT 1", &[], Some("wsdair:NoSuchPT"), None).unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::InvalidPortType));
}

#[test]
fn invalid_configuration_document_fault() {
    let (bus, _, db) = setup();
    // Hand-build a factory request with a malformed configuration value.
    let mut body = dais::core::messages::request("SQLExecuteFactoryRequest", &db);
    body.push(XmlElement::new(ns::WSDAIR, "wsdair", "SQLExpression").with_text("SELECT 1"));
    body.push(
        XmlElement::new(ns::WSDAI, "wsdai", "ConfigurationDocument").with_child(
            XmlElement::new(ns::WSDAI, "wsdai", "Sensitivity").with_text("Clairvoyant"),
        ),
    );
    let out = bus
        .call("bus://faults", dais::dair::actions::SQL_EXECUTE_FACTORY, &Envelope::with_body(body))
        .unwrap();
    let fault = out.unwrap_err();
    assert!(fault.is(DaisFault::InvalidConfigurationDocument));
}

#[test]
fn fault_envelopes_parse_like_any_message() {
    // A fault is itself a SOAP message: serialise one, re-parse it, and
    // recover the classification — the consumer-side dispatch path.
    let fault = dais::soap::Fault::dais(DaisFault::DataResourceUnavailable, "expired");
    let env = Envelope::with_body(fault.to_xml());
    let rt = Envelope::from_bytes(&env.to_bytes()).unwrap();
    let parsed = dais::soap::Fault::from_xml(rt.payload().unwrap()).unwrap();
    assert_eq!(parsed, fault);
    assert_eq!(parsed.code, FaultCode::Server);
}

#[test]
fn constraint_violations_do_not_poison_the_service() {
    // A burst of failing statements leaves the service fully usable —
    // faults are responses, not crashes.
    let (_, client, db) = setup();
    for _ in 0..20 {
        let _ = client.execute(&db, "INSERT INTO t VALUES (1)", &[]).unwrap_err(); // PK dup
        let _ = client.execute(&db, "SELEKT", &[]).unwrap_err();
    }
    let data = client.execute(&db, "SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(data.rowset().unwrap().rows[0][0], Value::Int(1));
}

#[test]
fn unknown_action_is_plain_client_fault() {
    let (bus, _, _) = setup();
    let out = bus
        .call(
            "bus://faults",
            "urn:completely-unknown-action",
            &Envelope::with_body(XmlElement::new_local("x")),
        )
        .unwrap();
    let fault = out.unwrap_err();
    assert_eq!(fault.code, FaultCode::Client);
    assert!(fault.dais.is_none(), "unknown actions are not DAIS-classified");
}

#[test]
fn transport_vs_application_errors_are_distinct() {
    let (bus, client, db) = setup();
    // Application-level: resource fault through a live endpoint.
    let err = client.execute(&AbstractName::new("urn:x:y").unwrap(), "SELECT 1", &[]).unwrap_err();
    assert!(matches!(err, dais::soap::client::CallError::Fault(_)));
    // Transport-level: no endpoint at all.
    let dead = SqlClient::builder().bus(bus).address("bus://nowhere").build();
    let err = dead.execute(&db, "SELECT 1", &[]).unwrap_err();
    assert!(matches!(err, dais::soap::client::CallError::Transport(_)));
}
