//! Federation conformance: a consumer must not be able to tell a
//! federated resource from a plain one.
//!
//! The same workload runs over three topologies — one shard inline (the
//! oracle), four shards in-process, and four shards behind the TCP
//! transport — and every reply must agree: ordered results byte-for-row
//! identical, unordered results identical as multisets, the indirect
//! factory→rowset→GetTuples path paging the same windows, and the empty
//! result carrying the same `02000` communication area a plain service
//! sends. A second group injects seeded faults: losing one replica of a
//! shard must be invisible (failover to the sibling, complete results),
//! and losing *every* replica of a shard must surface a well-formed
//! `ServiceBusyFault` — never a torn rowset.

use std::sync::Arc;

use dais::core::{AbstractName, DaisClient, ResourceRef};
use dais::dair::{SqlClient, SqlResponseData};
use dais::daix::XmlClient;
use dais::federation::{
    shard_address, FailoverPolicy, FleetOptions, RelationalFleet, ShardScheme, XmlFleet,
};
use dais::soap::fault::DaisFault;
use dais::soap::retry::SleepFn;
use dais::soap::tcp::{TcpServer, TcpTransport};
use dais::soap::{Bus, CallError, FaultInjector, FaultPolicy, RetryPolicy};
use dais::sql::{Rowset, Value};

const SCHEMA: &str = "CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR)";
const ROWS: i64 = 40;

/// The topologies under test. `Inline1` is the oracle: one shard, one
/// replica, indistinguishable from wrapping a single plain service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Topology {
    Inline1,
    InProc4,
    Tcp4,
}

const ALL: [Topology; 3] = [Topology::Inline1, Topology::InProc4, Topology::Tcp4];

fn options(topology: Topology) -> FleetOptions {
    let (shards, replicas) = match topology {
        Topology::Inline1 => (1, 1),
        Topology::InProc4 | Topology::Tcp4 => (4, 2),
    };
    // Tests never wait out a real backoff: pacing is covered by the
    // scatter unit tests.
    let no_sleep: SleepFn = Arc::new(|_| {});
    FleetOptions {
        shards,
        replicas,
        failover: FailoverPolicy::new(RetryPolicy::new(3)).with_sleep(no_sleep),
        ..FleetOptions::default()
    }
}

/// Launch a fleet over `topology` and ingest the fixed seed rows.
///
/// The returned bus is the *consumer's* bus. For `Tcp4` it is a second
/// bus whose transport routes to the fleet's TCP server — the split
/// deployment, where the consumer is another process. (It must be: the
/// fleet bus's own transport carries the federation's nested shard
/// calls, and a consumer sharing that pooled connection would be read
/// by the very connection thread its request is blocking.) The server
/// (TCP only) must outlive the queries.
fn sql_fleet(topology: Topology) -> (Bus, Option<TcpServer>, RelationalFleet) {
    let fleet_bus = Bus::new();
    let (consumer_bus, server) = match topology {
        Topology::Tcp4 => {
            let server = TcpServer::bind(&fleet_bus, "127.0.0.1:0").expect("bind loopback server");
            let fleet_transport = TcpTransport::default();
            fleet_transport.set_default_route(server.local_addr());
            fleet_bus.set_transport(Arc::new(fleet_transport));
            let consumer_bus = Bus::new();
            let consumer_transport = TcpTransport::default();
            consumer_transport.set_default_route(server.local_addr());
            consumer_bus.set_transport(Arc::new(consumer_transport));
            (consumer_bus, Some(server))
        }
        _ => (fleet_bus.clone(), None),
    };
    let fleet = RelationalFleet::launch(
        &fleet_bus,
        "fedconf",
        SCHEMA,
        ShardScheme::Hash { column: "k".into() },
        options(topology),
    );
    for k in 0..ROWS {
        fleet
            .ingest(
                &Value::Int(k),
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(k), Value::Str(format!("row{k:02}"))],
            )
            .expect("seed row must ingest");
    }
    (consumer_bus, server, fleet)
}

fn sql_client(bus: &Bus, fleet: &RelationalFleet) -> SqlClient {
    SqlClient::builder().bus(bus.clone()).resource(fleet.resource()).build()
}

/// One canonical line per row; display rendering is the same one the
/// WebRowSet encoder uses, so equal lines mean equal wire rows.
fn canon(rowset: &Rowset) -> Vec<String> {
    rowset
        .rows
        .iter()
        .map(|row| row.iter().map(Value::to_display_string).collect::<Vec<_>>().join("\u{1f}"))
        .collect()
}

fn execute(client: &SqlClient, resource: &ResourceRef, sql: &str) -> SqlResponseData {
    client.execute(resource.resource(), sql, &[]).expect("query must succeed")
}

#[test]
fn ordered_results_identical_across_topologies() {
    let mut per_topology = Vec::new();
    for topology in ALL {
        let (bus, _server, fleet) = sql_fleet(topology);
        let client = sql_client(&bus, &fleet);
        let data = execute(&client, fleet.resource(), "SELECT k, v FROM t ORDER BY k");
        let rowset = data.rowset().expect("a SELECT returns a rowset");
        assert_eq!(rowset.row_count() as i64, ROWS, "{topology:?} dropped rows");
        per_topology.push((topology, canon(rowset)));
    }
    let (_, oracle) = &per_topology[0];
    assert_eq!(oracle[0], format!("0\u{1f}row00"));
    for (topology, rows) in &per_topology[1..] {
        assert_eq!(rows, oracle, "{topology:?} disagrees with the single-shard oracle");
    }
}

#[test]
fn unordered_results_identical_as_multisets() {
    let mut per_topology = Vec::new();
    for topology in ALL {
        let (bus, _server, fleet) = sql_fleet(topology);
        let client = sql_client(&bus, &fleet);
        let data = execute(&client, fleet.resource(), "SELECT v FROM t");
        let mut rows = canon(data.rowset().expect("a SELECT returns a rowset"));
        rows.sort_unstable();
        per_topology.push((topology, rows));
    }
    let (_, oracle) = &per_topology[0];
    for (topology, rows) in &per_topology[1..] {
        assert_eq!(rows, oracle, "{topology:?} disagrees as a multiset");
    }
}

#[test]
fn empty_result_reports_the_plain_communication_area() {
    for topology in ALL {
        let (bus, _server, fleet) = sql_fleet(topology);
        let client = sql_client(&bus, &fleet);
        let data = execute(&client, fleet.resource(), "SELECT k FROM t WHERE k < 0 ORDER BY k");
        let rowset = data.rowset().expect("an empty SELECT still returns a rowset");
        assert_eq!(rowset.row_count(), 0);
        assert_eq!(
            data.communication_area.sqlstate, "02000",
            "{topology:?} must report no-data exactly like a plain service"
        );
    }
}

#[test]
fn indirect_access_pages_identically() {
    let mut per_topology = Vec::new();
    for topology in ALL {
        let (bus, _server, fleet) = sql_fleet(topology);
        let client = sql_client(&bus, &fleet);
        let response_epr = client
            .execute_factory(
                fleet.resource().resource(),
                "SELECT k, v FROM t ORDER BY k",
                &[],
                None,
                None,
            )
            .expect("factory must mint a response resource");
        let response = AbstractName::new(response_epr.resource_abstract_name().unwrap()).unwrap();
        let rowset_epr = client.rowset_factory(&response, Some(25), None).expect("rowset factory");
        let rowset = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();

        let mut rows = Vec::new();
        for (start, count, expect) in [(0, 10, 10), (10, 10, 10), (20, 10, 5)] {
            let page = client.get_tuples(&rowset, start, count).expect("page must stream");
            assert_eq!(page.row_count(), expect, "{topology:?} page [{start}, +{count})");
            rows.extend(canon(&page));
        }
        per_topology.push((topology, rows));
    }
    let (_, oracle) = &per_topology[0];
    assert_eq!(oracle.len(), 25, "the Count cap bounds the rowset");
    for (topology, rows) in &per_topology[1..] {
        assert_eq!(rows, oracle, "{topology:?} pages disagree with the oracle");
    }
}

/// The statement's own `LIMIT`/`OFFSET` window applies to the *merged*
/// result, exactly once — not once per shard, which would return up to
/// `n × shards` rows and skip `k` rows per shard.
#[test]
fn limit_offset_window_applies_globally_across_topologies() {
    for topology in ALL {
        let (bus, _server, fleet) = sql_fleet(topology);
        let client = sql_client(&bus, &fleet);
        let data =
            execute(&client, fleet.resource(), "SELECT k, v FROM t ORDER BY k LIMIT 7 OFFSET 5");
        let expect: Vec<String> = (5..12).map(|k| format!("{k}\u{1f}row{k:02}")).collect();
        assert_eq!(canon(data.rowset().unwrap()), expect, "{topology:?} window diverged");

        let data = execute(&client, fleet.resource(), "SELECT k FROM t ORDER BY k DESC LIMIT 3");
        assert_eq!(
            canon(data.rowset().unwrap()),
            ["39", "38", "37"],
            "{topology:?} LIMIT must cap the merged result, not each shard"
        );
    }
}

/// The indirect path honours the statement window too: the derived
/// response remembers `LIMIT`/`OFFSET`, the rowset caps at the tighter
/// of the factory `Count` and the statement `LIMIT`, and `GetTuples`
/// pages within the shifted window.
#[test]
fn windowed_factory_rowsets_page_identically() {
    let mut per_topology = Vec::new();
    for topology in ALL {
        let (bus, _server, fleet) = sql_fleet(topology);
        let client = sql_client(&bus, &fleet);
        let response_epr = client
            .execute_factory(
                fleet.resource().resource(),
                "SELECT k, v FROM t ORDER BY k LIMIT 20 OFFSET 4",
                &[],
                None,
                None,
            )
            .expect("factory must admit a windowed query");
        let response = AbstractName::new(response_epr.resource_abstract_name().unwrap()).unwrap();
        let rowset_epr = client.rowset_factory(&response, Some(10), None).expect("rowset factory");
        let rowset = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();

        let mut rows = Vec::new();
        for (start, count, expect) in [(0, 6, 6), (6, 10, 4)] {
            let page = client.get_tuples(&rowset, start, count).expect("page must stream");
            assert_eq!(page.row_count(), expect, "{topology:?} page [{start}, +{count})");
            rows.extend(canon(&page));
        }
        per_topology.push((topology, rows));
    }
    let (_, oracle) = &per_topology[0];
    let expect: Vec<String> = (4..14).map(|k| format!("{k}\u{1f}row{k:02}")).collect();
    assert_eq!(oracle, &expect, "Count ∧ LIMIT cap the rowset after the OFFSET");
    for (topology, rows) in &per_topology[1..] {
        assert_eq!(rows, oracle, "{topology:?} windowed pages disagree with the oracle");
    }
}

/// A query whose global answer is not the merge of per-shard answers —
/// aggregates, DISTINCT, GROUP BY, UNION, an ORDER BY the output cannot
/// resolve — must be *refused* with an `InvalidExpressionFault`, never
/// silently answered wrong (`COUNT(*)` would otherwise return one row
/// per shard).
#[test]
fn non_distributable_queries_are_refused_never_answered_wrong() {
    let (bus, _server, fleet) = sql_fleet(Topology::InProc4);
    let client = sql_client(&bus, &fleet);
    let shapes = [
        "SELECT COUNT(*) FROM t",
        "SELECT MAX(k) FROM t",
        "SELECT DISTINCT v FROM t",
        "SELECT v FROM t GROUP BY v",
        "SELECT k FROM t UNION SELECT k FROM t",
        "SELECT k FROM t ORDER BY k + 1",
    ];
    for sql in shapes {
        let err = client
            .execute(fleet.resource().resource(), sql, &[])
            .expect_err("a non-distributable shape must not scatter");
        match err {
            CallError::Fault(f) => {
                assert_eq!(f.dais, Some(DaisFault::InvalidExpression), "{sql}: got {f:?}")
            }
            other => panic!("{sql}: expected an InvalidExpressionFault, got {other:?}"),
        }
    }
    let err = client
        .execute_factory(fleet.resource().resource(), "SELECT COUNT(*) FROM t", &[], None, None)
        .expect_err("the factory path admits the same shapes as direct access");
    match err {
        CallError::Fault(f) => assert_eq!(f.dais, Some(DaisFault::InvalidExpression), "got {f:?}"),
        other => panic!("expected an InvalidExpressionFault, got {other:?}"),
    }
}

/// `ORDER BY a, b` with first-key duplicates spanning shards: ties must
/// fall to the remaining sort terms — exactly as a single node sorts —
/// not to the shard index.
#[test]
fn secondary_sort_keys_order_like_a_single_node() {
    let mut per_topology = Vec::new();
    for topology in ALL {
        let (bus, _server, fleet) = sql_fleet(topology);
        // Sixteen extra rows in three duplicate groups, spread over the
        // shards by the k-hash.
        for k in 100..116 {
            fleet
                .ingest(
                    &Value::Int(k),
                    "INSERT INTO t VALUES (?, ?)",
                    &[Value::Int(k), Value::Str(format!("dup{}", k % 3))],
                )
                .expect("duplicate-group row must ingest");
        }
        let client = sql_client(&bus, &fleet);
        let data = execute(
            &client,
            fleet.resource(),
            "SELECT k, v FROM t WHERE k >= 100 ORDER BY v, k DESC",
        );
        per_topology.push((topology, canon(data.rowset().unwrap())));
    }
    let (_, oracle) = &per_topology[0];
    // Group dup0 leads (v ascending) with its largest k first (k DESC).
    assert_eq!(oracle[0], format!("114\u{1f}dup0"));
    assert_eq!(oracle.len(), 16);
    for (topology, rows) in &per_topology[1..] {
        assert_eq!(rows, oracle, "{topology:?} breaks first-key ties away from the oracle order");
    }
}

/// A transient failure during the factory fan-out must not permanently
/// cost the derived resource a replica's redundancy: the fan-out
/// retries the blip, so even when the shard's *other* replica later
/// dies outright, the derived rowset still streams complete.
#[test]
fn factory_fanout_retries_transient_replica_failures() {
    use dais::soap::interceptor::{CallInfo, Intercept, Interceptor};

    /// Drops the next `remaining` requests to one endpoint, then passes.
    struct FailFirst {
        endpoint: String,
        remaining: std::sync::Mutex<u32>,
    }

    impl Interceptor for FailFirst {
        fn on_request(&self, call: &CallInfo<'_>, _bytes: &[u8]) -> Intercept {
            if call.to == self.endpoint {
                let mut remaining = self.remaining.lock().unwrap();
                if *remaining > 0 {
                    *remaining -= 1;
                    return Intercept::Abort(dais::soap::BusError::Timeout(call.to.to_string()));
                }
            }
            Intercept::Pass
        }
    }

    let (bus, _server, fleet) = sql_fleet(Topology::InProc4);
    let client = sql_client(&bus, &fleet);
    // Replica 0 of shard 1 drops exactly one request: the factory
    // fan-out's first attempt at it.
    bus.add_interceptor(Arc::new(FailFirst {
        endpoint: shard_address("fedconf", 1, 0),
        remaining: std::sync::Mutex::new(1),
    }));
    let response_epr = client
        .execute_factory(
            fleet.resource().resource(),
            "SELECT k, v FROM t ORDER BY k",
            &[],
            None,
            None,
        )
        .expect("factory must ride out a transient replica blip");
    let response = AbstractName::new(response_epr.resource_abstract_name().unwrap()).unwrap();
    let rowset_epr = client.rowset_factory(&response, None, None).expect("rowset factory");
    let rowset = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();

    // Now the sibling replica dies for good. Had the fan-out recorded a
    // permanent miss for replica 0, shard 1 would have no copy left and
    // the page would fault; the retried fan-out kept both.
    let injector = FaultInjector::new(7);
    injector.set_policy(shard_address("fedconf", 1, 1), FaultPolicy::default().drop(1.0));
    bus.add_interceptor(Arc::new(injector));
    let page = client
        .get_tuples(&rowset, 0, ROWS as usize)
        .expect("the retried replica must hold the derived rowset");
    assert_eq!(page.row_count() as i64, ROWS, "the surviving replica streams the full window");
}

#[test]
fn property_document_aggregates_the_fleet() {
    let (bus, _server, fleet) = sql_fleet(Topology::InProc4);
    let client = sql_client(&bus, &fleet);
    let doc =
        client.get_sql_property_document(fleet.resource().resource()).expect("property document");
    let fleet_el = doc
        .child(dais::core::monitoring::MON_NS, "Fleet")
        .expect("the logical property document must carry the fleet extension");
    assert_eq!(fleet_el.attribute("shards"), Some("4"));
    let members: Vec<_> =
        fleet_el.children_named(dais::core::monitoring::MON_NS, "Member").collect();
    assert_eq!(members.len(), 8, "one member per shard × replica");
    assert!(
        members.iter().all(|m| m.attribute("endpoint").is_some()
            && m.attribute("healthy").is_some()
            && m.attribute("messages").is_some()),
        "each member advertises endpoint, health and traffic"
    );
}

#[test]
fn logical_resource_refuses_writes_like_a_readonly_service() {
    let (bus, _server, fleet) = sql_fleet(Topology::InProc4);
    let client = sql_client(&bus, &fleet);
    let err = client
        .execute(fleet.resource().resource(), "INSERT INTO t VALUES (99, 'smuggled')", &[])
        .expect_err("the logical resource is not writeable");
    match err {
        CallError::Fault(f) => {
            assert_eq!(f.dais, Some(DaisFault::NotAuthorized), "got {f:?}")
        }
        other => panic!("expected a DAIS fault, got {other:?}"),
    }
    // The write never reached a shard.
    let data = execute(&client, fleet.resource(), "SELECT k FROM t WHERE k = 99");
    assert_eq!(data.rowset().unwrap().row_count(), 0);
}

/// Losing one replica of a shard mid-run must be invisible: the router
/// fails over to the sibling and results stay complete.
#[test]
fn killed_replica_is_invisible_to_the_consumer() {
    for seed in [1_u64, 7, 42] {
        let (bus, _server, fleet) = sql_fleet(Topology::InProc4);
        let client = sql_client(&bus, &fleet);
        let before = execute(&client, fleet.resource(), "SELECT k, v FROM t ORDER BY k");

        let injector = FaultInjector::new(seed);
        // Shard 2 loses replica 0: every call to it now times out.
        injector.set_policy(shard_address("fedconf", 2, 0), FaultPolicy::default().drop(1.0));
        bus.add_interceptor(Arc::new(injector));

        // Rotation decides which replica answers first, so a single
        // query may never touch the dead one — every query must still be
        // complete, and within a few turns the router must notice.
        for _ in 0..6 {
            let after = execute(&client, fleet.resource(), "SELECT k, v FROM t ORDER BY k");
            assert_eq!(
                canon(after.rowset().unwrap()),
                canon(before.rowset().unwrap()),
                "failover must keep results complete (seed {seed})"
            );
            if !fleet.router.is_healthy(2, 0) {
                break;
            }
        }
        assert!(
            !fleet.router.is_healthy(2, 0),
            "the dead replica should be marked down (seed {seed})"
        );
    }
}

/// Losing *every* replica of a shard cannot be hidden: the reply must be
/// a well-formed `ServiceBusyFault` — and never a torn rowset with the
/// surviving shards' rows.
#[test]
fn killed_shard_surfaces_service_busy_never_a_torn_rowset() {
    for seed in [1_u64, 7, 42] {
        let (bus, _server, fleet) = sql_fleet(Topology::InProc4);
        let client = sql_client(&bus, &fleet);

        let injector = FaultInjector::new(seed);
        for r in 0..2 {
            injector.set_policy(shard_address("fedconf", 1, r), FaultPolicy::default().drop(1.0));
        }
        bus.add_interceptor(Arc::new(injector));

        let err = client
            .execute(fleet.resource().resource(), "SELECT k, v FROM t ORDER BY k", &[])
            .expect_err("a whole dead shard cannot produce a complete result");
        match err {
            CallError::Fault(f) => {
                assert_eq!(f.dais, Some(DaisFault::ServiceBusy), "seed {seed}: got {f:?}")
            }
            other => panic!("seed {seed}: expected a ServiceBusyFault, got {other:?}"),
        }
    }
}

/// Kill a shard *between* pages of a streamed rowset: the page that can
/// no longer be assembled faults whole; once the shard heals the same
/// window streams complete again.
#[test]
fn killing_a_shard_mid_stream_faults_the_page_then_heals() {
    let (bus, _server, fleet) = sql_fleet(Topology::InProc4);
    let client = sql_client(&bus, &fleet);
    let response_epr = client
        .execute_factory(
            fleet.resource().resource(),
            "SELECT k, v FROM t ORDER BY k",
            &[],
            None,
            None,
        )
        .unwrap();
    let response = AbstractName::new(response_epr.resource_abstract_name().unwrap()).unwrap();
    let rowset_epr = client.rowset_factory(&response, None, None).unwrap();
    let rowset = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();

    let first = client.get_tuples(&rowset, 0, 10).expect("healthy fleet pages fine");
    assert_eq!(first.row_count(), 10);

    // The stream breaks: shard 3 goes away entirely.
    let injector = FaultInjector::new(0xDEAD);
    for r in 0..2 {
        injector.set_policy(shard_address("fedconf", 3, r), FaultPolicy::default().drop(1.0));
    }
    bus.add_interceptor(Arc::new(injector.clone()));
    let err = client.get_tuples(&rowset, 10, 10).expect_err("dead shard must fault the page");
    match err {
        CallError::Fault(f) => assert_eq!(f.dais, Some(DaisFault::ServiceBusy), "got {f:?}"),
        other => panic!("expected a ServiceBusyFault, got {other:?}"),
    }

    // Heal and the very same window streams complete — the fault tore
    // nothing down.
    for r in 0..2 {
        injector.set_policy(shard_address("fedconf", 3, r), FaultPolicy::default());
    }
    let page = client.get_tuples(&rowset, 10, 10).expect("healed fleet pages again");
    assert_eq!(page.row_count(), 10);
    let data = execute(&client, fleet.resource(), "SELECT k, v FROM t ORDER BY k");
    let oracle = canon(data.rowset().unwrap());
    assert_eq!(canon(&page), oracle[10..20], "the healed window matches the oracle ordering");
}

/// The XML realisation: XPath fan-out unions shard hits; the union must
/// match the single-shard oracle as a multiset.
#[test]
fn xpath_union_identical_across_shardings() {
    let mut per_topology = Vec::new();
    for shards in [1_usize, 4] {
        let bus = Bus::new();
        let no_sleep: SleepFn = Arc::new(|_| {});
        let fleet = XmlFleet::launch(
            &bus,
            "fedxml",
            FleetOptions {
                shards,
                replicas: 2,
                failover: FailoverPolicy::new(RetryPolicy::new(3)).with_sleep(no_sleep),
                ..FleetOptions::default()
            },
        );
        for i in 0..12 {
            let doc =
                dais::xml::parse(&format!("<record id=\"{i}\"><group>{}</group></record>", i % 3))
                    .unwrap();
            let status = fleet.ingest(&format!("doc{i}"), &doc).expect("document must ingest");
            assert_eq!(status, "Success");
        }
        let client = XmlClient::builder().bus(bus.clone()).resource(fleet.resource()).build();
        let hits = client
            .xpath(fleet.resource().resource(), "/record[group = 1]")
            .expect("fan-out query must succeed");
        let mut ids: Vec<String> = hits
            .iter()
            .map(|el| el.attribute("id").expect("hit keeps its attributes").to_string())
            .collect();
        ids.sort_unstable();
        per_topology.push((shards, ids));
    }
    let (_, oracle) = &per_topology[0];
    assert_eq!(oracle.len(), 4, "groups 1 are ids 1, 4, 7, 10");
    for (shards, ids) in &per_topology[1..] {
        assert_eq!(ids, oracle, "{shards}-shard union disagrees with the oracle");
    }
}
