//! The flight recorder end to end: tail-retained traces join their
//! journal slices by trace id, retention is deterministic per seed on
//! every transport, and the SLO / per-connection monitoring view
//! travels the wire.

use dais::obs::names::event_names;
use dais::obs::TailPolicy;
use dais::soap::bus::BusError;
use dais::soap::client::ServiceClient;
use dais::soap::fault::Fault;
use dais::soap::interceptor::{CallInfo, Intercept, Interceptor};
use dais::soap::retry::{IdempotencySet, RetryConfig, RetryPolicy, SleepFn, CAUSE_FAULT};
use dais::soap::tcp::{TcpServer, TcpTransport};
use dais::soap::{Bus, Envelope, InProcessTransport, SoapDispatcher};
use dais::xml::XmlElement;
use std::collections::{BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const ADDR: &str = "bus://flight";

fn flight_bus() -> Bus {
    let bus = Bus::new();
    let mut d = SoapDispatcher::new();
    d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
    d.register("urn:slow", |req: &Envelope| {
        std::thread::sleep(Duration::from_millis(10));
        Ok(req.clone())
    });
    d.register("urn:fail", |_req: &Envelope| Err(Fault::client("scripted failure")));
    bus.register(ADDR, Arc::new(d));
    bus
}

fn payload() -> XmlElement {
    XmlElement::new_local("m").with_text("x")
}

fn attr<'a>(span: &'a dais::obs::Span, key: &str) -> &'a str {
    span.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str()).unwrap_or("")
}

// ---------------------------------------------------------------------------
// Trace ↔ journal join
// ---------------------------------------------------------------------------

#[test]
fn retained_trace_joins_its_journal_slice() {
    let bus = flight_bus();
    let client = ServiceClient::new(bus.clone(), ADDR);
    bus.obs().journal.enable();
    bus.obs().tracer.enable_tailed(
        0xF11,
        TailPolicy {
            latency_threshold_ns: 2_000_000, // 2 ms; the slow handler sleeps 10 ms
            keep_outcomes: true,
            sample_per_million: 0,
        },
    );

    client.request("urn:echo", payload()).unwrap();
    client.request("urn:slow", payload()).unwrap();
    client.request("urn:fail", payload()).unwrap_err();

    let traces = bus.obs().tracer.take();
    let journal = bus.obs().journal.take();

    // Only the slow and the failed request survive tail retention.
    let kept = traces.trace_ids();
    assert_eq!(kept.len(), 2, "the fast clean request must be dropped, kept {kept:?}");

    // Every retained trace joins a journal slice by trace id, and the
    // slice tells the request's lifecycle story: admission and service
    // dispatch at minimum.
    for tid in &kept {
        let slice = journal.for_trace(*tid);
        let names: BTreeSet<&str> = slice.iter().map(|e| e.name).collect();
        assert!(
            names.contains(event_names::REQ_ADMIT),
            "trace {tid:#x} has no admission event: {names:?}"
        );
        assert!(
            names.contains(event_names::REQ_DISPATCH),
            "trace {tid:#x} has no dispatch event: {names:?}"
        );
    }

    // The failed request's slice carries the fault record with its
    // numeric cause.
    let failed = traces
        .spans_named("bus.call")
        .into_iter()
        .find(|s| attr(s, "outcome") == "fault")
        .expect("the failed bus.call span is retained");
    let faults: Vec<_> = journal
        .for_trace(failed.trace_id)
        .into_iter()
        .filter(|e| e.name == event_names::REQ_FAULT)
        .cloned()
        .collect();
    assert_eq!(faults.len(), 1, "exactly one fault event for the failed request");
    assert_eq!(faults[0].arg, CAUSE_FAULT);

    // And the dropped trace's journal events are still there (the
    // journal is always-on history, not tail-sampled): three admissions
    // for three requests.
    assert_eq!(journal.events_named(event_names::REQ_ADMIT).len(), 3);
}

// ---------------------------------------------------------------------------
// Determinism per seed, on both transports
// ---------------------------------------------------------------------------

/// The two transports under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    InProcess,
    Tcp,
}

fn install(bus: &Bus, kind: Kind) -> Option<TcpServer> {
    match kind {
        Kind::InProcess => {
            bus.set_transport(Arc::new(InProcessTransport::new(bus)));
            None
        }
        Kind::Tcp => {
            let server = TcpServer::bind(bus, "127.0.0.1:0").expect("bind loopback server");
            let transport = TcpTransport::default();
            transport.set_default_route(server.local_addr());
            bus.set_transport(Arc::new(transport));
            Some(server)
        }
    }
}

fn fast_retry(seed: u64) -> RetryConfig {
    let no_sleep: SleepFn = Arc::new(|_| {});
    let policy = RetryPolicy::new(10)
        .base_delay(Duration::from_micros(1))
        .max_delay(Duration::from_millis(1))
        .deadline(Duration::from_secs(5))
        .jitter_seed(seed);
    RetryConfig::new(policy, IdempotencySet::new(["urn:echo"])).with_sleep(no_sleep)
}

/// Applies a scripted sequence of request-phase faults — the "chaos
/// schedule" — then passes everything else.
struct ScriptedFaults(Mutex<VecDeque<&'static str>>);

impl ScriptedFaults {
    fn new(steps: &[&'static str]) -> Self {
        Self(Mutex::new(steps.iter().copied().collect()))
    }
}

impl Interceptor for ScriptedFaults {
    fn on_request(&self, _call: &CallInfo<'_>, bytes: &[u8]) -> Intercept {
        match self.0.lock().unwrap().pop_front() {
            Some("drop") => Intercept::Abort(BusError::Timeout("scripted drop".into())),
            Some("tamper") => Intercept::Tamper(bytes[..bytes.len() / 2].to_vec()),
            _ => Intercept::Pass,
        }
    }
}

/// One chaos run: ten echo requests through a scripted fault schedule,
/// with tail-sampled tracing and the journal on. Returns everything the
/// flight recorder kept.
fn chaos_flight_run(kind: Kind, seed: u64) -> (BTreeSet<u64>, String, String) {
    let bus = flight_bus();
    let client = ServiceClient::new(bus.clone(), ADDR).with_retry(fast_retry(seed));
    let _server = install(&bus, kind);
    bus.obs().journal.enable();
    bus.obs().tracer.enable_tailed(
        seed,
        TailPolicy {
            latency_threshold_ns: u64::MAX,
            keep_outcomes: true,
            sample_per_million: 250_000,
        },
    );
    // Request 2's first attempt is dropped before the wire; request 4's
    // is truncated in flight (on TCP the mangled bytes really cross the
    // socket). Retries absorb both.
    bus.add_interceptor(Arc::new(ScriptedFaults::new(&[
        "pass", "drop", "pass", "pass", "tamper", "pass",
    ])));

    for _ in 0..10 {
        client.request("urn:echo", payload()).unwrap();
    }

    let traces = bus.obs().tracer.take();
    let journal = bus.obs().journal.take();
    (traces.trace_ids(), traces.render_text(), journal.render_text())
}

#[test]
fn tail_retention_is_deterministic_per_seed_on_every_transport() {
    for kind in [Kind::InProcess, Kind::Tcp] {
        let (ids_a, traces_a, journal_a) = chaos_flight_run(kind, 0xDA15);
        let (ids_b, traces_b, journal_b) = chaos_flight_run(kind, 0xDA15);
        assert_eq!(ids_a, ids_b, "{kind:?}: retained trace ids differ between identical runs");
        assert_eq!(traces_a, traces_b, "{kind:?}: rendered traces differ between identical runs");
        assert_eq!(journal_a, journal_b, "{kind:?}: rendered journal differs between runs");

        // Retention is real: the two chaos-struck requests are always
        // kept, the clean ones only when the seeded sampler says so.
        assert!(ids_a.len() >= 2, "{kind:?}: the faulted traces must be retained");
        assert!(ids_a.len() < 10, "{kind:?}: tail retention kept everything");
        assert!(!journal_a.is_empty());

        // A different seed retains a different set (sampler salt and
        // trace ids both derive from it).
        let (ids_c, _, _) = chaos_flight_run(kind, 0x5EED);
        assert_ne!(ids_a, ids_c, "{kind:?}: two seeds agreed on every retained id");
    }
}

// ---------------------------------------------------------------------------
// SLO + per-connection monitoring over the wire
// ---------------------------------------------------------------------------

#[test]
fn service_levels_and_connection_histograms_travel_the_wire() {
    use dais::core::monitoring::MON_NS;
    use dais::prelude::*;

    let bus = Bus::new();
    let db = Database::new("flight");
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)", &[]).unwrap();
    db.execute("INSERT INTO t VALUES (1)", &[]).unwrap();
    let svc = RelationalService::launch(&bus, "bus://flight/sql", db, Default::default());
    let sql = SqlClient::builder().bus(bus.clone()).address("bus://flight/sql").build();

    let server = TcpServer::bind(&bus, "127.0.0.1:0").unwrap();
    let transport = TcpTransport::default();
    transport.set_default_route(server.local_addr());
    bus.set_transport(Arc::new(transport));

    for _ in 0..3 {
        let data = sql.execute(&svc.db_resource, "SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(data.rowset().unwrap().rows[0][0], Value::Int(1));
    }

    let doc = sql.core().get_property_document_xml(&svc.monitoring).unwrap();
    let mon = doc.child(MON_NS, "BusMonitoring").expect("mon:BusMonitoring extension");

    // The server billed wire-level service time per connection, and the
    // conn:-prefixed histogram crossed the wire inside the document.
    let conn_count: u64 = mon
        .children_named(MON_NS, "LatencyHistogram")
        .filter(|h| h.attribute("key").is_some_and(|k| k.starts_with("conn:tcp#")))
        .map(|h| h.attribute("count").unwrap().parse::<u64>().unwrap())
        .sum();
    assert!(conn_count >= 3, "three SELECTs were served over TCP, saw {conn_count}");

    // The SLO engine published one mon:ServiceLevel per metrics key,
    // each with the three rolling windows.
    let levels: Vec<_> = mon.children_named(MON_NS, "ServiceLevel").collect();
    let endpoint_level = levels
        .iter()
        .find(|l| l.attribute("key") == Some("endpoint:bus://flight/sql"))
        .expect("a service level for the SQL endpoint");
    assert_eq!(endpoint_level.attribute("burnAlert"), Some("false"));
    let windows: Vec<_> = endpoint_level.children_named(MON_NS, "Window").collect();
    assert_eq!(windows.len(), 3, "1 s / 10 s / 60 s windows");
    let w60 = windows.last().unwrap();
    assert_eq!(w60.attribute("seconds"), Some("60"));
    let completed: u64 = w60.attribute("completed").unwrap().parse().unwrap();
    assert!(completed >= 3, "the 60 s window covers the SELECT traffic, saw {completed}");
    assert_eq!(w60.attribute("faults"), Some("0"));
    assert!(
        levels.iter().any(|l| l.attribute("key").is_some_and(|k| k.starts_with("conn:tcp#"))),
        "per-connection keys get service levels too"
    );
}
