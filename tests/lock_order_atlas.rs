//! The lock-order atlas: drive the fabric's concurrent machinery —
//! executor queues, TCP transport + server, retry/chaos interceptors,
//! and a representative two-level resource hierarchy — then pin the
//! acquisition-order graph the lock-order detector observed as a golden
//! artifact.
//!
//! The golden is the *file-level* nesting contract: which modules hold
//! whose locks while taking others, and in which RwLock modes. A new
//! edge here is a design decision (extend the golden deliberately with
//! `DAIS_ATLAS_BLESS=1 cargo test --test lock_order_atlas`), not noise —
//! an inversion of an existing edge panics in the detector long before
//! this test diffs.
//!
//! Everything in one `#[test]` in its own integration binary: the edge
//! graph is process-global, and first-observed RwLock modes are part of
//! the pinned output, so observation order must be ours alone.
#![cfg(debug_assertions)]

use dais::soap::interceptor::{FaultInjector, FaultPolicy};
use dais::soap::retry::{IdempotencySet, RetryConfig, RetryPolicy};
use dais::soap::tcp::{TcpConfig, TcpServer, TcpServerConfig, TcpTransport};
use dais::soap::{Bus, Envelope, ExecutorConfig, ServiceClient, SoapDispatcher};
use dais::xml::XmlElement;
use dais_util::lockorder;
use dais_util::sync::{Mutex, RwLock};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

const ECHO: &str = "urn:atlas:echo";

fn payload(n: u64) -> XmlElement {
    XmlElement::new_local("m").with_text(n.to_string())
}

fn echo_bus() -> Bus {
    let bus = Bus::new();
    let mut d = SoapDispatcher::new();
    d.register(ECHO, |req: &Envelope| Ok(req.clone()));
    bus.register("bus://atlas", Arc::new(d));
    bus
}

/// In-process calls through the executor: shard queues, reply slots,
/// worker wakeups.
fn executor_workload() {
    let bus = echo_bus();
    bus.install_executor(ExecutorConfig::default());
    for n in 0..4 {
        let reply = bus.call("bus://atlas", ECHO, &Envelope::with_body(payload(n))).unwrap();
        assert!(reply.is_ok());
    }
    let pending: Vec<_> = (0..8)
        .map(|n| bus.call_async("bus://atlas", ECHO, &Envelope::with_body(payload(n))).unwrap())
        .collect();
    for p in pending {
        assert!(p.wait().unwrap().is_ok());
    }
    bus.shutdown_executor();
}

/// Chaos interceptor on the dispatch path plus the monitoring fold that
/// reads every interceptor's injection ledger under the chain lock.
fn interceptor_workload() {
    let bus = echo_bus();
    let injector = FaultInjector::new(7);
    injector
        .set_policy("bus://atlas", FaultPolicy { busy_probability: 1.0, ..FaultPolicy::default() });
    bus.add_interceptor(Arc::new(injector.clone()));
    let retry = RetryConfig::new(
        RetryPolicy::new(2).base_delay(std::time::Duration::from_nanos(1)),
        IdempotencySet::new([ECHO]),
    )
    .with_sleep(Arc::new(|_| {}));
    let client = ServiceClient::new(bus.clone(), "bus://atlas").with_retry(retry);
    // Every attempt is answered with an injected ServiceBusy fault; the
    // point is the lock traffic, not the outcome.
    let _ = client.request(ECHO, payload(1));
    injector.set_policy("bus://atlas", FaultPolicy::default());
    let reply = client.request(ECHO, payload(2)).expect("clean call after chaos");
    assert_eq!(reply.text(), "2");
    // The monitoring fold: chain read lock held across each ledger lock.
    assert!(bus.stats().messages >= 1);
    bus.reset_stats();
}

/// Real sockets: server-side conn handling, client-side pool checkout
/// and reply slots.
fn tcp_workload() {
    let server_bus = echo_bus();
    let server =
        TcpServer::bind_with(&server_bus, "127.0.0.1:0", TcpServerConfig::default()).unwrap();
    let client_bus = Bus::new();
    let transport = Arc::new(TcpTransport::new(TcpConfig { pool_size: 1, ..TcpConfig::default() }));
    transport.set_default_route(server.local_addr());
    client_bus.set_transport(transport);
    for n in 0..3 {
        let reply = client_bus.call("bus://atlas", ECHO, &Envelope::with_body(payload(n))).unwrap();
        assert!(reply.is_ok());
    }
    server.shutdown();
}

/// A representative two-level resource hierarchy — a catalog RwLock over
/// per-table Mutexes — pinning the RwLock mode semantics: shared-shared
/// nesting never edges, everything else does (and the first-observed
/// mode pair is what the golden shows).
fn hierarchy_workload() {
    let catalog = RwLock::new(vec!["orders"]);
    let manifest = RwLock::new(0u64);
    let table = Mutex::new(0u64);

    // Reader → table (recorded as R->W; the later writer → table nesting
    // reuses the same class pair, first observation wins).
    {
        let names = catalog.read();
        assert_eq!(names.len(), 1);
        *table.lock() += 1;
    }
    {
        let _names = catalog.write();
        *table.lock() += 1;
    }
    // Shared-shared: two read guards nested — must leave NO edge.
    {
        let _names = catalog.read();
        let _rev = manifest.read();
    }
    let snap = lockorder::snapshot();
    assert!(
        !snap.iter().any(|e| e.from.file.ends_with("lock_order_atlas.rs")
            && e.to.file.ends_with("lock_order_atlas.rs")
            && e.from_mode == lockorder::Mode::Shared
            && e.to_mode == lockorder::Mode::Shared),
        "read-read nesting must not record an edge: {snap:?}"
    );
}

/// Collapse the site-level snapshot to sorted, deduped file-level lines:
/// `<holder-file> [R|W] -> <acquired-file> [R|W]`.
fn normalise() -> String {
    let lines: BTreeSet<String> = lockorder::snapshot()
        .iter()
        .map(|e| format!("{} [{}] -> {} [{}]", e.from.file, e.from_mode, e.to.file, e.to_mode))
        .collect();
    let mut out: String = lines.into_iter().collect::<Vec<_>>().join("\n");
    out.push('\n');
    out
}

#[test]
fn atlas_matches_golden() {
    executor_workload();
    interceptor_workload();
    tcp_workload();
    hierarchy_workload();

    let atlas = normalise();

    // The Graphviz export renders the same graph: every atlas file shows
    // up as a node and the digraph is syntactically complete.
    let dot = lockorder::dot();
    assert!(dot.starts_with("digraph lock_order {"), "{dot}");
    assert!(dot.ends_with("}\n"), "{dot}");
    for file in ["bus.rs", "interceptor.rs", "lock_order_atlas.rs"] {
        assert!(dot.contains(file), "dot export is missing {file}:\n{dot}");
    }

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/lock_order_atlas.txt");
    if std::env::var_os("DAIS_ATLAS_BLESS").is_some() {
        std::fs::write(&golden_path, &atlas).expect("bless golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("tests/golden/lock_order_atlas.txt (run with DAIS_ATLAS_BLESS=1 to create)");
    assert_eq!(
        atlas, golden,
        "\nlock-order atlas drifted. If the new nesting is intentional, re-pin with\n\
         DAIS_ATLAS_BLESS=1 cargo test --test lock_order_atlas\n"
    );
}
