//! E5 (paper Figure 5): the three-service relational pipeline, asserted
//! end to end — including the routing of derived resources to the right
//! services and the "no data through intermediaries" property.

use dais::core::{register_core_ops, NameGenerator, ResourceRegistry, ServiceContext};
use dais::dair::resources::SqlDataResource;
use dais::dair::service as dair;
use dais::prelude::*;
use dais::soap::service::SoapDispatcher;
use std::sync::Arc;

struct Pipeline {
    bus: Bus,
    svc1: Arc<ServiceContext>,
    svc2: Arc<ServiceContext>,
    svc3: Arc<ServiceContext>,
    db_resource: AbstractName,
}

fn build_pipeline(rows: usize) -> Pipeline {
    let bus = Bus::new();
    let names = Arc::new(NameGenerator::new("pipe"));

    let svc3 = Arc::new(ServiceContext {
        address: "bus://p3".into(),
        registry: ResourceRegistry::new(),
        lifetime: None,
        query_rewriter: None,
    });
    let mut d3 = SoapDispatcher::new();
    register_core_ops(&mut d3, svc3.clone());
    dair::register_rowset_access(&mut d3, svc3.clone());
    bus.register("bus://p3", Arc::new(d3));

    let svc2 = Arc::new(ServiceContext {
        address: "bus://p2".into(),
        registry: ResourceRegistry::new(),
        lifetime: None,
        query_rewriter: None,
    });
    let mut d2 = SoapDispatcher::new();
    register_core_ops(&mut d2, svc2.clone());
    dair::register_response_access(&mut d2, svc2.clone());
    dair::register_response_factory(&mut d2, svc2.clone(), svc3.clone(), names.clone());
    bus.register("bus://p2", Arc::new(d2));

    let svc1 = Arc::new(ServiceContext {
        address: "bus://p1".into(),
        registry: ResourceRegistry::new(),
        lifetime: None,
        query_rewriter: None,
    });
    let mut d1 = SoapDispatcher::new();
    register_core_ops(&mut d1, svc1.clone());
    dair::register_sql_access(&mut d1, svc1.clone());
    dair::register_sql_factory(&mut d1, svc1.clone(), svc2.clone(), names.clone());
    bus.register("bus://p1", Arc::new(d1));

    let db = Database::new("pipe");
    dais_bench::workload::populate_items(&db, rows, 24);
    let db_resource = names.mint("db");
    svc1.add_resource(Arc::new(SqlDataResource::new(db_resource.clone(), db)));

    Pipeline { bus, svc1, svc2, svc3, db_resource }
}

#[test]
fn full_figure5_flow() {
    let p = build_pipeline(300);

    // Consumer 1 → Data Service 1: SQLExecuteFactory.
    let c1 = SqlClient::builder().bus(p.bus.clone()).address("bus://p1").build();
    let response_epr = c1
        .execute_factory(
            &p.db_resource,
            "SELECT id, payload FROM item ORDER BY id",
            &[],
            Some("wsdair:SQLResponseAccessPT"),
            None,
        )
        .unwrap();
    assert_eq!(response_epr.address, "bus://p2", "response resource lives on Data Service 2");
    let response_name = AbstractName::new(response_epr.resource_abstract_name().unwrap()).unwrap();
    assert_eq!(p.svc2.registry.len(), 1);
    assert_eq!(p.svc1.registry.len(), 1, "Data Service 1 keeps only the database");

    // Consumer 2 → Data Service 2: SQLRowsetFactory.
    let c2 = SqlClient::builder().bus(p.bus.clone()).epr(response_epr).build();
    let rowset_epr =
        c2.rowset_factory(&response_name, None, Some("wsdair:SQLRowsetAccessPT")).unwrap();
    assert_eq!(rowset_epr.address, "bus://p3", "rowset resource lives on Data Service 3");
    let rowset_name = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();
    assert_eq!(p.svc3.registry.len(), 1);

    // Consumer 3 → Data Service 3: GetTuples pages through everything.
    let c3 = SqlClient::builder().bus(p.bus.clone()).epr(rowset_epr).build();
    let mut total = 0;
    let mut last_id = -1i64;
    loop {
        let page = c3.get_tuples(&rowset_name, total, 64).unwrap();
        if page.row_count() == 0 {
            break;
        }
        // Pages arrive in order without overlap.
        for row in &page.rows {
            let id = match row[0] {
                Value::Int(i) => i,
                ref other => panic!("{other:?}"),
            };
            assert!(id > last_id);
            last_id = id;
        }
        total += page.row_count();
    }
    assert_eq!(total, 300);
}

#[test]
fn data_flows_only_where_pulled() {
    let p = build_pipeline(400);
    let c1 = SqlClient::builder().bus(p.bus.clone()).address("bus://p1").build();
    let response_epr =
        c1.execute_factory(&p.db_resource, "SELECT * FROM item", &[], None, None).unwrap();
    let response_name = AbstractName::new(response_epr.resource_abstract_name().unwrap()).unwrap();
    let c2 = SqlClient::builder().bus(p.bus.clone()).epr(response_epr).build();
    let rowset_epr = c2.rowset_factory(&response_name, None, None).unwrap();
    let rowset_name = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();
    let c3 = SqlClient::builder().bus(p.bus.clone()).epr(rowset_epr).build();
    let mut got = 0;
    while got < 400 {
        got += c3.get_tuples(&rowset_name, got, 100).unwrap().row_count();
    }

    let s1 = p.bus.endpoint_stats("bus://p1");
    let s2 = p.bus.endpoint_stats("bus://p2");
    let s3 = p.bus.endpoint_stats("bus://p3");
    // Figure 5's economics: the factory hops are cheap; the data flows at
    // the final service only.
    assert!(s1.total_bytes() < 4096, "service 1 should see only the factory exchange");
    assert!(
        s3.total_bytes() > s1.total_bytes() * 5,
        "service 3 carries the tuples (s1={}, s3={})",
        s1.total_bytes(),
        s3.total_bytes()
    );
    assert!(s2.total_bytes() < s3.total_bytes());
}

#[test]
fn shortcut_single_service_deployment_matches() {
    // "Clearly it is not necessary to go through all the steps … all that
    // would be required is for Data Service 1 to support the
    // SQLResponseFactory interface" (§4.2). The single-address deployment
    // provides every interface; the same flow works with one service.
    let bus = Bus::new();
    let db = Database::new("single");
    dais_bench::workload::populate_items(&db, 50, 16);
    let svc = RelationalService::launch(&bus, "bus://single", db, Default::default());
    let client = SqlClient::builder().bus(bus.clone()).address("bus://single").build();

    let response_epr =
        client.execute_factory(&svc.db_resource, "SELECT id FROM item", &[], None, None).unwrap();
    assert_eq!(response_epr.address, "bus://single");
    let response_name = AbstractName::new(response_epr.resource_abstract_name().unwrap()).unwrap();
    let rowset_epr = client.rowset_factory(&response_name, None, None).unwrap();
    let rowset_name = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();
    assert_eq!(client.get_tuples(&rowset_name, 0, 100).unwrap().row_count(), 50);
    // All three data resources coexist in one registry (plus the
    // service's monitoring resource).
    assert_eq!(svc.ctx.registry.len(), 4);
}
