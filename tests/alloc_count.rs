//! Allocation accounting for the wire fast lane.
//!
//! A counting `#[global_allocator]` meters heap allocations performed by
//! one `Bus::call` echo round-trip (serialise → route → parse, both
//! legs). The fast lane (PR 3: interned QNames, borrowed-text parsing,
//! pooled wire buffers) must cut allocations by at least 30% against the
//! pre-change implementation, whose count is recorded below as the
//! baseline.

use dais_soap::service::SoapDispatcher;
use dais_soap::{Bus, Envelope};
use dais_xml::{ns, XmlElement};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// Allocations and heap bytes (incl. reallocs) performed by `f`, on this
/// thread only in practice: the harness runs the closure with no other
/// threads active.
fn allocs_during(f: impl FnOnce()) -> (u64, u64) {
    let (a0, b0) = (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed));
    f();
    (ALLOCS.load(Ordering::Relaxed) - a0, BYTES.load(Ordering::Relaxed) - b0)
}

/// The echo round-trip allocation count measured on the pre-fast-lane
/// implementation (seed + PR 2, commit 5d0b3a0) with this exact payload
/// and harness. The fast lane must stay at or below 70% of it.
const PRE_CHANGE_ALLOCS: u64 = 450;

fn echo_payload() -> Envelope {
    let payload = XmlElement::new(ns::WSDAI, "wsdai", "SQLExecuteRequest")
        .with_child(
            XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAbstractName")
                .with_text("urn:dais:alloc:db"),
        )
        .with_child(
            XmlElement::new(ns::WSDAIR, "wsdair", "SQLExpression")
                .with_attr("language", "urn:sql")
                .with_text("SELECT id, label, price FROM item WHERE id < 100"),
        );
    Envelope::with_body(payload)
        .with_header(XmlElement::new(ns::WSA, "wsa", "To").with_text("bus://alloc"))
        .with_header(
            XmlElement::new(ns::WSA, "wsa", "Action")
                .with_text("http://www.ggf.org/namespaces/2005/12/WS-DAIR/SQLExecute"),
        )
}

/// The echo figure measured on the fast lane *before* the observability
/// fabric (PR 3, commit c7a7182) with this exact payload and harness.
/// Disabled tracing must not add a single allocation on top of it.
const PRE_OBS_ALLOCS: u64 = 96;

fn echo_bus() -> Bus {
    let bus = Bus::new();
    let mut d = SoapDispatcher::new();
    d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
    bus.register("bus://alloc", Arc::new(d));
    bus
}

/// Median allocation count and heap bytes of an echo round trip, after
/// warming the thread-local pools, interner cells and lazy statics.
fn median_echo_allocs(bus: &Bus, env: &Envelope) -> (u64, u64) {
    for _ in 0..8 {
        bus.call("bus://alloc", "urn:echo", env).unwrap().unwrap();
    }
    // Median of several runs keeps incidental reallocs out of the figure.
    let mut runs: Vec<(u64, u64)> = (0..9)
        .map(|_| {
            allocs_during(|| {
                bus.call("bus://alloc", "urn:echo", env).unwrap().unwrap();
            })
        })
        .collect();
    runs.sort_unstable();
    runs[runs.len() / 2]
}

/// A wide-ish rowset page for metering the streamed encoder.
fn page_rowset(rows: usize) -> dais_sql::Rowset {
    use dais_sql::{Rowset, RowsetColumn, SqlType, Value};
    let mut rs = Rowset::new(vec![
        RowsetColumn { name: "id".into(), ty: SqlType::Integer },
        RowsetColumn { name: "label".into(), ty: SqlType::Varchar },
        RowsetColumn { name: "price".into(), ty: SqlType::Double },
    ]);
    for i in 0..rows as i64 {
        rs.rows.push(vec![
            Value::Int(i),
            if i % 7 == 0 { Value::Null } else { Value::Str(format!("item <{i}> & \"co\"")) },
            Value::Double(i as f64 * 1.5),
        ]);
    }
    rs
}

/// The streamed page encoder (`write_get_tuples_response` over
/// `Rowset::write_window_into`) must cost O(1) allocations per page, not
/// O(rows): every cell is written straight into the (reused) output
/// buffer. A 512-row page may therefore allocate at most a small
/// constant more than a 16-row page.
#[test]
fn streamed_page_encoding_allocates_constant_not_per_row() {
    use dais_dair::messages;
    use dais_xml::XmlWriter;

    let small = page_rowset(16);
    let big = page_rowset(512);
    let mut buf = String::new();
    let mut encode = |rs: &dais_sql::Rowset| {
        buf.clear();
        let mut w = XmlWriter::new(&mut buf);
        messages::write_get_tuples_response(&mut w, rs, 0, rs.row_count());
        w.finish();
    };
    // Warm the buffer to the big page's size and the QName interner.
    encode(&big);
    encode(&small);

    let (a_small, _) = allocs_during(|| encode(&small));
    let (a_big, b_big) = allocs_during(|| encode(&big));
    println!("streamed encode: 16 rows = {a_small} allocs, 512 rows = {a_big} allocs ({b_big} B)");
    assert!(
        a_big <= a_small + 8,
        "encoding 512 rows allocated {a_big} times vs {a_small} for 16 rows; \
         the per-row path must not allocate"
    );
}

/// `get_tuples_many` without an executor drains the batch through one
/// pooled reply buffer (`PooledBuf`), so paging N windows must not
/// re-allocate N reply buffers: the marginal heap bytes per page stay
/// well under one reply's size once decode output is accounted for.
#[test]
fn get_tuples_many_reuses_its_reply_buffer() {
    use dais_core::{AbstractName, DaisClient};
    use dais_dair::{RelationalService, RelationalServiceOptions, SqlClient};
    use dais_sql::Database;

    let bus = Bus::new();
    let db = Database::new("alloc");
    db.execute_script("CREATE TABLE item (id INTEGER PRIMARY KEY, label VARCHAR)").unwrap();
    for i in 0..200 {
        db.execute(
            &format!("INSERT INTO item VALUES ({i}, 'payload <{i}> & \"co\" {i:0>32}')"),
            &[],
        )
        .unwrap();
    }
    let svc = RelationalService::launch(
        &bus,
        "bus://alloc-dair",
        db,
        RelationalServiceOptions::default(),
    );
    let client = SqlClient::builder().bus(bus.clone()).address("bus://alloc-dair").build();
    let db_name = svc.db_resource.clone();

    let epr = client
        .execute_factory(&db_name, "SELECT * FROM item ORDER BY id", &[], None, None)
        .unwrap();
    let response_name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    let rowset_epr = client.rowset_factory(&response_name, None, None).unwrap();
    let rowset_name = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();

    let page: (usize, usize) = (0, 200);
    let one = [page];
    let eight = [page; 8];
    // Warm pools, interner and the service-side rowset materialisation.
    for r in client.get_tuples_many(&rowset_name, &eight, 8) {
        r.unwrap();
    }

    let (a_one, b_one) = allocs_during(|| {
        for r in client.get_tuples_many(&rowset_name, &one, 1) {
            r.unwrap();
        }
    });
    let (a_eight, b_eight) = allocs_during(|| {
        for r in client.get_tuples_many(&rowset_name, &eight, 8) {
            r.unwrap();
        }
    });
    let reply_bytes = {
        let req = dais_dair::messages::get_tuples_request(&rowset_name, page.0, page.1);
        let mut raw = Vec::new();
        client
            .core()
            .soap()
            .request_bytes_into(dais_dair::actions::GET_TUPLES, &req, &mut raw)
            .unwrap();
        raw.len() as u64
    };
    let marginal_bytes = (b_eight - b_one) / 7;
    let marginal_allocs = (a_eight - a_one) / 7;
    println!(
        "get_tuples_many: 1 page = {a_one} allocs/{b_one} B, 8 pages = {a_eight} allocs/\
         {b_eight} B, marginal {marginal_allocs} allocs and {marginal_bytes} B/page, \
         reply {reply_bytes} B"
    );
    // Measured on this implementation with this exact payload: a
    // marginal page costs ~914 allocations / ~163.7 KB — request build,
    // service-side streamed encode, client pull decode — with the pooled
    // reply buffer contributing nothing after warm-up. The budgets below
    // leave ~10% headroom. Dropping the pooled buffer (a fresh `Vec` per
    // page) adds ~2x the ~34.5 KB reply in growth-doubling writes;
    // rematerialising the page server-side adds the page clone on top:
    // either regression blows the byte budget.
    const MARGINAL_PAGE_ALLOCS: u64 = 1_000;
    const MARGINAL_PAGE_BYTES: u64 = 180_000;
    assert!(reply_bytes > 30_000, "fixture shrank; re-measure the budgets ({reply_bytes} B reply)");
    assert!(
        marginal_allocs <= MARGINAL_PAGE_ALLOCS,
        "marginal page performed {marginal_allocs} allocations (budget {MARGINAL_PAGE_ALLOCS})"
    );
    assert!(
        marginal_bytes <= MARGINAL_PAGE_BYTES,
        "marginal page cost {marginal_bytes} heap bytes (budget {MARGINAL_PAGE_BYTES}): \
         the batch is churning buffers instead of reusing the pooled one"
    );
}

#[test]
fn echo_round_trip_allocates_30_percent_less_than_baseline() {
    let bus = echo_bus();
    let env = echo_payload();
    let (median, median_bytes) = median_echo_allocs(&bus, &env);

    let ceiling = PRE_CHANGE_ALLOCS * 7 / 10;
    println!(
        "echo round-trip: {median} allocations, {median_bytes} heap bytes, \
         {} wire bytes/leg (pre-change baseline {PRE_CHANGE_ALLOCS} allocations, \
         ceiling {ceiling})",
        env.to_bytes().len()
    );
    assert!(
        median <= ceiling,
        "echo round-trip performed {median} allocations; the fast lane requires \
         <= {ceiling} (70% of the pre-change {PRE_CHANGE_ALLOCS})"
    );
}

#[test]
fn disabled_journal_adds_zero_allocations() {
    let bus = echo_bus();
    let env = echo_payload();

    // With the flight recorder off (the default), every journal site is
    // one relaxed atomic load: the round trip must allocate no more than
    // the pre-observability fast lane.
    let (disabled, _) = median_echo_allocs(&bus, &env);
    assert!(
        disabled <= PRE_OBS_ALLOCS,
        "disabled journal added allocations: {disabled} > pre-observability {PRE_OBS_ALLOCS}"
    );

    // A finished recording session leaves no residue: enable, record a
    // few calls, drain the rings, disable — allocation-identical again.
    bus.obs().journal.enable();
    for _ in 0..4 {
        bus.call("bus://alloc", "urn:echo", &env).unwrap().unwrap();
    }
    let recorded = bus.obs().journal.take();
    assert!(!recorded.is_empty(), "the enabled warm-up should have recorded events");
    bus.obs().journal.disable();
    let (after, _) = median_echo_allocs(&bus, &env);
    assert_eq!(
        after, disabled,
        "turning the journal on and off again changed the steady-state allocation count"
    );
}

#[test]
fn disabled_tracing_adds_zero_allocations() {
    let bus = echo_bus();
    let env = echo_payload();

    // With tracing off (the default), the observability layer costs one
    // relaxed atomic load and two lock-free histogram records: the round
    // trip must allocate no more than the pre-observability fast lane.
    let (disabled, _) = median_echo_allocs(&bus, &env);
    assert!(
        disabled <= PRE_OBS_ALLOCS,
        "disabled tracing added allocations: {disabled} > pre-observability {PRE_OBS_ALLOCS}"
    );

    // A finished tracing session leaves no residue: enable, trace a few
    // calls, drain the sink, disable — allocation-identical again.
    bus.enable_tracing(7);
    for _ in 0..4 {
        bus.call("bus://alloc", "urn:echo", &env).unwrap().unwrap();
    }
    let traced = bus.obs().tracer.take();
    assert!(!traced.is_empty(), "the traced warm-up should have recorded spans");
    bus.disable_tracing();
    let (after, _) = median_echo_allocs(&bus, &env);
    assert_eq!(
        after, disabled,
        "turning tracing on and off again changed the steady-state allocation count"
    );
}
