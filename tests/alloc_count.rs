//! Allocation accounting for the wire fast lane.
//!
//! A counting `#[global_allocator]` meters heap allocations performed by
//! one `Bus::call` echo round-trip (serialise → route → parse, both
//! legs). The fast lane (PR 3: interned QNames, borrowed-text parsing,
//! pooled wire buffers) must cut allocations by at least 30% against the
//! pre-change implementation, whose count is recorded below as the
//! baseline.

use dais_soap::service::SoapDispatcher;
use dais_soap::{Bus, Envelope};
use dais_xml::{ns, XmlElement};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// Allocations and heap bytes (incl. reallocs) performed by `f`, on this
/// thread only in practice: the harness runs the closure with no other
/// threads active.
fn allocs_during(f: impl FnOnce()) -> (u64, u64) {
    let (a0, b0) = (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed));
    f();
    (ALLOCS.load(Ordering::Relaxed) - a0, BYTES.load(Ordering::Relaxed) - b0)
}

/// The echo round-trip allocation count measured on the pre-fast-lane
/// implementation (seed + PR 2, commit 5d0b3a0) with this exact payload
/// and harness. The fast lane must stay at or below 70% of it.
const PRE_CHANGE_ALLOCS: u64 = 450;

fn echo_payload() -> Envelope {
    let payload = XmlElement::new(ns::WSDAI, "wsdai", "SQLExecuteRequest")
        .with_child(
            XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAbstractName")
                .with_text("urn:dais:alloc:db"),
        )
        .with_child(
            XmlElement::new(ns::WSDAIR, "wsdair", "SQLExpression")
                .with_attr("language", "urn:sql")
                .with_text("SELECT id, label, price FROM item WHERE id < 100"),
        );
    Envelope::with_body(payload)
        .with_header(XmlElement::new(ns::WSA, "wsa", "To").with_text("bus://alloc"))
        .with_header(
            XmlElement::new(ns::WSA, "wsa", "Action")
                .with_text("http://www.ggf.org/namespaces/2005/12/WS-DAIR/SQLExecute"),
        )
}

/// The echo figure measured on the fast lane *before* the observability
/// fabric (PR 3, commit c7a7182) with this exact payload and harness.
/// Disabled tracing must not add a single allocation on top of it.
const PRE_OBS_ALLOCS: u64 = 96;

fn echo_bus() -> Bus {
    let bus = Bus::new();
    let mut d = SoapDispatcher::new();
    d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
    bus.register("bus://alloc", Arc::new(d));
    bus
}

/// Median allocation count and heap bytes of an echo round trip, after
/// warming the thread-local pools, interner cells and lazy statics.
fn median_echo_allocs(bus: &Bus, env: &Envelope) -> (u64, u64) {
    for _ in 0..8 {
        bus.call("bus://alloc", "urn:echo", env).unwrap().unwrap();
    }
    // Median of several runs keeps incidental reallocs out of the figure.
    let mut runs: Vec<(u64, u64)> = (0..9)
        .map(|_| {
            allocs_during(|| {
                bus.call("bus://alloc", "urn:echo", env).unwrap().unwrap();
            })
        })
        .collect();
    runs.sort_unstable();
    runs[runs.len() / 2]
}

#[test]
fn echo_round_trip_allocates_30_percent_less_than_baseline() {
    let bus = echo_bus();
    let env = echo_payload();
    let (median, median_bytes) = median_echo_allocs(&bus, &env);

    let ceiling = PRE_CHANGE_ALLOCS * 7 / 10;
    println!(
        "echo round-trip: {median} allocations, {median_bytes} heap bytes, \
         {} wire bytes/leg (pre-change baseline {PRE_CHANGE_ALLOCS} allocations, \
         ceiling {ceiling})",
        env.to_bytes().len()
    );
    assert!(
        median <= ceiling,
        "echo round-trip performed {median} allocations; the fast lane requires \
         <= {ceiling} (70% of the pre-change {PRE_CHANGE_ALLOCS})"
    );
}

#[test]
fn disabled_tracing_adds_zero_allocations() {
    let bus = echo_bus();
    let env = echo_payload();

    // With tracing off (the default), the observability layer costs one
    // relaxed atomic load and two lock-free histogram records: the round
    // trip must allocate no more than the pre-observability fast lane.
    let (disabled, _) = median_echo_allocs(&bus, &env);
    assert!(
        disabled <= PRE_OBS_ALLOCS,
        "disabled tracing added allocations: {disabled} > pre-observability {PRE_OBS_ALLOCS}"
    );

    // A finished tracing session leaves no residue: enable, trace a few
    // calls, drain the sink, disable — allocation-identical again.
    bus.enable_tracing(7);
    for _ in 0..4 {
        bus.call("bus://alloc", "urn:echo", &env).unwrap().unwrap();
    }
    let traced = bus.obs().tracer.take();
    assert!(!traced.is_empty(), "the traced warm-up should have recorded spans");
    bus.disable_tracing();
    let (after, _) = median_echo_allocs(&bus, &env);
    assert_eq!(
        after, disabled,
        "turning tracing on and off again changed the steady-state allocation count"
    );
}
