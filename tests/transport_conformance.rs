//! Cross-transport conformance: every guarantee built above the
//! serialise→route→parse boundary must be transport-invariant.
//!
//! Each suite here runs once per [`Transport`] — the in-process
//! transport and real loopback TCP — and asserts that the two produce
//! *identical* observable behaviour: the same rendered span trees, the
//! same `StatsSnapshot` deltas, the same fault-injection ledgers, and
//! byte-identical wire images. The interceptor chain, fault injector,
//! tracer, WS-Addressing correlation and billing all sit above the
//! transport seam, so any divergence is a seam leak.

use dais::prelude::*;
use dais::soap::bus::{BusError, StatsSnapshot};
use dais::soap::interceptor::{CallInfo, InjectorSnapshot, Intercept, Interceptor};
use dais::soap::retry::{RetryConfig, SleepFn};
use dais::soap::tcp::{TcpServer, TcpTransport};
use dais::soap::{Envelope, InProcessTransport, SoapDispatcher};
use dais::xml::XmlElement;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

const SQL_ADDR: &str = "bus://conf/sql";

/// The two transports under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    InProcess,
    Tcp,
}

const BOTH: [Kind; 2] = [Kind::InProcess, Kind::Tcp];

/// Install the transport under test on `bus`. The returned server (TCP
/// only) must stay alive for the duration of the run.
fn install(bus: &Bus, kind: Kind) -> Option<TcpServer> {
    match kind {
        Kind::InProcess => {
            bus.set_transport(Arc::new(InProcessTransport::new(bus)));
            None
        }
        Kind::Tcp => {
            let server = TcpServer::bind(bus, "127.0.0.1:0").expect("bind loopback server");
            let transport = TcpTransport::default();
            transport.set_default_route(server.local_addr());
            bus.set_transport(Arc::new(transport));
            Some(server)
        }
    }
}

/// Retry hard with zero real sleeping (pacing is tested elsewhere).
fn sweep_retry(seed: u64) -> RetryConfig {
    let no_sleep: SleepFn = Arc::new(|_| {});
    let policy = RetryPolicy::new(30)
        .base_delay(Duration::from_micros(1))
        .max_delay(Duration::from_millis(1))
        .deadline(Duration::from_secs(5))
        .jitter_seed(seed);
    RetryConfig::new(policy, dais::dair::client::idempotent_actions()).with_sleep(no_sleep)
}

/// One relational service with fixed seed data; the client retries.
fn sql_stack(retry_seed: u64) -> (Bus, SqlClient, AbstractName) {
    let bus = Bus::new();
    let db = Database::new("conf");
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v VARCHAR)", &[]).unwrap();
    for (k, v) in [(1, "alpha"), (2, "beta"), (3, "gamma")] {
        db.execute("INSERT INTO t VALUES (?, ?)", &[Value::Int(k), Value::Str(v.into())]).unwrap();
    }
    let svc = RelationalService::launch(&bus, SQL_ADDR, db, Default::default());
    let sql = SqlClient::builder()
        .bus(bus.clone())
        .address(SQL_ADDR)
        .build()
        .with_retry_config(sweep_retry(retry_seed));
    (bus, sql, svc.db_resource)
}

// ---------------------------------------------------------------------------
// Suite 1: chaos recovery
// ---------------------------------------------------------------------------

/// Everything observable about a finished chaos run.
#[derive(Debug, PartialEq, Eq)]
struct RunSignature {
    total: StatsSnapshot,
    sql: StatsSnapshot,
    injected: InjectorSnapshot,
}

fn chaos_run(kind: Kind, seed: u64) -> RunSignature {
    let (bus, sql, db) = sql_stack(seed);
    let _server = install(&bus, kind);
    bus.reset_stats();

    let injector = FaultInjector::new(seed);
    injector.set_default_policy(
        FaultPolicy::default().drop(0.15).busy(0.10).unavailable(0.05).corrupt(0.15),
    );
    bus.add_interceptor(Arc::new(injector.clone()));

    for _ in 0..6 {
        let data = sql.execute(&db, "SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(data.rowset().unwrap().rows[0][0], Value::Int(3));
        let props = sql.core().get_property_document(&db).unwrap();
        assert!(props.readable);
    }

    RunSignature {
        total: bus.stats(),
        sql: bus.endpoint_stats(SQL_ADDR),
        injected: injector.snapshot(),
    }
}

#[test]
fn chaos_recovery_is_transport_invariant() {
    for seed in [0x01u64, 0xBEEF, 0xDA15] {
        let in_process = chaos_run(Kind::InProcess, seed);
        let tcp = chaos_run(Kind::Tcp, seed);
        assert_eq!(
            in_process, tcp,
            "seed {seed:#x}: the two transports disagree about a chaos run"
        );
        assert_eq!(in_process.total.injected, in_process.injected.total());
    }
    // The chaos was real: at least one seed injected a corruption, which
    // is the only fault class that actually crosses the TCP wire (drops
    // and synthetic replies act above the seam).
    let corruptions: u64 = [0x01u64, 0xBEEF, 0xDA15]
        .iter()
        .map(|s| chaos_run(Kind::Tcp, *s).injected.corruptions)
        .sum();
    assert!(corruptions > 0, "no corrupted envelope ever crossed the wire");
}

// ---------------------------------------------------------------------------
// Suite 2: trace propagation
// ---------------------------------------------------------------------------

/// Applies a scripted sequence of request-phase faults, then passes.
struct ScriptedFaults(Mutex<VecDeque<&'static str>>);

impl ScriptedFaults {
    fn new(steps: &[&'static str]) -> Self {
        Self(Mutex::new(steps.iter().copied().collect()))
    }
}

impl Interceptor for ScriptedFaults {
    fn on_request(&self, _call: &CallInfo<'_>, bytes: &[u8]) -> Intercept {
        match self.0.lock().unwrap().pop_front() {
            Some("drop") => Intercept::Abort(BusError::Timeout("scripted drop".into())),
            Some("tamper") => Intercept::Tamper(bytes[..bytes.len() / 2].to_vec()),
            _ => Intercept::Pass,
        }
    }
}

fn traced_run(kind: Kind) -> (String, StatsSnapshot) {
    let (bus, sql, db) = sql_stack(9);
    let _server = install(&bus, kind);
    bus.reset_stats();
    bus.enable_tracing(0x0B5);
    // Attempt 1 is dropped before the wire; attempt 2 is truncated in
    // flight (on TCP the mangled bytes really cross the socket and are
    // rejected by the far side's parser); attempt 3 goes through clean.
    bus.add_interceptor(Arc::new(ScriptedFaults::new(&["drop", "tamper"])));

    let data = sql.execute(&db, "SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(data.rowset().unwrap().rows[0][0], Value::Int(3));

    let sink = bus.obs().tracer.take();
    // Structural invariants, independent of the render comparison: the
    // clean attempt's dispatch joined the trace through bytes that
    // survived the transport.
    let retries = sink.spans_named("client.retry");
    let dispatches = sink.spans_named("bus.dispatch");
    assert_eq!(sink.spans_named("bus.call").len(), 3);
    assert_eq!(retries.len(), 2);
    assert_eq!(dispatches.len(), 1, "dropped/tampered requests must not reach the service");
    assert_eq!(dispatches[0].parent_id, Some(retries[1].span_id));

    (sink.render_text(), bus.stats())
}

#[test]
fn trace_render_is_transport_invariant() {
    let (in_process_render, in_process_stats) = traced_run(Kind::InProcess);
    let (tcp_render, tcp_stats) = traced_run(Kind::Tcp);
    assert!(!in_process_render.is_empty());
    assert_eq!(
        in_process_render, tcp_render,
        "the rendered span tree leaks which transport carried the bytes"
    );
    assert_eq!(in_process_stats, tcp_stats);
}

// ---------------------------------------------------------------------------
// Suite 3: Overloaded ⇔ at-capacity (admission control above the seam)
// ---------------------------------------------------------------------------

/// A service whose handler blocks until the test opens the gate, and
/// reports how many handlers have started.
struct Gate {
    open: Mutex<bool>,
    opened: Condvar,
    started: Mutex<u64>,
    started_cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            opened: Condvar::new(),
            started: Mutex::new(0),
            started_cv: Condvar::new(),
        })
    }

    fn enter(&self) {
        *self.started.lock().unwrap() += 1;
        self.started_cv.notify_all();
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.opened.wait(open).unwrap();
        }
    }

    fn wait_started(&self, n: u64) {
        let mut started = self.started.lock().unwrap();
        while *started < n {
            started = self.started_cv.wait(started).unwrap();
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.opened.notify_all();
    }
}

/// Strip the non-deterministic queue-wait measurement so renders from
/// different runs can be compared structurally.
fn normalise_render(render: &str) -> String {
    let mut out = String::with_capacity(render.len());
    for line in render.lines() {
        match line.find("queue_wait_ns=") {
            Some(at) => {
                let (head, tail) = line.split_at(at + "queue_wait_ns=".len());
                out.push_str(head);
                out.push('_');
                out.push_str(tail.trim_start_matches(|c: char| c.is_ascii_digit()));
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

fn overload_run(kind: Kind) -> (String, StatsSnapshot, StatsSnapshot) {
    let bus = Bus::new();
    let gate = Gate::new();
    let handler_gate = Arc::clone(&gate);
    let mut d = SoapDispatcher::new();
    d.register("urn:block", move |req: &Envelope| {
        handler_gate.enter();
        Ok(req.clone())
    });
    bus.register("bus://gate", Arc::new(d));
    let _server = install(&bus, kind);
    bus.enable_tracing(0xCAFE);

    let hint = Duration::from_millis(7);
    bus.install_executor(
        ExecutorConfig::new(1).queue_capacity(1).max_in_flight(1).retry_after(hint).seed(0xCAFE),
    );

    let env = Envelope::with_body(XmlElement::new_local("m").with_text("x"));
    // First request occupies the single worker...
    let executing = bus.call_async("bus://gate", "urn:block", &env).unwrap();
    gate.wait_started(1);
    // ...second fills the queue...
    let queued = bus.call_async("bus://gate", "urn:block", &env).unwrap();
    // ...third and fourth are refused at admission, with the hint.
    for _ in 0..2 {
        match bus.call("bus://gate", "urn:block", &env) {
            Err(BusError::Overloaded { endpoint, retry_after }) => {
                assert_eq!(endpoint, "bus://gate");
                assert_eq!(retry_after, hint);
            }
            other => panic!("expected Overloaded at capacity, got {other:?}"),
        }
    }
    gate.release();
    assert!(executing.wait().is_ok());
    assert!(queued.wait().is_ok());
    bus.shutdown_executor();

    let render = normalise_render(&bus.obs().tracer.take().render_text());
    (render, bus.stats(), bus.endpoint_stats("bus://gate"))
}

#[test]
fn overload_refusal_is_transport_invariant() {
    let (in_process_render, in_process_total, in_process_ep) = overload_run(Kind::InProcess);
    let (tcp_render, tcp_total, tcp_ep) = overload_run(Kind::Tcp);
    assert_eq!(in_process_render, tcp_render);
    assert_eq!(in_process_total, tcp_total);
    assert_eq!(in_process_ep, tcp_ep);
    // And the suite really exercised admission control: two sheds, two
    // served messages.
    assert_eq!(in_process_ep.shed, 2);
    assert_eq!(in_process_ep.messages, 2);
}

// ---------------------------------------------------------------------------
// Suite 4: byte-identical wire goldens
// ---------------------------------------------------------------------------

/// Records every wire image crossing the chain, both directions.
#[derive(Default)]
struct CaptureWire {
    requests: Mutex<Vec<Vec<u8>>>,
    responses: Mutex<Vec<Vec<u8>>>,
}

impl Interceptor for CaptureWire {
    fn on_request(&self, _call: &CallInfo<'_>, bytes: &[u8]) -> Intercept {
        self.requests.lock().unwrap().push(bytes.to_vec());
        Intercept::Pass
    }

    fn on_response(&self, _call: &CallInfo<'_>, bytes: &[u8]) -> Intercept {
        self.responses.lock().unwrap().push(bytes.to_vec());
        Intercept::Pass
    }
}

fn wire_golden_run(kind: Kind) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let (bus, sql, db) = sql_stack(0);
    let _server = install(&bus, kind);
    let wires = Arc::new(CaptureWire::default());
    bus.add_interceptor(wires.clone());

    // A success, a rowset read and a service fault — all with tracing
    // off, so the wire carries no correlation headers and must be
    // byte-stable.
    sql.execute(&db, "SELECT v FROM t WHERE k = 2", &[]).unwrap();
    sql.core().get_property_document(&db).unwrap();
    let ghost = AbstractName::new("urn:dais:ghost:db:0").unwrap();
    sql.core().get_property_document(&ghost).unwrap_err();

    let requests = wires.requests.lock().unwrap().clone();
    let responses = wires.responses.lock().unwrap().clone();
    (requests, responses)
}

#[test]
fn wire_bytes_are_byte_identical_across_transports() {
    let (in_process_req, in_process_resp) = wire_golden_run(Kind::InProcess);
    let (tcp_req, tcp_resp) = wire_golden_run(Kind::Tcp);
    assert_eq!(in_process_req.len(), 3);
    assert_eq!(in_process_req, tcp_req, "request wire images differ between transports");
    assert_eq!(in_process_resp, tcp_resp, "response wire images differ between transports");
    assert!(in_process_resp
        .iter()
        .any(|r| { std::str::from_utf8(r).map(|s| s.contains("Fault")).unwrap_or(false) }));
}

// ---------------------------------------------------------------------------
// Suite 5: response-abort billing parity (the PR 5 regression, on TCP)
// ---------------------------------------------------------------------------

/// Rejects every response on its way back to the caller.
struct AbortReplies;

impl Interceptor for AbortReplies {
    fn on_response(&self, _call: &CallInfo<'_>, _bytes: &[u8]) -> Intercept {
        Intercept::Abort(BusError::Timeout("scripted response abort".into()))
    }
}

fn response_abort_run(kind: Option<Kind>, queued: bool) -> StatsSnapshot {
    let bus = Bus::new();
    let mut d = SoapDispatcher::new();
    d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
    bus.register("bus://bill", Arc::new(d));
    let _server = kind.and_then(|kind| install(&bus, kind));
    bus.add_interceptor(Arc::new(AbortReplies));
    if queued {
        bus.install_executor(ExecutorConfig::new(2).seed(5));
    }
    for n in 0..3 {
        let envelope = Envelope::with_body(XmlElement::new_local("m").with_text(n.to_string()));
        let err = bus.call("bus://bill", "urn:echo", &envelope).unwrap_err();
        assert!(matches!(err, BusError::Timeout(_)), "the abort surfaces: {err:?}");
    }
    let stats = bus.endpoint_stats("bus://bill");
    if queued {
        bus.shutdown_executor();
    }
    stats
}

#[test]
fn response_abort_billing_parity_holds_on_every_transport() {
    // The PR 5 parity held between inline and queued execution; it must
    // also hold between transports, on both execution paths: a consumed
    // response leg is billed no matter what carried it.
    let traffic = |s: &StatsSnapshot| {
        (s.messages, s.request_bytes, s.response_bytes, s.faults, s.injected, s.retries, s.shed)
    };
    let baseline = response_abort_run(None, false);
    assert_eq!(baseline.messages, 3);
    for queued in [false, true] {
        for kind in BOTH {
            let run = response_abort_run(Some(kind), queued);
            assert_eq!(
                traffic(&run),
                traffic(&baseline),
                "billing diverges on {kind:?} (queued={queued})"
            );
        }
    }
}
