//! End-to-end coverage of the WS-DAIX realisation beyond the unit tests:
//! WSRF-layered XML services, indirect sequences with soft state, and the
//! shared message framing across realisations ("DAIS as a whole has a
//! coherent framework", §4.1).

use dais::prelude::*;
use dais::soap::fault::DaisFault;
use dais::wsrf::LifetimeRegistry;
use dais::xml::{ns, parse};
use std::sync::Arc;

fn corpus() -> Vec<(String, dais::xml::XmlElement)> {
    (0..20)
        .map(|i| {
            (
                format!("d{i}"),
                parse(&format!(
                    "<record id='{i}'><group>{}</group><score>{}</score></record>",
                    i % 4,
                    i * 10
                ))
                .unwrap(),
            )
        })
        .collect()
}

#[test]
fn wsrf_layered_xml_service() {
    let bus = Bus::new();
    let clock = ManualClock::new();
    let svc = XmlService::launch(
        &bus,
        "bus://xw",
        XmlDatabase::new("xw"),
        XmlServiceOptions { wsrf: Some(Arc::new(LifetimeRegistry::new(clock.clone()))) },
    );
    let client = XmlClient::builder().bus(bus.clone()).address("bus://xw").build();
    client.add_documents(&svc.root_collection, &corpus()).unwrap();

    // Fine-grained property access works on XML resources too.
    let props = client
        .core()
        .get_resource_property(&svc.root_collection, "wsdaix:NumberOfDocuments")
        .unwrap();
    assert_eq!(props[0].text(), "20");

    // Derived sequences participate in soft-state lifetime.
    let epr = client.xpath_factory(&svc.root_collection, "/record[score > 100]").unwrap();
    let seq = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    client.core().set_termination_time(&seq, Some(500)).unwrap();
    assert_eq!(client.get_items(&seq, 0, 100).unwrap().len(), 9); // ids 11..19
    clock.advance(501);
    let err = client.get_items(&seq, 0, 1).unwrap_err();
    assert_eq!(err.dais_fault(), Some(DaisFault::DataResourceUnavailable));
    // The root collection (no lease) lives on.
    assert_eq!(client.get_documents(&svc.root_collection, &[]).unwrap().len(), 20);
}

#[test]
fn xquery_and_xpath_agree_on_filters() {
    let bus = Bus::new();
    let svc = XmlService::launch(&bus, "bus://xa", XmlDatabase::new("xa"), Default::default());
    let client = XmlClient::builder().bus(bus).address("bus://xa").build();
    client.add_documents(&svc.root_collection, &corpus()).unwrap();

    let via_xpath = client.xpath(&svc.root_collection, "/record[group = 2]").unwrap();
    let via_xquery = client
        .xquery(&svc.root_collection, "for $r in /record where $r/group = 2 return $r")
        .unwrap();
    assert_eq!(via_xpath.len(), 5);
    assert_eq!(via_xpath.len(), via_xquery.len());
    let ids_a: Vec<_> = via_xpath.iter().map(|r| r.attribute("id").unwrap().to_string()).collect();
    let ids_b: Vec<_> = via_xquery.iter().map(|r| r.attribute("id").unwrap().to_string()).collect();
    assert_eq!(ids_a, ids_b);
}

#[test]
fn xupdate_then_query_consistency() {
    let bus = Bus::new();
    let svc = XmlService::launch(&bus, "bus://xu", XmlDatabase::new("xu"), Default::default());
    let client = XmlClient::builder().bus(bus).address("bus://xu").build();
    client.add_documents(&svc.root_collection, &corpus()).unwrap();

    // Rename group → cohort across every document, then query by the new name.
    let mods = parse(
        "<xu:modifications xmlns:xu='http://www.xmldb.org/xupdate'>\
           <xu:rename select='/record/group'>cohort</xu:rename>\
         </xu:modifications>",
    )
    .unwrap();
    let touched = client.xupdate(&svc.root_collection, mods).unwrap();
    assert_eq!(touched, 20);
    assert_eq!(client.xpath(&svc.root_collection, "/record/group").unwrap().len(), 0);
    assert_eq!(client.xpath(&svc.root_collection, "/record/cohort").unwrap().len(), 20);
}

#[test]
fn generic_query_is_uniform_across_realisations() {
    // The same CoreDataAccess::GenericQuery operation serves SQL on
    // relational resources and XPath/XQuery on XML resources — one
    // framework, realisation-specific languages (§4.1).
    let bus = Bus::new();
    let db = Database::new("g");
    db.execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2);").unwrap();
    let rel = RelationalService::launch(&bus, "bus://grel", db, Default::default());
    let xsvc = XmlService::launch(&bus, "bus://gxml", XmlDatabase::new("g"), Default::default());
    let xclient = XmlClient::builder().bus(bus.clone()).address("bus://gxml").build();
    xclient
        .add_documents(&xsvc.root_collection, &[("d".into(), parse("<r><a>1</a></r>").unwrap())])
        .unwrap();

    let core_rel = dais::core::CoreClient::builder().bus(bus.clone()).address("bus://grel").build();
    let core_xml = dais::core::CoreClient::builder().bus(bus.clone()).address("bus://gxml").build();

    // Each resource advertises its languages...
    let rel_langs =
        core_rel.get_property_document(&rel.db_resource).unwrap().generic_query_languages;
    let xml_langs =
        core_xml.get_property_document(&xsvc.root_collection).unwrap().generic_query_languages;
    assert!(rel_langs.contains(&dais::dair::resources::SQL_LANGUAGE_URI.to_string()));
    assert!(xml_langs.contains(&dais::daix::languages::XPATH.to_string()));

    // ...and serves them through the same operation.
    let rows =
        core_rel.generic_query(&rel.db_resource, &rel_langs[0], "SELECT COUNT(*) FROM t").unwrap();
    assert!(!rows.is_empty());
    let nodes = core_xml
        .generic_query(&xsvc.root_collection, dais::daix::languages::XPATH, "/r/a")
        .unwrap();
    assert_eq!(nodes[0].text(), "1");

    // Wrong language, same fault, both realisations.
    let e1 = core_rel.generic_query(&rel.db_resource, "urn:nope", "x").unwrap_err();
    let e2 = core_xml.generic_query(&xsvc.root_collection, "urn:nope", "x").unwrap_err();
    assert_eq!(e1.dais_fault(), Some(DaisFault::InvalidLanguage));
    assert_eq!(e2.dais_fault(), Some(DaisFault::InvalidLanguage));
}

#[test]
fn daif_realisation_follows_the_family_pattern() {
    // The files realisation (the paper's §6 future work) exposes the same
    // core operations, factory pattern and property-document shape.
    let bus = Bus::new();
    let store = dais::daif::FileStore::new();
    for i in 0..6 {
        store.write(&format!("logs/day{i}.log"), vec![b'x'; 100 * (i + 1)]).unwrap();
    }
    let svc = dais::daif::FileService::launch(&bus, "bus://flog", store, Default::default());
    let core = dais::core::CoreClient::builder().bus(bus.clone()).address("bus://flog").build();

    // Core property document with WS-DAIF extensions.
    let doc = core.get_property_document_xml(&svc.root).unwrap();
    assert!(doc.child(ns::WSDAI, "DataResourceAbstractName").is_some());
    assert_eq!(doc.child_text(dais::daif::WSDAIF_NS, "NumberOfFiles").as_deref(), Some("6"));

    // Indirect access: select → EPR → paged members.
    let client = dais::soap::ServiceClient::new(bus, "bus://flog");
    let body = dais::core::messages::request("FileSelectFactoryRequest", &svc.root).with_child(
        dais::xml::XmlElement::new(dais::daif::WSDAIF_NS, "wsdaif", "Pattern").with_text("logs/*"),
    );
    let resp = client.request(dais::daif::actions::FILE_SELECT_FACTORY, body).unwrap();
    let epr = dais::core::factory::parse_factory_response(&resp).unwrap();
    let set = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    // It is a service-managed derived resource with a parent, like every
    // other realisation's factory output.
    let props = core.get_property_document(&set).unwrap();
    assert_eq!(props.parent.as_ref(), Some(&svc.root));
    assert_eq!(props.management, dais::core::properties::ResourceManagementKind::ServiceManaged);
    // And it pages.
    let body = dais::core::messages::request("GetFileSetMembersRequest", &set)
        .with_child(
            dais::xml::XmlElement::new(dais::daif::WSDAIF_NS, "wsdaif", "StartPosition")
                .with_text("4"),
        )
        .with_child(
            dais::xml::XmlElement::new(dais::daif::WSDAIF_NS, "wsdaif", "Count").with_text("10"),
        );
    let resp = client.request(dais::daif::actions::GET_FILE_SET_MEMBERS, body).unwrap();
    assert_eq!(resp.children_named(dais::daif::WSDAIF_NS, "File").count(), 2);
}
