//! A whole-fabric concurrency test: relational, XML and file services on
//! one bus, hammered by concurrent consumers of every kind. Exercises the
//! `ConcurrentAccess=true` promise across realisations and the bus's
//! thread-safety under mixed load.

use dais::obs::Span;
use dais::prelude::*;
use dais::soap::bus::{BusError, StatsSnapshot};
use dais::soap::interceptor::{CallInfo, Intercept, Interceptor};
use dais::soap::{Envelope, ServiceClient, SoapDispatcher};
use dais::xml::parse;
use dais::xml::XmlElement;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[test]
fn mixed_fabric_under_concurrency() {
    let bus = Bus::new();

    // Relational service.
    let db = Database::new("fabric");
    db.execute("CREATE TABLE hits (worker INTEGER, n INTEGER)", &[]).unwrap();
    let rel = RelationalService::launch(&bus, "bus://rel", db, Default::default());

    // XML service.
    let xml = XmlService::launch(&bus, "bus://xml", XmlDatabase::new("fabric"), Default::default());

    // File service.
    let files = FileService::launch(&bus, "bus://files", FileStore::new(), Default::default());

    let workers = 9;
    let iterations = 20;
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let bus = bus.clone();
            let rel_name = rel.db_resource.clone();
            let xml_name = xml.root_collection.clone();
            let files_name = files.root.clone();
            std::thread::spawn(move || {
                match w % 3 {
                    0 => {
                        // Relational consumer: insert then aggregate.
                        let c = SqlClient::builder().bus(bus).address("bus://rel").build();
                        for i in 0..iterations {
                            c.execute(
                                &rel_name,
                                "INSERT INTO hits VALUES (?, ?)",
                                &[Value::Int(w as i64), Value::Int(i as i64)],
                            )
                            .unwrap();
                        }
                        let data = c
                            .execute(
                                &rel_name,
                                "SELECT COUNT(*) FROM hits WHERE worker = ?",
                                &[Value::Int(w as i64)],
                            )
                            .unwrap();
                        assert_eq!(
                            data.rowset().unwrap().rows[0][0],
                            Value::Int(iterations as i64)
                        );
                    }
                    1 => {
                        // XML consumer: documents + queries.
                        let c = XmlClient::builder().bus(bus).address("bus://xml").build();
                        for i in 0..iterations {
                            c.add_documents(
                                &xml_name,
                                &[(
                                    format!("w{w}_{i}"),
                                    parse(&format!("<e worker='{w}'><n>{i}</n></e>")).unwrap(),
                                )],
                            )
                            .unwrap();
                        }
                        let hits = c.xpath(&xml_name, &format!("/e[@worker = {w}]")).unwrap();
                        assert_eq!(hits.len(), iterations);
                    }
                    _ => {
                        // File consumer: write + list through the wire.
                        let c = dais::soap::ServiceClient::new(bus, "bus://files");
                        for i in 0..iterations {
                            let body =
                                dais::core::messages::request("WriteFileRequest", &files_name)
                                    .with_child(
                                        dais::xml::XmlElement::new(
                                            dais::daif::WSDAIF_NS,
                                            "wsdaif",
                                            "Path",
                                        )
                                        .with_text(format!("w{w}/f{i}.bin")),
                                    )
                                    .with_child(
                                        dais::xml::XmlElement::new(
                                            dais::daif::WSDAIF_NS,
                                            "wsdaif",
                                            "Contents",
                                        )
                                        .with_text(dais::daif::base64::encode(&[w as u8, i as u8])),
                                    );
                            c.request(dais::daif::actions::WRITE_FILE, body).unwrap();
                        }
                        let body = dais::core::messages::request("ListFilesRequest", &files_name)
                            .with_child(
                                dais::xml::XmlElement::new(
                                    dais::daif::WSDAIF_NS,
                                    "wsdaif",
                                    "Pattern",
                                )
                                .with_text(format!("w{w}/*")),
                            );
                        let resp = c.request(dais::daif::actions::LIST_FILES, body).unwrap();
                        assert_eq!(
                            resp.children_named(dais::daif::WSDAIF_NS, "File").count(),
                            iterations
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Fabric-wide invariants.
    let c = SqlClient::builder().bus(bus.clone()).address("bus://rel").build();
    let total = c.execute(&rel.db_resource, "SELECT COUNT(*) FROM hits", &[]).unwrap();
    assert_eq!(total.rowset().unwrap().rows[0][0], Value::Int(3 * iterations as i64));
    let xc = XmlClient::builder().bus(bus.clone()).address("bus://xml").build();
    assert_eq!(xc.get_documents(&xml.root_collection, &[]).unwrap().len(), 3 * iterations);
    let stats = bus.stats();
    assert_eq!(stats.faults, 0, "no faults under the mixed workload");
    assert!(stats.messages >= (workers * iterations) as u64);
}

#[test]
fn concurrent_derivation_and_destruction() {
    // Factories and destroys racing on one service must never corrupt the
    // registry or leak resources.
    let bus = Bus::new();
    let db = Database::new("race");
    db.execute("CREATE TABLE t (a INTEGER)", &[]).unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)", &[]).unwrap();
    let svc = RelationalService::launch(&bus, "bus://race", db, Default::default());

    let handles: Vec<_> = (0..6)
        .map(|_| {
            let bus = bus.clone();
            let name = svc.db_resource.clone();
            std::thread::spawn(move || {
                let c = SqlClient::builder().bus(bus).address("bus://race").build();
                for _ in 0..15 {
                    let epr = c.execute_factory(&name, "SELECT * FROM t", &[], None, None).unwrap();
                    let derived = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
                    let rowset = c.get_sql_rowset(&derived, 1).unwrap();
                    assert_eq!(rowset.row_count(), 3);
                    c.core().destroy(&derived).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Only the database and monitoring resources remain.
    assert_eq!(svc.ctx.registry.len(), 2);
    assert!(svc.ctx.registry.get(&svc.db_resource).is_some());
    assert!(svc.ctx.registry.get(&svc.monitoring).is_some());
}

// ---------------------------------------------------------------------
// The sharded executor under load: backpressure, billing and tracing.
// ---------------------------------------------------------------------

fn message(text: &str) -> XmlElement {
    XmlElement::new_local("m").with_text(text)
}

/// Look up one span attribute, empty when absent.
fn attr<'s>(span: &'s Span, key: &str) -> &'s str {
    span.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str()).unwrap_or("")
}

/// An echo dispatcher whose handler parks until the shared gate opens,
/// counting entries so tests can wait for a worker to pick a job up.
fn gated_echo(gate: &Arc<(Mutex<bool>, Condvar)>, entered: &Arc<AtomicU32>) -> SoapDispatcher {
    let mut d = SoapDispatcher::new();
    let gate = Arc::clone(gate);
    let entered = Arc::clone(entered);
    d.register("urn:block", move |req: &Envelope| {
        entered.fetch_add(1, Ordering::SeqCst);
        let (flag, cvar) = &*gate;
        let mut open = flag.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
        Ok(req.clone())
    });
    d
}

#[test]
fn seeded_stress_run_loses_no_replies_and_keeps_trace_trees() {
    let bus = Bus::new();
    for i in 0..4 {
        let mut d = SoapDispatcher::new();
        d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
        bus.register(format!("bus://stress/{i}"), Arc::new(d));
    }
    bus.enable_tracing(0xFAB);
    let injector = FaultInjector::new(0xFAB);
    injector.set_default_policy(
        FaultPolicy::default().drop(0.10).delay(0.25, Duration::from_micros(400)),
    );
    bus.add_interceptor(Arc::new(injector.clone()));
    bus.install_executor(ExecutorConfig::new(8).queue_capacity(256).seed(0xFAB));

    // One pipelined consumer per endpoint, submissions interleaved so
    // every shard sees load at once.
    let clients: Vec<ServiceClient> =
        (0..4).map(|i| ServiceClient::new(bus.clone(), format!("bus://stress/{i}"))).collect();
    let total = 160usize;
    let replies: Vec<_> = (0..total)
        .map(|n| clients[n % 4].call_async("urn:echo", message(&n.to_string())).unwrap())
        .collect();

    // No lost replies: every handle resolves, to the echo or to the
    // injected drop — nothing hangs and nothing vanishes.
    let mut ok = 0u64;
    let mut failed = 0u64;
    for (n, reply) in replies.into_iter().enumerate() {
        match reply.wait() {
            Ok(echoed) => {
                assert_eq!(echoed.text(), n.to_string(), "replies stay bound to their request");
                ok += 1;
            }
            Err(_) => failed += 1,
        }
    }
    assert_eq!(ok + failed, total as u64);
    let injected = injector.snapshot();
    assert_eq!(failed, injected.drops, "exactly the dropped requests fail");
    assert!(injected.drops > 0 && injected.delays > 0, "the chaos was real: {injected:?}");
    assert_eq!(bus.stats().queue_depth, 0, "the queues drained");
    bus.shutdown_executor();

    // Trace-tree integrity: every request's tree is client.call →
    // bus.enqueue → bus.execute, with the queue wait measured.
    let sink = bus.obs().tracer.take();
    let roots = sink.spans_named("client.call");
    let enqueues = sink.spans_named("bus.enqueue");
    let executes = sink.spans_named("bus.execute");
    assert_eq!(roots.len(), total);
    assert_eq!(enqueues.len(), total);
    assert_eq!(executes.len(), total);
    for execute in &executes {
        let enqueue = enqueues
            .iter()
            .find(|e| Some(e.span_id) == execute.parent_id)
            .expect("every execute hangs off its enqueue");
        let root = roots
            .iter()
            .find(|r| Some(r.span_id) == enqueue.parent_id)
            .expect("every enqueue hangs off a client root");
        assert_eq!(execute.trace_id, root.trace_id, "one trace per request");
        assert!(attr(execute, "queue_wait_ns").parse::<u64>().is_ok());
    }
}

#[test]
fn overloaded_is_returned_exactly_when_the_queue_is_at_capacity() {
    // Property over capacities: with the one worker parked in the
    // handler, admission accepts exactly `capacity` further requests and
    // sheds the rest — `Overloaded` if and only if the queue is full.
    for (capacity, submits) in [(1usize, 6usize), (2, 6), (4, 6), (4, 3)] {
        let bus = Bus::new();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new(AtomicU32::new(0));
        bus.register("bus://gate", Arc::new(gated_echo(&gate, &entered)));
        let hint = Duration::from_millis(2);
        bus.install_executor(
            ExecutorConfig::new(1)
                .queue_capacity(capacity)
                .max_in_flight(1)
                .retry_after(hint)
                .seed(9),
        );

        // Park the worker, then race `submits` more requests at the queue.
        let first =
            bus.call_async("bus://gate", "urn:block", &Envelope::with_body(message("0"))).unwrap();
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let mut admitted = vec![first];
        let mut shed = 0usize;
        for n in 1..=submits {
            let envelope = Envelope::with_body(message(&n.to_string()));
            match bus.call_async("bus://gate", "urn:block", &envelope) {
                Ok(pending) => admitted.push(pending),
                Err(BusError::Overloaded { endpoint, retry_after }) => {
                    assert_eq!(endpoint, "bus://gate");
                    assert_eq!(retry_after, hint, "the hint echoes the configuration");
                    assert_eq!(
                        bus.endpoint_stats("bus://gate").queue_depth,
                        capacity as u64,
                        "a shed request found the queue genuinely full"
                    );
                    shed += 1;
                }
                Err(other) => panic!("unexpected admission error: {other:?}"),
            }
        }
        assert_eq!(shed, submits.saturating_sub(capacity), "capacity {capacity}");
        assert_eq!(bus.endpoint_stats("bus://gate").shed, shed as u64);

        // Open the gate: everything admitted completes; nothing is lost.
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        for pending in admitted {
            assert!(pending.wait().is_ok(), "an admitted request was lost");
        }
        assert_eq!(bus.endpoint_stats("bus://gate").queue_depth, 0);
        bus.shutdown_executor();
    }
}

/// Rejects every response on its way back to the caller.
struct AbortReplies;

impl Interceptor for AbortReplies {
    fn on_response(&self, _call: &CallInfo<'_>, _bytes: &[u8]) -> Intercept {
        Intercept::Abort(BusError::Timeout("scripted response abort".into()))
    }
}

fn response_abort_run(queued: bool) -> StatsSnapshot {
    let bus = Bus::new();
    let mut d = SoapDispatcher::new();
    d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
    bus.register("bus://bill", Arc::new(d));
    bus.add_interceptor(Arc::new(AbortReplies));
    if queued {
        bus.install_executor(ExecutorConfig::new(2).seed(5));
    }
    for n in 0..3 {
        let envelope = Envelope::with_body(message(&n.to_string()));
        let err = bus.call("bus://bill", "urn:echo", &envelope).unwrap_err();
        assert!(matches!(err, BusError::Timeout(_)), "the abort surfaces: {err:?}");
    }
    let stats = bus.endpoint_stats("bus://bill");
    if queued {
        bus.shutdown_executor();
    }
    stats
}

#[test]
fn response_abort_billing_is_identical_on_queued_and_inline_paths() {
    // Regression: per-call statistics are billed inside `Bus::perform`,
    // so a response-phase `Intercept::Abort` costs exactly the same on
    // the executor path as it does inline — only the queue gauges (peak
    // depth) may legitimately differ between the two modes.
    let inline = response_abort_run(false);
    let queued = response_abort_run(true);
    let traffic = |s: &StatsSnapshot| {
        (s.messages, s.request_bytes, s.response_bytes, s.faults, s.injected, s.retries, s.shed)
    };
    assert_eq!(traffic(&inline), traffic(&queued));
    assert_eq!(inline.messages, 3);
    assert_eq!(inline.queue_peak, 0);
    assert!(queued.queue_peak >= 1, "the queued path really went through the queue");
}
