//! A whole-fabric concurrency test: relational, XML and file services on
//! one bus, hammered by concurrent consumers of every kind. Exercises the
//! `ConcurrentAccess=true` promise across realisations and the bus's
//! thread-safety under mixed load.

use dais::prelude::*;
use dais::xml::parse;

#[test]
fn mixed_fabric_under_concurrency() {
    let bus = Bus::new();

    // Relational service.
    let db = Database::new("fabric");
    db.execute("CREATE TABLE hits (worker INTEGER, n INTEGER)", &[]).unwrap();
    let rel = RelationalService::launch(&bus, "bus://rel", db, Default::default());

    // XML service.
    let xml = XmlService::launch(&bus, "bus://xml", XmlDatabase::new("fabric"), Default::default());

    // File service.
    let files = FileService::launch(&bus, "bus://files", FileStore::new(), Default::default());

    let workers = 9;
    let iterations = 20;
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let bus = bus.clone();
            let rel_name = rel.db_resource.clone();
            let xml_name = xml.root_collection.clone();
            let files_name = files.root.clone();
            std::thread::spawn(move || {
                match w % 3 {
                    0 => {
                        // Relational consumer: insert then aggregate.
                        let c = SqlClient::new(bus, "bus://rel");
                        for i in 0..iterations {
                            c.execute(
                                &rel_name,
                                "INSERT INTO hits VALUES (?, ?)",
                                &[Value::Int(w as i64), Value::Int(i as i64)],
                            )
                            .unwrap();
                        }
                        let data = c
                            .execute(
                                &rel_name,
                                "SELECT COUNT(*) FROM hits WHERE worker = ?",
                                &[Value::Int(w as i64)],
                            )
                            .unwrap();
                        assert_eq!(
                            data.rowset().unwrap().rows[0][0],
                            Value::Int(iterations as i64)
                        );
                    }
                    1 => {
                        // XML consumer: documents + queries.
                        let c = XmlClient::new(bus, "bus://xml");
                        for i in 0..iterations {
                            c.add_documents(
                                &xml_name,
                                &[(
                                    format!("w{w}_{i}"),
                                    parse(&format!("<e worker='{w}'><n>{i}</n></e>")).unwrap(),
                                )],
                            )
                            .unwrap();
                        }
                        let hits = c.xpath(&xml_name, &format!("/e[@worker = {w}]")).unwrap();
                        assert_eq!(hits.len(), iterations);
                    }
                    _ => {
                        // File consumer: write + list through the wire.
                        let c = dais::soap::ServiceClient::new(bus, "bus://files");
                        for i in 0..iterations {
                            let body =
                                dais::core::messages::request("WriteFileRequest", &files_name)
                                    .with_child(
                                        dais::xml::XmlElement::new(
                                            dais::daif::WSDAIF_NS,
                                            "wsdaif",
                                            "Path",
                                        )
                                        .with_text(format!("w{w}/f{i}.bin")),
                                    )
                                    .with_child(
                                        dais::xml::XmlElement::new(
                                            dais::daif::WSDAIF_NS,
                                            "wsdaif",
                                            "Contents",
                                        )
                                        .with_text(dais::daif::base64::encode(&[w as u8, i as u8])),
                                    );
                            c.request(dais::daif::actions::WRITE_FILE, body).unwrap();
                        }
                        let body = dais::core::messages::request("ListFilesRequest", &files_name)
                            .with_child(
                                dais::xml::XmlElement::new(
                                    dais::daif::WSDAIF_NS,
                                    "wsdaif",
                                    "Pattern",
                                )
                                .with_text(format!("w{w}/*")),
                            );
                        let resp = c.request(dais::daif::actions::LIST_FILES, body).unwrap();
                        assert_eq!(
                            resp.children_named(dais::daif::WSDAIF_NS, "File").count(),
                            iterations
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Fabric-wide invariants.
    let c = SqlClient::new(bus.clone(), "bus://rel");
    let total = c.execute(&rel.db_resource, "SELECT COUNT(*) FROM hits", &[]).unwrap();
    assert_eq!(total.rowset().unwrap().rows[0][0], Value::Int(3 * iterations as i64));
    let xc = XmlClient::new(bus.clone(), "bus://xml");
    assert_eq!(xc.get_documents(&xml.root_collection, &[]).unwrap().len(), 3 * iterations);
    let stats = bus.stats();
    assert_eq!(stats.faults, 0, "no faults under the mixed workload");
    assert!(stats.messages >= (workers * iterations) as u64);
}

#[test]
fn concurrent_derivation_and_destruction() {
    // Factories and destroys racing on one service must never corrupt the
    // registry or leak resources.
    let bus = Bus::new();
    let db = Database::new("race");
    db.execute("CREATE TABLE t (a INTEGER)", &[]).unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)", &[]).unwrap();
    let svc = RelationalService::launch(&bus, "bus://race", db, Default::default());

    let handles: Vec<_> = (0..6)
        .map(|_| {
            let bus = bus.clone();
            let name = svc.db_resource.clone();
            std::thread::spawn(move || {
                let c = SqlClient::new(bus, "bus://race");
                for _ in 0..15 {
                    let epr = c.execute_factory(&name, "SELECT * FROM t", &[], None, None).unwrap();
                    let derived = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
                    let rowset = c.get_sql_rowset(&derived, 1).unwrap();
                    assert_eq!(rowset.row_count(), 3);
                    c.core().destroy(&derived).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Only the database and monitoring resources remain.
    assert_eq!(svc.ctx.registry.len(), 2);
    assert!(svc.ctx.registry.get(&svc.db_resource).is_some());
    assert!(svc.ctx.registry.get(&svc.monitoring).is_some());
}
