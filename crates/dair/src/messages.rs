//! WS-DAIR message forms: requests, the `SQLResponse` structure, and
//! SOAP action URIs.

use dais_core::messages as core_messages;
use dais_core::AbstractName;
use dais_soap::fault::{DaisFault, Fault};
use dais_sql::{Rowset, SqlCommunicationArea, SqlType, Value};
use dais_xml::{ns, XmlElement};

/// SOAP action URIs for the WS-DAIR operations (Figure 6).
pub mod actions {
    const BASE: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIR";

    pub const SQL_EXECUTE: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIR/SQLExecute";
    pub const GET_SQL_PROPERTY_DOCUMENT: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLPropertyDocument";
    pub const SQL_EXECUTE_FACTORY: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/SQLExecuteFactory";
    pub const GET_SQL_RESPONSE_PROPERTY_DOCUMENT: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLResponsePropertyDocument";
    pub const GET_SQL_ROWSET: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLRowset";
    pub const GET_SQL_UPDATE_COUNT: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLUpdateCount";
    pub const GET_SQL_RETURN_VALUE: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLReturnValue";
    pub const GET_SQL_OUTPUT_PARAMETER: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLOutputParameter";
    pub const GET_SQL_COMMUNICATION_AREA: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLCommunicationArea";
    pub const GET_SQL_RESPONSE_ITEM: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLResponseItem";
    pub const SQL_ROWSET_FACTORY: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/SQLRowsetFactory";
    pub const GET_TUPLES: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetTuples";
    pub const GET_ROWSET_PROPERTY_DOCUMENT: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetRowsetPropertyDocument";

    /// All WS-DAIR actions (the Figure 6 inventory), for conformance tests.
    pub const ALL: &[&str] = &[
        SQL_EXECUTE,
        GET_SQL_PROPERTY_DOCUMENT,
        SQL_EXECUTE_FACTORY,
        GET_SQL_RESPONSE_PROPERTY_DOCUMENT,
        GET_SQL_ROWSET,
        GET_SQL_UPDATE_COUNT,
        GET_SQL_RETURN_VALUE,
        GET_SQL_OUTPUT_PARAMETER,
        GET_SQL_COMMUNICATION_AREA,
        GET_SQL_RESPONSE_ITEM,
        SQL_ROWSET_FACTORY,
        GET_TUPLES,
        GET_ROWSET_PROPERTY_DOCUMENT,
    ];

    /// The namespace all the actions live under.
    pub fn base() -> &'static str {
        BASE
    }
}

/// Build an `SQLExecuteRequest` (Figure 2): abstract name, requested
/// dataset format, the SQL expression and optional positional parameters.
pub fn sql_execute_request(
    resource: &AbstractName,
    format_uri: &str,
    sql: &str,
    params: &[Value],
) -> XmlElement {
    let mut req = core_messages::request("SQLExecuteRequest", resource);
    req.push(XmlElement::new(ns::WSDAI, "wsdai", "DataFormatURI").with_text(format_uri));
    let mut expr = XmlElement::new(ns::WSDAIR, "wsdair", "SQLExpression").with_text(sql);
    for (i, p) in params.iter().enumerate() {
        expr.push(render_parameter(i, p));
    }
    req.push(expr);
    req
}

fn render_parameter(index: usize, value: &Value) -> XmlElement {
    let mut el = XmlElement::new(ns::WSDAIR, "wsdair", "SQLParameter")
        .with_attr("index", (index + 1).to_string());
    match value {
        Value::Null => el.set_attr("null", "true"),
        v => {
            el.set_attr("type", v.sql_type().map(|t| t.name()).unwrap_or("VARCHAR"));
            let text = v.to_display_string();
            // Values with leading/trailing whitespace travel as an
            // attribute: attributes survive whitespace-stripping parsers.
            if text.trim() != text || text.is_empty() {
                el.set_attr("value", text);
            } else {
                el.push_text(text);
            }
        }
    }
    el
}

/// Parse `(sql, params)` out of an `SQLExecuteRequest`-shaped body.
pub fn parse_sql_expression(body: &XmlElement) -> Result<(String, Vec<Value>), Fault> {
    let expr = body
        .child(ns::WSDAIR, "SQLExpression")
        .ok_or_else(|| Fault::dais(DaisFault::InvalidExpression, "missing wsdair:SQLExpression"))?;
    // The statement text is the element's own text, excluding parameters.
    let sql: String = expr.children.iter().filter_map(|c| c.as_text()).collect::<Vec<_>>().join("");
    let mut params: Vec<(usize, Value)> = Vec::new();
    for p in expr.children_named(ns::WSDAIR, "SQLParameter") {
        let index: usize = p.attribute("index").and_then(|t| t.parse().ok()).ok_or_else(|| {
            Fault::dais(DaisFault::InvalidExpression, "SQLParameter missing index")
        })?;
        if index == 0 {
            return Err(Fault::dais(
                DaisFault::InvalidExpression,
                "SQLParameter indexes are 1-based",
            ));
        }
        let value = if p.attribute("null") == Some("true") {
            Value::Null
        } else {
            let ty = p.attribute("type").and_then(SqlType::parse).ok_or_else(|| {
                Fault::dais(DaisFault::InvalidExpression, "SQLParameter missing type")
            })?;
            let text = match p.attribute("value") {
                Some(v) => v.to_string(),
                None => p.text(),
            };
            Value::parse_typed(&text, ty)
                .map_err(|e| Fault::dais(DaisFault::InvalidExpression, e.to_string()))?
        };
        params.push((index - 1, value));
    }
    params.sort_by_key(|(i, _)| *i);
    for (expected, (actual, _)) in params.iter().enumerate() {
        if expected != *actual {
            return Err(Fault::dais(
                DaisFault::InvalidExpression,
                "SQLParameter indexes must be contiguous from 1",
            ));
        }
    }
    Ok((sql.trim().to_string(), params.into_iter().map(|(_, v)| v).collect()))
}

/// The payload of an SQL response: what a statement produced. This is the
/// state held by SQL response resources and embedded in `SQLExecuteResponse`
/// messages (Figure 2's "information from the SQL communication area").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SqlResponseData {
    pub rowsets: Vec<Rowset>,
    pub update_counts: Vec<u64>,
    /// Return value of a procedure call (unused by the embedded engine,
    /// present for interface completeness).
    pub return_value: Option<Value>,
    /// Output parameters of a procedure call (ditto).
    pub output_parameters: Vec<(String, Value)>,
    pub communication_area: SqlCommunicationArea,
}

impl SqlResponseData {
    /// Build from a statement outcome.
    pub fn from_result(result: &dais_sql::StatementResult) -> SqlResponseData {
        let mut data = SqlResponseData {
            communication_area: result.communication_area(),
            ..Default::default()
        };
        match result {
            dais_sql::StatementResult::Query(r) => data.rowsets.push(r.clone()),
            dais_sql::StatementResult::Update(n) => data.update_counts.push(*n),
            dais_sql::StatementResult::Command(_) => {}
        }
        data
    }

    /// Serialise as a `wsdair:SQLResponse` element.
    pub fn to_xml(&self) -> XmlElement {
        let mut el = XmlElement::new(ns::WSDAIR, "wsdair", "SQLResponse");
        for r in &self.rowsets {
            el.push(XmlElement::new(ns::WSDAIR, "wsdair", "SQLRowset").with_child(r.to_xml()));
        }
        for n in &self.update_counts {
            el.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "SQLUpdateCount").with_text(n.to_string()),
            );
        }
        if let Some(v) = &self.return_value {
            el.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "SQLReturnValue")
                    .with_text(v.to_display_string()),
            );
        }
        for (name, v) in &self.output_parameters {
            el.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "SQLOutputParameter")
                    .with_attr("name", name)
                    .with_text(v.to_display_string()),
            );
        }
        el.push(self.communication_area.to_xml());
        el
    }

    /// Parse back from the message form.
    pub fn from_xml(el: &XmlElement) -> Result<SqlResponseData, Fault> {
        if !el.name.is(ns::WSDAIR, "SQLResponse") {
            return Err(Fault::client(format!("expected wsdair:SQLResponse, found {}", el.name)));
        }
        let mut data = SqlResponseData::default();
        for rs in el.children_named(ns::WSDAIR, "SQLRowset") {
            let inner = rs
                .child(ns::ROWSET, "webRowSet")
                .ok_or_else(|| Fault::client("SQLRowset carries no webRowSet"))?;
            data.rowsets.push(Rowset::from_xml(inner).map_err(|e| Fault::client(e.to_string()))?);
        }
        for n in el.children_named(ns::WSDAIR, "SQLUpdateCount") {
            data.update_counts.push(n.text().trim().parse().unwrap_or(0));
        }
        if let Some(rv) = el.child(ns::WSDAIR, "SQLReturnValue") {
            data.return_value = Some(Value::Str(rv.text()));
        }
        for p in el.children_named(ns::WSDAIR, "SQLOutputParameter") {
            data.output_parameters
                .push((p.attribute("name").unwrap_or_default().to_string(), Value::Str(p.text())));
        }
        data.communication_area = el
            .child(ns::WSDAIR, "SQLCommunicationArea")
            .and_then(SqlCommunicationArea::from_xml)
            .unwrap_or_default();
        Ok(data)
    }

    /// The first rowset, if any.
    pub fn rowset(&self) -> Option<&Rowset> {
        self.rowsets.first()
    }

    /// The first update count, if any.
    pub fn update_count(&self) -> Option<u64> {
        self.update_counts.first().copied()
    }
}

/// Build a `GetTuplesRequest` (Figure 5): a rowset page by position.
pub fn get_tuples_request(resource: &AbstractName, start: usize, count: usize) -> XmlElement {
    core_messages::request("GetTuplesRequest", resource)
        .with_child(
            XmlElement::new(ns::WSDAIR, "wsdair", "StartPosition").with_text(start.to_string()),
        )
        .with_child(XmlElement::new(ns::WSDAIR, "wsdair", "Count").with_text(count.to_string()))
}

/// Parse `(start, count)` from a `GetTuplesRequest`.
pub fn parse_get_tuples(body: &XmlElement) -> Result<(usize, usize), Fault> {
    let start = body
        .child_text(ns::WSDAIR, "StartPosition")
        .and_then(|t| t.trim().parse().ok())
        .ok_or_else(|| Fault::client("GetTuples missing StartPosition"))?;
    let count = body
        .child_text(ns::WSDAIR, "Count")
        .and_then(|t| t.trim().parse().ok())
        .ok_or_else(|| Fault::client("GetTuples missing Count"))?;
    Ok((start, count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_sql::RowsetColumn;

    fn name() -> AbstractName {
        AbstractName::new("urn:dais:svc:db:0").unwrap()
    }

    #[test]
    fn execute_request_roundtrip() {
        let req = sql_execute_request(
            &name(),
            ns::ROWSET,
            "SELECT * FROM t WHERE id = ? AND tag = ?",
            &[Value::Int(5), Value::Str("x".into())],
        );
        let (sql, params) = parse_sql_expression(&req).unwrap();
        assert_eq!(sql, "SELECT * FROM t WHERE id = ? AND tag = ?");
        assert_eq!(params, vec![Value::Int(5), Value::Str("x".into())]);
        assert_eq!(dais_core::messages::extract_format_uri(&req).as_deref(), Some(ns::ROWSET));
    }

    #[test]
    fn null_parameters() {
        let req = sql_execute_request(&name(), ns::ROWSET, "SELECT ?", &[Value::Null]);
        let (_, params) = parse_sql_expression(&req).unwrap();
        assert_eq!(params, vec![Value::Null]);
    }

    #[test]
    fn whitespace_edged_parameters_survive_the_wire() {
        // Whitespace-only and whitespace-edged strings travel as
        // attributes so the protocol parser's text stripping cannot
        // corrupt them.
        for s in [" ", "  padded  ", "", "\t"] {
            let req = sql_execute_request(&name(), ns::ROWSET, "SELECT ?", &[Value::Str(s.into())]);
            let text = dais_xml::to_string(&req);
            let parsed = dais_xml::parse(&text).unwrap();
            let (_, params) = parse_sql_expression(&parsed).unwrap();
            assert_eq!(params, vec![Value::Str(s.into())], "{s:?}");
        }
    }

    #[test]
    fn parameter_validation() {
        // Missing expression.
        let body = dais_core::messages::request("SQLExecuteRequest", &name());
        assert!(parse_sql_expression(&body).is_err());
        // Bad index.
        let mut expr = XmlElement::new(ns::WSDAIR, "wsdair", "SQLExpression").with_text("SELECT ?");
        expr.push(
            XmlElement::new(ns::WSDAIR, "wsdair", "SQLParameter")
                .with_attr("index", "3")
                .with_attr("type", "INTEGER")
                .with_text("1"),
        );
        let body = dais_core::messages::request("SQLExecuteRequest", &name()).with_child(expr);
        assert!(parse_sql_expression(&body).is_err());
    }

    #[test]
    fn response_data_roundtrip() {
        let mut rowset = Rowset::new(vec![RowsetColumn { name: "n".into(), ty: SqlType::Integer }]);
        rowset.rows.push(vec![Value::Int(1)]);
        rowset.rows.push(vec![Value::Int(2)]);
        let data = SqlResponseData {
            rowsets: vec![rowset],
            update_counts: vec![3],
            return_value: None,
            output_parameters: vec![],
            communication_area: SqlCommunicationArea::with_update_count(3),
        };
        let rt = SqlResponseData::from_xml(&data.to_xml()).unwrap();
        assert_eq!(rt, data);
        assert_eq!(rt.rowset().unwrap().row_count(), 2);
        assert_eq!(rt.update_count(), Some(3));
    }

    #[test]
    fn response_from_statement_results() {
        let db = dais_sql::Database::new("t");
        db.execute("CREATE TABLE t (x INTEGER)", &[]).unwrap();
        let r = db.execute("INSERT INTO t VALUES (1), (2)", &[]).unwrap();
        let data = SqlResponseData::from_result(&r);
        assert_eq!(data.update_counts, vec![2]);
        assert!(data.rowsets.is_empty());
        let r = db.execute("SELECT * FROM t", &[]).unwrap();
        let data = SqlResponseData::from_result(&r);
        assert_eq!(data.rowsets.len(), 1);
        assert_eq!(data.communication_area.sqlstate, "00000");
    }

    #[test]
    fn get_tuples_roundtrip() {
        let req = get_tuples_request(&name(), 10, 25);
        assert_eq!(parse_get_tuples(&req).unwrap(), (10, 25));
        let bad = dais_core::messages::request("GetTuplesRequest", &name());
        assert!(parse_get_tuples(&bad).is_err());
    }
}
