//! WS-DAIR message forms: requests, the `SQLResponse` structure, and
//! SOAP action URIs.

use dais_core::messages as core_messages;
use dais_core::AbstractName;
use dais_soap::fault::{DaisFault, Fault};
use dais_sql::{
    RowStream, Rowset, RowsetCursor, RowsetWriter, SqlCommunicationArea, SqlType, Value,
};
use dais_xml::{ns, PullEvent, PullParser, QName, XmlElement, XmlSink, XmlWriter};

/// SOAP action URIs for the WS-DAIR operations (Figure 6).
pub mod actions {
    const BASE: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIR";

    pub const SQL_EXECUTE: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIR/SQLExecute";
    pub const GET_SQL_PROPERTY_DOCUMENT: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLPropertyDocument";
    pub const SQL_EXECUTE_FACTORY: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/SQLExecuteFactory";
    pub const GET_SQL_RESPONSE_PROPERTY_DOCUMENT: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLResponsePropertyDocument";
    pub const GET_SQL_ROWSET: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLRowset";
    pub const GET_SQL_UPDATE_COUNT: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLUpdateCount";
    pub const GET_SQL_RETURN_VALUE: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLReturnValue";
    pub const GET_SQL_OUTPUT_PARAMETER: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLOutputParameter";
    pub const GET_SQL_COMMUNICATION_AREA: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLCommunicationArea";
    pub const GET_SQL_RESPONSE_ITEM: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetSQLResponseItem";
    pub const SQL_ROWSET_FACTORY: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/SQLRowsetFactory";
    pub const GET_TUPLES: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetTuples";
    pub const GET_ROWSET_PROPERTY_DOCUMENT: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAIR/GetRowsetPropertyDocument";

    /// All WS-DAIR actions (the Figure 6 inventory), for conformance tests.
    pub const ALL: &[&str] = &[
        SQL_EXECUTE,
        GET_SQL_PROPERTY_DOCUMENT,
        SQL_EXECUTE_FACTORY,
        GET_SQL_RESPONSE_PROPERTY_DOCUMENT,
        GET_SQL_ROWSET,
        GET_SQL_UPDATE_COUNT,
        GET_SQL_RETURN_VALUE,
        GET_SQL_OUTPUT_PARAMETER,
        GET_SQL_COMMUNICATION_AREA,
        GET_SQL_RESPONSE_ITEM,
        SQL_ROWSET_FACTORY,
        GET_TUPLES,
        GET_ROWSET_PROPERTY_DOCUMENT,
    ];

    /// The namespace all the actions live under.
    pub fn base() -> &'static str {
        BASE
    }
}

/// Build an `SQLExecuteRequest` (Figure 2): abstract name, requested
/// dataset format, the SQL expression and optional positional parameters.
pub fn sql_execute_request(
    resource: &AbstractName,
    format_uri: &str,
    sql: &str,
    params: &[Value],
) -> XmlElement {
    let mut req = core_messages::request("SQLExecuteRequest", resource);
    req.push(XmlElement::new(ns::WSDAI, "wsdai", "DataFormatURI").with_text(format_uri));
    let mut expr = XmlElement::new(ns::WSDAIR, "wsdair", "SQLExpression").with_text(sql);
    for (i, p) in params.iter().enumerate() {
        expr.push(render_parameter(i, p));
    }
    req.push(expr);
    req
}

fn render_parameter(index: usize, value: &Value) -> XmlElement {
    let mut el = XmlElement::new(ns::WSDAIR, "wsdair", "SQLParameter")
        .with_attr("index", (index + 1).to_string());
    match value {
        Value::Null => el.set_attr("null", "true"),
        v => {
            el.set_attr("type", v.sql_type().map(|t| t.name()).unwrap_or("VARCHAR"));
            let text = v.to_display_string();
            // Values with leading/trailing whitespace travel as an
            // attribute: attributes survive whitespace-stripping parsers.
            if text.trim() != text || text.is_empty() {
                el.set_attr("value", text);
            } else {
                el.push_text(text);
            }
        }
    }
    el
}

/// Parse `(sql, params)` out of an `SQLExecuteRequest`-shaped body.
pub fn parse_sql_expression(body: &XmlElement) -> Result<(String, Vec<Value>), Fault> {
    let expr = body
        .child(ns::WSDAIR, "SQLExpression")
        .ok_or_else(|| Fault::dais(DaisFault::InvalidExpression, "missing wsdair:SQLExpression"))?;
    // The statement text is the element's own text, excluding parameters.
    let sql: String = expr.children.iter().filter_map(|c| c.as_text()).collect::<Vec<_>>().join("");
    let mut params: Vec<(usize, Value)> = Vec::new();
    for p in expr.children_named(ns::WSDAIR, "SQLParameter") {
        let index: usize = p.attribute("index").and_then(|t| t.parse().ok()).ok_or_else(|| {
            Fault::dais(DaisFault::InvalidExpression, "SQLParameter missing index")
        })?;
        if index == 0 {
            return Err(Fault::dais(
                DaisFault::InvalidExpression,
                "SQLParameter indexes are 1-based",
            ));
        }
        let value = if p.attribute("null") == Some("true") {
            Value::Null
        } else {
            let ty = p.attribute("type").and_then(SqlType::parse).ok_or_else(|| {
                Fault::dais(DaisFault::InvalidExpression, "SQLParameter missing type")
            })?;
            let text = match p.attribute("value") {
                Some(v) => v.to_string(),
                None => p.text(),
            };
            Value::parse_typed(&text, ty)
                .map_err(|e| Fault::dais(DaisFault::InvalidExpression, e.to_string()))?
        };
        params.push((index - 1, value));
    }
    params.sort_by_key(|(i, _)| *i);
    for (expected, (actual, _)) in params.iter().enumerate() {
        if expected != *actual {
            return Err(Fault::dais(
                DaisFault::InvalidExpression,
                "SQLParameter indexes must be contiguous from 1",
            ));
        }
    }
    Ok((sql.trim().to_string(), params.into_iter().map(|(_, v)| v).collect()))
}

/// The payload of an SQL response: what a statement produced. This is the
/// state held by SQL response resources and embedded in `SQLExecuteResponse`
/// messages (Figure 2's "information from the SQL communication area").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SqlResponseData {
    pub rowsets: Vec<Rowset>,
    pub update_counts: Vec<u64>,
    /// Return value of a procedure call (unused by the embedded engine,
    /// present for interface completeness).
    pub return_value: Option<Value>,
    /// Output parameters of a procedure call (ditto).
    pub output_parameters: Vec<(String, Value)>,
    pub communication_area: SqlCommunicationArea,
}

impl SqlResponseData {
    /// Build from a statement outcome.
    pub fn from_result(result: &dais_sql::StatementResult) -> SqlResponseData {
        let mut data = SqlResponseData {
            communication_area: result.communication_area(),
            ..Default::default()
        };
        match result {
            dais_sql::StatementResult::Query(r) => data.rowsets.push(r.clone()),
            dais_sql::StatementResult::Update(n) => data.update_counts.push(*n),
            dais_sql::StatementResult::Command(_) => {}
        }
        data
    }

    /// Serialise as a `wsdair:SQLResponse` element.
    pub fn to_xml(&self) -> XmlElement {
        let mut el = XmlElement::new(ns::WSDAIR, "wsdair", "SQLResponse");
        for r in &self.rowsets {
            el.push(XmlElement::new(ns::WSDAIR, "wsdair", "SQLRowset").with_child(r.to_xml()));
        }
        for n in &self.update_counts {
            el.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "SQLUpdateCount").with_text(n.to_string()),
            );
        }
        if let Some(v) = &self.return_value {
            el.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "SQLReturnValue")
                    .with_text(v.to_display_string()),
            );
        }
        for (name, v) in &self.output_parameters {
            el.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "SQLOutputParameter")
                    .with_attr("name", name)
                    .with_text(v.to_display_string()),
            );
        }
        el.push(self.communication_area.to_xml());
        el
    }

    /// Parse back from the message form.
    pub fn from_xml(el: &XmlElement) -> Result<SqlResponseData, Fault> {
        if !el.name.is(ns::WSDAIR, "SQLResponse") {
            return Err(Fault::client(format!("expected wsdair:SQLResponse, found {}", el.name)));
        }
        let mut data = SqlResponseData::default();
        for rs in el.children_named(ns::WSDAIR, "SQLRowset") {
            let inner = rs
                .child(ns::ROWSET, "webRowSet")
                .ok_or_else(|| Fault::client("SQLRowset carries no webRowSet"))?;
            data.rowsets.push(Rowset::from_xml(inner).map_err(|e| Fault::client(e.to_string()))?);
        }
        for n in el.children_named(ns::WSDAIR, "SQLUpdateCount") {
            data.update_counts.push(n.text().trim().parse().unwrap_or(0));
        }
        if let Some(rv) = el.child(ns::WSDAIR, "SQLReturnValue") {
            data.return_value = Some(Value::Str(rv.text()));
        }
        for p in el.children_named(ns::WSDAIR, "SQLOutputParameter") {
            data.output_parameters
                .push((p.attribute("name").unwrap_or_default().to_string(), Value::Str(p.text())));
        }
        data.communication_area = el
            .child(ns::WSDAIR, "SQLCommunicationArea")
            .and_then(SqlCommunicationArea::from_xml)
            .unwrap_or_default();
        Ok(data)
    }

    /// The first rowset, if any.
    pub fn rowset(&self) -> Option<&Rowset> {
        self.rowsets.first()
    }

    /// The first update count, if any.
    pub fn update_count(&self) -> Option<u64> {
        self.update_counts.first().copied()
    }
}

/// Stream a `GetTuplesResponse` (Figure 5) for one page window:
/// `GetTuplesResponse(SQLResponse(SQLRowset(webRowSet), SQLCommunicationArea))`
/// with the page encoded straight out of the backing rowset — no page
/// clone, no element tree. Byte-identical to serialising the
/// materialised form (`SqlResponseData::to_xml` wrapped the same way).
pub fn write_get_tuples_response<S: XmlSink>(
    w: &mut XmlWriter<'_, S>,
    rowset: &Rowset,
    start: usize,
    count: usize,
) {
    w.start(&QName::new(ns::WSDAIR, "wsdair", "GetTuplesResponse"));
    w.start(&QName::new(ns::WSDAIR, "wsdair", "SQLResponse"));
    w.start(&QName::new(ns::WSDAIR, "wsdair", "SQLRowset"));
    rowset.write_window_into(start, count, w);
    w.end();
    w.element(&SqlCommunicationArea::success().to_xml());
    w.end();
    w.end();
}

/// Stream a query's `SQLExecuteResponse` from a cursor: rows are
/// encoded as the scan yields them, and the communication area — which
/// serialises last — is decided once the row count is known (SQLSTATE
/// 02000 for an empty result, matching
/// `StatementResult::communication_area`). On an evaluation error the
/// sink holds a partial fragment; the caller must discard it.
pub fn write_sql_execute_query_response<S: XmlSink>(
    w: &mut XmlWriter<'_, S>,
    stream: &mut RowStream<'_>,
) -> Result<(), dais_sql::SqlError> {
    w.start(&QName::new(ns::WSDAIR, "wsdair", "SQLExecuteResponse"));
    w.start(&QName::new(ns::WSDAIR, "wsdair", "SQLResponse"));
    w.start(&QName::new(ns::WSDAIR, "wsdair", "SQLRowset"));
    let mut rw = RowsetWriter::new();
    rw.begin(w, stream.columns());
    let mut rows = 0u64;
    while let Some(row) = stream.next()? {
        rw.row(w, row.iter());
        rows += 1;
    }
    rw.finish(w);
    w.end();
    let comm = if rows == 0 {
        SqlCommunicationArea { sqlstate: "02000".into(), ..SqlCommunicationArea::success() }
    } else {
        SqlCommunicationArea::success()
    };
    w.element(&comm.to_xml());
    w.end();
    w.end();
    Ok(())
}

/// Advance past other children until a `Start` of `{namespace}local`,
/// leaving the parser positioned just inside that element.
fn descend_to(p: &mut PullParser<'_>, namespace: &str, local: &str) -> Result<(), String> {
    loop {
        match p.next().map_err(|e| e.to_string())? {
            Some(PullEvent::Start { namespace: ns_, local: l }) => {
                if ns_.as_str() == namespace && l == local {
                    return Ok(());
                }
                p.skip_element().map_err(|e| e.to_string())?;
            }
            Some(PullEvent::Text(_)) => continue,
            Some(PullEvent::End) | None => return Err(format!("reply carries no {local} element")),
        }
    }
}

/// Decode the first rowset out of a serialised reply envelope whose
/// payload follows the shared `SQLResponse` shape (`GetTuples` and
/// `SQLExecute` replies): Envelope → Body → payload wrapper →
/// SQLResponse → SQLRowset → webRowSet, walked with the pull parser so
/// the page decodes straight off the wire bytes with no element tree.
pub fn rowset_from_reply_bytes(bytes: &[u8]) -> Result<Rowset, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("reply is not UTF-8: {e}"))?;
    let mut p = PullParser::new(text).map_err(|e| e.to_string())?;
    match p.next().map_err(|e| e.to_string())? {
        Some(PullEvent::Start { namespace, local })
            if namespace.as_str() == ns::SOAP_ENV && local == "Envelope" => {}
        _ => return Err("reply is not a SOAP envelope".into()),
    }
    descend_to(&mut p, ns::SOAP_ENV, "Body")?;
    // The payload wrapper (GetTuplesResponse / SQLExecuteResponse /
    // anything else with this response shape).
    match p.next().map_err(|e| e.to_string())? {
        Some(PullEvent::Start { .. }) => {}
        _ => return Err("reply has an empty SOAP body".into()),
    }
    descend_to(&mut p, ns::WSDAIR, "SQLResponse")?;
    descend_to(&mut p, ns::WSDAIR, "SQLRowset")?;
    Rowset::read_from_pull(&mut p).map_err(|e| e.to_string())
}

/// Like [`rowset_from_reply_bytes`], but stop after the metadata block
/// and hand back a [`RowsetCursor`] yielding rows on demand — the
/// federation k-way merge holds one of these per shard and never
/// materialises any shard's page.
pub fn rowset_cursor_from_reply_bytes(bytes: &[u8]) -> Result<RowsetCursor<'_>, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("reply is not UTF-8: {e}"))?;
    let mut p = PullParser::new(text).map_err(|e| e.to_string())?;
    match p.next().map_err(|e| e.to_string())? {
        Some(PullEvent::Start { namespace, local })
            if namespace.as_str() == ns::SOAP_ENV && local == "Envelope" => {}
        _ => return Err("reply is not a SOAP envelope".into()),
    }
    descend_to(&mut p, ns::SOAP_ENV, "Body")?;
    match p.next().map_err(|e| e.to_string())? {
        Some(PullEvent::Start { .. }) => {}
        _ => return Err("reply has an empty SOAP body".into()),
    }
    descend_to(&mut p, ns::WSDAIR, "SQLResponse")?;
    descend_to(&mut p, ns::WSDAIR, "SQLRowset")?;
    RowsetCursor::new(p).map_err(|e| e.to_string())
}

/// Build a `GetTuplesRequest` (Figure 5): a rowset page by position.
pub fn get_tuples_request(resource: &AbstractName, start: usize, count: usize) -> XmlElement {
    core_messages::request("GetTuplesRequest", resource)
        .with_child(
            XmlElement::new(ns::WSDAIR, "wsdair", "StartPosition").with_text(start.to_string()),
        )
        .with_child(XmlElement::new(ns::WSDAIR, "wsdair", "Count").with_text(count.to_string()))
}

/// Parse `(start, count)` from a `GetTuplesRequest`.
pub fn parse_get_tuples(body: &XmlElement) -> Result<(usize, usize), Fault> {
    let start = body
        .child_text(ns::WSDAIR, "StartPosition")
        .and_then(|t| t.trim().parse().ok())
        .ok_or_else(|| Fault::client("GetTuples missing StartPosition"))?;
    let count = body
        .child_text(ns::WSDAIR, "Count")
        .and_then(|t| t.trim().parse().ok())
        .ok_or_else(|| Fault::client("GetTuples missing Count"))?;
    Ok((start, count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_sql::RowsetColumn;

    fn name() -> AbstractName {
        AbstractName::new("urn:dais:svc:db:0").unwrap()
    }

    #[test]
    fn execute_request_roundtrip() {
        let req = sql_execute_request(
            &name(),
            ns::ROWSET,
            "SELECT * FROM t WHERE id = ? AND tag = ?",
            &[Value::Int(5), Value::Str("x".into())],
        );
        let (sql, params) = parse_sql_expression(&req).unwrap();
        assert_eq!(sql, "SELECT * FROM t WHERE id = ? AND tag = ?");
        assert_eq!(params, vec![Value::Int(5), Value::Str("x".into())]);
        assert_eq!(dais_core::messages::extract_format_uri(&req).as_deref(), Some(ns::ROWSET));
    }

    #[test]
    fn null_parameters() {
        let req = sql_execute_request(&name(), ns::ROWSET, "SELECT ?", &[Value::Null]);
        let (_, params) = parse_sql_expression(&req).unwrap();
        assert_eq!(params, vec![Value::Null]);
    }

    #[test]
    fn whitespace_edged_parameters_survive_the_wire() {
        // Whitespace-only and whitespace-edged strings travel as
        // attributes so the protocol parser's text stripping cannot
        // corrupt them.
        for s in [" ", "  padded  ", "", "\t"] {
            let req = sql_execute_request(&name(), ns::ROWSET, "SELECT ?", &[Value::Str(s.into())]);
            let text = dais_xml::to_string(&req);
            let parsed = dais_xml::parse(&text).unwrap();
            let (_, params) = parse_sql_expression(&parsed).unwrap();
            assert_eq!(params, vec![Value::Str(s.into())], "{s:?}");
        }
    }

    #[test]
    fn parameter_validation() {
        // Missing expression.
        let body = dais_core::messages::request("SQLExecuteRequest", &name());
        assert!(parse_sql_expression(&body).is_err());
        // Bad index.
        let mut expr = XmlElement::new(ns::WSDAIR, "wsdair", "SQLExpression").with_text("SELECT ?");
        expr.push(
            XmlElement::new(ns::WSDAIR, "wsdair", "SQLParameter")
                .with_attr("index", "3")
                .with_attr("type", "INTEGER")
                .with_text("1"),
        );
        let body = dais_core::messages::request("SQLExecuteRequest", &name()).with_child(expr);
        assert!(parse_sql_expression(&body).is_err());
    }

    #[test]
    fn response_data_roundtrip() {
        let mut rowset = Rowset::new(vec![RowsetColumn { name: "n".into(), ty: SqlType::Integer }]);
        rowset.rows.push(vec![Value::Int(1)]);
        rowset.rows.push(vec![Value::Int(2)]);
        let data = SqlResponseData {
            rowsets: vec![rowset],
            update_counts: vec![3],
            return_value: None,
            output_parameters: vec![],
            communication_area: SqlCommunicationArea::with_update_count(3),
        };
        let rt = SqlResponseData::from_xml(&data.to_xml()).unwrap();
        assert_eq!(rt, data);
        assert_eq!(rt.rowset().unwrap().row_count(), 2);
        assert_eq!(rt.update_count(), Some(3));
    }

    #[test]
    fn response_from_statement_results() {
        let db = dais_sql::Database::new("t");
        db.execute("CREATE TABLE t (x INTEGER)", &[]).unwrap();
        let r = db.execute("INSERT INTO t VALUES (1), (2)", &[]).unwrap();
        let data = SqlResponseData::from_result(&r);
        assert_eq!(data.update_counts, vec![2]);
        assert!(data.rowsets.is_empty());
        let r = db.execute("SELECT * FROM t", &[]).unwrap();
        let data = SqlResponseData::from_result(&r);
        assert_eq!(data.rowsets.len(), 1);
        assert_eq!(data.communication_area.sqlstate, "00000");
    }

    #[test]
    fn get_tuples_roundtrip() {
        let req = get_tuples_request(&name(), 10, 25);
        assert_eq!(parse_get_tuples(&req).unwrap(), (10, 25));
        let bad = dais_core::messages::request("GetTuplesRequest", &name());
        assert!(parse_get_tuples(&bad).is_err());
    }

    /// Rows exercising every cell encoding: NULLs, escaping-heavy text,
    /// whitespace-edged and empty strings that travel as attributes.
    fn awkward_rowset() -> Rowset {
        let mut r = Rowset::new(vec![
            RowsetColumn { name: "id".into(), ty: SqlType::Integer },
            RowsetColumn { name: "label".into(), ty: SqlType::Varchar },
        ]);
        r.rows.push(vec![Value::Int(1), Value::Str("plain".into())]);
        r.rows.push(vec![Value::Int(2), Value::Null]);
        r.rows.push(vec![Value::Int(3), Value::Str("a <b> & \"c\"".into())]);
        r.rows.push(vec![Value::Int(4), Value::Str("  padded  ".into())]);
        r.rows.push(vec![Value::Int(5), Value::Str(String::new())]);
        r
    }

    #[test]
    fn streamed_get_tuples_response_matches_tree_serialisation() {
        let rowset = awkward_rowset();
        for (start, count) in [(0, 10), (1, 3), (4, 5), (9, 2), (0, 0)] {
            let mut streamed = String::new();
            let mut w = XmlWriter::new(&mut streamed);
            write_get_tuples_response(&mut w, &rowset, start, count);
            w.finish();

            let data = SqlResponseData {
                rowsets: vec![rowset.slice(start, count)],
                communication_area: SqlCommunicationArea::success(),
                ..Default::default()
            };
            let tree = XmlElement::new(ns::WSDAIR, "wsdair", "GetTuplesResponse")
                .with_child(data.to_xml());
            assert_eq!(streamed, dais_xml::to_string(&tree), "window ({start}, {count})");
        }
    }

    #[test]
    fn streamed_execute_response_matches_tree_serialisation() {
        let db = dais_sql::Database::new("m");
        db.execute_script(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR);
             INSERT INTO t VALUES (1, 'a & b'), (2, NULL), (3, '  c  ');",
        )
        .unwrap();
        for sql in
            ["SELECT * FROM t", "SELECT v FROM t WHERE id > 1", "SELECT id FROM t WHERE id > 9"]
        {
            let mut streamed = String::new();
            db.stream_query(sql, &[], |stream| {
                let mut w = XmlWriter::new(&mut streamed);
                write_sql_execute_query_response(&mut w, stream).unwrap();
                w.finish();
            })
            .unwrap();

            let result = db.execute(sql, &[]).unwrap();
            let tree = XmlElement::new(ns::WSDAIR, "wsdair", "SQLExecuteResponse")
                .with_child(SqlResponseData::from_result(&result).to_xml());
            assert_eq!(streamed, dais_xml::to_string(&tree), "{sql}");
        }
    }

    #[test]
    fn reply_bytes_decode_without_a_tree() {
        let rowset = awkward_rowset();
        let mut fragment = String::new();
        let mut w = XmlWriter::new(&mut fragment);
        write_get_tuples_response(&mut w, &rowset, 0, 10);
        w.finish();
        let bytes = dais_soap::envelope::Envelope::with_raw_body(fragment).to_bytes();
        assert_eq!(rowset_from_reply_bytes(&bytes).unwrap(), rowset);
        // Malformed replies report instead of panicking.
        assert!(rowset_from_reply_bytes(b"<x/>").is_err());
        let empty = dais_soap::envelope::Envelope::with_raw_body(String::new()).to_bytes();
        assert!(rowset_from_reply_bytes(&empty).is_err());
    }
}
