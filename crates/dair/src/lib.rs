//! # dais-dair
//!
//! The WS-DAIR relational realisation of the DAIS specifications
//! (paper §4): WS-DAI core properties and message patterns extended for
//! relational data resources.
//!
//! The realisation follows Figure 6's interface inventory:
//!
//! * **SQLAccess** — `SQLExecute` (direct access, Figure 2) and
//!   `GetSQLPropertyDocument`;
//! * **SQLFactory** — `SQLExecuteFactory` (indirect access, Figure 3):
//!   runs a statement, materialises (or, for `Sensitivity=Sensitive`
//!   resources, re-evaluates on demand) an *SQL response* resource and
//!   returns its EPR;
//! * **ResponseAccess** — `GetSQLResponsePropertyDocument`,
//!   `GetSQLRowset`, `GetSQLUpdateCount`, `GetSQLReturnValue`,
//!   `GetSQLOutputParameter`, `GetSQLCommunicationArea`,
//!   `GetSQLResponseItem`;
//! * **ResponseFactory** — `SQLRowsetFactory`: derives a rowset resource
//!   from a response (the middle hop of the Figure 5 pipeline);
//! * **RowsetAccess** — `GetTuples` (paged retrieval) and
//!   `GetRowsetPropertyDocument`.
//!
//! Rowset data is carried in the WebRowSet XML format advertised through
//! the `DatasetMap` property; responses embed the SQL communication area
//! exactly as Figure 2 prescribes; the `CIMDescription` property carries
//! the CIM rendering of the catalog (§4.2).

pub mod client;
pub mod messages;
pub mod properties;
pub mod resources;
pub mod service;

pub use client::SqlClient;
pub use messages::{actions, SqlResponseData};
pub use resources::{RowsetResource, SqlDataResource, SqlResponseResource};
pub use service::{RelationalService, RelationalServiceOptions};
