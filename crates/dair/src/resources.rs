//! The three relational resource kinds of the Figure 5 pipeline:
//! the database itself, derived SQL responses, and derived rowsets.

use crate::messages::SqlResponseData;
use dais_core::properties::ResourceManagementKind;
use dais_core::{
    AbstractName, ConfigurationDocument, ConfigurationMap, CoreProperties, DataResource,
    DatasetMap, Sensitivity,
};
use dais_soap::fault::{DaisFault, Fault};
use dais_sql::{Database, Rowset, SqlErrorKind, Value};
use dais_xml::{ns, QName, XmlElement, XmlWriter};
use std::any::Any;

/// The generic-query language URI advertised for SQL.
pub const SQL_LANGUAGE_URI: &str = "http://www.sql.org/sql-92";

/// Map an engine error to the DAIS fault taxonomy.
pub fn sql_fault(e: dais_sql::SqlError) -> Fault {
    let kind = match e.kind {
        SqlErrorKind::InsufficientPrivilege => DaisFault::NotAuthorized,
        _ => DaisFault::InvalidExpression,
    };
    Fault::dais(kind, format!("[SQLSTATE {}] {}", e.sqlstate(), e.message))
}

/// An externally managed relational data resource: a wrapper around a
/// `dais_sql::Database` (paper §2.1: DAIS services are "web service
/// wrappers for databases").
pub struct SqlDataResource {
    properties: CoreProperties,
    db: Database,
}

impl SqlDataResource {
    /// Wrap a database under the given abstract name, advertising the
    /// WebRowSet dataset format and the factory configuration maps.
    pub fn new(name: AbstractName, db: Database) -> SqlDataResource {
        let mut properties = CoreProperties::new(name, ResourceManagementKind::ExternallyManaged);
        properties.description = format!("relational database '{}'", db.name());
        properties.writeable = true;
        properties.generic_query_languages.push(SQL_LANGUAGE_URI.to_string());
        properties.dataset_maps.push(DatasetMap {
            message: QName::new(ns::WSDAIR, "wsdair", "SQLExecuteRequest"),
            dataset_format: ns::ROWSET.to_string(),
        });
        properties.configuration_maps.push(ConfigurationMap {
            message: QName::new(ns::WSDAIR, "wsdair", "SQLExecuteFactoryRequest"),
            port_type: QName::new(ns::WSDAIR, "wsdair", "SQLResponseAccessPT"),
            defaults: ConfigurationDocument {
                readable: Some(true),
                writeable: Some(false),
                sensitivity: Some(Sensitivity::Insensitive),
                ..Default::default()
            },
        });
        SqlDataResource { properties, db }
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Execute a statement against the wrapped database.
    pub fn execute(&self, sql: &str, params: &[Value]) -> Result<SqlResponseData, Fault> {
        let result = self.db.execute(sql, params).map_err(sql_fault)?;
        Ok(SqlResponseData::from_result(&result))
    }

    /// Stream a SELECT's `SQLExecuteResponse` fragment straight from
    /// the engine cursor into `out` — the zero-materialisation
    /// direct-access path (rows never collect into a rowset). On error
    /// `out` may hold a partial fragment; callers must discard it.
    pub fn execute_query_streamed(
        &self,
        sql: &str,
        params: &[Value],
        out: &mut String,
    ) -> Result<(), Fault> {
        self.db
            .stream_query(sql, params, |stream| {
                let mut w = XmlWriter::new(out);
                crate::messages::write_sql_execute_query_response(&mut w, stream)?;
                w.finish();
                Ok(())
            })
            .and_then(|encoded: Result<(), dais_sql::SqlError>| encoded)
            .map_err(sql_fault)
    }

    /// Is the statement a read (query) or a write?
    pub fn is_read_only_statement(sql: &str) -> bool {
        matches!(dais_sql::parser::parse_statement(sql), Ok(dais_sql::ast::Stmt::Select(_)))
    }
}

impl DataResource for SqlDataResource {
    fn abstract_name(&self) -> &AbstractName {
        &self.properties.abstract_name
    }

    fn core_properties(&self) -> CoreProperties {
        self.properties.clone()
    }

    fn property_document(&self) -> XmlElement {
        let mut doc = self.properties.to_xml();
        // The WS-DAIR extension group (Figure 4): CIM metadata.
        let mut cim = XmlElement::new(ns::WSDAIR, "wsdair", "CIMDescription");
        cim.push(dais_cim::cim_description(&self.db));
        doc.push(cim);
        doc.push(
            XmlElement::new(ns::WSDAIR, "wsdair", "NumberOfTables")
                .with_text(self.db.table_names().len().to_string()),
        );
        doc
    }

    fn generic_query(&self, language: &str, expression: &str) -> Result<Vec<XmlElement>, Fault> {
        if language != SQL_LANGUAGE_URI {
            return Err(Fault::dais(
                DaisFault::InvalidLanguage,
                format!("language '{language}' is not supported; use {SQL_LANGUAGE_URI}"),
            ));
        }
        let data = self.execute(expression, &[])?;
        Ok(vec![data.to_xml()])
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// How a derived SQL response resource is backed — the `Sensitivity`
/// semantics of §4.2.
enum ResponseBacking {
    /// `Insensitive`: materialised once at creation.
    Materialised(SqlResponseData),
    /// `Sensitive`: re-evaluated against the parent database on access,
    /// so parent changes are reflected.
    Sensitive { db: Database, sql: String, params: Vec<Value> },
}

/// A service-managed SQL response resource created by `SQLExecuteFactory`.
pub struct SqlResponseResource {
    properties: CoreProperties,
    backing: ResponseBacking,
}

impl SqlResponseResource {
    /// Create the resource. The backing follows `properties.sensitivity`.
    pub fn create(
        properties: CoreProperties,
        db: &Database,
        sql: &str,
        params: &[Value],
    ) -> Result<SqlResponseResource, Fault> {
        let mut properties = properties;
        properties.configuration_maps.push(ConfigurationMap {
            message: QName::new(ns::WSDAIR, "wsdair", "SQLRowsetFactoryRequest"),
            port_type: QName::new(ns::WSDAIR, "wsdair", "SQLRowsetAccessPT"),
            defaults: ConfigurationDocument {
                readable: Some(true),
                writeable: Some(false),
                sensitivity: Some(Sensitivity::Insensitive),
                ..Default::default()
            },
        });
        let backing = match properties.sensitivity {
            Sensitivity::Insensitive => {
                let result = db.execute(sql, params).map_err(sql_fault)?;
                ResponseBacking::Materialised(SqlResponseData::from_result(&result))
            }
            Sensitivity::Sensitive => {
                // Validate eagerly so a bad statement faults at factory time.
                db.execute(sql, params).map_err(sql_fault)?;
                ResponseBacking::Sensitive {
                    db: db.clone(),
                    sql: sql.to_string(),
                    params: params.to_vec(),
                }
            }
        };
        Ok(SqlResponseResource { properties, backing })
    }

    /// The current response data (re-evaluated when sensitive).
    pub fn response(&self) -> Result<SqlResponseData, Fault> {
        match &self.backing {
            ResponseBacking::Materialised(data) => Ok(data.clone()),
            ResponseBacking::Sensitive { db, sql, params } => {
                let result = db.execute(sql, params).map_err(sql_fault)?;
                Ok(SqlResponseData::from_result(&result))
            }
        }
    }
}

impl DataResource for SqlResponseResource {
    fn abstract_name(&self) -> &AbstractName {
        &self.properties.abstract_name
    }

    fn core_properties(&self) -> CoreProperties {
        self.properties.clone()
    }

    fn property_document(&self) -> XmlElement {
        let mut doc = self.properties.to_xml();
        if let Ok(data) = self.response() {
            doc.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "NumberOfSQLRowsets")
                    .with_text(data.rowsets.len().to_string()),
            );
            doc.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "NumberOfSQLUpdateCounts")
                    .with_text(data.update_counts.len().to_string()),
            );
            doc.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "NumberOfSQLReturnValues")
                    .with_text(data.return_value.iter().count().to_string()),
            );
            doc.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "NumberOfSQLOutputParameters")
                    .with_text(data.output_parameters.len().to_string()),
            );
        }
        doc
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A service-managed rowset resource created by `SQLRowsetFactory`,
/// accessed page-by-page through `GetTuples` (Figure 5).
pub struct RowsetResource {
    properties: CoreProperties,
    rowset: Rowset,
}

impl RowsetResource {
    pub fn new(properties: CoreProperties, rowset: Rowset) -> RowsetResource {
        RowsetResource { properties, rowset }
    }

    pub fn rowset(&self) -> &Rowset {
        &self.rowset
    }

    /// A page of tuples.
    pub fn tuples(&self, start: usize, count: usize) -> Rowset {
        self.rowset.slice(start, count)
    }
}

impl DataResource for RowsetResource {
    fn abstract_name(&self) -> &AbstractName {
        &self.properties.abstract_name
    }

    fn core_properties(&self) -> CoreProperties {
        self.properties.clone()
    }

    fn property_document(&self) -> XmlElement {
        let mut doc = self.properties.to_xml();
        doc.push(
            XmlElement::new(ns::WSDAIR, "wsdair", "NumberOfRows")
                .with_text(self.rowset.row_count().to_string()),
        );
        let mut meta = XmlElement::new(ns::WSDAIR, "wsdair", "RowSchema");
        for c in &self.rowset.columns {
            meta.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "Column")
                    .with_attr("name", &c.name)
                    .with_attr("type", c.ty.name()),
            );
        }
        doc.push(meta);
        doc
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new("test");
        db.execute_script(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR);
             INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c');",
        )
        .unwrap();
        db
    }

    fn name(s: &str) -> AbstractName {
        AbstractName::new(s).unwrap()
    }

    #[test]
    fn sql_resource_executes() {
        let r = SqlDataResource::new(name("urn:dais:s:db:0"), db());
        let data = r.execute("SELECT * FROM t ORDER BY id", &[]).unwrap();
        assert_eq!(data.rowset().unwrap().row_count(), 3);
        let data = r.execute("UPDATE t SET v = 'x' WHERE id > ?", &[Value::Int(1)]).unwrap();
        assert_eq!(data.update_count(), Some(2));
        let err = r.execute("SELECT nope FROM t", &[]).unwrap_err();
        assert!(err.is(DaisFault::InvalidExpression));
        assert!(err.reason.contains("SQLSTATE 42703"));
    }

    #[test]
    fn sql_resource_property_document_has_cim() {
        let r = SqlDataResource::new(name("urn:dais:s:db:0"), db());
        let doc = r.property_document();
        let cim = doc.child(ns::WSDAIR, "CIMDescription").unwrap();
        assert!(cim.child(ns::CIM, "CIM_Database").is_some());
        assert_eq!(doc.child_text(ns::WSDAIR, "NumberOfTables").as_deref(), Some("1"));
        // Core properties still present.
        assert!(doc.child(ns::WSDAI, "DataResourceAbstractName").is_some());
    }

    #[test]
    fn generic_query_sql_language() {
        let r = SqlDataResource::new(name("urn:dais:s:db:0"), db());
        let out = r.generic_query(SQL_LANGUAGE_URI, "SELECT COUNT(*) FROM t").unwrap();
        let resp = SqlResponseData::from_xml(&out[0]).unwrap();
        assert_eq!(resp.rowset().unwrap().rows[0][0], Value::Int(3));
        assert!(r.generic_query("urn:xquery", "x").unwrap_err().is(DaisFault::InvalidLanguage));
    }

    #[test]
    fn read_only_detection() {
        assert!(SqlDataResource::is_read_only_statement("SELECT 1"));
        assert!(!SqlDataResource::is_read_only_statement("DELETE FROM t"));
        assert!(!SqlDataResource::is_read_only_statement("CREATE TABLE x (a INT)"));
        assert!(!SqlDataResource::is_read_only_statement("not sql at all"));
    }

    #[test]
    fn insensitive_response_is_a_snapshot() {
        let database = db();
        let mut props =
            CoreProperties::new(name("urn:dais:s:resp:0"), ResourceManagementKind::ServiceManaged);
        props.sensitivity = Sensitivity::Insensitive;
        let resp =
            SqlResponseResource::create(props, &database, "SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(resp.response().unwrap().rowset().unwrap().rows[0][0], Value::Int(3));
        database.execute("DELETE FROM t WHERE id = 1", &[]).unwrap();
        // Still 3 — materialised.
        assert_eq!(resp.response().unwrap().rowset().unwrap().rows[0][0], Value::Int(3));
    }

    #[test]
    fn sensitive_response_reflects_parent_changes() {
        let database = db();
        let mut props =
            CoreProperties::new(name("urn:dais:s:resp:1"), ResourceManagementKind::ServiceManaged);
        props.sensitivity = Sensitivity::Sensitive;
        let resp =
            SqlResponseResource::create(props, &database, "SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(resp.response().unwrap().rowset().unwrap().rows[0][0], Value::Int(3));
        database.execute("DELETE FROM t WHERE id = 1", &[]).unwrap();
        // Re-evaluated — sees the delete.
        assert_eq!(resp.response().unwrap().rowset().unwrap().rows[0][0], Value::Int(2));
    }

    #[test]
    fn factory_validates_statements_eagerly() {
        let database = db();
        let props =
            CoreProperties::new(name("urn:dais:s:resp:2"), ResourceManagementKind::ServiceManaged);
        assert!(SqlResponseResource::create(props, &database, "SELEKT", &[]).is_err());
    }

    #[test]
    fn response_property_document_counts() {
        let database = db();
        let props =
            CoreProperties::new(name("urn:dais:s:resp:3"), ResourceManagementKind::ServiceManaged);
        let resp = SqlResponseResource::create(props, &database, "SELECT * FROM t", &[]).unwrap();
        let doc = resp.property_document();
        assert_eq!(doc.child_text(ns::WSDAIR, "NumberOfSQLRowsets").as_deref(), Some("1"));
        assert_eq!(doc.child_text(ns::WSDAIR, "NumberOfSQLUpdateCounts").as_deref(), Some("0"));
        // Response resources advertise the rowset-factory configuration map.
        assert!(resp
            .core_properties()
            .configuration_maps
            .iter()
            .any(|m| m.message.local == "SQLRowsetFactoryRequest"));
    }

    #[test]
    fn rowset_resource_pages() {
        let database = db();
        let result = database.execute("SELECT * FROM t ORDER BY id", &[]).unwrap();
        let rowset = result.rowset().unwrap().clone();
        let props =
            CoreProperties::new(name("urn:dais:s:rs:0"), ResourceManagementKind::ServiceManaged);
        let r = RowsetResource::new(props, rowset);
        assert_eq!(r.tuples(0, 2).row_count(), 2);
        assert_eq!(r.tuples(2, 2).row_count(), 1);
        assert_eq!(r.tuples(5, 2).row_count(), 0);
        let doc = r.property_document();
        assert_eq!(doc.child_text(ns::WSDAIR, "NumberOfRows").as_deref(), Some("3"));
        assert_eq!(doc.child(ns::WSDAIR, "RowSchema").unwrap().elements().count(), 2);
    }
}
