//! Consumer-side typed client for WS-DAIR services.

use crate::messages::{self, actions, SqlResponseData};
use dais_core::{AbstractName, CoreClient, DaisClient};
use dais_soap::addressing::Epr;
use dais_soap::bus::Bus;
use dais_soap::client::{CallError, ServiceClient};
use dais_soap::retry::{IdempotencySet, RetryConfig, RetryPolicy};
use dais_sql::{Rowset, SqlCommunicationArea, Value};
use dais_util::pool::PooledBuf;
use dais_xml::{ns, XmlElement};

/// WS-DAIR operations a consumer may safely re-send: property and
/// response-resource reads, plus the core read set. `SQLExecute` is
/// deliberately absent — whether it re-sends safely depends on the
/// statement it carries, which [`SqlClient::execute`] decides per call.
/// Factories mint new derived resources and are never retried.
pub fn idempotent_actions() -> IdempotencySet {
    IdempotencySet::new([
        dais_core::messages::actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT,
        dais_core::messages::actions::GENERIC_QUERY,
        dais_core::messages::actions::GET_RESOURCE_LIST,
        dais_core::messages::actions::RESOLVE,
        dais_wsrf::actions::GET_RESOURCE_PROPERTY,
        dais_wsrf::actions::GET_MULTIPLE_RESOURCE_PROPERTIES,
        dais_wsrf::actions::QUERY_RESOURCE_PROPERTIES,
        actions::GET_SQL_PROPERTY_DOCUMENT,
        actions::GET_SQL_RESPONSE_PROPERTY_DOCUMENT,
        actions::GET_SQL_ROWSET,
        actions::GET_SQL_UPDATE_COUNT,
        actions::GET_SQL_RETURN_VALUE,
        actions::GET_SQL_OUTPUT_PARAMETER,
        actions::GET_SQL_COMMUNICATION_AREA,
        actions::GET_SQL_RESPONSE_ITEM,
        actions::GET_TUPLES,
        actions::GET_ROWSET_PROPERTY_DOCUMENT,
    ])
}

/// True when a statement only reads — the one class of `SQLExecute`
/// payload that re-sends safely after an ambiguous failure.
fn statement_is_read_only(sql: &str) -> bool {
    matches!(sql.split_whitespace().next().map(str::to_ascii_uppercase).as_deref(), Some("SELECT"))
}

/// One item of a multi-statement SQL response, as returned by
/// [`SqlClient::get_sql_response_item`].
#[derive(Debug, Clone, PartialEq)]
pub enum SqlResponseItem {
    Rowset(Rowset),
    UpdateCount(u64),
}

/// A typed consumer of WS-DAIR services. Wraps [`CoreClient`] (all the
/// WS-DAI core operations remain available through [`SqlClient::core`]).
#[derive(Clone)]
pub struct SqlClient {
    core: CoreClient,
}

impl SqlClient {
    /// Bind to a service address on the bus.
    #[deprecated(
        since = "0.10.0",
        note = "use `SqlClient::builder().bus(..).address(..)` \
                 (or `.resource(&ResourceRef)`) instead"
    )]
    pub fn new(bus: Bus, address: impl Into<String>) -> SqlClient {
        SqlClient::from_service(ServiceClient::new(bus, address))
    }

    /// Bind through an EPR from a factory response.
    pub fn from_epr(bus: Bus, epr: Epr) -> SqlClient {
        SqlClient { core: CoreClient::from_epr(bus, epr) }
    }

    /// Bind to a service reached over `transport`.
    #[deprecated(
        since = "0.10.0",
        note = "use `SqlClient::builder().bus(..).transport(..)` instead"
    )]
    pub fn with_transport(
        bus: Bus,
        transport: std::sync::Arc<dyn dais_soap::Transport>,
        address: impl Into<String>,
    ) -> SqlClient {
        SqlClient::builder().bus(bus).transport(transport).address(address).build()
    }

    /// Layer retry over this client for the WS-DAIR read operations
    /// ([`idempotent_actions`]); `SQLExecute` retries only when the
    /// statement is a SELECT. (Thin wrapper over
    /// [`DaisClient::with_retry`].)
    pub fn with_retry(self, policy: RetryPolicy) -> SqlClient {
        DaisClient::with_retry(self, policy)
    }

    /// Layer retry with a caller-assembled configuration. (Thin wrapper
    /// over [`DaisClient::with_retry_config`].)
    pub fn with_retry_config(self, config: RetryConfig) -> SqlClient {
        DaisClient::with_retry_config(self, config)
    }

    /// The WS-DAI core operations.
    pub fn core(&self) -> &CoreClient {
        &self.core
    }

    /// `SQLExecute` against many statements at once, keeping up to
    /// `window` requests in flight on the pipelined path; one result
    /// per statement, in input order. No retry layer applies on this
    /// path, so non-SELECT statements are safe to batch.
    pub fn execute_many(
        &self,
        resource: &AbstractName,
        statements: &[&str],
        window: usize,
    ) -> Vec<Result<SqlResponseData, CallError>> {
        let payloads = statements
            .iter()
            .map(|sql| messages::sql_execute_request(resource, ns::ROWSET, sql, &[]))
            .collect();
        self.request_pipelined(actions::SQL_EXECUTE, payloads, window)
            .into_iter()
            .map(|result| parse_sql_response(result?))
            .collect()
    }

    /// `GetTuples` against many `(start, count)` pages at once, keeping
    /// up to `window` requests in flight on the pipelined path; one
    /// rowset per page, in input order. This is how Figure 5's paging
    /// consumer overlaps its fetches.
    pub fn get_tuples_many(
        &self,
        resource: &AbstractName,
        pages: &[(usize, usize)],
        window: usize,
    ) -> Vec<Result<Rowset, CallError>> {
        // Without a queued executor the pipelined path degrades to
        // sequential sends anyway, so take the raw lane instead: one
        // pooled reply buffer reused across the whole batch, each page
        // decoded with the pull parser.
        if !self.core.soap().bus().has_queued_executor() {
            let mut reply = PooledBuf::take();
            return pages
                .iter()
                .map(|(start, count)| {
                    let req = messages::get_tuples_request(resource, *start, *count);
                    reply.clear();
                    self.core.soap().request_bytes_into(actions::GET_TUPLES, &req, &mut reply)?;
                    messages::rowset_from_reply_bytes(&reply).map_err(CallError::UnexpectedResponse)
                })
                .collect();
        }
        let payloads = pages
            .iter()
            .map(|(start, count)| messages::get_tuples_request(resource, *start, *count))
            .collect();
        self.request_pipelined(actions::GET_TUPLES, payloads, window)
            .into_iter()
            .map(|result| {
                let data = parse_sql_response(result?)?;
                data.rowsets.into_iter().next().ok_or_else(|| {
                    CallError::UnexpectedResponse("GetTuples returned no rowset".into())
                })
            })
            .collect()
    }

    /// `SQLExecute` — the direct access pattern (Figure 2).
    pub fn execute(
        &self,
        resource: &AbstractName,
        sql: &str,
        params: &[Value],
    ) -> Result<SqlResponseData, CallError> {
        self.execute_with_format(resource, ns::ROWSET, sql, params)
    }

    /// `SQLExecute` requesting a specific dataset format URI.
    pub fn execute_with_format(
        &self,
        resource: &AbstractName,
        format_uri: &str,
        sql: &str,
        params: &[Value],
    ) -> Result<SqlResponseData, CallError> {
        let req = messages::sql_execute_request(resource, format_uri, sql, params);
        let response = self.core.soap().request_with_idempotency(
            actions::SQL_EXECUTE,
            req,
            statement_is_read_only(sql),
        )?;
        parse_sql_response(response)
    }

    /// `GetSQLPropertyDocument`.
    pub fn get_sql_property_document(
        &self,
        resource: &AbstractName,
    ) -> Result<XmlElement, CallError> {
        let req = dais_core::messages::request("GetSQLPropertyDocumentRequest", resource);
        let response = self.core.soap().request(actions::GET_SQL_PROPERTY_DOCUMENT, req)?;
        response
            .child(ns::WSDAI, "PropertyDocument")
            .cloned()
            .ok_or_else(|| CallError::UnexpectedResponse("no PropertyDocument".into()))
    }

    /// `SQLExecuteFactory` — the indirect access pattern (Figure 3).
    /// Returns the EPR of the derived SQL response resource.
    pub fn execute_factory(
        &self,
        resource: &AbstractName,
        sql: &str,
        params: &[Value],
        port_type: Option<&str>,
        configuration: Option<&dais_core::ConfigurationDocument>,
    ) -> Result<Epr, CallError> {
        let mut req = messages::sql_execute_request(resource, ns::ROWSET, sql, params);
        // Rename the wrapper to the factory request message.
        req.name = dais_xml::QName::new(ns::WSDAIR, "wsdair", "SQLExecuteFactoryRequest");
        if let Some(p) = port_type {
            req.push(XmlElement::new(ns::WSDAI, "wsdai", "PortTypeQName").with_text(p));
        }
        if let Some(c) = configuration {
            req.push(c.to_xml());
        }
        let response = self.core.soap().request(actions::SQL_EXECUTE_FACTORY, req)?;
        dais_core::factory::parse_factory_response(&response).map_err(CallError::Fault)
    }

    /// `GetSQLRowset` on a response resource (1-based index).
    pub fn get_sql_rowset(
        &self,
        resource: &AbstractName,
        index: usize,
    ) -> Result<Rowset, CallError> {
        let mut req = dais_core::messages::request("GetSQLRowsetRequest", resource);
        req.push(XmlElement::new(ns::WSDAIR, "wsdair", "Index").with_text(index.to_string()));
        let response = self.core.soap().request(actions::GET_SQL_ROWSET, req)?;
        let rowset = response
            .child(ns::WSDAIR, "SQLRowset")
            .and_then(|r| r.child(ns::ROWSET, "webRowSet"))
            .ok_or_else(|| CallError::UnexpectedResponse("no SQLRowset".into()))?;
        Rowset::from_xml(rowset).map_err(|e| CallError::UnexpectedResponse(e.to_string()))
    }

    /// `GetSQLUpdateCount` on a response resource.
    pub fn get_sql_update_count(
        &self,
        resource: &AbstractName,
        index: usize,
    ) -> Result<u64, CallError> {
        let mut req = dais_core::messages::request("GetSQLUpdateCountRequest", resource);
        req.push(XmlElement::new(ns::WSDAIR, "wsdair", "Index").with_text(index.to_string()));
        let response = self.core.soap().request(actions::GET_SQL_UPDATE_COUNT, req)?;
        response
            .child_text(ns::WSDAIR, "SQLUpdateCount")
            .and_then(|t| t.trim().parse().ok())
            .ok_or_else(|| CallError::UnexpectedResponse("no SQLUpdateCount".into()))
    }

    /// `GetSQLReturnValue` on a response resource: the stored-procedure
    /// return value, if the response carries one.
    pub fn get_sql_return_value(
        &self,
        resource: &AbstractName,
    ) -> Result<Option<String>, CallError> {
        let req = dais_core::messages::request("GetSQLReturnValueRequest", resource);
        let response = self.core.soap().request(actions::GET_SQL_RETURN_VALUE, req)?;
        Ok(response.child_text(ns::WSDAIR, "SQLReturnValue"))
    }

    /// `GetSQLOutputParameter` on a response resource. With a parameter
    /// name, only that parameter is returned; with `None`, all of them.
    pub fn get_sql_output_parameters(
        &self,
        resource: &AbstractName,
        name: Option<&str>,
    ) -> Result<Vec<(String, String)>, CallError> {
        let mut req = dais_core::messages::request("GetSQLOutputParameterRequest", resource);
        if let Some(n) = name {
            req.push(XmlElement::new(ns::WSDAIR, "wsdair", "ParameterName").with_text(n));
        }
        let response = self.core.soap().request(actions::GET_SQL_OUTPUT_PARAMETER, req)?;
        Ok(response
            .children_named(ns::WSDAIR, "SQLOutputParameter")
            .map(|p| (p.attribute("name").unwrap_or_default().to_string(), p.text()))
            .collect())
    }

    /// `GetSQLResponseItem` on a response resource (1-based index across
    /// rowsets then update counts — the §4.1 response-document ordering).
    pub fn get_sql_response_item(
        &self,
        resource: &AbstractName,
        index: usize,
    ) -> Result<SqlResponseItem, CallError> {
        let mut req = dais_core::messages::request("GetSQLResponseItemRequest", resource);
        req.push(XmlElement::new(ns::WSDAIR, "wsdair", "Index").with_text(index.to_string()));
        let response = self.core.soap().request(actions::GET_SQL_RESPONSE_ITEM, req)?;
        if let Some(rowset) = response.child(ns::WSDAIR, "SQLRowset") {
            let rowset = rowset
                .child(ns::ROWSET, "webRowSet")
                .ok_or_else(|| CallError::UnexpectedResponse("no webRowSet in SQLRowset".into()))?;
            let rowset = Rowset::from_xml(rowset)
                .map_err(|e| CallError::UnexpectedResponse(e.to_string()))?;
            return Ok(SqlResponseItem::Rowset(rowset));
        }
        if let Some(count) = response.child_text(ns::WSDAIR, "SQLUpdateCount") {
            let count = count
                .trim()
                .parse()
                .map_err(|_| CallError::UnexpectedResponse("non-numeric SQLUpdateCount".into()))?;
            return Ok(SqlResponseItem::UpdateCount(count));
        }
        Err(CallError::UnexpectedResponse("response item carried no rowset or count".into()))
    }

    /// `GetSQLCommunicationArea` on a response resource.
    pub fn get_sql_communication_area(
        &self,
        resource: &AbstractName,
    ) -> Result<SqlCommunicationArea, CallError> {
        let req = dais_core::messages::request("GetSQLCommunicationAreaRequest", resource);
        let response = self.core.soap().request(actions::GET_SQL_COMMUNICATION_AREA, req)?;
        response
            .child(ns::WSDAIR, "SQLCommunicationArea")
            .and_then(SqlCommunicationArea::from_xml)
            .ok_or_else(|| CallError::UnexpectedResponse("no SQLCommunicationArea".into()))
    }

    /// `GetSQLResponsePropertyDocument`.
    pub fn get_response_property_document(
        &self,
        resource: &AbstractName,
    ) -> Result<XmlElement, CallError> {
        let req = dais_core::messages::request("GetSQLResponsePropertyDocumentRequest", resource);
        let response =
            self.core.soap().request(actions::GET_SQL_RESPONSE_PROPERTY_DOCUMENT, req)?;
        response
            .child(ns::WSDAI, "PropertyDocument")
            .cloned()
            .ok_or_else(|| CallError::UnexpectedResponse("no PropertyDocument".into()))
    }

    /// `SQLRowsetFactory` on a response resource: derive a rowset
    /// resource (optionally capped to `count` rows) and return its EPR.
    pub fn rowset_factory(
        &self,
        resource: &AbstractName,
        count: Option<usize>,
        port_type: Option<&str>,
    ) -> Result<Epr, CallError> {
        let mut req = dais_core::messages::request("SQLRowsetFactoryRequest", resource);
        if let Some(p) = port_type {
            req.push(XmlElement::new(ns::WSDAI, "wsdai", "PortTypeQName").with_text(p));
        }
        if let Some(n) = count {
            req.push(XmlElement::new(ns::WSDAIR, "wsdair", "Count").with_text(n.to_string()));
        }
        let response = self.core.soap().request(actions::SQL_ROWSET_FACTORY, req)?;
        dais_core::factory::parse_factory_response(&response).map_err(CallError::Fault)
    }

    /// `GetTuples` on a rowset resource (Figure 5): a page of rows.
    /// The reply travels the raw lane and is decoded with the pull
    /// parser, so the page never passes through a response element tree.
    pub fn get_tuples(
        &self,
        resource: &AbstractName,
        start: usize,
        count: usize,
    ) -> Result<Rowset, CallError> {
        let req = messages::get_tuples_request(resource, start, count);
        let mut reply = PooledBuf::take();
        self.core.soap().request_bytes_into(actions::GET_TUPLES, &req, &mut reply)?;
        messages::rowset_from_reply_bytes(&reply).map_err(CallError::UnexpectedResponse)
    }

    /// `GetRowsetPropertyDocument`.
    pub fn get_rowset_property_document(
        &self,
        resource: &AbstractName,
    ) -> Result<XmlElement, CallError> {
        let req = dais_core::messages::request("GetRowsetPropertyDocumentRequest", resource);
        let response = self.core.soap().request(actions::GET_ROWSET_PROPERTY_DOCUMENT, req)?;
        response
            .child(ns::WSDAI, "PropertyDocument")
            .cloned()
            .ok_or_else(|| CallError::UnexpectedResponse("no PropertyDocument".into()))
    }
}

impl DaisClient for SqlClient {
    fn service(&self) -> &ServiceClient {
        self.core.service()
    }

    fn from_service(service: ServiceClient) -> SqlClient {
        SqlClient { core: CoreClient::from_service(service) }
    }

    fn service_mut(&mut self) -> &mut ServiceClient {
        self.core.service_mut()
    }

    fn default_idempotent_actions() -> IdempotencySet {
        idempotent_actions()
    }
}

/// The `wsdair:SQLResponse` body shared by `SQLExecute` and `GetTuples`
/// responses.
fn parse_sql_response(response: XmlElement) -> Result<SqlResponseData, CallError> {
    let inner = response
        .child(ns::WSDAIR, "SQLResponse")
        .ok_or_else(|| CallError::UnexpectedResponse("no SQLResponse in response".into()))?;
    SqlResponseData::from_xml(inner).map_err(CallError::Fault)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{RelationalService, RelationalServiceOptions};
    use dais_core::{ConfigurationDocument, Sensitivity};
    use dais_sql::Database;

    fn setup() -> (Bus, SqlClient, AbstractName) {
        let bus = Bus::new();
        let db = Database::new("orders");
        db.execute_script(
            "CREATE TABLE item (id INTEGER PRIMARY KEY, name VARCHAR NOT NULL, price DOUBLE);
             INSERT INTO item VALUES (1, 'anvil', 10.0), (2, 'rope', 2.5), (3, 'rocket', 99.0);",
        )
        .unwrap();
        let svc = RelationalService::launch(
            &bus,
            "bus://orders",
            db,
            RelationalServiceOptions::default(),
        );
        let client = SqlClient::builder().bus(bus.clone()).address("bus://orders").build();
        (bus, client, svc.db_resource)
    }

    #[test]
    fn direct_access_query() {
        let (_, client, db) = setup();
        let data = client
            .execute(
                &db,
                "SELECT name FROM item WHERE price > ? ORDER BY id",
                &[Value::Double(5.0)],
            )
            .unwrap();
        let rowset = data.rowset().unwrap();
        assert_eq!(rowset.row_count(), 2);
        assert_eq!(rowset.rows[0][0], Value::Str("anvil".into()));
        assert_eq!(data.communication_area.sqlstate, "00000");
    }

    #[test]
    fn direct_access_update_and_comm_area() {
        let (_, client, db) = setup();
        let data =
            client.execute(&db, "UPDATE item SET price = price + 1 WHERE id < 3", &[]).unwrap();
        assert_eq!(data.update_count(), Some(2));
        let data = client.execute(&db, "DELETE FROM item WHERE id = 99", &[]).unwrap();
        assert_eq!(data.update_count(), Some(0));
        assert_eq!(data.communication_area.sqlstate, "02000");
    }

    #[test]
    fn sql_errors_become_invalid_expression_faults() {
        let (_, client, db) = setup();
        let err = client.execute(&db, "SELECT * FROM missing", &[]).unwrap_err();
        assert_eq!(err.dais_fault(), Some(dais_soap::fault::DaisFault::InvalidExpression));
        match err {
            CallError::Fault(f) => assert!(f.reason.contains("42P01"), "{}", f.reason),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dataset_format_validated() {
        let (_, client, db) = setup();
        let err = client.execute_with_format(&db, "urn:not-a-format", "SELECT 1", &[]).unwrap_err();
        assert_eq!(err.dais_fault(), Some(dais_soap::fault::DaisFault::InvalidDatasetFormat));
    }

    #[test]
    fn indirect_access_pipeline() {
        let (bus, client, db) = setup();
        // Consumer 1: create the response resource.
        let epr =
            client.execute_factory(&db, "SELECT * FROM item ORDER BY id", &[], None, None).unwrap();
        let response_name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();

        // Consumer 2 (via the EPR): inspect and derive a rowset.
        let c2 = SqlClient::from_epr(bus.clone(), epr);
        let rowset = c2.get_sql_rowset(&response_name, 1).unwrap();
        assert_eq!(rowset.row_count(), 3);
        let comm = c2.get_sql_communication_area(&response_name).unwrap();
        assert!(comm.is_success());
        let props = c2.get_response_property_document(&response_name).unwrap();
        assert_eq!(props.child_text(ns::WSDAIR, "NumberOfSQLRowsets").as_deref(), Some("1"));

        let rowset_epr = c2.rowset_factory(&response_name, Some(2), None).unwrap();
        let rowset_name = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();

        // Consumer 3: page tuples out of the rowset resource.
        let c3 = SqlClient::from_epr(bus, rowset_epr);
        let page = c3.get_tuples(&rowset_name, 0, 1).unwrap();
        assert_eq!(page.row_count(), 1);
        let page = c3.get_tuples(&rowset_name, 1, 10).unwrap();
        assert_eq!(page.row_count(), 1); // capped at 2 rows by Count
        let doc = c3.get_rowset_property_document(&rowset_name).unwrap();
        assert_eq!(doc.child_text(ns::WSDAIR, "NumberOfRows").as_deref(), Some("2"));
    }

    #[test]
    fn factory_rejects_dml() {
        let (_, client, db) = setup();
        let err = client.execute_factory(&db, "DELETE FROM item", &[], None, None).unwrap_err();
        assert_eq!(err.dais_fault(), Some(dais_soap::fault::DaisFault::InvalidExpression));
    }

    #[test]
    fn factory_port_type_validation() {
        let (_, client, db) = setup();
        // The advertised port type works.
        client
            .execute_factory(&db, "SELECT 1", &[], Some("wsdair:SQLResponseAccessPT"), None)
            .unwrap();
        // An unknown one faults.
        let err =
            client.execute_factory(&db, "SELECT 1", &[], Some("wsdair:Bogus"), None).unwrap_err();
        assert_eq!(err.dais_fault(), Some(dais_soap::fault::DaisFault::InvalidPortType));
    }

    #[test]
    fn sensitive_vs_insensitive_derived_resources() {
        let (_, client, db) = setup();
        let sensitive_config = ConfigurationDocument {
            sensitivity: Some(Sensitivity::Sensitive),
            ..Default::default()
        };
        let epr_sensitive = client
            .execute_factory(&db, "SELECT COUNT(*) FROM item", &[], None, Some(&sensitive_config))
            .unwrap();
        let epr_snapshot =
            client.execute_factory(&db, "SELECT COUNT(*) FROM item", &[], None, None).unwrap();
        let n_sensitive =
            AbstractName::new(epr_sensitive.resource_abstract_name().unwrap()).unwrap();
        let n_snapshot = AbstractName::new(epr_snapshot.resource_abstract_name().unwrap()).unwrap();

        client.execute(&db, "DELETE FROM item WHERE id = 1", &[]).unwrap();

        let sensitive = client.get_sql_rowset(&n_sensitive, 1).unwrap();
        let snapshot = client.get_sql_rowset(&n_snapshot, 1).unwrap();
        assert_eq!(sensitive.rows[0][0], Value::Int(2)); // re-evaluated
        assert_eq!(snapshot.rows[0][0], Value::Int(3)); // materialised
    }

    #[test]
    fn derived_resources_listed_and_destroyable() {
        let (_, client, db) = setup();
        let epr = client.execute_factory(&db, "SELECT 1", &[], None, None).unwrap();
        let name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
        let list = client.core().get_resource_list().unwrap();
        assert!(list.contains(&name));
        assert!(list.contains(&db));
        // Derived resources are service managed.
        let props = client.core().get_property_document(&name).unwrap();
        assert_eq!(props.management, dais_core::properties::ResourceManagementKind::ServiceManaged);
        assert_eq!(props.parent.as_ref(), Some(&db));
        // Destroy severs the relationship.
        client.core().destroy(&name).unwrap();
        assert!(client.get_sql_rowset(&name, 1).is_err());
    }

    #[test]
    fn response_item_and_missing_indexes() {
        let (_, client, db) = setup();
        let epr = client.execute_factory(&db, "SELECT 1", &[], None, None).unwrap();
        let name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
        // Wrong rowset index.
        assert!(client.get_sql_rowset(&name, 2).is_err());
        // No update counts on a query response.
        assert!(client.get_sql_update_count(&name, 1).is_err());
    }

    #[test]
    fn response_item_access() {
        let (_, client, db) = setup();
        let epr = client
            .execute_factory(&db, "SELECT name FROM item ORDER BY id", &[], None, None)
            .unwrap();
        let name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
        // Item 1 is the rowset of the single SELECT.
        match client.get_sql_response_item(&name, 1).unwrap() {
            SqlResponseItem::Rowset(r) => assert_eq!(r.row_count(), 3),
            other => panic!("expected rowset, got {other:?}"),
        }
        // A plain query carries no return value and no output parameters.
        assert_eq!(client.get_sql_return_value(&name).unwrap(), None);
        assert!(client.get_sql_output_parameters(&name, None).unwrap().is_empty());
        // Out-of-range item index faults.
        assert!(client.get_sql_response_item(&name, 2).is_err());
    }

    #[test]
    fn wrong_resource_kind_faults() {
        let (_, client, db) = setup();
        // GetTuples against the database resource (not a rowset).
        let err = client.get_tuples(&db, 0, 10).unwrap_err();
        assert_eq!(err.dais_fault(), Some(dais_soap::fault::DaisFault::InvalidResourceName));
    }

    #[test]
    fn execute_many_pipelines_a_batch() {
        let (bus, client, db) = setup();
        bus.install_executor(dais_soap::executor::ExecutorConfig::new(4).seed(21));
        let statements: Vec<String> =
            (1..=3).map(|id| format!("SELECT name FROM item WHERE id = {id}")).collect();
        let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
        let results = client.execute_many(&db, &refs, 8);
        let names: Vec<String> = results
            .into_iter()
            .map(|r| match r.unwrap().rowset().unwrap().rows[0][0].clone() {
                Value::Str(s) => s,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(names, ["anvil", "rope", "rocket"]);
        bus.shutdown_executor();
    }

    #[test]
    fn get_tuples_many_pages_concurrently() {
        let (bus, client, db) = setup();
        let epr = client
            .execute_factory(&db, "SELECT id FROM item ORDER BY id", &[], None, None)
            .unwrap();
        let response_name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
        let rowset_epr = client.rowset_factory(&response_name, None, None).unwrap();
        let rowset_name = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();
        bus.install_executor(dais_soap::executor::ExecutorConfig::new(2).seed(22));
        let pages = client.get_tuples_many(&rowset_name, &[(0, 1), (1, 1), (2, 1)], 3);
        let ids: Vec<Value> = pages.into_iter().map(|p| p.unwrap().rows[0][0].clone()).collect();
        assert_eq!(ids, [Value::Int(1), Value::Int(2), Value::Int(3)]);
        bus.shutdown_executor();
    }

    #[test]
    fn streamed_replies_are_byte_identical_to_the_tree_path() {
        use dais_soap::envelope::Envelope;

        let (_, client, db) = setup();
        let epr =
            client.execute_factory(&db, "SELECT * FROM item ORDER BY id", &[], None, None).unwrap();
        let response_name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
        let rowset_epr = client.rowset_factory(&response_name, None, None).unwrap();
        let rowset_name = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();

        // GetTuples: raw reply bytes == the materialised tree construction.
        let req = messages::get_tuples_request(&rowset_name, 0, 2);
        let mut raw = Vec::new();
        client.core().soap().request_bytes_into(actions::GET_TUPLES, &req, &mut raw).unwrap();
        let data = SqlResponseData {
            rowsets: vec![client.get_tuples(&rowset_name, 0, 2).unwrap()],
            communication_area: SqlCommunicationArea::success(),
            ..Default::default()
        };
        let tree = Envelope::with_body(
            XmlElement::new(ns::WSDAIR, "wsdair", "GetTuplesResponse").with_child(data.to_xml()),
        );
        assert_eq!(raw, tree.to_bytes());

        // SQLExecute on a SELECT: ditto, including the 02000 comm area
        // an empty result carries.
        for sql in ["SELECT name FROM item ORDER BY id", "SELECT id FROM item WHERE id > 99"] {
            let req = messages::sql_execute_request(&db, ns::ROWSET, sql, &[]);
            let mut raw = Vec::new();
            client.core().soap().request_bytes_into(actions::SQL_EXECUTE, &req, &mut raw).unwrap();
            let data = client.execute(&db, sql, &[]).unwrap();
            let tree = Envelope::with_body(
                XmlElement::new(ns::WSDAIR, "wsdair", "SQLExecuteResponse")
                    .with_child(data.to_xml()),
            );
            assert_eq!(raw, tree.to_bytes(), "{sql}");
        }
    }

    #[test]
    fn writes_accepted_when_writeable() {
        let (_, client, db) = setup();
        // The default database resource advertises Writeable=true, so DML
        // passes and the insert is visible to subsequent queries.
        client.execute(&db, "INSERT INTO item VALUES (10, 'new', 1.0)", &[]).unwrap();
        let data = client.execute(&db, "SELECT COUNT(*) FROM item", &[]).unwrap();
        assert_eq!(data.rowset().unwrap().rows[0][0], Value::Int(4));
    }
}
