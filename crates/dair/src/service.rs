//! Service-side registration of the WS-DAIR interfaces.
//!
//! Interfaces register independently (paper §4.3: "the proposed
//! interfaces may be used in isolation or in conjunction with others"),
//! so a deployment can put SQLAccess+SQLFactory on one service and the
//! response/rowset interfaces on others — exactly the three-service
//! arrangement of Figure 5 — or everything on a single service
//! ([`RelationalService::launch`]).

use crate::messages::{self, actions};
use crate::resources::{RowsetResource, SqlDataResource, SqlResponseResource};
use dais_core::factory::{factory_response, mint_resource_epr, DerivedResourceConfig};
use dais_core::service::QueryRewriter;
use dais_core::{
    register_core_ops, register_wsrf_ops, NameGenerator, ResourceRegistry, ServiceContext,
};
use dais_soap::bus::Bus;
use dais_soap::envelope::Envelope;
use dais_soap::fault::{DaisFault, Fault};
use dais_soap::service::SoapDispatcher;
use dais_sql::Database;
use dais_wsrf::LifetimeRegistry;
use dais_xml::{ns, QName, XmlElement, XmlWriter};
use std::sync::Arc;

fn payload(request: &Envelope) -> Result<&XmlElement, Fault> {
    request.payload().ok_or_else(|| Fault::client("request has an empty SOAP body"))
}

fn respond(element: XmlElement) -> Result<Envelope, Fault> {
    Ok(Envelope::with_body(element))
}

fn as_sql_resource(resource: &Arc<dyn dais_core::DataResource>) -> Result<&SqlDataResource, Fault> {
    resource.as_any().downcast_ref::<SqlDataResource>().ok_or_else(|| {
        Fault::dais(DaisFault::InvalidResourceName, "resource is not a relational data resource")
    })
}

fn as_response_resource(
    resource: &Arc<dyn dais_core::DataResource>,
) -> Result<&SqlResponseResource, Fault> {
    resource.as_any().downcast_ref::<SqlResponseResource>().ok_or_else(|| {
        Fault::dais(DaisFault::InvalidResourceName, "resource is not an SQL response resource")
    })
}

fn as_rowset_resource(
    resource: &Arc<dyn dais_core::DataResource>,
) -> Result<&RowsetResource, Fault> {
    resource.as_any().downcast_ref::<RowsetResource>().ok_or_else(|| {
        Fault::dais(DaisFault::InvalidResourceName, "resource is not a rowset resource")
    })
}

/// Register the **SQLAccess** interface (`SQLExecute`,
/// `GetSQLPropertyDocument`) for resources held by `ctx`.
pub fn register_sql_access(dispatcher: &mut SoapDispatcher, ctx: Arc<ServiceContext>) {
    let c = ctx.clone();
    dispatcher.register(actions::SQL_EXECUTE, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let sql_resource = as_sql_resource(&resource)?;
        let props = resource.core_properties();

        // DatasetMap check (§4.2: valid return formats are specified in
        // DatasetMap properties).
        if let Some(format) = dais_core::messages::extract_format_uri(body) {
            let message = QName::new(ns::WSDAIR, "wsdair", "SQLExecuteRequest");
            if !props.supports_format(&message, &format) {
                return Err(Fault::dais(
                    DaisFault::InvalidDatasetFormat,
                    format!("format '{format}' is not in the DatasetMap for SQLExecuteRequest"),
                ));
            }
        }

        let (sql, params) = messages::parse_sql_expression(body)?;
        let read_only = SqlDataResource::is_read_only_statement(&sql);
        if read_only && !props.readable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
        }
        if !read_only && !props.writeable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not writeable"));
        }
        let (sql, params) = match &c.query_rewriter {
            Some(rw) => {
                let (_, rewritten) = rw("sql", &sql);
                (rewritten, params)
            }
            None => (sql, params),
        };

        // SELECTs stream: rows are encoded off the engine cursor into a
        // raw-body reply (byte-identical to the tree path) without ever
        // materialising a rowset. The post-rewrite text decides, since
        // a rewriter may change the statement class.
        if SqlDataResource::is_read_only_statement(&sql) {
            let mut fragment = String::new();
            sql_resource.execute_query_streamed(&sql, &params, &mut fragment)?;
            return Ok(Envelope::with_raw_body(fragment));
        }
        let data = sql_resource.execute(&sql, &params)?;
        let mut response = XmlElement::new(ns::WSDAIR, "wsdair", "SQLExecuteResponse");
        response.push(data.to_xml());
        respond(response)
    });

    let c = ctx;
    dispatcher.register(actions::GET_SQL_PROPERTY_DOCUMENT, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_sql_resource(&resource)?;
        let mut response = XmlElement::new(ns::WSDAIR, "wsdair", "GetSQLPropertyDocumentResponse");
        response.push(resource.property_document());
        respond(response)
    });
}

/// Register the **SQLFactory** interface (`SQLExecuteFactory`). Derived
/// SQL response resources are registered on `target` (the data service
/// that will serve them — Data Service 2 in Figure 5) and the returned
/// EPR points at `target`'s address.
pub fn register_sql_factory(
    dispatcher: &mut SoapDispatcher,
    ctx: Arc<ServiceContext>,
    target: Arc<ServiceContext>,
    names: Arc<NameGenerator>,
) {
    dispatcher.register(actions::SQL_EXECUTE_FACTORY, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = ctx.resolve_resource(body)?;
        let sql_resource = as_sql_resource(&resource)?;
        let props = resource.core_properties();
        if !props.readable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
        }

        let config = DerivedResourceConfig::from_request(body)?;
        let message = QName::new(ns::WSDAIR, "wsdair", "SQLExecuteFactoryRequest");
        let (_port, effective) = config.resolve_against(&props.configuration_maps, &message)?;

        let (sql, params) = messages::parse_sql_expression(body)?;
        if !SqlDataResource::is_read_only_statement(&sql) {
            return Err(Fault::dais(
                DaisFault::InvalidExpression,
                "SQLExecuteFactory only accepts query statements",
            ));
        }

        let name = names.mint("sql-response");
        let derived_props = config.derived_properties(name.clone(), &effective);
        let response_resource =
            SqlResponseResource::create(derived_props, sql_resource.database(), &sql, &params)?;
        target.add_resource(Arc::new(response_resource));

        let epr = mint_resource_epr(&target.address, &name);
        respond(factory_response("SQLExecuteFactoryResponse", ns::WSDAIR, "wsdair", &epr))
    });
}

/// Register the **ResponseAccess** interface over `ctx`'s resources.
pub fn register_response_access(dispatcher: &mut SoapDispatcher, ctx: Arc<ServiceContext>) {
    let index_of = |body: &XmlElement| -> usize {
        body.child_text(ns::WSDAIR, "Index").and_then(|t| t.trim().parse().ok()).unwrap_or(1)
    };

    let c = ctx.clone();
    dispatcher.register(actions::GET_SQL_RESPONSE_PROPERTY_DOCUMENT, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_response_resource(&resource)?;
        let mut response =
            XmlElement::new(ns::WSDAIR, "wsdair", "GetSQLResponsePropertyDocumentResponse");
        response.push(resource.property_document());
        respond(response)
    });

    let c = ctx.clone();
    dispatcher.register(actions::GET_SQL_ROWSET, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let data = as_response_resource(&resource)?.response()?;
        let i = index_of(body);
        let rowset = data.rowsets.get(i - 1).ok_or_else(|| {
            Fault::client(format!(
                "response has {} rowset(s), index {i} requested",
                data.rowsets.len()
            ))
        })?;
        let mut response = XmlElement::new(ns::WSDAIR, "wsdair", "GetSQLRowsetResponse");
        response
            .push(XmlElement::new(ns::WSDAIR, "wsdair", "SQLRowset").with_child(rowset.to_xml()));
        respond(response)
    });

    let c = ctx.clone();
    dispatcher.register(actions::GET_SQL_UPDATE_COUNT, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let data = as_response_resource(&resource)?.response()?;
        let i = index_of(body);
        let count = data.update_counts.get(i - 1).ok_or_else(|| {
            Fault::client(format!(
                "response has {} update count(s), index {i} requested",
                data.update_counts.len()
            ))
        })?;
        respond(XmlElement::new(ns::WSDAIR, "wsdair", "GetSQLUpdateCountResponse").with_child(
            XmlElement::new(ns::WSDAIR, "wsdair", "SQLUpdateCount").with_text(count.to_string()),
        ))
    });

    let c = ctx.clone();
    dispatcher.register(actions::GET_SQL_RETURN_VALUE, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let data = as_response_resource(&resource)?.response()?;
        let mut response = XmlElement::new(ns::WSDAIR, "wsdair", "GetSQLReturnValueResponse");
        if let Some(v) = &data.return_value {
            response.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "SQLReturnValue")
                    .with_text(v.to_display_string()),
            );
        }
        respond(response)
    });

    let c = ctx.clone();
    dispatcher.register(actions::GET_SQL_OUTPUT_PARAMETER, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let data = as_response_resource(&resource)?.response()?;
        let requested = body.child_text(ns::WSDAIR, "ParameterName");
        let mut response = XmlElement::new(ns::WSDAIR, "wsdair", "GetSQLOutputParameterResponse");
        for (name, v) in &data.output_parameters {
            if requested.as_deref().map(|r| r == name).unwrap_or(true) {
                response.push(
                    XmlElement::new(ns::WSDAIR, "wsdair", "SQLOutputParameter")
                        .with_attr("name", name)
                        .with_text(v.to_display_string()),
                );
            }
        }
        respond(response)
    });

    let c = ctx.clone();
    dispatcher.register(actions::GET_SQL_COMMUNICATION_AREA, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let data = as_response_resource(&resource)?.response()?;
        let mut response = XmlElement::new(ns::WSDAIR, "wsdair", "GetSQLCommunicationAreaResponse");
        response.push(data.communication_area.to_xml());
        respond(response)
    });

    let c = ctx;
    dispatcher.register(actions::GET_SQL_RESPONSE_ITEM, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let data = as_response_resource(&resource)?.response()?;
        let i = index_of(body);
        // Items are numbered across rowsets then update counts.
        let total = data.rowsets.len() + data.update_counts.len();
        if i == 0 || i > total {
            return Err(Fault::client(format!(
                "response has {total} item(s), index {i} requested"
            )));
        }
        let mut response = XmlElement::new(ns::WSDAIR, "wsdair", "GetSQLResponseItemResponse");
        if i <= data.rowsets.len() {
            response.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "SQLRowset")
                    .with_child(data.rowsets[i - 1].to_xml()),
            );
        } else {
            response.push(
                XmlElement::new(ns::WSDAIR, "wsdair", "SQLUpdateCount")
                    .with_text(data.update_counts[i - 1 - data.rowsets.len()].to_string()),
            );
        }
        respond(response)
    });
}

/// Register the **ResponseFactory** interface (`SQLRowsetFactory`): derive
/// a rowset resource from a response, registered on `target`.
pub fn register_response_factory(
    dispatcher: &mut SoapDispatcher,
    ctx: Arc<ServiceContext>,
    target: Arc<ServiceContext>,
    names: Arc<NameGenerator>,
) {
    dispatcher.register(actions::SQL_ROWSET_FACTORY, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = ctx.resolve_resource(body)?;
        let data = as_response_resource(&resource)?.response()?;
        let props = resource.core_properties();

        let config = DerivedResourceConfig::from_request(body)?;
        let message = QName::new(ns::WSDAIR, "wsdair", "SQLRowsetFactoryRequest");
        let (_port, effective) = config.resolve_against(&props.configuration_maps, &message)?;

        let index: usize = body
            .child_text(ns::WSDAIR, "RowsetIndex")
            .and_then(|t| t.trim().parse().ok())
            .unwrap_or(1);
        let rowset = data.rowsets.get(index - 1).ok_or_else(|| {
            Fault::client(format!(
                "response has {} rowset(s), index {index} requested",
                data.rowsets.len()
            ))
        })?;
        // Figure 5 shows a Count parameter: an optional cap on the rows
        // materialised into the derived rowset resource.
        let rowset = match body.child_text(ns::WSDAIR, "Count").and_then(|t| t.trim().parse().ok())
        {
            Some(count) => rowset.slice(0, count),
            None => rowset.clone(),
        };

        let name = names.mint("rowset");
        let derived_props = config.derived_properties(name.clone(), &effective);
        target.add_resource(Arc::new(RowsetResource::new(derived_props, rowset)));

        let epr = mint_resource_epr(&target.address, &name);
        respond(factory_response("SQLRowsetFactoryResponse", ns::WSDAIR, "wsdair", &epr))
    });
}

/// Register the **RowsetAccess** interface (`GetTuples`,
/// `GetRowsetPropertyDocument`).
pub fn register_rowset_access(dispatcher: &mut SoapDispatcher, ctx: Arc<ServiceContext>) {
    let c = ctx.clone();
    dispatcher.register(actions::GET_TUPLES, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let rowset_resource = as_rowset_resource(&resource)?;
        if !resource.core_properties().readable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
        }
        let (start, count) = messages::parse_get_tuples(body)?;
        // Figure 5: GetTuplesResponse(SQLResponse(SQLRowset, SQLCommunicationArea)),
        // with the page window encoded straight out of the backing
        // rowset into a raw-body reply — no page clone, no element tree.
        let mut fragment = String::new();
        let mut w = XmlWriter::new(&mut fragment);
        messages::write_get_tuples_response(&mut w, rowset_resource.rowset(), start, count);
        w.finish();
        Ok(Envelope::with_raw_body(fragment))
    });

    let c = ctx;
    dispatcher.register(actions::GET_ROWSET_PROPERTY_DOCUMENT, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        as_rowset_resource(&resource)?;
        let mut response =
            XmlElement::new(ns::WSDAIR, "wsdair", "GetRowsetPropertyDocumentResponse");
        response.push(resource.property_document());
        respond(response)
    });
}

/// Options for assembling a relational data service.
#[derive(Default)]
pub struct RelationalServiceOptions {
    /// Enable the WSRF layer with this lifetime registry (Figure 7).
    pub wsrf: Option<Arc<LifetimeRegistry>>,
    /// Install a thick-wrapper statement rewriter (§2.1).
    pub query_rewriter: Option<QueryRewriter>,
}

/// A fully-assembled single-address relational data service: all five
/// WS-DAIR interfaces plus the WS-DAI core operations, serving one
/// wrapped database and any derived resources.
pub struct RelationalService {
    pub ctx: Arc<ServiceContext>,
    pub names: Arc<NameGenerator>,
    /// The abstract name of the wrapped database resource.
    pub db_resource: dais_core::AbstractName,
    /// The abstract name of the service's monitoring resource, whose
    /// property document is the live observability view of its endpoint.
    pub monitoring: dais_core::AbstractName,
}

impl RelationalService {
    /// Build the service, register it on the bus, and wrap `db` as its
    /// externally managed relational resource.
    pub fn launch(
        bus: &Bus,
        address: &str,
        db: Database,
        options: RelationalServiceOptions,
    ) -> RelationalService {
        let registry = ResourceRegistry::new();
        let ctx = Arc::new(ServiceContext {
            address: address.to_string(),
            registry,
            lifetime: options.wsrf,
            query_rewriter: options.query_rewriter,
        });
        let names =
            Arc::new(NameGenerator::new(address.trim_start_matches("bus://").replace('/', "-")));

        let mut dispatcher = SoapDispatcher::new();
        register_core_ops(&mut dispatcher, ctx.clone());
        if ctx.lifetime.is_some() {
            register_wsrf_ops(&mut dispatcher, ctx.clone());
        }
        register_sql_access(&mut dispatcher, ctx.clone());
        register_sql_factory(&mut dispatcher, ctx.clone(), ctx.clone(), names.clone());
        register_response_access(&mut dispatcher, ctx.clone());
        register_response_factory(&mut dispatcher, ctx.clone(), ctx.clone(), names.clone());
        register_rowset_access(&mut dispatcher, ctx.clone());
        bus.register(address, Arc::new(dispatcher));

        let db_resource = names.mint("db");
        ctx.add_resource(Arc::new(SqlDataResource::new(db_resource.clone(), db)));

        // Minted after the data resource so existing names are stable.
        let monitoring = names.mint("monitoring");
        ctx.add_resource(Arc::new(dais_core::MonitoringResource::new(
            monitoring.clone(),
            bus.clone(),
            address,
        )));

        RelationalService { ctx, names, db_resource, monitoring }
    }
}
