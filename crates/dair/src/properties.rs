//! The WS-DAIR extension property groups (paper Figure 4).
//!
//! Figure 4 shows the core WS-DAI properties alongside the different SQL
//! extension groupings, which "reflect the possible service interfaces
//! that can be used to access different types of relational data". This
//! module records that inventory so conformance tests (experiment E4) can
//! check every advertised property actually appears in the documents the
//! services serve.

/// The WS-DAI core property local names (all in the WS-DAI namespace).
pub const CORE_PROPERTIES: &[&str] = &[
    "DataResourceAbstractName",
    "ParentDataResource",
    "DataResourceManagement",
    "ConcurrentAccess",
    "DatasetMap",
    "ConfigurationMap",
    "GenericQueryLanguage",
    "DataResourceDescription",
    "Readable",
    "Writeable",
    "TransactionInitiation",
    "TransactionIsolation",
    "Sensitivity",
];

/// Extension properties of the SQLAccessDescription grouping (served with
/// the database resource's property document).
pub const SQL_ACCESS_PROPERTIES: &[&str] = &["CIMDescription", "NumberOfTables"];

/// Extension properties of the SQLResponseDescription grouping.
pub const SQL_RESPONSE_PROPERTIES: &[&str] = &[
    "NumberOfSQLRowsets",
    "NumberOfSQLUpdateCounts",
    "NumberOfSQLReturnValues",
    "NumberOfSQLOutputParameters",
];

/// Extension properties of the SQLRowsetDescription grouping.
pub const SQL_ROWSET_PROPERTIES: &[&str] = &["NumberOfRows", "RowSchema"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{RowsetResource, SqlDataResource, SqlResponseResource};
    use dais_core::properties::ResourceManagementKind;
    use dais_core::{AbstractName, CoreProperties, DataResource};
    use dais_sql::Database;
    use dais_xml::ns;

    fn db() -> Database {
        let db = Database::new("x");
        db.execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1);").unwrap();
        db
    }

    #[test]
    fn database_document_carries_core_and_access_groups() {
        let r = SqlDataResource::new(AbstractName::new("urn:d:db:0").unwrap(), db());
        let doc = r.property_document();
        for p in CORE_PROPERTIES {
            assert!(doc.child(ns::WSDAI, p).is_some(), "missing core property {p}");
        }
        for p in SQL_ACCESS_PROPERTIES {
            assert!(doc.child(ns::WSDAIR, p).is_some(), "missing SQL access property {p}");
        }
    }

    #[test]
    fn response_document_carries_response_group() {
        let props = CoreProperties::new(
            AbstractName::new("urn:d:r:0").unwrap(),
            ResourceManagementKind::ServiceManaged,
        );
        let r = SqlResponseResource::create(props, &db(), "SELECT * FROM t", &[]).unwrap();
        let doc = r.property_document();
        for p in SQL_RESPONSE_PROPERTIES {
            assert!(doc.child(ns::WSDAIR, p).is_some(), "missing response property {p}");
        }
    }

    #[test]
    fn rowset_document_carries_rowset_group() {
        let rowset = db().execute("SELECT * FROM t", &[]).unwrap().rowset().unwrap().clone();
        let props = CoreProperties::new(
            AbstractName::new("urn:d:rs:0").unwrap(),
            ResourceManagementKind::ServiceManaged,
        );
        let r = RowsetResource::new(props, rowset);
        let doc = r.property_document();
        for p in SQL_ROWSET_PROPERTIES {
            assert!(doc.child(ns::WSDAIR, p).is_some(), "missing rowset property {p}");
        }
    }
}
