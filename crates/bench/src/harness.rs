//! Measurement helpers for the experiment harness.

use dais_soap::bus::Bus;
use dais_soap::interceptor::InjectorSnapshot;
use std::time::{Duration, Instant};

/// One measured run: wall time plus the bus traffic it generated,
/// including the chaos-layer deltas (injected faults, retry attempts)
/// so failure experiments can report recovery cost alongside throughput.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    pub elapsed: Duration,
    pub messages: u64,
    pub request_bytes: u64,
    pub response_bytes: u64,
    pub injected: u64,
    pub retries: u64,
    /// What the chaos layer actually did during the run, by kind.
    pub fault_injection: InjectorSnapshot,
}

impl Measurement {
    pub fn total_bytes(&self) -> u64 {
        self.request_bytes + self.response_bytes
    }

    /// Mean microseconds per iteration for a run of `n` iterations.
    pub fn micros_per_iter(&self, n: u64) -> f64 {
        self.elapsed.as_micros() as f64 / n.max(1) as f64
    }
}

/// Run `f`, measuring wall time and the bus traffic it generates.
///
/// Opens a fresh stats epoch (`Bus::reset_stats`) before the workload,
/// so the snapshot afterwards *is* the measurement — no manual
/// subtraction, and the chaos ledger lines up with the traffic it
/// accompanied.
pub fn measure(bus: &Bus, f: impl FnOnce()) -> Measurement {
    bus.reset_stats();
    let start = Instant::now();
    f();
    let elapsed = start.elapsed();
    let s = bus.stats();
    Measurement {
        elapsed,
        messages: s.messages,
        request_bytes: s.request_bytes,
        response_bytes: s.response_bytes,
        injected: s.injected,
        retries: s.retries,
        fault_injection: s.fault_injection,
    }
}

/// Format a byte count for table output.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1_048_576 {
        format!("{:.2} MiB", bytes as f64 / 1_048_576.0)
    } else if bytes >= 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Format a duration for table output.
pub fn fmt_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros >= 1_000_000 {
        format!("{:.2} s", d.as_secs_f64())
    } else if micros >= 1000 {
        format!("{:.2} ms", micros as f64 / 1000.0)
    } else {
        format!("{micros} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_soap::envelope::Envelope;
    use dais_soap::service::SoapDispatcher;
    use dais_xml::XmlElement;
    use std::sync::Arc;

    #[test]
    fn measures_traffic_delta() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
        bus.register("bus://svc", Arc::new(d));
        // Pre-existing traffic is excluded from the measurement.
        bus.call("bus://svc", "urn:echo", &Envelope::with_body(XmlElement::new_local("x")))
            .unwrap()
            .unwrap();
        let m = measure(&bus, || {
            for _ in 0..3 {
                bus.call("bus://svc", "urn:echo", &Envelope::with_body(XmlElement::new_local("y")))
                    .unwrap()
                    .unwrap();
            }
        });
        assert_eq!(m.messages, 3);
        assert!(m.total_bytes() > 0);
        assert!(m.micros_per_iter(3) >= 0.0);
        // A healthy bus with no chaos layer reports zero deltas.
        assert_eq!((m.injected, m.retries), (0, 0));
    }

    #[test]
    fn measures_chaos_deltas() {
        use dais_soap::interceptor::{FaultInjector, FaultPolicy};

        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
        bus.register("bus://chaos", Arc::new(d));
        let injector = FaultInjector::new(7);
        injector.set_policy("bus://chaos", FaultPolicy::default().drop(1.0));
        bus.add_interceptor(Arc::new(injector));
        let m = measure(&bus, || {
            let _ = bus.call(
                "bus://chaos",
                "urn:echo",
                &Envelope::with_body(XmlElement::new_local("x")),
            );
        });
        assert_eq!(m.injected, 1);
        assert_eq!(m.fault_injection.drops, 1);
        assert_eq!(m.fault_injection.total(), 1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert!(fmt_bytes(3 * 1024 * 1024).contains("MiB"));
        assert!(fmt_duration(Duration::from_micros(500)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains("s"));
    }
}
