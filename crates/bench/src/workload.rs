//! Deterministic workload generators.

use dais_sql::{Database, Value};
use dais_util::SplitMix64;
use dais_xmldb::XmlDatabase;

/// A seeded RNG for reproducible workloads.
pub fn seeded_rng(seed: u64) -> SplitMix64 {
    SplitMix64::new(seed)
}

/// Create and populate an `item` table with `rows` rows. Each row has an
/// integer key, a category (ten distinct values), a price and a VARCHAR
/// payload of `payload_width` characters — the knob the E1/E2 message-size
/// sweeps turn.
pub fn populate_items(db: &Database, rows: usize, payload_width: usize) {
    db.execute(
        "CREATE TABLE item (
            id INTEGER PRIMARY KEY,
            category INTEGER NOT NULL,
            price DOUBLE NOT NULL,
            payload VARCHAR NOT NULL
        )",
        &[],
    )
    .expect("create item table");
    let mut rng = seeded_rng(42);
    // Insert in batches to keep statement parse cost out of the data load.
    let mut pending: Vec<String> = Vec::new();
    for i in 0..rows {
        let category = rng.gen_range(0, 10);
        let price = (rng.gen_range(0, 100_000) as f64) / 100.0;
        let payload: String =
            (0..payload_width).map(|_| char::from(b'a' + rng.gen_range(0, 26) as u8)).collect();
        pending.push(format!("({i}, {category}, {price}, '{payload}')"));
        if pending.len() == 256 {
            db.execute(&format!("INSERT INTO item VALUES {}", pending.join(", ")), &[])
                .expect("insert items");
            pending.clear();
        }
    }
    if !pending.is_empty() {
        db.execute(&format!("INSERT INTO item VALUES {}", pending.join(", ")), &[])
            .expect("insert items");
    }
}

/// Populate a `books` collection with `n` book documents (title, author,
/// year, price and a variable-length abstract).
pub fn populate_books(db: &XmlDatabase, collection: &str, n: usize) {
    if !db.has_collection(collection) {
        db.create_collection(collection).expect("create collection");
    }
    let mut rng = seeded_rng(7);
    for i in 0..n {
        let year = 1990 + rng.gen_range(0, 35);
        let price = rng.gen_range(5, 120);
        let abstract_len = rng.gen_range(10, 60);
        let abstract_text: String =
            (0..abstract_len).map(|_| char::from(b'a' + rng.gen_range(0, 26) as u8)).collect();
        let doc = format!(
            "<book id='{i}'>\
               <title>Book {i}</title>\
               <author>Author {}</author>\
               <year>{year}</year>\
               <price>{price}</price>\
               <abstract>{abstract_text}</abstract>\
             </book>",
            i % 17
        );
        db.add_document(collection, &format!("book{i}"), &doc).expect("add book");
    }
}

/// A helper for parameterised query workloads: the selectivity knob. The
/// returned predicate value selects roughly `fraction` of `populate_items`
/// rows via `category < value` (categories are uniform over 0..10).
pub fn category_threshold(fraction: f64) -> Value {
    Value::Int((fraction * 10.0).round() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_are_deterministic() {
        let a = Database::new("a");
        let b = Database::new("b");
        populate_items(&a, 500, 16);
        populate_items(&b, 500, 16);
        let qa = a.execute("SELECT SUM(price), COUNT(*) FROM item", &[]).unwrap();
        let qb = b.execute("SELECT SUM(price), COUNT(*) FROM item", &[]).unwrap();
        assert_eq!(qa.rowset().unwrap().rows, qb.rowset().unwrap().rows);
        assert_eq!(qa.rowset().unwrap().rows[0][1], Value::Int(500));
    }

    #[test]
    fn payload_width_respected() {
        let db = Database::new("w");
        populate_items(&db, 10, 32);
        let q = db.execute("SELECT LENGTH(payload) FROM item LIMIT 1", &[]).unwrap();
        assert_eq!(q.rowset().unwrap().rows[0][0], Value::Int(32));
    }

    #[test]
    fn books_are_deterministic_and_queryable() {
        let a = XmlDatabase::new("a");
        populate_books(&a, "books", 50);
        assert_eq!(a.document_count(), 50);
        let hits = a.xpath_query("books", "/book[price > 60]").unwrap();
        let b = XmlDatabase::new("b");
        populate_books(&b, "books", 50);
        assert_eq!(hits.len(), b.xpath_query("books", "/book[price > 60]").unwrap().len());
    }

    #[test]
    fn selectivity_knob() {
        let db = Database::new("s");
        populate_items(&db, 2000, 8);
        let half = db
            .execute("SELECT COUNT(*) FROM item WHERE category < ?", &[category_threshold(0.5)])
            .unwrap();
        let n = match half.rowset().unwrap().rows[0][0] {
            Value::Int(n) => n,
            ref other => panic!("{other:?}"),
        };
        // Roughly half (uniform categories).
        assert!((800..1200).contains(&n), "selectivity off: {n}");
    }
}
