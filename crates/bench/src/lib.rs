//! # dais-bench
//!
//! Workload generators and measurement helpers for the paper-figure
//! experiments (see `DESIGN.md` §3 for the experiment index E1–E10 and
//! `EXPERIMENTS.md` for recorded results).
//!
//! Everything here is deterministic: workloads are generated from seeded
//! RNGs so experiment output is reproducible run-to-run.

pub mod crit;
pub mod harness;
pub mod workload;

pub use harness::{measure, Measurement};
pub use workload::{populate_books, populate_items, seeded_rng};
