//! A minimal, API-compatible stand-in for the slice of `criterion` the
//! paper-figure benches use (the real crate is unavailable offline).
//!
//! It implements `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId` and `Bencher::iter`
//! with straightforward wall-clock sampling: each sample times one call of
//! the `iter` closure, and the per-group report prints min/mean over the
//! samples. Good enough to keep the bench targets compiling, running and
//! honest about relative cost; not a statistics engine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to each bench function by [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }
}

/// A named benchmark id, optionally parameterised (`name/param`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // One warm-up sample, discarded.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.report(&self.name, &id.label);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`] once per sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }

    /// Like `iter`, but with untimed per-sample setup.
    pub fn iter_with_setup<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut f: impl FnMut(I) -> T,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(f(input));
        self.samples.push(start.elapsed());
    }

    fn report(&self, group: &str, label: &str) {
        let Some(min) = self.samples.iter().min() else {
            println!("  {group}/{label}: no samples (closure never called iter)");
            return;
        };
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "  {group}/{label}: mean {:>10.2?}  min {:>10.2?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Expands to a function running each bench with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            $(
                let mut c = $crate::crit::Criterion::default();
                $target(&mut c);
            )+
        }
    };
}

/// Expands to `main`, invoking each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_requested_samples() {
        let mut calls = 0usize;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        group.finish();
        // 5 samples + 1 warm-up.
        assert_eq!(calls, 6);
    }

    #[test]
    fn benchmark_id_formats_parameter() {
        let id = BenchmarkId::new("direct", 100);
        assert_eq!(id.label, "direct/100");
    }
}
