//! Open-loop load driver for the paged data plane.
//!
//! The wire benches and E14 measure *closed-loop* behaviour: a fixed
//! window of outstanding requests, so the client slows down whenever the
//! service does and offered load adapts to capacity. Real DAIS consumers
//! don't coordinate like that — arrivals come at whatever rate the
//! upstream produces. This driver submits `GetTuples` requests at a
//! fixed arrival rate (open loop) against a `RelationalService` behind
//! an 8-worker executor and reports the latency distribution per
//! offered load: p50/p99 stay flat while the service keeps up, then the
//! queue builds, latency explodes, and the bounded admission starts
//! shedding with `Overloaded`.
//!
//! Arrivals are never gated on completions: the submitting thread spins
//! to each tick and polls `Pending::is_ready` between ticks, so a
//! completion is timestamped within the inter-arrival gap it lands in.
//!
//! `DAIS_BENCH_QUICK=1` shrinks the request counts and the rate sweep
//! for CI smoke runs.

use dais_bench::workload::populate_items;
use dais_core::AbstractName;
use dais_dair::{actions, messages, RelationalService, SqlClient};
use dais_soap::envelope::Envelope;
use dais_soap::{Bus, ExecutorConfig, Pending};
use dais_sql::Database;
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::var_os("DAIS_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// Move finished exchanges out of the in-flight set, recording each
/// latency as submit→ready. Never blocks: `wait` is only called on
/// handles `is_ready` already vouched for.
fn sweep(in_flight: &mut Vec<(Instant, Pending)>, latencies: &mut Vec<Duration>) {
    let mut i = 0;
    while i < in_flight.len() {
        if in_flight[i].1.is_ready() {
            let (submitted, pending) = in_flight.swap_remove(i);
            pending.wait().expect("bus error").expect("fault");
            latencies.push(submitted.elapsed());
        } else {
            i += 1;
        }
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn fmt_us(d: Duration) -> String {
    format!("{:.0} µs", d.as_secs_f64() * 1e6)
}

struct RunResult {
    completed: usize,
    shed: usize,
    p50: Duration,
    p99: Duration,
}

/// Drive `total` arrivals at `rate` requests/second and collect the
/// completion latency distribution plus the admission-shed count.
fn drive(bus: &Bus, env: &Envelope, rate: f64, total: usize) -> RunResult {
    let period = Duration::from_secs_f64(1.0 / rate);
    let mut in_flight: Vec<(Instant, Pending)> = Vec::with_capacity(256);
    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    let mut shed = 0usize;
    let start = Instant::now();
    for i in 0..total {
        let due = start + period.mul_f64(i as f64);
        // Spin to the tick, harvesting completions on the way: the
        // arrival schedule never waits for the service.
        while Instant::now() < due {
            sweep(&mut in_flight, &mut latencies);
            std::hint::spin_loop();
        }
        match bus.call_async("bus://open", actions::GET_TUPLES, env) {
            Ok(pending) => in_flight.push((Instant::now(), pending)),
            Err(_) => shed += 1,
        }
    }
    while !in_flight.is_empty() {
        sweep(&mut in_flight, &mut latencies);
        std::thread::sleep(Duration::from_micros(20));
    }
    latencies.sort_unstable();
    RunResult {
        completed: latencies.len(),
        shed,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

fn main() {
    println!("## Open-loop GetTuples: latency vs offered load\n");

    // A 1 000-row table behind the full indirect-access pipeline; every
    // request pages 256 rows out of the streamed rowset resource.
    let bus = Bus::new();
    let db = Database::new("open");
    populate_items(&db, 1000, 32);
    let svc = RelationalService::launch(&bus, "bus://open", db, Default::default());
    let client = SqlClient::new(bus.clone(), "bus://open");
    let epr = client
        .execute_factory(&svc.db_resource, "SELECT * FROM item ORDER BY id", &[], None, None)
        .expect("factory");
    let response_name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    let rowset_epr = client.rowset_factory(&response_name, None, None).expect("rowset factory");
    let rowset_name = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();
    let env = Envelope::with_body(messages::get_tuples_request(&rowset_name, 0, 256));

    bus.install_executor(ExecutorConfig::new(8).shards(1).queue_capacity(64).seed(0x09E7));
    // Warm caches, pools and the executor path before the timed sweeps.
    for _ in 0..8 {
        bus.call("bus://open", actions::GET_TUPLES, &env).unwrap().unwrap();
    }

    let (rates, total): (&[f64], usize) = if quick() {
        (&[500.0, 2_000.0], 100)
    } else {
        (&[500.0, 2_000.0, 8_000.0, 32_000.0], 2000)
    };
    println!(
        "8 workers, one shard, queue capacity 64; {total} arrivals per rate,\n\
         256-row pages off a 1 000-row rowset resource.\n"
    );
    println!("| offered load | completed | shed | p50 | p99 |");
    println!("|---:|---:|---:|---:|---:|");
    for &rate in rates {
        let r = drive(&bus, &env, rate, total);
        println!(
            "| {:.0}/s | {} | {} | {} | {} |",
            rate,
            r.completed,
            r.shed,
            fmt_us(r.p50),
            fmt_us(r.p99),
        );
        assert_eq!(r.completed + r.shed, total, "lost arrivals at {rate}/s");
    }
    let stats = bus.endpoint_stats("bus://open");
    println!(
        "\nEndpoint counters agree: {} exchange(s) shed with `Overloaded` across the sweep.",
        stats.shed
    );
    bus.shutdown_executor();
}
