//! Open-loop load driver for the paged data plane.
//!
//! The wire benches and E14 measure *closed-loop* behaviour: a fixed
//! window of outstanding requests, so the client slows down whenever the
//! service does and offered load adapts to capacity. Real DAIS consumers
//! don't coordinate like that — arrivals come at whatever rate the
//! upstream produces. This driver submits `GetTuples` requests at a
//! fixed arrival rate (open loop) against a `RelationalService` behind
//! an 8-worker executor and reports the latency distribution per
//! offered load: p50/p99 stay flat while the service keeps up, then the
//! queue builds, latency explodes, and the bounded admission starts
//! shedding with `Overloaded`.
//!
//! Arrivals are never gated on completions: the submitting thread spins
//! to each tick and polls `Pending::is_ready` between ticks, so a
//! completion is timestamped within the inter-arrival gap it lands in.
//!
//! Besides the markdown table, every run persists a machine-readable
//! `BENCH_OPENLOOP.json` — per-step offered load / completed / shed /
//! p50 / p99 plus the SLO engine's rolling-window report (each sweep
//! step is ingested as one SLO "second") — which the CI `slo-gate` job
//! compares against the checked-in baseline.
//!
//! Environment knobs:
//! * `DAIS_BENCH_QUICK=1` shrinks the request counts and the rate sweep
//!   for CI smoke runs.
//! * `DAIS_OPENLOOP_JSON=<path>` redirects the JSON export (the CI gate
//!   writes a fresh copy next to, not over, the checked-in baseline).
//! * `DAIS_OPENLOOP_FLIGHT=<path>` turns the flight recorder on for the
//!   sweep and writes the tail-retained traces plus the event journal
//!   to `<path>` — the artifact CI uploads when the gate fails.

use dais_bench::workload::populate_items;
use dais_core::{AbstractName, DaisClient};
use dais_dair::{actions, messages, RelationalService, SqlClient};
use dais_obs::{SloSample, TailPolicy};
use dais_soap::envelope::Envelope;
use dais_soap::{Bus, ExecutorConfig, Pending};
use dais_sql::Database;
use std::time::{Duration, Instant};

const ADDR: &str = "bus://open";

fn quick() -> bool {
    std::env::var_os("DAIS_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// Move finished exchanges out of the in-flight set, recording each
/// latency as submit→ready. Never blocks: `wait` is only called on
/// handles `is_ready` already vouched for.
fn sweep(in_flight: &mut Vec<(Instant, Pending)>, latencies: &mut Vec<Duration>) {
    let mut i = 0;
    while i < in_flight.len() {
        if in_flight[i].1.is_ready() {
            let (submitted, pending) = in_flight.swap_remove(i);
            pending.wait().expect("bus error").expect("fault");
            latencies.push(submitted.elapsed());
        } else {
            i += 1;
        }
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn fmt_us(d: Duration) -> String {
    format!("{:.0} µs", d.as_secs_f64() * 1e6)
}

struct RunResult {
    rate: f64,
    completed: usize,
    shed: usize,
    p50: Duration,
    p99: Duration,
}

/// Drive `total` arrivals at `rate` requests/second and collect the
/// completion latency distribution plus the admission-shed count.
fn drive(bus: &Bus, env: &Envelope, rate: f64, total: usize) -> RunResult {
    let period = Duration::from_secs_f64(1.0 / rate);
    let mut in_flight: Vec<(Instant, Pending)> = Vec::with_capacity(256);
    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    let mut shed = 0usize;
    let start = Instant::now();
    for i in 0..total {
        let due = start + period.mul_f64(i as f64);
        // Spin to the tick, harvesting completions on the way: the
        // arrival schedule never waits for the service.
        while Instant::now() < due {
            sweep(&mut in_flight, &mut latencies);
            std::hint::spin_loop();
        }
        match bus.call_async(ADDR, actions::GET_TUPLES, env) {
            Ok(pending) => in_flight.push((Instant::now(), pending)),
            Err(_) => shed += 1,
        }
    }
    while !in_flight.is_empty() {
        sweep(&mut in_flight, &mut latencies);
        std::thread::sleep(Duration::from_micros(20));
    }
    latencies.sort_unstable();
    RunResult {
        rate,
        completed: latencies.len(),
        shed,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

/// Persist the machine-readable export: the per-step sweep results and
/// the SLO engine's rolling-window view of the endpoint.
fn write_export(bus: &Bus, steps: &[RunResult], path: &str) -> std::io::Result<()> {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"benchmark\": \"open_loop\",\n  \"quick\": {},\n", quick()));
    json.push_str("  \"steps\": [\n");
    for (i, r) in steps.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"offeredLoad\": {:.0}, \"completed\": {}, \"shed\": {}, \
             \"p50Us\": {:.1}, \"p99Us\": {:.1}}}{}\n",
            r.rate,
            r.completed,
            r.shed,
            r.p50.as_secs_f64() * 1e6,
            r.p99.as_secs_f64() * 1e6,
            if i + 1 < steps.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    // The SLO engine's own JSON is a complete object; embed it under one
    // key so the gate can follow burn rates and window percentiles too.
    json.push_str("  \"slo\": ");
    json.push_str(&bus.obs().slo.render_json());
    json.push_str("}\n");
    std::fs::write(path, json)?;
    println!("\nwrote {path}");
    Ok(())
}

/// Write the flight-recorder artifact: the tail-retained span trees and
/// the full event journal, rendered deterministically.
fn write_flight(bus: &Bus, path: &str) -> std::io::Result<()> {
    let traces = bus.obs().tracer.take();
    let journal = bus.obs().journal.take();
    let mut out = String::from("# Open-loop flight recorder\n\n## Tail-retained traces\n\n```\n");
    out.push_str(&traces.render_text());
    out.push_str("```\n\n## Event journal\n\n```\n");
    out.push_str(&journal.render_text());
    out.push_str("```\n");
    std::fs::write(path, out)?;
    println!(
        "wrote {path} ({} retained trace(s), {} event(s))",
        traces.trace_ids().len(),
        journal.len()
    );
    Ok(())
}

fn main() {
    println!("## Open-loop GetTuples: latency vs offered load\n");

    // A 1 000-row table behind the full indirect-access pipeline; every
    // request pages 256 rows out of the streamed rowset resource.
    let bus = Bus::new();
    let db = Database::new("open");
    populate_items(&db, 1000, 32);
    let svc = RelationalService::launch(&bus, ADDR, db, Default::default());
    let client = SqlClient::builder().bus(bus.clone()).address(ADDR).build();
    let epr = client
        .execute_factory(&svc.db_resource, "SELECT * FROM item ORDER BY id", &[], None, None)
        .expect("factory");
    let response_name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    let rowset_epr = client.rowset_factory(&response_name, None, None).expect("rowset factory");
    let rowset_name = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();
    let env = Envelope::with_body(messages::get_tuples_request(&rowset_name, 0, 256));

    bus.install_executor(ExecutorConfig::new(8).shards(1).queue_capacity(64).seed(0x09E7));
    // Warm caches, pools and the executor path before the timed sweeps.
    for _ in 0..8 {
        bus.call(ADDR, actions::GET_TUPLES, &env).unwrap().unwrap();
    }

    let flight_path = std::env::var("DAIS_OPENLOOP_FLIGHT").ok();
    if flight_path.is_some() {
        bus.obs().journal.enable();
        bus.obs().tracer.enable_tailed(
            0x09E7,
            TailPolicy {
                latency_threshold_ns: 50_000_000,
                keep_outcomes: true,
                sample_per_million: 50_000,
            },
        );
    }

    let (rates, total): (&[f64], usize) = if quick() {
        (&[500.0, 2_000.0], 100)
    } else {
        (&[500.0, 2_000.0, 8_000.0, 32_000.0], 2000)
    };
    println!(
        "8 workers, one shard, queue capacity 64; {total} arrivals per rate,\n\
         256-row pages off a 1 000-row rowset resource.\n"
    );
    println!("| offered load | completed | shed | p50 | p99 |");
    println!("|---:|---:|---:|---:|---:|");
    let endpoint_key = format!("endpoint:{ADDR}");
    let mut steps = Vec::with_capacity(rates.len());
    for (i, &rate) in rates.iter().enumerate() {
        let r = drive(&bus, &env, rate, total);
        println!(
            "| {:.0}/s | {} | {} | {} | {} |",
            rate,
            r.completed,
            r.shed,
            fmt_us(r.p50),
            fmt_us(r.p99),
        );
        assert_eq!(r.completed + r.shed, total, "lost arrivals at {rate}/s");
        // One SLO "second" per sweep step: the cumulative endpoint
        // histogram plus the cumulative fault/shed counters, so the
        // engine's 1 s window is the latest step and the 60 s window is
        // the whole sweep — deterministic, wall-clock-free.
        let stats = bus.endpoint_stats(ADDR);
        let hist = bus.obs().metrics.snapshot().get(&endpoint_key).copied().unwrap_or_default();
        bus.obs().slo.ingest(
            i as u64,
            &endpoint_key,
            SloSample { hist, faults: stats.faults, shed: stats.shed },
        );
        steps.push(r);
    }
    let stats = bus.endpoint_stats(ADDR);
    println!(
        "\nEndpoint counters agree: {} exchange(s) shed with `Overloaded` across the sweep.",
        stats.shed
    );

    let json_path = std::env::var("DAIS_OPENLOOP_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_OPENLOOP.json").to_string()
    });
    write_export(&bus, &steps, &json_path).expect("failed to persist the open-loop export");
    if let Some(path) = flight_path {
        write_flight(&bus, &path).expect("failed to persist the flight artifact");
    }
    bus.shutdown_executor();
}
