//! E7 / Figure 7: cost of the WSRF layering — core operations with and
//! without the layer, soft-state bookkeeping, and the sweeper.

use dais_bench::crit::{BenchmarkId, Criterion};
use dais_bench::workload::populate_items;
use dais_bench::{criterion_group, criterion_main};
use dais_core::{AbstractName, DaisClient};
use dais_dair::{RelationalService, RelationalServiceOptions, SqlClient};
use dais_soap::Bus;
use dais_sql::Database;
use dais_wsrf::{LifetimeRegistry, ManualClock};
use std::sync::Arc;

fn launch(wsrf: bool) -> (Bus, SqlClient, AbstractName) {
    let bus = Bus::new();
    let db = Database::new("fig7");
    populate_items(&db, 100, 16);
    let options = if wsrf {
        RelationalServiceOptions {
            wsrf: Some(Arc::new(LifetimeRegistry::new(ManualClock::new()))),
            ..Default::default()
        }
    } else {
        Default::default()
    };
    let svc = RelationalService::launch(&bus, "bus://fig7", db, options);
    (bus.clone(), SqlClient::builder().bus(bus).address("bus://fig7").build(), svc.db_resource)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_wsrf");
    group.sample_size(30);

    // Same core operation, both deployments: the additive-layer claim.
    for (label, wsrf) in [("plain", false), ("wsrf", true)] {
        let (_bus, client, name) = launch(wsrf);
        group.bench_with_input(BenchmarkId::new("sql_execute", label), &wsrf, |b, _| {
            b.iter(|| client.execute(&name, "SELECT * FROM item WHERE id < 10", &[]).unwrap());
        });
    }

    // WSRF-only operations.
    let (_bus, client, name) = launch(true);
    group.bench_function("get_resource_property", |b| {
        b.iter(|| client.core().get_resource_property(&name, "wsdai:Readable").unwrap());
    });
    group.bench_function("set_termination_time", |b| {
        b.iter(|| client.core().set_termination_time(&name, Some(1_000_000)).unwrap());
    });

    // Sweep cost as leased population grows.
    for n in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("sweep", n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let clock = ManualClock::new();
                    let lifetime = LifetimeRegistry::new(clock.clone());
                    for i in 0..n {
                        lifetime.register(format!("urn:r:{i}"));
                        lifetime.set_termination_in(&format!("urn:r:{i}"), Some(10)).unwrap();
                    }
                    clock.advance(100);
                    lifetime
                },
                |lifetime| {
                    let swept = lifetime.sweep();
                    assert_eq!(swept.len(), n);
                },
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
