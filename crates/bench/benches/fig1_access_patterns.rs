//! E1 / Figure 1: direct vs indirect access latency across result sizes.
//!
//! Direct access pays for marshalling the rows on every call; the
//! indirect factory call is (nearly) size-independent. The crossover in
//! *consumer-1 cost* appears as soon as results outgrow an EPR.

use dais_bench::crit::{BenchmarkId, Criterion};
use dais_bench::workload::populate_items;
use dais_bench::{criterion_group, criterion_main};
use dais_core::DaisClient;
use dais_dair::{RelationalService, SqlClient};
use dais_soap::Bus;
use dais_sql::Database;

fn setup(rows: usize) -> (Bus, SqlClient, dais_core::AbstractName) {
    let bus = Bus::new();
    let db = Database::new("fig1");
    populate_items(&db, rows, 32);
    let svc = RelationalService::launch(&bus, "bus://fig1", db, Default::default());
    (bus.clone(), SqlClient::builder().bus(bus).address("bus://fig1").build(), svc.db_resource)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_access_patterns");
    group.sample_size(20);
    for rows in [10usize, 100, 1000] {
        let (_bus, client, name) = setup(rows);
        group.bench_with_input(BenchmarkId::new("direct", rows), &rows, |b, _| {
            b.iter(|| client.execute(&name, "SELECT * FROM item", &[]).unwrap());
        });
        let (bus2, client2, name2) = setup(rows);
        group.bench_with_input(BenchmarkId::new("indirect_factory", rows), &rows, |b, _| {
            b.iter(|| {
                let epr =
                    client2.execute_factory(&name2, "SELECT * FROM item", &[], None, None).unwrap();
                // Destroy to keep the registry bounded across iterations.
                let derived =
                    dais_core::AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
                client2.core().destroy(&derived).unwrap();
            });
        });
        drop(bus2);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
