//! E2 / Figure 2: the direct-access message pattern cost breakdown —
//! request building, full round trip, and the WebRowSet marshalling that
//! dominates large responses.

use dais_bench::crit::{BenchmarkId, Criterion};
use dais_bench::workload::populate_items;
use dais_bench::{criterion_group, criterion_main};
use dais_core::DaisClient;
use dais_dair::{messages, RelationalService, SqlClient};
use dais_soap::Bus;
use dais_sql::{Database, Value};
use dais_xml::{ns, parse, to_string};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_direct_messages");
    group.sample_size(20);

    // Request construction + serialisation (constant-size messages).
    let name = dais_core::AbstractName::new("urn:dais:b:db:0").unwrap();
    group.bench_function("build_and_serialise_request", |b| {
        b.iter(|| {
            let req = messages::sql_execute_request(
                &name,
                ns::ROWSET,
                "SELECT * FROM item WHERE category = ? AND price > ?",
                &[Value::Int(3), Value::Double(10.0)],
            );
            to_string(&req)
        });
    });

    // Response parse cost by result size (the WebRowSet decode path).
    for rows in [10usize, 100, 1000] {
        let db = Database::new("fig2");
        populate_items(&db, rows, 32);
        let rowset = db.execute("SELECT * FROM item", &[]).unwrap().rowset().unwrap().clone();
        let wire = to_string(&rowset.to_xml());
        group.bench_with_input(BenchmarkId::new("parse_webrowset", rows), &rows, |b, _| {
            b.iter(|| {
                let doc = parse(&wire).unwrap();
                dais_sql::Rowset::from_xml(&doc).unwrap()
            });
        });
    }

    // End-to-end round trip by result size.
    for rows in [10usize, 1000] {
        let bus = Bus::new();
        let db = Database::new("fig2");
        populate_items(&db, rows, 32);
        let svc = RelationalService::launch(&bus, "bus://fig2", db, Default::default());
        let client = SqlClient::builder().bus(bus).address("bus://fig2").build();
        group.bench_with_input(BenchmarkId::new("round_trip", rows), &rows, |b, _| {
            b.iter(|| client.execute(&svc.db_resource, "SELECT * FROM item", &[]).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
