//! The `wire` benchmark group: the serialisation fast lane measured
//! end to end — envelope round trips at three payload sizes, a full
//! `Bus::call` echo, streaming WebRowSet materialisation and a
//! `GetTuples` page of 1 000 rows.
//!
//! Besides the human-readable table, the runner persists two
//! machine-readable baselines at the repository root — `BENCH_PR3.json`
//! (the original wire rows) and `BENCH_PR8.json` (the pushdown paging
//! rows added with the zero-materialisation data plane) — each a JSON
//! array of `{bench, iters, ns_per_iter, bytes_per_iter}` rows. CI's
//! bench-smoke job runs this target with `DAIS_BENCH_QUICK=1` (fewer
//! iterations, same benches) and checks both files are well formed.

use dais_bench::workload::populate_items;
use dais_core::{AbstractName, DaisClient};
use dais_dair::{messages, RelationalService, SqlClient};
use dais_soap::envelope::Envelope;
use dais_soap::service::SoapDispatcher;
use dais_soap::{Bus, ExecutorConfig, Pending};
use dais_sql::{Database, Rowset, Value};
use dais_util::PooledBuf;
use dais_xml::ns;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

struct Row {
    bench: String,
    iters: u64,
    ns_per_iter: f64,
    bytes_per_iter: u64,
}

fn quick() -> bool {
    std::env::var_os("DAIS_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// Scale a full-run iteration count down for the CI smoke mode.
fn iters(full: u64) -> u64 {
    if quick() {
        (full / 100).clamp(2, 10)
    } else {
        full
    }
}

/// Time `iters` calls of `f` (after a short warm-up) and report ns/iter.
fn time_iters(iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn item_rowset(rows: usize) -> Rowset {
    let db = Database::new("wire");
    populate_items(&db, rows, 32);
    db.execute("SELECT * FROM item", &[]).unwrap().rowset().unwrap().clone()
}

/// Envelope serialise + parse round trip through a pooled buffer.
fn envelope_roundtrip(out: &mut Vec<Row>, label: &str, rows: usize) {
    let env = Envelope::with_body(item_rowset(rows).to_xml());
    let mut buf = PooledBuf::take();
    env.to_bytes_into(&mut buf);
    let bytes_per_iter = buf.len() as u64;
    let n = iters(match rows {
        0..=49 => 2000,
        50..=499 => 400,
        _ => 60,
    });
    let ns_per_iter = time_iters(n, || {
        buf.clear();
        env.to_bytes_into(&mut buf);
        black_box(Envelope::from_bytes(&buf).unwrap());
    });
    out.push(Row {
        bench: format!("envelope_roundtrip/{label}"),
        iters: n,
        ns_per_iter,
        bytes_per_iter,
    });
}

/// End-to-end `Bus::call` echo: both legs serialised, routed and parsed.
fn bus_echo(out: &mut Vec<Row>) {
    let bus = Bus::new();
    let mut d = SoapDispatcher::new();
    d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
    bus.register("bus://wire", Arc::new(d));
    let name = AbstractName::new("urn:dais:b:db:0").unwrap();
    let env = Envelope::with_body(messages::sql_execute_request(
        &name,
        ns::ROWSET,
        "SELECT * FROM item WHERE category = ? AND price > ?",
        &[Value::Int(3), Value::Double(10.0)],
    ));
    let n = iters(2000);
    let before = bus.stats();
    let ns_per_iter = time_iters(n, || {
        black_box(bus.call("bus://wire", "urn:echo", &env).unwrap().unwrap());
    });
    let after = bus.stats();
    let moved = (after.request_bytes + after.response_bytes)
        - (before.request_bytes + before.response_bytes);
    out.push(Row {
        bench: "bus_echo/sql_execute_request".into(),
        iters: n,
        ns_per_iter,
        bytes_per_iter: moved / (n + 2), // warm-up iterations also hit the bus
    });
}

/// The same echo with correlated tracing enabled: every call opens the
/// bus.call/bus.request/bus.dispatch/bus.response span quartet and the
/// response gains a `wsa:RelatesTo` header. Reported next to `bus_echo`
/// so the baseline bounds the enabled-tracing overhead.
fn bus_echo_traced(out: &mut Vec<Row>) {
    let bus = Bus::new();
    let mut d = SoapDispatcher::new();
    d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
    bus.register("bus://wire", Arc::new(d));
    bus.enable_tracing(0xB13);
    let name = AbstractName::new("urn:dais:b:db:0").unwrap();
    let env = Envelope::with_body(messages::sql_execute_request(
        &name,
        ns::ROWSET,
        "SELECT * FROM item WHERE category = ? AND price > ?",
        &[Value::Int(3), Value::Double(10.0)],
    ))
    // A `wsa:MessageID` carrying a trace context, as `ServiceClient`
    // sends: the dispatch span joins it and the response echoes it back
    // in `wsa:RelatesTo`.
    .with_header(
        dais_xml::XmlElement::new(ns::WSA, "wsa", "MessageID")
            .with_text("urn:dais:trace:00000000000000ab:00000000000000cd"),
    );
    let n = iters(2000);
    let before = bus.stats();
    let ns_per_iter = time_iters(n, || {
        black_box(bus.call("bus://wire", "urn:echo", &env).unwrap().unwrap());
        // Drain the sink every iteration, like a live exporter would, so
        // span storage stays flat and its cost is part of the figure.
        black_box(bus.obs().tracer.take());
    });
    let after = bus.stats();
    let moved = (after.request_bytes + after.response_bytes)
        - (before.request_bytes + before.response_bytes);
    out.push(Row {
        bench: "bus_echo_traced/sql_execute_request".into(),
        iters: n,
        ns_per_iter,
        bytes_per_iter: moved / (n + 2),
    });
}

/// Simulated per-request service time for the pipelining pair. A real
/// data service blocks per request (query evaluation, page faults, lock
/// waits); the executor's job is to overlap exactly that. The pure-echo
/// benches above keep measuring the bare wire cost.
const SERVICE_TIME: std::time::Duration = std::time::Duration::from_micros(40);

fn busy_bus() -> (Bus, Envelope) {
    let bus = Bus::new();
    let mut d = SoapDispatcher::new();
    d.register("urn:echo", |req: &Envelope| {
        std::thread::sleep(SERVICE_TIME);
        Ok(req.clone())
    });
    bus.register("bus://wire", Arc::new(d));
    let name = AbstractName::new("urn:dais:b:db:0").unwrap();
    let env = Envelope::with_body(messages::sql_execute_request(
        &name,
        ns::ROWSET,
        "SELECT * FROM item WHERE category = ? AND price > ?",
        &[Value::Int(3), Value::Double(10.0)],
    ));
    (bus, env)
}

/// The busy echo taken inline: every call pays the full service time on
/// the caller's thread. The baseline the executor is judged against.
fn bus_echo_busy(out: &mut Vec<Row>) {
    let (bus, env) = busy_bus();
    let n = iters(1000);
    let before = bus.stats();
    let ns_per_iter = time_iters(n, || {
        black_box(bus.call("bus://wire", "urn:echo", &env).unwrap().unwrap());
    });
    let after = bus.stats();
    let moved = (after.request_bytes + after.response_bytes)
        - (before.request_bytes + before.response_bytes);
    out.push(Row {
        bench: "bus_echo_busy/service40us".into(),
        iters: n,
        ns_per_iter,
        bytes_per_iter: moved / (n + 2),
    });
}

/// The same busy echo through the sharded executor with a sliding window
/// of eight requests in flight (`Bus::call_async`), final drain included
/// in the timed region. Four workers overlap the per-request service
/// time, so ns/iter here is the *throughput* figure the executor buys
/// over `bus_echo_busy` — the pure-CPU wire cost stays serial on a
/// single-core host, the blocking service time does not.
fn bus_pipelined(out: &mut Vec<Row>) {
    let (bus, env) = busy_bus();
    // One endpoint lives on one shard; a single shard puts all four
    // workers behind it instead of the round-robin default of two.
    bus.install_executor(ExecutorConfig::new(4).shards(1).queue_capacity(64).seed(0xB15));
    let window = 8;
    let n = iters(1000);
    // Warm-up rides the queued path too.
    for _ in 0..2 {
        bus.call("bus://wire", "urn:echo", &env).unwrap().unwrap();
    }
    let before = bus.stats();
    let start = Instant::now();
    let mut in_flight: std::collections::VecDeque<Pending> = std::collections::VecDeque::new();
    for _ in 0..n {
        if in_flight.len() == window {
            let oldest = in_flight.pop_front().unwrap();
            black_box(oldest.wait().unwrap().unwrap());
        }
        in_flight.push_back(bus.call_async("bus://wire", "urn:echo", &env).unwrap());
    }
    for pending in in_flight {
        black_box(pending.wait().unwrap().unwrap());
    }
    let ns_per_iter = start.elapsed().as_nanos() as f64 / n as f64;
    let after = bus.stats();
    bus.shutdown_executor();
    let moved = (after.request_bytes + after.response_bytes)
        - (before.request_bytes + before.response_bytes);
    out.push(Row {
        bench: "bus_pipelined/service40us_workers4_window8".into(),
        iters: n,
        ns_per_iter,
        bytes_per_iter: moved / n,
    });
}

/// Streaming WebRowSet materialisation into a pooled buffer.
fn rowset_stream(out: &mut Vec<Row>, rows: usize) {
    let rowset = item_rowset(rows);
    let mut buf = PooledBuf::take();
    rowset.to_wire_bytes_into(&mut buf);
    let bytes_per_iter = buf.len() as u64;
    let n = iters(200);
    let ns_per_iter = time_iters(n, || {
        buf.clear();
        rowset.to_wire_bytes_into(&mut buf);
        black_box(buf.len());
    });
    out.push(Row { bench: format!("rowset_stream/{rows}"), iters: n, ns_per_iter, bytes_per_iter });
}

/// A `GetTuples` page of 1 000 rows through the full indirect-access
/// pipeline: rowset resource derived from a response resource.
fn get_tuples_page(out: &mut Vec<Row>, rows: usize) {
    let bus = Bus::new();
    let db = Database::new("wire");
    populate_items(&db, rows, 32);
    let svc = RelationalService::launch(&bus, "bus://wire", db, Default::default());
    let client = SqlClient::builder().bus(bus.clone()).address("bus://wire").build();
    let epr = client
        .execute_factory(&svc.db_resource, "SELECT * FROM item ORDER BY id", &[], None, None)
        .unwrap();
    let response_name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    let rowset_epr = client.rowset_factory(&response_name, None, None).unwrap();
    let rowset_name = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();
    let n = iters(30);
    let before = bus.stats();
    let ns_per_iter = time_iters(n, || {
        let page = client.get_tuples(&rowset_name, 0, rows).unwrap();
        assert_eq!(page.row_count(), rows);
        black_box(page);
    });
    let after = bus.stats();
    let moved = (after.request_bytes + after.response_bytes)
        - (before.request_bytes + before.response_bytes);
    out.push(Row {
        bench: format!("get_tuples/{rows}"),
        iters: n,
        ns_per_iter,
        bytes_per_iter: moved / (n + 2),
    });
}

/// `GetTuples` paging over a response whose factory statement pushed its
/// projection (and, in the `projection_` variant, its selection) into
/// the table scan: the wide 256-byte `payload` column is never copied
/// into the materialised response rowset, and pages stream a fraction
/// of the stored bytes.
fn get_tuples_pushdown(out: &mut Vec<Row>, bench: &str, rows: usize, sql: &str) {
    let bus = Bus::new();
    let db = Database::new("wire");
    populate_items(&db, rows, 256);
    let svc = RelationalService::launch(&bus, "bus://wire", db, Default::default());
    let client = SqlClient::builder().bus(bus.clone()).address("bus://wire").build();
    let epr = client.execute_factory(&svc.db_resource, sql, &[], None, None).unwrap();
    let response_name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    let rowset_epr = client.rowset_factory(&response_name, None, None).unwrap();
    let rowset_name = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();
    let n = iters(if rows > 2000 { 10 } else { 30 });
    let before = bus.stats();
    let ns_per_iter = time_iters(n, || {
        let page = client.get_tuples(&rowset_name, 0, rows).unwrap();
        black_box(page.row_count());
        black_box(page);
    });
    let after = bus.stats();
    let moved = (after.request_bytes + after.response_bytes)
        - (before.request_bytes + before.response_bytes);
    out.push(Row { bench: bench.into(), iters: n, ns_per_iter, bytes_per_iter: moved / (n + 2) });
}

fn write_baseline(path: &str, rows: &[&Row]) -> std::io::Result<()> {
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"iters\": {}, \"ns_per_iter\": {:.1}, \"bytes_per_iter\": {}}}{}\n",
            r.bench,
            r.iters,
            r.ns_per_iter,
            r.bytes_per_iter,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::write(path, json)?;
    println!("\nwrote {path}");
    Ok(())
}

fn main() {
    let mut rows = Vec::new();
    println!("== wire{}", if quick() { " (quick mode)" } else { "" });
    envelope_roundtrip(&mut rows, "small", 10);
    envelope_roundtrip(&mut rows, "medium", 100);
    envelope_roundtrip(&mut rows, "large", 1000);
    bus_echo(&mut rows);
    bus_echo_traced(&mut rows);
    bus_echo_busy(&mut rows);
    bus_pipelined(&mut rows);
    rowset_stream(&mut rows, 1000);
    get_tuples_page(&mut rows, 1000);
    get_tuples_pushdown(
        &mut rows,
        "get_tuples_pushdown/1000",
        1000,
        "SELECT id, category, price FROM item ORDER BY id",
    );
    get_tuples_pushdown(
        &mut rows,
        "get_tuples_pushdown/10000",
        10_000,
        "SELECT id, category, price FROM item ORDER BY id",
    );
    get_tuples_pushdown(
        &mut rows,
        "get_tuples_pushdown/projection_1000",
        1000,
        "SELECT id FROM item WHERE category < 3 ORDER BY id",
    );
    for r in &rows {
        println!(
            "  wire/{}: {:>12.1} ns/iter  {:>8} bytes/iter  ({} iters)",
            r.bench, r.ns_per_iter, r.bytes_per_iter, r.iters
        );
    }
    let plain = rows.iter().find(|r| r.bench.starts_with("bus_echo/")).unwrap();
    let traced = rows.iter().find(|r| r.bench.starts_with("bus_echo_traced/")).unwrap();
    println!(
        "  tracing overhead: {:+.1}% per echo round trip",
        (traced.ns_per_iter / plain.ns_per_iter - 1.0) * 100.0
    );
    let busy = rows.iter().find(|r| r.bench.starts_with("bus_echo_busy/")).unwrap();
    let pipelined = rows.iter().find(|r| r.bench.starts_with("bus_pipelined/")).unwrap();
    println!(
        "  pipelining speed-up: {:.2}x echo throughput (4 workers, window 8, 40us service)",
        busy.ns_per_iter / pipelined.ns_per_iter
    );
    let stream = rows.iter().find(|r| r.bench == "rowset_stream/1000").unwrap();
    let page = rows.iter().find(|r| r.bench == "get_tuples/1000").unwrap();
    println!(
        "  get_tuples/1000 vs rowset_stream/1000: {:.2}x (streamed page over bare encoding)",
        page.ns_per_iter / stream.ns_per_iter
    );
    // The pushdown paging rows ride in their own baseline so the PR 3
    // file keeps its original row set.
    let (pr8, pr3): (Vec<&Row>, Vec<&Row>) =
        rows.iter().partition(|r| r.bench.starts_with("get_tuples_pushdown/"));
    write_baseline(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR3.json"), &pr3)
        .expect("failed to persist BENCH_PR3.json");
    write_baseline(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json"), &pr8)
        .expect("failed to persist BENCH_PR8.json");
}
