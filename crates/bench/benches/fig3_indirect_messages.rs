//! E3 / Figure 3: the indirect-access (factory) message pattern — factory
//! round trip across result sizes (size-independent when Insensitive-lazy
//! evaluation is not required), EPR minting, and Resolve().

use dais_bench::crit::{BenchmarkId, Criterion};
use dais_bench::workload::populate_items;
use dais_bench::{criterion_group, criterion_main};
use dais_core::factory::mint_resource_epr;
use dais_core::{AbstractName, DaisClient};
use dais_dair::{RelationalService, SqlClient};
use dais_soap::Bus;
use dais_sql::Database;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_indirect_messages");
    group.sample_size(20);

    // EPR minting and XML round trip (the whole consumer-visible payload).
    let name = AbstractName::new("urn:dais:b:response:0").unwrap();
    group.bench_function("mint_and_serialise_epr", |b| {
        b.iter(|| {
            let epr = mint_resource_epr("bus://svc2", &name);
            dais_xml::to_string(&epr.to_xml())
        });
    });

    // Factory round trip: the paper's claim is that this cost does not
    // scale with the result (for materialising factories the execution
    // itself does; the *message* stays constant — compare with fig2).
    for rows in [10usize, 1000] {
        let bus = Bus::new();
        let db = Database::new("fig3");
        populate_items(&db, rows, 32);
        let svc = RelationalService::launch(&bus, "bus://fig3", db, Default::default());
        let client = SqlClient::builder().bus(bus).address("bus://fig3").build();
        group.bench_with_input(BenchmarkId::new("factory_roundtrip", rows), &rows, |b, _| {
            b.iter(|| {
                let epr = client
                    .execute_factory(
                        &svc.db_resource,
                        "SELECT id FROM item LIMIT 1",
                        &[],
                        None,
                        None,
                    )
                    .unwrap();
                let derived = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
                client.core().destroy(&derived).unwrap();
            });
        });
    }

    // Resolve(): abstract name → EPR.
    let bus = Bus::new();
    let db = Database::new("fig3r");
    db.execute("CREATE TABLE t (a INTEGER)", &[]).unwrap();
    let svc = RelationalService::launch(&bus, "bus://fig3r", db, Default::default());
    let client = SqlClient::builder().bus(bus).address("bus://fig3r").build();
    group.bench_function("resolve", |b| {
        b.iter(|| client.core().resolve(&svc.db_resource).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
