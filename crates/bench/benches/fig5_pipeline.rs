//! E5 / Figure 5: the three-consumer relational pipeline vs repeated
//! direct access, and GetTuples page-size sensitivity.

use dais_bench::crit::{BenchmarkId, Criterion};
use dais_bench::workload::populate_items;
use dais_bench::{criterion_group, criterion_main};
use dais_core::{AbstractName, DaisClient};
use dais_dair::{RelationalService, SqlClient};
use dais_soap::Bus;
use dais_sql::Database;

fn name_of(epr: &dais_soap::Epr) -> AbstractName {
    AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_pipeline");
    group.sample_size(10);

    // One consumer needing 1000 rows: direct vs full pipeline.
    let bus = Bus::new();
    let db = Database::new("fig5");
    populate_items(&db, 1000, 24);
    let svc = RelationalService::launch(&bus, "bus://fig5", db, Default::default());
    let client = SqlClient::builder().bus(bus.clone()).address("bus://fig5").build();

    group.bench_function("direct_1000_rows", |b| {
        b.iter(|| client.execute(&svc.db_resource, "SELECT * FROM item", &[]).unwrap());
    });

    group.bench_function("pipeline_1000_rows", |b| {
        b.iter(|| {
            let epr = client
                .execute_factory(&svc.db_resource, "SELECT * FROM item", &[], None, None)
                .unwrap();
            let response = name_of(&epr);
            let rowset_epr = client.rowset_factory(&response, None, None).unwrap();
            let rowset = name_of(&rowset_epr);
            let mut got = 0;
            loop {
                let page = client.get_tuples(&rowset, got, 250).unwrap();
                if page.row_count() == 0 {
                    break;
                }
                got += page.row_count();
            }
            client.core().destroy(&rowset).unwrap();
            client.core().destroy(&response).unwrap();
            got
        });
    });

    // GetTuples page-size sweep over a fixed rowset resource.
    let epr =
        client.execute_factory(&svc.db_resource, "SELECT * FROM item", &[], None, None).unwrap();
    let response = name_of(&epr);
    let rowset_epr = client.rowset_factory(&response, None, None).unwrap();
    let rowset = name_of(&rowset_epr);
    for page in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("get_tuples_page", page), &page, |b, &page| {
            b.iter(|| {
                let mut got = 0;
                loop {
                    let p = client.get_tuples(&rowset, got, page).unwrap();
                    if p.row_count() == 0 {
                        break;
                    }
                    got += p.row_count();
                }
                got
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
