//! Ablations E8–E10: design decisions the paper discusses in prose.
//!
//! * E8 (§2.1) — thin vs thick wrappers;
//! * E9 (§4.2) — `Sensitivity`: materialised vs re-evaluated responses;
//! * E10 (§4.2) — per-message transactions and engine-level costs.

use dais_bench::crit::{BenchmarkId, Criterion};
use dais_bench::workload::populate_items;
use dais_bench::{criterion_group, criterion_main};
use dais_core::{AbstractName, ConfigurationDocument, DaisClient, Sensitivity};
use dais_dair::{RelationalService, RelationalServiceOptions, SqlClient};
use dais_soap::Bus;
use dais_sql::Database;
use std::sync::Arc;

fn bench_wrappers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_wrappers");
    group.sample_size(30);
    for (label, thick) in [("thin", false), ("thick", true)] {
        let bus = Bus::new();
        let db = Database::new("e8");
        populate_items(&db, 200, 16);
        let options = if thick {
            let rewriter: dais_core::service::QueryRewriter =
                Arc::new(|lang: &str, expr: &str| (lang.to_string(), format!("{expr} AND 1 = 1")));
            RelationalServiceOptions { query_rewriter: Some(rewriter), ..Default::default() }
        } else {
            Default::default()
        };
        let svc = RelationalService::launch(&bus, "bus://e8", db, options);
        let client = SqlClient::builder().bus(bus).address("bus://e8").build();
        group.bench_function(label, |b| {
            b.iter(|| {
                client
                    .execute(&svc.db_resource, "SELECT * FROM item WHERE category = 3", &[])
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_sensitivity");
    group.sample_size(20);
    for rows in [100usize, 5000] {
        let bus = Bus::new();
        let db = Database::new("e9");
        populate_items(&db, rows, 16);
        let svc = RelationalService::launch(&bus, "bus://e9", db, Default::default());
        let client = SqlClient::builder().bus(bus).address("bus://e9").build();
        for (label, s) in
            [("insensitive", Sensitivity::Insensitive), ("sensitive", Sensitivity::Sensitive)]
        {
            let config = ConfigurationDocument { sensitivity: Some(s), ..Default::default() };
            let epr = client
                .execute_factory(
                    &svc.db_resource,
                    "SELECT category, AVG(price) FROM item GROUP BY category",
                    &[],
                    None,
                    Some(&config),
                )
                .unwrap();
            let name = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
            group.bench_with_input(BenchmarkId::new(label, rows), &rows, |b, _| {
                b.iter(|| client.get_sql_rowset(&name, 1).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_transactions");
    group.sample_size(30);

    // Per-message auto-commit vs explicit batched transactions at the
    // engine level — what TransactionInitiation trades off.
    let setup = || {
        let db = Database::new("e10");
        db.execute("CREATE TABLE t (k INTEGER, v VARCHAR)", &[]).unwrap();
        db
    };
    group.bench_function("autocommit_100_inserts", |b| {
        b.iter_with_setup(setup, |db| {
            for i in 0..100 {
                db.execute("INSERT INTO t VALUES (?, 'x')", &[dais_sql::Value::Int(i)]).unwrap();
            }
            db
        });
    });
    group.bench_function("transaction_100_inserts", |b| {
        b.iter_with_setup(setup, |db| {
            let mut session = db.connect();
            session.execute("BEGIN", &[]).unwrap();
            for i in 0..100 {
                session
                    .execute("INSERT INTO t VALUES (?, 'x')", &[dais_sql::Value::Int(i)])
                    .unwrap();
            }
            session.execute("COMMIT", &[]).unwrap();
            db
        });
    });
    group.bench_function("rollback_100_inserts", |b| {
        b.iter_with_setup(setup, |db| {
            let mut session = db.connect();
            session.execute("BEGIN", &[]).unwrap();
            for i in 0..100 {
                session
                    .execute("INSERT INTO t VALUES (?, 'x')", &[dais_sql::Value::Int(i)])
                    .unwrap();
            }
            session.execute("ROLLBACK", &[]).unwrap();
            db
        });
    });
    group.finish();
}

criterion_group!(benches, bench_wrappers, bench_sensitivity, bench_transactions);
criterion_main!(benches);
