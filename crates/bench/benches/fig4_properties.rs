//! E4 / Figure 4: property document costs — whole-document retrieval vs
//! WSRF fine-grained access, and XPath queries over the document.

use dais_bench::crit::{BenchmarkId, Criterion};
use dais_bench::{criterion_group, criterion_main};
use dais_core::DaisClient;
use dais_dair::{RelationalService, RelationalServiceOptions, SqlClient};
use dais_soap::Bus;
use dais_sql::Database;
use dais_wsrf::{LifetimeRegistry, ManualClock};
use std::sync::Arc;

fn service_with_tables(tables: usize) -> (Bus, SqlClient, dais_core::AbstractName) {
    let bus = Bus::new();
    let db = Database::new("fig4");
    for t in 0..tables {
        db.execute(
            &format!("CREATE TABLE t{t} (id INTEGER PRIMARY KEY, a VARCHAR, b DOUBLE)"),
            &[],
        )
        .unwrap();
    }
    let svc = RelationalService::launch(
        &bus,
        "bus://fig4",
        db,
        RelationalServiceOptions {
            wsrf: Some(Arc::new(LifetimeRegistry::new(ManualClock::new()))),
            ..Default::default()
        },
    );
    (bus.clone(), SqlClient::builder().bus(bus).address("bus://fig4").build(), svc.db_resource)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_properties");
    group.sample_size(20);
    for tables in [1usize, 25] {
        let (_bus, client, name) = service_with_tables(tables);
        group.bench_with_input(BenchmarkId::new("whole_document", tables), &tables, |b, _| {
            b.iter(|| client.core().get_property_document_xml(&name).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("single_property", tables), &tables, |b, _| {
            b.iter(|| client.core().get_resource_property(&name, "wsdai:Readable").unwrap());
        });
        group.bench_with_input(BenchmarkId::new("xpath_query", tables), &tables, |b, _| {
            b.iter(|| {
                client
                    .core()
                    .query_resource_properties(&name, "count(//wsdair:CIMDescription)")
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
