//! E6 / Figure 6: per-operation round-trip cost across the interface
//! inventory (core, relational and XML realisations).

use dais_bench::crit::Criterion;
use dais_bench::workload::{populate_books, populate_items};
use dais_bench::{criterion_group, criterion_main};
use dais_core::{AbstractName, DaisClient};
use dais_dair::{RelationalService, SqlClient};
use dais_daix::{XmlClient, XmlService, XmlServiceOptions};
use dais_soap::Bus;
use dais_sql::Database;
use dais_xmldb::XmlDatabase;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_operations");
    group.sample_size(30);

    // Relational side.
    let bus = Bus::new();
    let db = Database::new("fig6");
    populate_items(&db, 100, 16);
    let svc = RelationalService::launch(&bus, "bus://fig6", db, Default::default());
    let client = SqlClient::builder().bus(bus.clone()).address("bus://fig6").build();
    let epr =
        client.execute_factory(&svc.db_resource, "SELECT id FROM item", &[], None, None).unwrap();
    let response = AbstractName::new(epr.resource_abstract_name().unwrap()).unwrap();
    let rowset_epr = client.rowset_factory(&response, None, None).unwrap();
    let rowset = AbstractName::new(rowset_epr.resource_abstract_name().unwrap()).unwrap();

    group.bench_function("core/GetDataResourcePropertyDocument", |b| {
        b.iter(|| client.core().get_property_document_xml(&svc.db_resource).unwrap());
    });
    group.bench_function("core/GetResourceList", |b| {
        b.iter(|| client.core().get_resource_list().unwrap());
    });
    group.bench_function("dair/SQLExecute_point_query", |b| {
        b.iter(|| {
            client.execute(&svc.db_resource, "SELECT * FROM item WHERE id = 7", &[]).unwrap()
        });
    });
    group.bench_function("dair/GetSQLRowset", |b| {
        b.iter(|| client.get_sql_rowset(&response, 1).unwrap());
    });
    group.bench_function("dair/GetTuples_10", |b| {
        b.iter(|| client.get_tuples(&rowset, 0, 10).unwrap());
    });
    group.bench_function("dair/GetSQLCommunicationArea", |b| {
        b.iter(|| client.get_sql_communication_area(&response).unwrap());
    });

    // XML side.
    let store = XmlDatabase::new("fig6x");
    populate_books(&store, "books", 100);
    let xsvc = XmlService::launch(&bus, "bus://fig6x", store.clone(), XmlServiceOptions::default());
    // Register the populated collection as its own resource.
    let coll = xsvc.names.mint("collection");
    xsvc.ctx.add_resource(Arc::new(dais_daix::XmlCollectionResource::new(
        coll.clone(),
        store,
        "books",
    )));
    let xclient = XmlClient::builder().bus(bus).address("bus://fig6x").build();

    group.bench_function("daix/XPathExecute", |b| {
        b.iter(|| xclient.xpath(&coll, "/book[price > 60]/title").unwrap());
    });
    group.bench_function("daix/XQueryExecute", |b| {
        b.iter(|| {
            xclient.xquery(&coll, "for $b in /book where $b/year > 2010 return $b/title").unwrap()
        });
    });
    group.bench_function("daix/GetDocuments_one", |b| {
        b.iter(|| xclient.get_documents(&coll, &["book5"]).unwrap());
    });
    group.bench_function("daix/GetCollectionPropertyDocument", |b| {
        b.iter(|| xclient.get_collection_property_document(&coll).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
