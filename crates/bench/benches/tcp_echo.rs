//! The `wire/tcp_echo` benchmark group: the same SQLExecute echo the
//! `wire` group measures in process, taken over the real TCP transport
//! on loopback — one frame round trip per call — plus a many-connection
//! echo storm exercising the connection pool and the server's
//! per-connection threads together.
//!
//! The in-process echo is re-measured in the same run so the TCP column
//! is read against a baseline from the same build and host. The runner
//! persists `BENCH_PR6.json` at the repository root in the same
//! `{bench, iters, ns_per_iter, bytes_per_iter}` shape as the `wire`
//! group's baseline; CI's bench-smoke job runs this target with
//! `DAIS_BENCH_QUICK=1` and validates the file.

use dais_core::AbstractName;
use dais_dair::messages;
use dais_soap::envelope::Envelope;
use dais_soap::service::SoapDispatcher;
use dais_soap::{Bus, TcpConfig, TcpServer, TcpTransport};
use dais_sql::Value;
use dais_xml::ns;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

struct Row {
    bench: String,
    iters: u64,
    ns_per_iter: f64,
    bytes_per_iter: u64,
}

fn quick() -> bool {
    std::env::var_os("DAIS_BENCH_QUICK").is_some_and(|v| v != "0")
}

fn iters(full: u64) -> u64 {
    if quick() {
        (full / 100).clamp(2, 10)
    } else {
        full
    }
}

fn time_iters(iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn echo_bus() -> (Bus, Envelope) {
    let bus = Bus::new();
    let mut d = SoapDispatcher::new();
    d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
    bus.register("bus://wire", Arc::new(d));
    let name = AbstractName::new("urn:dais:b:db:0").unwrap();
    let env = Envelope::with_body(messages::sql_execute_request(
        &name,
        ns::ROWSET,
        "SELECT * FROM item WHERE category = ? AND price > ?",
        &[Value::Int(3), Value::Double(10.0)],
    ));
    (bus, env)
}

/// One serial echo over a transport already installed on `bus` (or the
/// in-process path when none is). Bytes are billed identically on every
/// transport, so `bytes_per_iter` doubles as a parity check against the
/// `wire` group's `bus_echo` row.
fn echo(out: &mut Vec<Row>, bus: &Bus, env: &Envelope, label: &str) {
    let n = iters(2000);
    let before = bus.stats();
    let ns_per_iter = time_iters(n, || {
        black_box(bus.call("bus://wire", "urn:echo", env).unwrap().unwrap());
    });
    let after = bus.stats();
    let moved = (after.request_bytes + after.response_bytes)
        - (before.request_bytes + before.response_bytes);
    out.push(Row {
        bench: format!("{label}/sql_execute_request"),
        iters: n,
        ns_per_iter,
        bytes_per_iter: moved / (n + 2),
    });
}

/// The echo storm: `threads` caller threads share one bus and one pooled
/// transport against a single server, every call a full frame round
/// trip. Reported ns/iter is aggregate wall time over total calls, i.e.
/// the throughput figure for a many-connection client.
fn tcp_echo_storm(out: &mut Vec<Row>, threads: usize) {
    let (bus, env) = echo_bus();
    let server = TcpServer::bind(&bus, "127.0.0.1:0").unwrap();
    let transport =
        Arc::new(TcpTransport::new(TcpConfig { pool_size: threads, ..TcpConfig::default() }));
    transport.set_default_route(server.local_addr());
    bus.set_transport(transport);

    let per_thread = iters(500);
    let total = per_thread * threads as u64;
    let before = bus.stats();
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let bus = bus.clone();
            let env = env.clone();
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    black_box(bus.call("bus://wire", "urn:echo", &env).unwrap().unwrap());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let ns_per_iter = start.elapsed().as_nanos() as f64 / total as f64;
    let after = bus.stats();
    let moved = (after.request_bytes + after.response_bytes)
        - (before.request_bytes + before.response_bytes);
    out.push(Row {
        bench: format!("tcp_echo_storm/threads{threads}"),
        iters: total,
        ns_per_iter,
        bytes_per_iter: moved / total,
    });
    assert!(
        server.connections_accepted() >= threads as u64,
        "the storm should fan out over the whole pool"
    );
}

fn write_baseline(rows: &[Row]) -> std::io::Result<()> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json");
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"iters\": {}, \"ns_per_iter\": {:.1}, \"bytes_per_iter\": {}}}{}\n",
            r.bench,
            r.iters,
            r.ns_per_iter,
            r.bytes_per_iter,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::write(path, json)?;
    println!("\nwrote {path}");
    Ok(())
}

fn main() {
    let mut rows = Vec::new();
    println!("== wire/tcp_echo{}", if quick() { " (quick mode)" } else { "" });

    // In-process baseline from this same build and host.
    let (bus, env) = echo_bus();
    echo(&mut rows, &bus, &env, "inproc_echo");

    // The same echo through a loopback TCP frame round trip.
    let (bus, env) = echo_bus();
    let server = TcpServer::bind(&bus, "127.0.0.1:0").unwrap();
    let transport = Arc::new(TcpTransport::default());
    transport.set_default_route(server.local_addr());
    bus.set_transport(transport);
    echo(&mut rows, &bus, &env, "tcp_echo");
    drop(server);

    tcp_echo_storm(&mut rows, 4);
    tcp_echo_storm(&mut rows, 16);

    for r in &rows {
        println!(
            "  wire/{}: {:>12.1} ns/iter  {:>8} bytes/iter  ({} iters)",
            r.bench, r.ns_per_iter, r.bytes_per_iter, r.iters
        );
    }
    let inproc = rows.iter().find(|r| r.bench.starts_with("inproc_echo/")).unwrap();
    let tcp = rows.iter().find(|r| r.bench.starts_with("tcp_echo/")).unwrap();
    println!(
        "  loopback TCP cost: {:.2}x the in-process echo ({:+.1} us per round trip)",
        tcp.ns_per_iter / inproc.ns_per_iter,
        (tcp.ns_per_iter - inproc.ns_per_iter) / 1000.0
    );
    assert_eq!(
        inproc.bytes_per_iter, tcp.bytes_per_iter,
        "stats billing must be transport-invariant"
    );
    write_baseline(&rows).expect("failed to persist BENCH_PR6.json");
}
