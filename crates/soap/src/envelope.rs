//! The SOAP envelope model.

use dais_xml::{estimated_size, ns, parse, QName, XmlElement, XmlError, XmlWriter};

/// A SOAP envelope: optional header blocks and exactly one body payload.
///
/// DAIS direct/indirect request messages are single-element body payloads;
/// WS-Addressing blocks (To, Action, MessageID, reference parameters)
/// travel in the header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Envelope {
    pub header: Vec<XmlElement>,
    pub body: Vec<XmlElement>,
}

impl Envelope {
    /// An envelope with a single body payload and no headers.
    pub fn with_body(payload: XmlElement) -> Self {
        Envelope { header: Vec::new(), body: vec![payload] }
    }

    /// Add a header block.
    pub fn add_header(&mut self, block: XmlElement) {
        self.header.push(block);
    }

    /// Builder form of [`Envelope::add_header`].
    pub fn with_header(mut self, block: XmlElement) -> Self {
        self.header.push(block);
        self
    }

    /// The first (usually only) body element.
    pub fn payload(&self) -> Option<&XmlElement> {
        self.body.first()
    }

    /// First header block with the given expanded name.
    pub fn header_block(&self, namespace: &str, local: &str) -> Option<&XmlElement> {
        self.header.iter().find(|h| h.name.is(namespace, local))
    }

    /// Serialise to the wire form.
    pub fn to_xml(&self) -> XmlElement {
        let mut env = XmlElement::new(ns::SOAP_ENV, "soap", "Envelope");
        if !self.header.is_empty() {
            let mut header = XmlElement::new(ns::SOAP_ENV, "soap", "Header");
            for h in &self.header {
                header.push(h.clone());
            }
            env.push(header);
        }
        let mut body = XmlElement::new(ns::SOAP_ENV, "soap", "Body");
        for b in &self.body {
            body.push(b.clone());
        }
        env.push(body);
        env
    }

    /// Serialise to bytes (what the bus transports).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.to_bytes_into(&mut out);
        out
    }

    /// Serialise to bytes, appending to a caller-supplied (typically
    /// pooled) buffer. Streams the envelope frame and writes header/body
    /// blocks directly — no intermediate [`Envelope::to_xml`] deep clone —
    /// yet produces exactly the bytes of [`Envelope::to_bytes`].
    pub fn to_bytes_into(&self, out: &mut Vec<u8>) {
        let content: usize =
            self.header.iter().chain(&self.body).map(estimated_size).sum::<usize>();
        out.reserve(content + 128);
        let mut w = XmlWriter::new(out);
        w.start(&QName::new(ns::SOAP_ENV, "soap", "Envelope"));
        if !self.header.is_empty() {
            w.start(&QName::new(ns::SOAP_ENV, "soap", "Header"));
            for h in &self.header {
                w.element(h);
            }
            w.end();
        }
        w.start(&QName::new(ns::SOAP_ENV, "soap", "Body"));
        for b in &self.body {
            w.element(b);
        }
        w.end();
        w.end();
        w.finish();
    }

    /// Parse an envelope from a wire element.
    pub fn from_xml(root: &XmlElement) -> Result<Envelope, EnvelopeError> {
        if !root.name.is(ns::SOAP_ENV, "Envelope") {
            return Err(EnvelopeError::new(format!("expected soap:Envelope, found {}", root.name)));
        }
        let header = root
            .child(ns::SOAP_ENV, "Header")
            .map(|h| h.elements().cloned().collect())
            .unwrap_or_default();
        let body_el = root
            .child(ns::SOAP_ENV, "Body")
            .ok_or_else(|| EnvelopeError::new("envelope has no soap:Body"))?;
        let body = body_el.elements().cloned().collect();
        Ok(Envelope { header, body })
    }

    /// Parse from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Envelope, EnvelopeError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| EnvelopeError::new(format!("envelope is not UTF-8: {e}")))?;
        let root = parse(text).map_err(EnvelopeError::from)?;
        Envelope::from_xml(&root)
    }
}

/// A malformed-envelope error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvelopeError {
    pub message: String,
}

impl EnvelopeError {
    fn new(message: impl Into<String>) -> Self {
        EnvelopeError { message: message.into() }
    }
}

impl From<XmlError> for EnvelopeError {
    fn from(e: XmlError) -> Self {
        EnvelopeError { message: e.to_string() }
    }
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SOAP envelope error: {}", self.message)
    }
}

impl std::error::Error for EnvelopeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_xml::to_string;

    fn payload() -> XmlElement {
        XmlElement::new(ns::WSDAI, "wsdai", "GetDataResourcePropertyDocumentRequest").with_child(
            XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAbstractName").with_text("urn:r1"),
        )
    }

    #[test]
    fn roundtrip_through_bytes() {
        let env = Envelope::with_body(payload())
            .with_header(XmlElement::new(ns::WSA, "wsa", "Action").with_text("urn:op"));
        let rt = Envelope::from_bytes(&env.to_bytes()).unwrap();
        assert_eq!(rt, env);
    }

    #[test]
    fn headerless_envelope_omits_header_element() {
        let env = Envelope::with_body(payload());
        let xml = to_string(&env.to_xml());
        assert!(!xml.contains("Header"));
        assert_eq!(Envelope::from_bytes(&env.to_bytes()).unwrap(), env);
    }

    #[test]
    fn header_block_lookup() {
        let env = Envelope::with_body(payload())
            .with_header(XmlElement::new(ns::WSA, "wsa", "To").with_text("urn:svc"));
        assert_eq!(env.header_block(ns::WSA, "To").unwrap().text(), "urn:svc");
        assert!(env.header_block(ns::WSA, "Action").is_none());
    }

    #[test]
    fn missing_body_is_error() {
        let xml = format!("<soap:Envelope xmlns:soap='{}'/>", ns::SOAP_ENV);
        assert!(Envelope::from_bytes(xml.as_bytes()).is_err());
    }

    #[test]
    fn wrong_root_is_error() {
        assert!(Envelope::from_bytes(b"<NotAnEnvelope/>").is_err());
    }

    #[test]
    fn malformed_xml_is_error() {
        assert!(Envelope::from_bytes(b"<soap:Envelope").is_err());
    }

    #[test]
    fn streamed_bytes_match_tree_serialisation() {
        let with_header = Envelope::with_body(payload())
            .with_header(XmlElement::new(ns::WSA, "wsa", "Action").with_text("urn:op"));
        let headerless = Envelope::with_body(payload());
        for env in [with_header, headerless] {
            assert_eq!(env.to_bytes(), to_string(&env.to_xml()).into_bytes());
            let mut appended = b"x".to_vec();
            env.to_bytes_into(&mut appended);
            assert_eq!(&appended[1..], &env.to_bytes()[..]);
        }
    }

    #[test]
    fn payload_accessor() {
        let env = Envelope::with_body(payload());
        assert!(env
            .payload()
            .unwrap()
            .name
            .is(ns::WSDAI, "GetDataResourcePropertyDocumentRequest"));
    }
}
