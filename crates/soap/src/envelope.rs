//! The SOAP envelope model.

use dais_xml::{estimated_size, ns, parse, QName, XmlElement, XmlError, XmlWriter};

/// A SOAP envelope: optional header blocks and exactly one body payload.
///
/// DAIS direct/indirect request messages are single-element body payloads;
/// WS-Addressing blocks (To, Action, MessageID, reference parameters)
/// travel in the header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Envelope {
    pub header: Vec<XmlElement>,
    pub body: Vec<XmlElement>,
    /// Pre-serialised body content for the streaming fast path: a
    /// self-contained, already-escaped XML fragment spliced verbatim
    /// inside `soap:Body` by [`Envelope::to_bytes_into`]. Mutually
    /// exclusive with `body` by construction ([`Envelope::with_raw_body`]
    /// starts empty); [`Envelope::payload`] sees only tree payloads, so
    /// raw envelopes exist to be serialised, not inspected.
    raw_body: Option<String>,
}

impl Envelope {
    /// An envelope with a single body payload and no headers.
    pub fn with_body(payload: XmlElement) -> Self {
        Envelope { header: Vec::new(), body: vec![payload], raw_body: None }
    }

    /// An envelope whose body is a pre-serialised XML fragment, spliced
    /// verbatim into `soap:Body` at serialisation time. The fragment
    /// must be well-formed, already escaped, and self-contained (its
    /// namespace declarations travel inside it) — exactly what the
    /// streaming rowset writer produces. This is the zero-rebuild server
    /// path: handlers stream a response once and the bus never builds or
    /// walks a tree for it.
    pub fn with_raw_body(fragment: String) -> Self {
        Envelope { header: Vec::new(), body: Vec::new(), raw_body: Some(fragment) }
    }

    /// The pre-serialised body fragment, when this envelope was built by
    /// [`Envelope::with_raw_body`].
    pub fn raw_body(&self) -> Option<&str> {
        self.raw_body.as_deref()
    }

    /// Add a header block.
    pub fn add_header(&mut self, block: XmlElement) {
        self.header.push(block);
    }

    /// Builder form of [`Envelope::add_header`].
    pub fn with_header(mut self, block: XmlElement) -> Self {
        self.header.push(block);
        self
    }

    /// The first (usually only) body element. `None` for raw-body
    /// envelopes: their content is opaque bytes until parsed back.
    pub fn payload(&self) -> Option<&XmlElement> {
        self.body.first()
    }

    /// Take the first body element by value — the no-clone counterpart
    /// of [`Envelope::payload`] for consumers done with the envelope.
    pub fn into_payload(self) -> Option<XmlElement> {
        self.body.into_iter().next()
    }

    /// First header block with the given expanded name.
    pub fn header_block(&self, namespace: &str, local: &str) -> Option<&XmlElement> {
        self.header.iter().find(|h| h.name.is(namespace, local))
    }

    /// Serialise to the wire form.
    pub fn to_xml(&self) -> XmlElement {
        let mut env = XmlElement::new(ns::SOAP_ENV, "soap", "Envelope");
        if !self.header.is_empty() {
            let mut header = XmlElement::new(ns::SOAP_ENV, "soap", "Header");
            for h in &self.header {
                header.push(h.clone());
            }
            env.push(header);
        }
        let mut body = XmlElement::new(ns::SOAP_ENV, "soap", "Body");
        for b in &self.body {
            body.push(b.clone());
        }
        if let Some(raw) = &self.raw_body {
            // The raw fragment is writer-produced and re-parses cleanly;
            // a hand-built malformed fragment degrades to an empty body
            // here (the wire path never takes this branch — it splices).
            if let Ok(el) = parse(raw) {
                body.push(el);
            }
        }
        env.push(body);
        env
    }

    /// Serialise to bytes (what the bus transports).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.to_bytes_into(&mut out);
        out
    }

    /// Serialise to bytes, appending to a caller-supplied (typically
    /// pooled) buffer. Streams the envelope frame and writes header/body
    /// blocks directly — no intermediate [`Envelope::to_xml`] deep clone —
    /// yet produces exactly the bytes of [`Envelope::to_bytes`].
    pub fn to_bytes_into(&self, out: &mut Vec<u8>) {
        let content: usize =
            self.header.iter().chain(&self.body).map(estimated_size).sum::<usize>()
                + self.raw_body.as_ref().map_or(0, |r| r.len());
        out.reserve(content + 128);
        let mut w = XmlWriter::new(out);
        w.start(&QName::new(ns::SOAP_ENV, "soap", "Envelope"));
        if !self.header.is_empty() {
            w.start(&QName::new(ns::SOAP_ENV, "soap", "Header"));
            for h in &self.header {
                w.element(h);
            }
            w.end();
        }
        w.start(&QName::new(ns::SOAP_ENV, "soap", "Body"));
        for b in &self.body {
            w.element(b);
        }
        if let Some(raw) = &self.raw_body {
            // Splice the pre-serialised fragment: byte-identical to the
            // tree path because the fragment carries its own namespace
            // declarations (wsdair/wrs never collide with the outer
            // soap/wsa scope) and was escaped by the same writer.
            w.raw(raw);
        }
        w.end();
        w.end();
        w.finish();
    }

    /// Parse an envelope from a wire element.
    pub fn from_xml(root: &XmlElement) -> Result<Envelope, EnvelopeError> {
        if !root.name.is(ns::SOAP_ENV, "Envelope") {
            return Err(EnvelopeError::new(format!("expected soap:Envelope, found {}", root.name)));
        }
        let header = root
            .child(ns::SOAP_ENV, "Header")
            .map(|h| h.elements().cloned().collect())
            .unwrap_or_default();
        let body_el = root
            .child(ns::SOAP_ENV, "Body")
            .ok_or_else(|| EnvelopeError::new("envelope has no soap:Body"))?;
        let body = body_el.elements().cloned().collect();
        Ok(Envelope { header, body, raw_body: None })
    }

    /// Parse an envelope from a wire element, consuming it. The header
    /// and body children are *moved* out of the tree instead of deep
    /// cloned — on the response path a 200 KB rowset page would
    /// otherwise be copied a second time just to change its owner.
    pub fn from_xml_owned(mut root: XmlElement) -> Result<Envelope, EnvelopeError> {
        if !root.name.is(ns::SOAP_ENV, "Envelope") {
            return Err(EnvelopeError::new(format!("expected soap:Envelope, found {}", root.name)));
        }
        let mut header = Vec::new();
        let mut body = None;
        for node in root.children.drain(..) {
            let dais_xml::XmlNode::Element(el) = node else { continue };
            if el.name.is(ns::SOAP_ENV, "Header") {
                header = take_child_elements(el);
            } else if el.name.is(ns::SOAP_ENV, "Body") && body.is_none() {
                body = Some(take_child_elements(el));
            }
        }
        let body = body.ok_or_else(|| EnvelopeError::new("envelope has no soap:Body"))?;
        Ok(Envelope { header, body, raw_body: None })
    }

    /// Parse from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Envelope, EnvelopeError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| EnvelopeError::new(format!("envelope is not UTF-8: {e}")))?;
        let root = parse(text).map_err(EnvelopeError::from)?;
        Envelope::from_xml_owned(root)
    }
}

/// Move the element children out of `el`, dropping text and comments —
/// the owning counterpart of `elements().cloned()`.
fn take_child_elements(mut el: XmlElement) -> Vec<XmlElement> {
    el.children
        .drain(..)
        .filter_map(|n| match n {
            dais_xml::XmlNode::Element(e) => Some(e),
            _ => None,
        })
        .collect()
}

/// A malformed-envelope error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvelopeError {
    pub message: String,
}

impl EnvelopeError {
    fn new(message: impl Into<String>) -> Self {
        EnvelopeError { message: message.into() }
    }
}

impl From<XmlError> for EnvelopeError {
    fn from(e: XmlError) -> Self {
        EnvelopeError { message: e.to_string() }
    }
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SOAP envelope error: {}", self.message)
    }
}

impl std::error::Error for EnvelopeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_xml::to_string;

    fn payload() -> XmlElement {
        XmlElement::new(ns::WSDAI, "wsdai", "GetDataResourcePropertyDocumentRequest").with_child(
            XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAbstractName").with_text("urn:r1"),
        )
    }

    #[test]
    fn roundtrip_through_bytes() {
        let env = Envelope::with_body(payload())
            .with_header(XmlElement::new(ns::WSA, "wsa", "Action").with_text("urn:op"));
        let rt = Envelope::from_bytes(&env.to_bytes()).unwrap();
        assert_eq!(rt, env);
    }

    #[test]
    fn headerless_envelope_omits_header_element() {
        let env = Envelope::with_body(payload());
        let xml = to_string(&env.to_xml());
        assert!(!xml.contains("Header"));
        assert_eq!(Envelope::from_bytes(&env.to_bytes()).unwrap(), env);
    }

    #[test]
    fn header_block_lookup() {
        let env = Envelope::with_body(payload())
            .with_header(XmlElement::new(ns::WSA, "wsa", "To").with_text("urn:svc"));
        assert_eq!(env.header_block(ns::WSA, "To").unwrap().text(), "urn:svc");
        assert!(env.header_block(ns::WSA, "Action").is_none());
    }

    #[test]
    fn missing_body_is_error() {
        let xml = format!("<soap:Envelope xmlns:soap='{}'/>", ns::SOAP_ENV);
        assert!(Envelope::from_bytes(xml.as_bytes()).is_err());
    }

    #[test]
    fn wrong_root_is_error() {
        assert!(Envelope::from_bytes(b"<NotAnEnvelope/>").is_err());
    }

    #[test]
    fn malformed_xml_is_error() {
        assert!(Envelope::from_bytes(b"<soap:Envelope").is_err());
    }

    #[test]
    fn streamed_bytes_match_tree_serialisation() {
        let with_header = Envelope::with_body(payload())
            .with_header(XmlElement::new(ns::WSA, "wsa", "Action").with_text("urn:op"));
        let headerless = Envelope::with_body(payload());
        for env in [with_header, headerless] {
            assert_eq!(env.to_bytes(), to_string(&env.to_xml()).into_bytes());
            let mut appended = b"x".to_vec();
            env.to_bytes_into(&mut appended);
            assert_eq!(&appended[1..], &env.to_bytes()[..]);
        }
    }

    #[test]
    fn raw_body_envelope_splices_byte_identically() {
        // A fragment serialised up front, spliced raw, must produce the
        // same wire bytes as the tree path carrying the parsed fragment.
        let fragment_el = payload();
        let raw = Envelope::with_raw_body(to_string(&fragment_el));
        let tree = Envelope::with_body(fragment_el);
        assert_eq!(raw.to_bytes(), tree.to_bytes());
        // With a header on both (the tracing RelatesTo shape).
        let hdr = XmlElement::new(ns::WSA, "wsa", "RelatesTo").with_text("urn:msg");
        let raw = Envelope::with_raw_body(to_string(&payload())).with_header(hdr.clone());
        let tree = Envelope::with_body(payload()).with_header(hdr);
        assert_eq!(raw.to_bytes(), tree.to_bytes());
        // And to_xml() on the raw form re-parses the fragment.
        assert_eq!(raw.to_xml(), tree.to_xml());
    }

    #[test]
    fn from_xml_owned_matches_borrowing_parse() {
        let env = Envelope::with_body(payload())
            .with_header(XmlElement::new(ns::WSA, "wsa", "Action").with_text("urn:op"));
        let root = dais_xml::parse(std::str::from_utf8(&env.to_bytes()).unwrap()).unwrap();
        assert_eq!(Envelope::from_xml(&root).unwrap(), Envelope::from_xml_owned(root).unwrap());
    }

    #[test]
    fn into_payload_takes_the_first_body_element() {
        let env = Envelope::with_body(payload());
        let p = env.into_payload().unwrap();
        assert!(p.name.is(ns::WSDAI, "GetDataResourcePropertyDocumentRequest"));
        assert!(Envelope::default().into_payload().is_none());
    }

    #[test]
    fn payload_accessor() {
        let env = Envelope::with_body(payload());
        assert!(env
            .payload()
            .unwrap()
            .name
            .is(ns::WSDAI, "GetDataResourcePropertyDocumentRequest"));
    }
}
