//! The transport seam: where serialised request bytes leave the caller
//! and serialised response bytes come back.
//!
//! [`Bus::call`](crate::bus::Bus::call) owns everything *above* this
//! line — the interceptor chain, fault injection, tracer spans,
//! WS-Addressing correlation, and [`BusStats`](crate::bus::BusStats)
//! billing — so every [`Transport`] exhibits the same observable
//! behaviour: identical span trees, identical stats deltas, identical
//! wire bytes. Below the line a transport only moves bytes. The
//! in-process implementation here hands them straight to the bus
//! registry on the calling thread; [`TcpTransport`](crate::tcp) frames
//! them onto a real socket.

use crate::bus::{Bus, BusError, BusInner};
use std::sync::Weak;

/// One request/response byte exchange below the serialise→route→parse
/// boundary.
pub trait Transport: Send + Sync {
    /// Carry one serialised request to `to` and write the serialised
    /// response into `response` (which arrives empty; a transport may
    /// also swap in an owned buffer). Transport-level failures map onto
    /// the existing [`BusError`] taxonomy. SOAP faults are *not*
    /// errors — they come back as fault envelopes in `response`,
    /// exactly as the in-process bus returns them.
    fn call(
        &self,
        to: &str,
        action: &str,
        request: &[u8],
        response: &mut Vec<u8>,
    ) -> Result<(), BusError>;

    /// Does this transport carry requests addressed to `to`? The bus
    /// serves unrouted addresses from its local registry.
    fn routes(&self, to: &str) -> bool;

    /// Short diagnostic name (`"in-process"`, `"tcp"`).
    fn name(&self) -> &'static str;
}

/// The deterministic test/chaos transport: bytes loop through the bus's
/// own registry on the calling thread — byte-for-byte what the bus does
/// with no transport installed. Installing it explicitly exists for the
/// cross-transport conformance suite, which must run both transports
/// under one code path.
pub struct InProcessTransport {
    bus: Weak<BusInner>,
}

impl InProcessTransport {
    /// A transport serving from `bus`'s registry. Holds a weak handle
    /// (as executor workers do), so a bus carrying its own transport
    /// cannot leak a keep-alive cycle.
    pub fn new(bus: &Bus) -> InProcessTransport {
        InProcessTransport { bus: bus.downgrade() }
    }

    fn bus(&self) -> Result<Bus, BusError> {
        self.bus.upgrade().map(Bus::from_inner).ok_or_else(|| {
            BusError::ConnectionLost("bus dropped behind the in-process transport".into())
        })
    }
}

impl Transport for InProcessTransport {
    fn call(
        &self,
        to: &str,
        action: &str,
        request: &[u8],
        response: &mut Vec<u8>,
    ) -> Result<(), BusError> {
        self.bus()?.serve_wire(to, action, request, response)
    }

    fn routes(&self, to: &str) -> bool {
        self.bus.upgrade().map(|inner| Bus::from_inner(inner).has_endpoint(to)).unwrap_or(false)
    }

    fn name(&self) -> &'static str {
        "in-process"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Envelope;
    use crate::service::SoapDispatcher;
    use dais_xml::XmlElement;
    use std::sync::Arc;

    fn echo_bus() -> Bus {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
        bus.register("bus://svc", Arc::new(d));
        bus
    }

    #[test]
    fn in_process_transport_serves_from_the_registry() {
        let bus = echo_bus();
        let t = InProcessTransport::new(&bus);
        assert_eq!(t.name(), "in-process");
        assert!(t.routes("bus://svc"));
        assert!(!t.routes("bus://nope"));

        let env = Envelope::with_body(XmlElement::new_local("m").with_text("x"));
        let request = env.to_bytes();
        let mut response = Vec::new();
        t.call("bus://svc", "urn:echo", &request, &mut response).unwrap();
        assert_eq!(Envelope::from_bytes(&response).unwrap(), env);
    }

    #[test]
    fn installed_transport_is_behaviour_identical_to_none() {
        let plain = echo_bus();
        let via_transport = echo_bus();
        via_transport.set_transport(Arc::new(InProcessTransport::new(&via_transport)));
        assert_eq!(via_transport.transport_name(), Some("in-process"));

        let env = Envelope::with_body(XmlElement::new_local("m").with_text("same"));
        let a = plain.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        let b = via_transport.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        assert_eq!(a, b);
        assert_eq!(plain.stats(), via_transport.stats());

        via_transport.clear_transport();
        assert_eq!(via_transport.transport_name(), None);
    }

    #[test]
    fn dropped_bus_surfaces_as_connection_lost() {
        let t = {
            let bus = echo_bus();
            InProcessTransport::new(&bus)
        };
        let mut out = Vec::new();
        assert!(matches!(
            t.call("bus://svc", "urn:echo", b"<e/>", &mut out),
            Err(BusError::ConnectionLost(_))
        ));
        assert!(!t.routes("bus://svc"));
    }
}
