//! WS-Addressing: endpoint references and message-addressing headers.
//!
//! The DAIS indirect access pattern hands consumers an End Point Reference
//! (EPR) whose reference parameters carry the derived data resource's
//! abstract name (paper §3, Figure 3). This module implements the EPR
//! structure and the header blocks used on every bus message.

use dais_xml::{ns, XmlElement};

/// A WS-Addressing End Point Reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Epr {
    /// The service address (a logical URL routed by the [`crate::Bus`]).
    pub address: String,
    /// Opaque reference parameters echoed into the header of every message
    /// sent via this EPR. DAIS places the resource abstract name here.
    pub reference_parameters: Vec<XmlElement>,
}

impl Epr {
    /// An EPR with no reference parameters.
    pub fn new(address: impl Into<String>) -> Self {
        Epr { address: address.into(), reference_parameters: Vec::new() }
    }

    /// An EPR carrying a DAIS data resource abstract name reference
    /// parameter, as mandated for indirect access responses.
    pub fn for_resource(address: impl Into<String>, abstract_name: &str) -> Self {
        Epr {
            address: address.into(),
            reference_parameters: vec![XmlElement::new(
                ns::WSDAI,
                "wsdai",
                "DataResourceAbstractName",
            )
            .with_text(abstract_name)],
        }
    }

    /// Extract the DAIS abstract name reference parameter, if present.
    pub fn resource_abstract_name(&self) -> Option<String> {
        self.reference_parameters
            .iter()
            .find(|e| e.name.is(ns::WSDAI, "DataResourceAbstractName"))
            .map(|e| e.text())
    }

    /// Serialise under the given element name (e.g. `wsdai:DataResourceAddress`).
    pub fn to_xml_named(&self, wrapper: XmlElement) -> XmlElement {
        let mut out = wrapper;
        out.push(XmlElement::new(ns::WSA, "wsa", "Address").with_text(&self.address));
        if !self.reference_parameters.is_empty() {
            let mut params = XmlElement::new(ns::WSA, "wsa", "ReferenceParameters");
            for p in &self.reference_parameters {
                params.push(p.clone());
            }
            out.push(params);
        }
        out
    }

    /// Serialise as a `wsa:EndpointReference` element.
    pub fn to_xml(&self) -> XmlElement {
        self.to_xml_named(XmlElement::new(ns::WSA, "wsa", "EndpointReference"))
    }

    /// Parse from any element with `wsa:Address` / `wsa:ReferenceParameters`
    /// children.
    pub fn from_xml(element: &XmlElement) -> Option<Epr> {
        let address = element.child_text(ns::WSA, "Address")?;
        let reference_parameters = element
            .child(ns::WSA, "ReferenceParameters")
            .map(|p| p.elements().cloned().collect())
            .unwrap_or_default();
        Some(Epr { address, reference_parameters })
    }
}

/// Build the WS-Addressing header blocks for a message sent to `to` with
/// the given SOAP action, echoing EPR reference parameters as headers (per
/// WS-Addressing §2.2: each reference parameter becomes a header block).
pub fn message_headers(
    to: &str,
    action: &str,
    reference_parameters: &[XmlElement],
) -> Vec<XmlElement> {
    let mut headers = vec![
        XmlElement::new(ns::WSA, "wsa", "To").with_text(to),
        XmlElement::new(ns::WSA, "wsa", "Action").with_text(action),
    ];
    headers.extend(reference_parameters.iter().cloned());
    headers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epr_roundtrip() {
        let epr = Epr::for_resource("bus://svc2", "urn:dais:resource:42");
        let rt = Epr::from_xml(&epr.to_xml()).unwrap();
        assert_eq!(rt, epr);
        assert_eq!(rt.resource_abstract_name().as_deref(), Some("urn:dais:resource:42"));
    }

    #[test]
    fn plain_epr_has_no_reference_parameters() {
        let epr = Epr::new("bus://svc");
        let xml = epr.to_xml();
        assert!(xml.child(ns::WSA, "ReferenceParameters").is_none());
        assert_eq!(Epr::from_xml(&xml).unwrap(), epr);
    }

    #[test]
    fn from_xml_requires_address() {
        assert!(Epr::from_xml(&XmlElement::new_local("x")).is_none());
    }

    #[test]
    fn headers_include_reference_parameters() {
        let epr = Epr::for_resource("bus://svc", "urn:r");
        let headers = message_headers(&epr.address, "urn:act", &epr.reference_parameters);
        assert_eq!(headers.len(), 3);
        assert!(headers[0].name.is(ns::WSA, "To"));
        assert!(headers[1].name.is(ns::WSA, "Action"));
        assert!(headers[2].name.is(ns::WSDAI, "DataResourceAbstractName"));
    }

    #[test]
    fn custom_wrapper_name() {
        let epr = Epr::new("bus://x");
        let xml = epr.to_xml_named(XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAddress"));
        assert!(xml.name.is(ns::WSDAI, "DataResourceAddress"));
        assert_eq!(Epr::from_xml(&xml).unwrap(), epr);
    }
}
