//! The in-process message bus — the transport substitute.
//!
//! Endpoints register under logical addresses (`bus://orders-service`).
//! [`Bus::call`] serialises the request envelope to bytes, routes to the
//! endpoint, parses the bytes back, invokes the service, and does the same
//! on the way out. Faults become fault envelopes, exactly as an HTTP SOAP
//! stack would put them in a 500 response body.
//!
//! The bus meters traffic per endpoint and in total ([`BusStats`]); the
//! paper-figure experiments (E1/E5) use those counters to show how the
//! indirect access pattern avoids moving result data through intermediate
//! consumers.

use crate::envelope::Envelope;
use crate::executor::{self, BusExecutor, ExecMode, ExecutorConfig, Pending};
use crate::fault::Fault;
use crate::interceptor::{CallInfo, InjectorSnapshot, Intercept, Interceptor};
use crate::service::SoapService;
use crate::transport::Transport;
use dais_obs::names::{event_names, span_names};
use dais_obs::{Histogram, Obs, SpanHandle, TraceContext};
use dais_util::pool::PooledBuf;
use dais_util::sync::RwLock;
use dais_xml::{ns, XmlElement};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

/// A registered endpoint. Carries its own stats and latency-histogram
/// handles so the per-call accounting path never takes a registry lock.
#[derive(Clone)]
pub struct Endpoint {
    pub address: String,
    service: Arc<dyn SoapService>,
    stats: Arc<BusStats>,
    latency: Arc<Histogram>,
}

impl Endpoint {
    /// The endpoint's traffic counters (shared with the bus registry, so
    /// the executor's queue gauges land in the same snapshot).
    pub(crate) fn stats(&self) -> &BusStats {
        &self.stats
    }
}

/// The service slot of a transport-routed [`Endpoint`] with no local
/// registration. Never invoked on the routed path (the transport carries
/// the bytes before dispatch reaches a service); if routing changes
/// between resolve and dispatch, it answers with a server fault rather
/// than panicking.
struct RemoteStub;

impl SoapService for RemoteStub {
    fn handle(&self, action: &str, _request: &Envelope) -> Result<Envelope, Fault> {
        Err(Fault::server(format!("remote endpoint cannot serve '{action}' locally")))
    }
}

/// Traffic counters. Byte counts measure the serialised envelope size in
/// each direction — the quantity a network transport would move.
#[derive(Debug, Default)]
pub struct BusStats {
    pub messages: AtomicU64,
    pub request_bytes: AtomicU64,
    pub response_bytes: AtomicU64,
    pub faults: AtomicU64,
    /// Calls an interceptor interfered with (tampered, answered, aborted).
    pub injected: AtomicU64,
    /// Attempts re-sent by the client retry layer.
    pub retries: AtomicU64,
    /// Bumped on every [`reset`](BusStats::reset), so a reader can tell
    /// "freshly zeroed" from "never touched" and detect a reset racing
    /// its measurement.
    pub epoch: AtomicU64,
    /// Requests the executor refused at admission (queue at capacity).
    pub shed: AtomicU64,
    /// Live gauge: requests currently sitting in the executor's work
    /// queue (enqueued, not yet picked by a worker).
    pub queue_depth: AtomicU64,
    /// High-water mark of [`queue_depth`](BusStats::queue_depth) since
    /// the last reset.
    pub queue_peak: AtomicU64,
}

/// A point-in-time copy of [`BusStats`], with the interceptor chain's
/// fault-injection ledger folded in by [`Bus::stats`] /
/// [`Bus::endpoint_stats`] — one snapshot tells the whole story.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub messages: u64,
    pub request_bytes: u64,
    pub response_bytes: u64,
    pub faults: u64,
    pub injected: u64,
    pub retries: u64,
    /// Reset generation of the counters behind this snapshot.
    pub epoch: u64,
    /// Requests shed at executor admission ([`BusError::Overloaded`]).
    pub shed: u64,
    /// Requests queued and not yet executing at snapshot time.
    pub queue_depth: u64,
    /// Deepest the work queue has been since the last reset.
    pub queue_peak: u64,
    /// What the chain's fault injectors did (summed across the chain).
    pub fault_injection: InjectorSnapshot,
}

impl StatsSnapshot {
    pub fn total_bytes(&self) -> u64 {
        self.request_bytes + self.response_bytes
    }
}

impl BusStats {
    fn record(&self, request: u64, response: u64, fault: bool) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.request_bytes.fetch_add(request, Ordering::Relaxed);
        self.response_bytes.fetch_add(response, Ordering::Relaxed);
        if fault {
            self.faults.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_injected(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn record_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Zero every counter and open a new epoch. Measurement harnesses
    /// reset before the workload and read after, so deltas need no
    /// manual subtraction. The `queue_depth` gauge is *not* touched: it
    /// tracks live queued work, which a measurement epoch does not own.
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.request_bytes.store(0, Ordering::Relaxed);
        self.response_bytes.store(0, Ordering::Relaxed);
        self.faults.store(0, Ordering::Relaxed);
        self.injected.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
        self.queue_peak.store(self.queue_depth.load(Ordering::Relaxed), Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            messages: self.messages.load(Ordering::Relaxed),
            request_bytes: self.request_bytes.load(Ordering::Relaxed),
            response_bytes: self.response_bytes.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            injected: self.injected.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            fault_injection: InjectorSnapshot::default(),
        }
    }
}

/// The in-process transport. Cheap to clone (shared state).
#[derive(Clone, Default)]
pub struct Bus {
    inner: Arc<BusInner>,
}

#[derive(Default)]
pub(crate) struct BusInner {
    endpoints: RwLock<HashMap<String, Endpoint>>,
    per_endpoint: RwLock<HashMap<String, Arc<BusStats>>>,
    /// Copy-on-write chain: `call` takes one `Arc` clone, so an empty
    /// chain costs nothing and mutation never blocks in-flight calls.
    interceptors: RwLock<Arc<Vec<Arc<dyn Interceptor>>>>,
    total: BusStats,
    /// The observability fabric: tracer (off by default) and latency
    /// metrics (always on). Per-bus, so parallel tests never share.
    obs: Obs,
    /// The installed request executor, if any. `None` means every call
    /// executes inline on the caller's thread (the seed behaviour).
    executor: RwLock<Option<Arc<BusExecutor>>>,
    /// The installed [`Transport`] below the serialise→route→parse
    /// boundary. `None` (the default) serves every address from the
    /// local registry — the seed behaviour, and the hot path the
    /// allocation ratchet measures.
    transport: RwLock<Option<Arc<dyn Transport>>>,
}

/// Transport-level errors (distinct from SOAP faults, which are
/// application-level and travel in envelopes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// No endpoint registered at the address.
    NoSuchEndpoint(String),
    /// The peer produced bytes that do not parse as an envelope.
    MalformedEnvelope(String),
    /// The request was sent but no response ever arrived (only ever
    /// produced by interceptors — the in-process transport itself
    /// cannot lose messages).
    Timeout(String),
    /// The executor refused the request at admission: the endpoint's
    /// bounded work queue was at capacity. Carries a retry-after hint
    /// the retry layer folds into its backoff schedule.
    Overloaded {
        /// The endpoint whose queue was full.
        endpoint: String,
        /// How long the executor suggests waiting before re-sending.
        retry_after: Duration,
    },
    /// The connection carrying the request died before a response
    /// arrived (peer closed mid-frame, write failed, connect refused).
    /// Only produced by real network transports; retryable, because the
    /// client pool reconnects lazily on the next send.
    ConnectionLost(String),
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::NoSuchEndpoint(a) => write!(f, "no endpoint registered at '{a}'"),
            BusError::MalformedEnvelope(m) => write!(f, "malformed envelope: {m}"),
            BusError::Timeout(m) => write!(f, "timeout: {m}"),
            BusError::Overloaded { endpoint, retry_after } => write!(
                f,
                "endpoint '{endpoint}' overloaded: work queue at capacity, retry after {retry_after:?}"
            ),
            BusError::ConnectionLost(m) => write!(f, "connection lost: {m}"),
        }
    }
}

impl std::error::Error for BusError {}

impl Bus {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a service at a logical address.
    pub fn register(&self, address: impl Into<String>, service: Arc<dyn SoapService>) {
        let address = address.into();
        // The stats slot outlives registration churn: re-registering the
        // same address keeps accumulating into the same counters, and the
        // resolved `Endpoint` carries the `Arc` so `call` never touches
        // the `per_endpoint` map again.
        let stats = Arc::clone(self.inner.per_endpoint.write().entry(address.clone()).or_default());
        // Same longevity story for the latency histogram: the endpoint
        // caches the `Arc`, so the hot path records without a map lookup.
        let latency = self.inner.obs.metrics.endpoint_histogram(&address);
        self.inner
            .endpoints
            .write()
            .insert(address.clone(), Endpoint { address, service, stats, latency });
    }

    /// Remove an endpoint. Subsequent calls to it fail with
    /// [`BusError::NoSuchEndpoint`].
    pub fn unregister(&self, address: &str) -> bool {
        self.inner.endpoints.write().remove(address).is_some()
    }

    /// The service registered at `address`, if any. Conformance tests
    /// use this to interrogate a live endpoint's advertised actions
    /// without issuing wire calls.
    pub fn endpoint(&self, address: &str) -> Option<Arc<dyn SoapService>> {
        self.inner.endpoints.read().get(address).map(|e| e.service.clone())
    }

    /// Addresses currently registered, sorted.
    pub fn addresses(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.endpoints.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Append an interceptor to the transport chain. Requests traverse
    /// the chain in this order; responses traverse it in reverse.
    pub fn add_interceptor(&self, interceptor: Arc<dyn Interceptor>) {
        let mut chain = self.inner.interceptors.write();
        let mut next = Vec::clone(&chain);
        next.push(interceptor);
        *chain = Arc::new(next);
    }

    /// Drop every interceptor, restoring the bare transport.
    pub fn clear_interceptors(&self) {
        *self.inner.interceptors.write() = Arc::new(Vec::new());
    }

    /// Number of interceptors currently installed.
    pub fn interceptor_count(&self) -> usize {
        self.inner.interceptors.read().len()
    }

    /// Count one client-side retry against this endpoint (called by the
    /// retry layer, which sits above the bus).
    pub fn record_retry(&self, to: &str) {
        self.inner.total.record_retry();
        if let Some(stats) = self.inner.per_endpoint.read().get(to) {
            stats.record_retry();
        }
    }

    /// Send a request. Always serialises/parses both envelopes; a service
    /// fault is returned as `Ok(Err(fault))` after travelling through a
    /// fault envelope, mirroring SOAP-over-HTTP semantics.
    ///
    /// Wire bytes pass through the interceptor chain in both directions
    /// (requests in order, responses reversed). An aborted or
    /// unparseable call still bills the request leg it consumed.
    ///
    /// A thin wrapper over the execution mode: with no executor
    /// installed ([`ExecMode::Inline`](crate::executor)) the exchange
    /// runs on the caller's thread; with one installed the request is
    /// queued and this call blocks on its [`Pending`] handle, so
    /// admission control ([`BusError::Overloaded`]) applies. Either way
    /// there is exactly one serialise→intercept→dispatch→parse path.
    #[allow(clippy::type_complexity)]
    pub fn call(
        &self,
        to: &str,
        action: &str,
        request: &Envelope,
    ) -> Result<Result<Envelope, Fault>, BusError> {
        let (endpoint, chain) = self.resolve(to)?;
        if let Some(exec) = self.queued_mode() {
            return self.enqueue(&exec, endpoint, chain, to, action, request)?.wait();
        }
        self.call_inline(&endpoint, &chain, to, action, request)
    }

    /// Like [`Bus::call`], but append the serialised response envelope
    /// to `out` instead of parsing it into a tree — the raw-reply lane
    /// for bulk-data consumers that decode with a streaming parser.
    ///
    /// Inline (no executor installed, or on an executor worker thread)
    /// the reply bytes flow straight from the wire buffer to `out`; a
    /// cheap sniff distinguishes canonical data envelopes from faults,
    /// and anything it cannot vouch for falls back to the full parse, so
    /// fault classification and billing match [`Bus::call`] exactly.
    /// With a queued executor the request still goes through admission
    /// control as a normal envelope call and the parsed reply is
    /// re-serialised into `out` — correct, but without the zero-parse
    /// benefit; callers chasing that should gate on
    /// [`Bus::has_queued_executor`].
    #[allow(clippy::type_complexity)]
    pub fn call_bytes_into(
        &self,
        to: &str,
        action: &str,
        request: &Envelope,
        out: &mut Vec<u8>,
    ) -> Result<Result<(), Fault>, BusError> {
        let (endpoint, chain) = self.resolve(to)?;
        if let Some(exec) = self.queued_mode() {
            return Ok(self
                .enqueue(&exec, endpoint, chain, to, action, request)?
                .wait()?
                .map(|env| env.to_bytes_into(out)));
        }
        let tracer = &self.inner.obs.tracer;
        let mut call_span = if tracer.enabled() {
            let parent = request
                .header_block(ns::WSA, "MessageID")
                .and_then(|h| TraceContext::decode(h.text().trim()));
            let mut span = tracer.span(span_names::BUS_CALL, parent);
            span.attr("to", to);
            span.attr("action", action);
            span
        } else {
            SpanHandle::inert()
        };
        let started = Instant::now();
        let result =
            self.dispatch_bytes(&endpoint, &chain, to, action, request, out, &mut call_span);
        let nanos = started.elapsed().as_nanos() as u64;
        endpoint.latency.record(nanos);
        self.inner.obs.metrics.observe_action(action, nanos);
        if call_span.is_recording() {
            call_span.attr(
                "outcome",
                match &result {
                    Ok(Ok(())) => "ok",
                    Ok(Err(_)) => "fault",
                    Err(_) => "transport-error",
                },
            );
        }
        match &result {
            Ok(Ok(())) => {}
            Ok(Err(_)) => self.inner.obs.journal.event_ctx(
                event_names::REQ_FAULT,
                call_span.ctx(),
                crate::retry::CAUSE_FAULT,
            ),
            Err(e) => self.inner.obs.journal.event_ctx(
                event_names::REQ_FAULT,
                call_span.ctx(),
                crate::retry::bus_error_code(e),
            ),
        }
        result
    }

    /// Whether the next [`Bus::call`] from this thread would go through
    /// the queued executor. `false` in inline mode *and* on executor
    /// worker threads (where nested calls run inline) — exactly the
    /// condition under which the raw-reply lane of
    /// [`Bus::call_bytes_into`] skips the response tree parse.
    pub fn has_queued_executor(&self) -> bool {
        self.queued_mode().is_some()
    }

    /// Send a request without waiting for the response: the pipelined
    /// path. Returns a [`Pending`] handle that resolves to exactly what
    /// [`Bus::call`] would have returned.
    ///
    /// With an executor installed the request is admitted to the
    /// endpoint's bounded work queue (or refused with
    /// [`BusError::Overloaded`]); without one — or when called from an
    /// executor worker, where queueing could starve the pool — the
    /// exchange runs inline and the handle comes back already resolved.
    pub fn call_async(
        &self,
        to: &str,
        action: &str,
        request: &Envelope,
    ) -> Result<Pending, BusError> {
        let (endpoint, chain) = self.resolve(to)?;
        match self.queued_mode() {
            Some(exec) => self.enqueue(&exec, endpoint, chain, to, action, request),
            None => Ok(Pending::ready(self.call_inline(&endpoint, &chain, to, action, request))),
        }
    }

    /// Resolve an address to its endpoint and the current chain. An
    /// address with no local registration still resolves when the
    /// installed transport routes it (a split client/server deployment
    /// registers services only on the serving side).
    #[allow(clippy::type_complexity)]
    fn resolve(&self, to: &str) -> Result<(Endpoint, Arc<Vec<Arc<dyn Interceptor>>>), BusError> {
        let endpoint = match self.inner.endpoints.read().get(to).cloned() {
            Some(endpoint) => endpoint,
            None => self.remote_endpoint(to)?,
        };
        let chain = Arc::clone(&self.inner.interceptors.read());
        Ok((endpoint, chain))
    }

    /// An endpoint handle for a transport-routed address that is not in
    /// the local registry. Stats and latency land in the same
    /// per-address slots a local registration would use, so client-side
    /// billing is deployment-independent; the carried service is a stub
    /// that never runs (the transport serves the request remotely).
    fn remote_endpoint(&self, to: &str) -> Result<Endpoint, BusError> {
        let routed = self.inner.transport.read().as_ref().is_some_and(|t| t.routes(to));
        if !routed {
            return Err(BusError::NoSuchEndpoint(to.to_string()));
        }
        static STUB: OnceLock<Arc<RemoteStub>> = OnceLock::new();
        let service = Arc::clone(STUB.get_or_init(|| Arc::new(RemoteStub)));
        let stats = Arc::clone(self.inner.per_endpoint.write().entry(to.to_string()).or_default());
        let latency = self.inner.obs.metrics.endpoint_histogram(to);
        Ok(Endpoint { address: to.to_string(), service, stats, latency })
    }

    /// The executor to queue onto, unless this thread *is* an executor
    /// worker — a nested call from a service handler runs inline so a
    /// finite worker pool can never deadlock on its own queue.
    fn queued_mode(&self) -> Option<Arc<BusExecutor>> {
        if executor::on_worker_thread() {
            return None;
        }
        self.inner.executor.read().clone()
    }

    /// The inline execution mode: open the `bus.call` span and run the
    /// exchange on the caller's thread.
    #[allow(clippy::type_complexity)]
    fn call_inline(
        &self,
        endpoint: &Endpoint,
        chain: &[Arc<dyn Interceptor>],
        to: &str,
        action: &str,
        request: &Envelope,
    ) -> Result<Result<Envelope, Fault>, BusError> {
        // Tracing: one relaxed atomic load when disabled, nothing else.
        // The span's parent is the caller's `wsa:MessageID` header, so a
        // traced client call and its bus leg share one trace.
        let tracer = &self.inner.obs.tracer;
        let mut call_span = if tracer.enabled() {
            let parent = request
                .header_block(ns::WSA, "MessageID")
                .and_then(|h| TraceContext::decode(h.text().trim()));
            let mut span = tracer.span(span_names::BUS_CALL, parent);
            span.attr("to", to);
            span.attr("action", action);
            span
        } else {
            SpanHandle::inert()
        };
        // Flight recorder: admission in inline mode. One relaxed atomic
        // load when the journal is off.
        self.inner.obs.journal.event_ctx(event_names::REQ_ADMIT, call_span.ctx(), 0);
        self.perform(endpoint, chain, to, action, request, &mut call_span)
    }

    /// Admit one request to the executor: open the `bus.enqueue` span,
    /// submit, and account a shed on refusal.
    #[allow(clippy::type_complexity)]
    fn enqueue(
        &self,
        exec: &BusExecutor,
        endpoint: Endpoint,
        chain: Arc<Vec<Arc<dyn Interceptor>>>,
        to: &str,
        action: &str,
        request: &Envelope,
    ) -> Result<Pending, BusError> {
        let tracer = &self.inner.obs.tracer;
        let mut enqueue_span = if tracer.enabled() {
            let parent = request
                .header_block(ns::WSA, "MessageID")
                .and_then(|h| TraceContext::decode(h.text().trim()));
            let mut span = tracer.span(span_names::BUS_ENQUEUE, parent);
            span.attr("to", to);
            span.attr("action", action);
            span
        } else {
            SpanHandle::inert()
        };
        // Flight recorder: admission in queued mode. The executor emits
        // the matching queue.enqueue / queue.shed event itself.
        self.inner.obs.journal.event_ctx(event_names::REQ_ADMIT, enqueue_span.ctx(), 1);
        match exec.submit(self, endpoint, chain, to, action, request, enqueue_span.ctx()) {
            Ok((pending, depth)) => {
                enqueue_span.attr("depth", depth);
                Ok(pending)
            }
            Err((endpoint, err)) => {
                endpoint.stats.record_shed();
                self.inner.total.record_shed();
                enqueue_span.attr("outcome", "shed");
                Err(err)
            }
        }
    }

    /// One timed exchange plus its observability bookkeeping: latency
    /// histograms and the outcome attribute on the carrying span. Both
    /// execution modes (inline `bus.call`, worker `bus.execute`) funnel
    /// through here.
    #[allow(clippy::type_complexity)]
    pub(crate) fn perform(
        &self,
        endpoint: &Endpoint,
        chain: &[Arc<dyn Interceptor>],
        to: &str,
        action: &str,
        request: &Envelope,
        span: &mut SpanHandle,
    ) -> Result<Result<Envelope, Fault>, BusError> {
        let started = Instant::now();
        let result = self.dispatch(endpoint, chain, to, action, request, span);
        let nanos = started.elapsed().as_nanos() as u64;
        // Latency metrics are always on: two lock-free histogram records.
        endpoint.latency.record(nanos);
        self.inner.obs.metrics.observe_action(action, nanos);

        if span.is_recording() {
            span.attr(
                "outcome",
                match &result {
                    Ok(Ok(_)) => "ok",
                    Ok(Err(_)) => "fault",
                    Err(_) => "transport-error",
                },
            );
        }
        // Flight recorder: a failed exchange leaves a req.fault record
        // with its numeric cause, joinable to the trace by id.
        match &result {
            Ok(Ok(_)) => {}
            Ok(Err(_)) => self.inner.obs.journal.event_ctx(
                event_names::REQ_FAULT,
                span.ctx(),
                crate::retry::CAUSE_FAULT,
            ),
            Err(e) => self.inner.obs.journal.event_ctx(
                event_names::REQ_FAULT,
                span.ctx(),
                crate::retry::bus_error_code(e),
            ),
        }
        result
    }

    /// The wire exchange itself — the one serialise→intercept→dispatch
    /// code path, shared by the envelope lane ([`Bus::dispatch`]) and the
    /// raw-reply lane ([`Bus::dispatch_bytes`]). Leaves the response
    /// bytes in `response_bytes` and returns the billed request length;
    /// legs consumed by an early return are billed here, the completed
    /// exchange by the caller once it has classified the outcome.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn exchange(
        &self,
        endpoint: &Endpoint,
        chain: &[Arc<dyn Interceptor>],
        to: &str,
        action: &str,
        request: &Envelope,
        response_bytes: &mut PooledBuf,
        call_span: &mut SpanHandle,
    ) -> Result<u64, BusError> {
        let tracer = &self.inner.obs.tracer;
        let info = CallInfo { to, action };
        let record = |request: u64, response: u64, fault: bool| {
            self.inner.total.record(request, response, fault);
            endpoint.stats.record(request, response, fault);
        };
        let note_injected = || {
            self.inner.total.record_injected();
            endpoint.stats.record_injected();
        };

        // Request wire trip, through the chain. Both legs serialise into
        // thread-local pooled buffers (the pool is a stack, so reentrant
        // calls from a handler get their own buffers); with an empty
        // chain the pooled bytes flow straight into the parser — no
        // extra copy. An interceptor swapping in owned bytes via
        // `Tamper`/`Reply` replaces the buffer contents outright.
        let mut request_span = tracer.child_span(span_names::BUS_REQUEST, call_span.ctx());
        let mut request_bytes = PooledBuf::take();
        request.to_bytes_into(&mut request_bytes);
        // `Reply` at position i answers on the service's behalf; only the
        // interceptors outside it (0..i) then see the response.
        let mut replied: Option<(Vec<u8>, usize)> = None;
        for (i, interceptor) in chain.iter().enumerate() {
            match interceptor.on_request(&info, &request_bytes) {
                Intercept::Pass => {}
                Intercept::Tamper(bytes) => {
                    note_injected();
                    request_span.attr("tampered", true);
                    request_bytes.replace_with(bytes);
                }
                Intercept::Reply(bytes) => {
                    note_injected();
                    request_span.attr("replied-by-interceptor", true);
                    replied = Some((bytes, i));
                    break;
                }
                Intercept::Abort(err) => {
                    note_injected();
                    request_span.attr("aborted", true);
                    record(request_bytes.len() as u64, 0, false);
                    return Err(err);
                }
            }
        }
        request_span.attr("bytes", request_bytes.len());
        request_span.finish();

        let response_chain_len = match replied {
            Some((bytes, i)) => {
                response_bytes.replace_with(bytes);
                i
            }
            None => {
                // The serialise→route→parse boundary: bytes go below
                // the line here and come back as response bytes. Any
                // routing failure — local parse error, remote error
                // frame, dead connection — bills the request leg it
                // consumed, identically on every transport.
                if let Err(err) = self.route(
                    endpoint,
                    to,
                    action,
                    &request_bytes,
                    response_bytes,
                    call_span.ctx(),
                ) {
                    record(request_bytes.len() as u64, 0, false);
                    return Err(err);
                }
                chain.len()
            }
        };

        let mut response_span = tracer.child_span(span_names::BUS_RESPONSE, call_span.ctx());
        for interceptor in chain[..response_chain_len].iter().rev() {
            match interceptor.on_response(&info, response_bytes) {
                Intercept::Pass => {}
                Intercept::Tamper(bytes) => {
                    note_injected();
                    response_span.attr("tampered", true);
                    response_bytes.replace_with(bytes);
                }
                Intercept::Reply(bytes) => {
                    note_injected();
                    response_span.attr("replied-by-interceptor", true);
                    response_bytes.replace_with(bytes);
                    break;
                }
                Intercept::Abort(err) => {
                    note_injected();
                    response_span.attr("aborted", true);
                    // A response leg was consumed before the abort: bill
                    // it, like the malformed-response path below does.
                    record(request_bytes.len() as u64, response_bytes.len() as u64, false);
                    return Err(err);
                }
            }
        }
        response_span.attr("bytes", response_bytes.len());
        response_span.finish();
        Ok(request_bytes.len() as u64)
    }

    /// The envelope lane: run the exchange, then parse the response
    /// bytes back into an [`Envelope`]. Split from [`Bus::perform`] so
    /// the observability bookkeeping there sees every early return.
    #[allow(clippy::type_complexity)]
    fn dispatch(
        &self,
        endpoint: &Endpoint,
        chain: &[Arc<dyn Interceptor>],
        to: &str,
        action: &str,
        request: &Envelope,
        call_span: &mut SpanHandle,
    ) -> Result<Result<Envelope, Fault>, BusError> {
        let mut response_bytes = PooledBuf::take();
        let request_len =
            self.exchange(endpoint, chain, to, action, request, &mut response_bytes, call_span)?;
        let record = |response: u64, fault: bool| {
            self.inner.total.record(request_len, response, fault);
            endpoint.stats.record(request_len, response, fault);
        };

        let parsed_response = match Envelope::from_bytes(&response_bytes) {
            Ok(env) => env,
            Err(e) => {
                record(response_bytes.len() as u64, false);
                return Err(BusError::MalformedEnvelope(e.to_string()));
            }
        };

        // Reconstruct the outcome from the parsed response, so the caller
        // only ever sees data that crossed the "wire". Fault accounting
        // follows the same classification.
        let fault = parsed_response.payload().and_then(Fault::from_xml);
        record(response_bytes.len() as u64, fault.is_some());
        match fault {
            Some(f) => Ok(Err(f)),
            None => Ok(Ok(parsed_response)),
        }
    }

    /// The raw-reply lane: run the same exchange but hand back the
    /// response **bytes**, skipping the tree parse when the reply is
    /// recognisably a canonical data envelope. A reply the sniff cannot
    /// vouch for — a fault, a tampered frame, a non-canonical prolog —
    /// takes the full parse and classifies exactly like the envelope
    /// lane, so fault accounting is identical on both.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_bytes(
        &self,
        endpoint: &Endpoint,
        chain: &[Arc<dyn Interceptor>],
        to: &str,
        action: &str,
        request: &Envelope,
        out: &mut Vec<u8>,
        call_span: &mut SpanHandle,
    ) -> Result<Result<(), Fault>, BusError> {
        let mut response_bytes = PooledBuf::take();
        let request_len =
            self.exchange(endpoint, chain, to, action, request, &mut response_bytes, call_span)?;
        let record = |response: u64, fault: bool| {
            self.inner.total.record(request_len, response, fault);
            endpoint.stats.record(request_len, response, fault);
        };

        if sniff_canonical_data_reply(&response_bytes) {
            record(response_bytes.len() as u64, false);
            out.extend_from_slice(&response_bytes);
            return Ok(Ok(()));
        }

        let parsed_response = match Envelope::from_bytes(&response_bytes) {
            Ok(env) => env,
            Err(e) => {
                record(response_bytes.len() as u64, false);
                return Err(BusError::MalformedEnvelope(e.to_string()));
            }
        };
        let fault = parsed_response.payload().and_then(Fault::from_xml);
        record(response_bytes.len() as u64, fault.is_some());
        match fault {
            Some(f) => Ok(Err(f)),
            None => {
                out.extend_from_slice(&response_bytes);
                Ok(Ok(()))
            }
        }
    }

    /// Route serialised request bytes to whoever serves `to` and write
    /// the serialised response into `out`. With a transport installed
    /// that routes the address, the bytes cross it; otherwise they are
    /// served from the local registry on the calling thread. This is the
    /// entire per-call cost of the transport seam on the default path:
    /// one `RwLock` read and one `Option<Arc>` clone, no allocation.
    #[allow(clippy::too_many_arguments)]
    fn route(
        &self,
        endpoint: &Endpoint,
        to: &str,
        action: &str,
        request: &[u8],
        out: &mut Vec<u8>,
        ctx: Option<TraceContext>,
    ) -> Result<(), BusError> {
        let transport = self.inner.transport.read().clone();
        match transport {
            Some(t) if t.routes(to) => {
                // Flight recorder: the two client-side wire legs, with the
                // byte counts the transport actually carried.
                let journal = &self.inner.obs.journal;
                journal.event_ctx(event_names::WIRE_WRITE, ctx, request.len() as u64);
                let result = t.call(to, action, request, out);
                if result.is_ok() {
                    journal.event_ctx(event_names::WIRE_READ, ctx, out.len() as u64);
                }
                result
            }
            _ => self.serve_local(endpoint, action, request, out),
        }
    }

    /// The service side of the boundary: parse the request bytes, invoke
    /// the handler under a `bus.dispatch` span, and serialise the
    /// response (fault envelopes included) into `out`. Performs no
    /// billing — the caller above the transport seam owns that, so local
    /// and remote service legs account identically.
    fn serve_local(
        &self,
        endpoint: &Endpoint,
        action: &str,
        request: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), BusError> {
        let tracer = &self.inner.obs.tracer;
        let journal = &self.inner.obs.journal;
        let parsed_request = match Envelope::from_bytes(request) {
            Ok(env) => env,
            Err(e) => return Err(BusError::MalformedEnvelope(e.to_string())),
        };
        // The dispatch span joins the trace through the *parsed*
        // request: only a context that survived the wire (not
        // dropped, not tampered beyond recognition) correlates.
        // `child_span` is inert when the header is absent or
        // undecodable, so broken propagation shows up as a
        // missing dispatch node, never a bogus root. The journal's
        // req.dispatch record joins the same way, so a server-side
        // journal slice correlates with the client's trace even
        // across a wire — but the `RelatesTo` echo stays gated on
        // tracing alone, keeping journal-only runs byte-identical
        // on the wire.
        let mut dispatch_span = SpanHandle::inert();
        let mut relates_to = None;
        let mut wire_ctx = None;
        if tracer.enabled() || journal.enabled() {
            if let Some(id) = parsed_request.header_block(ns::WSA, "MessageID") {
                let id = id.text().trim().to_string();
                wire_ctx = TraceContext::decode(&id);
                if tracer.enabled() {
                    dispatch_span = tracer.child_span(span_names::BUS_DISPATCH, wire_ctx);
                    dispatch_span.attr("action", action);
                    relates_to = Some(id);
                }
            }
        }
        journal.event_ctx(event_names::REQ_DISPATCH, wire_ctx, request.len() as u64);
        let outcome = endpoint.service.handle(action, &parsed_request);
        dispatch_span.attr("outcome", if outcome.is_ok() { "ok" } else { "fault" });
        dispatch_span.finish();
        // Fault or success both serialise for the return trip.
        let mut response_env = match outcome {
            Ok(resp) => resp,
            Err(fault) => Envelope::with_body(fault.to_xml()),
        };
        // WS-Addressing reply correlation: echo the request's
        // MessageID (fault envelopes included). Only added while
        // tracing, keeping the tracing-off wire byte-identical.
        if let Some(id) = relates_to {
            response_env.add_header(XmlElement::new(ns::WSA, "wsa", "RelatesTo").with_text(id));
        }
        response_env.to_bytes_into(out);
        Ok(())
    }

    /// Serve one framed request arriving from a transport's server side:
    /// resolve `to` in the local registry and run the service leg. The
    /// transport carries the returned [`BusError`] back to the caller,
    /// whose own bus bills it — no stats are touched here, so a request
    /// crossing a wire is billed exactly once, on the client side, like
    /// every in-process call.
    pub(crate) fn serve_wire(
        &self,
        to: &str,
        action: &str,
        request: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), BusError> {
        let endpoint = self
            .inner
            .endpoints
            .read()
            .get(to)
            .cloned()
            .ok_or_else(|| BusError::NoSuchEndpoint(to.to_string()))?;
        self.serve_local(&endpoint, action, request, out)
    }

    /// Totals across all endpoints, with the chain's fault-injection
    /// ledger folded in.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.inner.total.snapshot();
        snap.fault_injection = self.chain_ledger(None);
        snap
    }

    /// Per-endpoint counters (zero snapshot if never registered),
    /// including the faults injected against that endpoint.
    pub fn endpoint_stats(&self, address: &str) -> StatsSnapshot {
        let mut snap =
            self.inner.per_endpoint.read().get(address).map(|s| s.snapshot()).unwrap_or_default();
        snap.fault_injection = self.chain_ledger(Some(address));
        snap
    }

    /// Zero every traffic counter — total, per-endpoint, and the chain's
    /// injection ledgers — opening a new measurement epoch. Latency
    /// histograms are *not* cleared; reset those through
    /// [`Bus::obs`]`().metrics` if a measurement needs it.
    pub fn reset_stats(&self) {
        self.inner.total.reset();
        for stats in self.inner.per_endpoint.read().values() {
            stats.reset();
        }
        for interceptor in self.inner.interceptors.read().iter() {
            interceptor.reset_injection_ledger();
        }
    }

    /// The bus's observability fabric (tracer + latency metrics).
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Turn on tracing with a deterministic id stream; clears any spans
    /// already in the sink.
    pub fn enable_tracing(&self, seed: u64) {
        self.inner.obs.tracer.enable(seed);
    }

    pub fn disable_tracing(&self) {
        self.inner.obs.tracer.disable();
    }

    fn chain_ledger(&self, endpoint: Option<&str>) -> InjectorSnapshot {
        let mut total = InjectorSnapshot::default();
        for interceptor in self.inner.interceptors.read().iter() {
            total.merge(interceptor.injection_ledger(endpoint));
        }
        total
    }

    /// Install (or replace) a request executor: worker threads start
    /// immediately and every subsequent [`Bus::call`] /
    /// [`Bus::call_async`] goes through its bounded per-endpoint queues.
    /// Replacing an executor shuts the old one down (queues drained,
    /// workers joined) first.
    pub fn install_executor(&self, config: ExecutorConfig) {
        let exec = Arc::new(BusExecutor::start(config, Arc::downgrade(&self.inner)));
        let previous = self.inner.executor.write().replace(exec);
        if let Some(previous) = previous {
            previous.shutdown();
        }
    }

    /// Remove the executor, returning the bus to inline execution.
    /// Outstanding queued requests resolve with [`BusError::Timeout`];
    /// worker threads are joined before this returns.
    pub fn shutdown_executor(&self) {
        let exec = self.inner.executor.write().take();
        if let Some(exec) = exec {
            exec.shutdown();
        }
    }

    /// The installed executor's configuration — the admission-control
    /// knobs the monitoring document publishes. `None` in inline mode.
    pub fn executor_config(&self) -> Option<ExecutorConfig> {
        self.inner.executor.read().as_ref().map(|e| e.config())
    }

    /// Which execution mode [`Bus::call`] currently uses.
    pub fn exec_mode(&self) -> ExecMode {
        if self.inner.executor.read().is_some() {
            ExecMode::Queued
        } else {
            ExecMode::Inline
        }
    }

    /// Install (or replace) the transport below the serialise→route→
    /// parse boundary. Addresses the transport [`routes`](Transport::routes)
    /// cross it; everything else keeps serving from the local registry.
    pub fn set_transport(&self, transport: Arc<dyn Transport>) {
        *self.inner.transport.write() = Some(transport);
    }

    /// Remove the transport, returning every address to local serving
    /// (the seed behaviour).
    pub fn clear_transport(&self) {
        *self.inner.transport.write() = None;
    }

    /// The installed transport's diagnostic name, if any.
    pub fn transport_name(&self) -> Option<&'static str> {
        self.inner.transport.read().as_ref().map(|t| t.name())
    }

    /// Is a service registered locally at `to`? (Transport routing does
    /// not count — this is the registry the serving side consults.)
    pub(crate) fn has_endpoint(&self, to: &str) -> bool {
        self.inner.endpoints.read().contains_key(to)
    }

    /// A weak handle to the shared state, for components that must not
    /// keep the bus alive (executor workers, installed transports).
    pub(crate) fn downgrade(&self) -> Weak<BusInner> {
        Arc::downgrade(&self.inner)
    }

    /// Reconstruct a bus handle from its shared state (executor workers
    /// hold a `Weak` to avoid a keep-alive cycle).
    pub(crate) fn from_inner(inner: Arc<BusInner>) -> Bus {
        Bus { inner }
    }

    /// The whole-bus counters (the executor bills sheds and queue gauges
    /// against both the endpoint's stats and these totals).
    pub(crate) fn total_stats(&self) -> &BusStats {
        &self.inner.total
    }
}

/// Can `bytes` be handed to a raw-reply caller without a tree parse?
/// True only for a reply that starts with the *canonical* envelope tag
/// this stack serialises (the `soap` prefix provably bound to the SOAP
/// 1.1 namespace before the first `>`) and whose first body child is an
/// element outside that prefix — i.e. data, not `<soap:Fault>`. Header
/// blocks are fine: escaping guarantees no raw `<soap:Body>` inside
/// them, so the first occurrence is the real one. Everything else —
/// faults, empty bodies, foreign serialisations — answers `false` and
/// takes the full-parse lane.
fn sniff_canonical_data_reply(bytes: &[u8]) -> bool {
    const START: &[u8] = b"<soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\"";
    const BODY: &[u8] = b"<soap:Body>";
    if !bytes.starts_with(START) {
        return false;
    }
    let Some(at) = bytes.windows(BODY.len()).position(|w| w == BODY) else {
        return false;
    };
    let rest = &bytes[at + BODY.len()..];
    rest.first() == Some(&b'<') && !rest.starts_with(b"<soap:")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SoapDispatcher;
    use dais_xml::XmlElement;

    fn echo_bus() -> Bus {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
        d.register("urn:fail", |_: &Envelope| Err(Fault::server("boom")));
        bus.register("bus://svc", Arc::new(d));
        bus
    }

    #[test]
    fn round_trips_through_serialisation() {
        let bus = echo_bus();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("payload"));
        let out = bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        assert_eq!(out, env);
    }

    #[test]
    fn call_bytes_matches_call_wire_bytes() {
        let bus = echo_bus();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("payload"));
        let mut raw = Vec::new();
        bus.call_bytes_into("bus://svc", "urn:echo", &env, &mut raw).unwrap().unwrap();
        let parsed = bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        let mut expected = Vec::new();
        parsed.to_bytes_into(&mut expected);
        assert_eq!(raw, expected);
        assert_eq!(Envelope::from_bytes(&raw).unwrap(), parsed);
        // Both lanes billed the same traffic.
        let s = bus.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.request_bytes, s.response_bytes);
    }

    #[test]
    fn call_bytes_classifies_faults_like_call() {
        let bus = echo_bus();
        let mut raw = Vec::new();
        let fault = bus
            .call_bytes_into("bus://svc", "urn:fail", &Envelope::default(), &mut raw)
            .unwrap()
            .unwrap_err();
        assert_eq!(fault.reason, "boom");
        assert!(raw.is_empty());
        assert_eq!(bus.stats().faults, 1);
    }

    #[test]
    fn call_bytes_under_executor_reserialises() {
        let bus = echo_bus();
        bus.install_executor(ExecutorConfig { workers: 2, ..Default::default() });
        assert!(bus.has_queued_executor());
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("queued"));
        let mut raw = Vec::new();
        bus.call_bytes_into("bus://svc", "urn:echo", &env, &mut raw).unwrap().unwrap();
        assert_eq!(Envelope::from_bytes(&raw).unwrap(), env);
        bus.shutdown_executor();
        assert!(!bus.has_queued_executor());
    }

    #[test]
    fn sniff_accepts_only_canonical_data_replies() {
        let mut data = Vec::new();
        Envelope::with_body(XmlElement::new_local("m").with_text("x")).to_bytes_into(&mut data);
        assert!(sniff_canonical_data_reply(&data));

        let mut fault = Vec::new();
        Envelope::with_body(Fault::server("nope").to_xml()).to_bytes_into(&mut fault);
        assert!(!sniff_canonical_data_reply(&fault));

        let mut empty = Vec::new();
        Envelope::default().to_bytes_into(&mut empty);
        assert!(!sniff_canonical_data_reply(&empty));

        assert!(!sniff_canonical_data_reply(b"<env:Envelope xmlns:env=\"urn:x\"/>"));
        assert!(!sniff_canonical_data_reply(b"not xml at all"));
    }

    #[test]
    fn faults_travel_as_envelopes() {
        let bus = echo_bus();
        let out = bus.call("bus://svc", "urn:fail", &Envelope::default()).unwrap();
        let fault = out.unwrap_err();
        assert_eq!(fault.reason, "boom");
        assert_eq!(bus.stats().faults, 1);
    }

    #[test]
    fn unknown_endpoint_is_transport_error() {
        let bus = echo_bus();
        assert_eq!(
            bus.call("bus://nope", "urn:echo", &Envelope::default()).unwrap_err(),
            BusError::NoSuchEndpoint("bus://nope".into())
        );
    }

    #[test]
    fn unknown_action_is_client_fault() {
        let bus = echo_bus();
        let fault =
            bus.call("bus://svc", "urn:unknown", &Envelope::default()).unwrap().unwrap_err();
        assert_eq!(fault.code, crate::fault::FaultCode::Client);
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let bus = echo_bus();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("0123456789"));
        bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        let s = bus.stats();
        assert_eq!(s.messages, 2);
        assert!(s.request_bytes > 0 && s.response_bytes > 0);
        assert_eq!(s.request_bytes, s.response_bytes); // echo
        let e = bus.endpoint_stats("bus://svc");
        assert_eq!(e.messages, 2);
        assert_eq!(e.total_bytes(), s.total_bytes());
    }

    #[test]
    fn unregister_removes_endpoint() {
        let bus = echo_bus();
        assert!(bus.unregister("bus://svc"));
        assert!(!bus.unregister("bus://svc"));
        assert!(matches!(
            bus.call("bus://svc", "urn:echo", &Envelope::default()),
            Err(BusError::NoSuchEndpoint(_))
        ));
    }

    #[test]
    fn addresses_lists_registered() {
        let bus = echo_bus();
        assert_eq!(bus.addresses(), vec!["bus://svc"]);
    }

    type VisitLog = Arc<std::sync::Mutex<Vec<(u8, char)>>>;

    /// Tags request bytes on the way in and response bytes on the way
    /// out, appending to a log shared by the whole chain.
    struct Tagger {
        id: u8,
        log: VisitLog,
    }

    impl crate::interceptor::Interceptor for Tagger {
        fn on_request(
            &self,
            _: &crate::interceptor::CallInfo<'_>,
            _: &[u8],
        ) -> crate::interceptor::Intercept {
            self.log.lock().unwrap().push((self.id, 'q'));
            crate::interceptor::Intercept::Pass
        }

        fn on_response(
            &self,
            _: &crate::interceptor::CallInfo<'_>,
            _: &[u8],
        ) -> crate::interceptor::Intercept {
            self.log.lock().unwrap().push((self.id, 's'));
            crate::interceptor::Intercept::Pass
        }
    }

    #[test]
    fn chain_runs_in_order_and_reversed() {
        let bus = echo_bus();
        let log: VisitLog = Arc::default();
        bus.add_interceptor(Arc::new(Tagger { id: 1, log: log.clone() }));
        bus.add_interceptor(Arc::new(Tagger { id: 2, log: log.clone() }));
        assert_eq!(bus.interceptor_count(), 2);
        bus.call("bus://svc", "urn:echo", &Envelope::default()).unwrap().unwrap();
        assert_eq!(*log.lock().unwrap(), vec![(1, 'q'), (2, 'q'), (2, 's'), (1, 's')]);
        bus.clear_interceptors();
        assert_eq!(bus.interceptor_count(), 0);
    }

    struct AbortAll;
    impl crate::interceptor::Interceptor for AbortAll {
        fn on_request(
            &self,
            call: &crate::interceptor::CallInfo<'_>,
            _: &[u8],
        ) -> crate::interceptor::Intercept {
            crate::interceptor::Intercept::Abort(BusError::Timeout(call.to.to_string()))
        }
    }

    #[test]
    fn abort_surfaces_as_transport_error_and_bills_request_leg() {
        let bus = echo_bus();
        bus.add_interceptor(Arc::new(AbortAll));
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("payload"));
        let err = bus.call("bus://svc", "urn:echo", &env).unwrap_err();
        assert_eq!(err, BusError::Timeout("bus://svc".into()));
        let s = bus.stats();
        assert_eq!(s.messages, 1);
        assert_eq!(s.injected, 1);
        assert!(s.request_bytes > 0);
        assert_eq!(s.response_bytes, 0);
        assert_eq!(s.faults, 0);
    }

    struct AbortResponses;
    impl crate::interceptor::Interceptor for AbortResponses {
        fn on_response(
            &self,
            call: &crate::interceptor::CallInfo<'_>,
            _: &[u8],
        ) -> crate::interceptor::Intercept {
            crate::interceptor::Intercept::Abort(BusError::Timeout(call.to.to_string()))
        }
    }

    #[test]
    fn response_abort_bills_the_consumed_response_leg() {
        let bus = echo_bus();
        bus.add_interceptor(Arc::new(AbortResponses));
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("payload"));
        let err = bus.call("bus://svc", "urn:echo", &env).unwrap_err();
        assert_eq!(err, BusError::Timeout("bus://svc".into()));
        let s = bus.stats();
        assert_eq!(s.messages, 1);
        // The service ran and produced a response before the abort: both
        // legs moved bytes and both are billed (this is an echo, so the
        // legs are equal).
        assert!(s.request_bytes > 0);
        assert_eq!(s.response_bytes, s.request_bytes);
    }

    struct ReplyCanned(Vec<u8>);
    impl crate::interceptor::Interceptor for ReplyCanned {
        fn on_request(
            &self,
            _: &crate::interceptor::CallInfo<'_>,
            _: &[u8],
        ) -> crate::interceptor::Intercept {
            crate::interceptor::Intercept::Reply(self.0.clone())
        }
    }

    #[test]
    fn reply_short_circuits_the_service() {
        let bus = echo_bus();
        let canned = Envelope::with_body(Fault::server("synthetic").to_xml()).to_bytes();
        bus.add_interceptor(Arc::new(ReplyCanned(canned)));
        // The echo service never runs; the canned fault comes back.
        let fault = bus.call("bus://svc", "urn:echo", &Envelope::default()).unwrap().unwrap_err();
        assert_eq!(fault.reason, "synthetic");
        let s = bus.stats();
        assert_eq!((s.messages, s.faults, s.injected), (1, 1, 1));
    }

    struct CorruptRequests;
    impl crate::interceptor::Interceptor for CorruptRequests {
        fn on_request(
            &self,
            _: &crate::interceptor::CallInfo<'_>,
            bytes: &[u8],
        ) -> crate::interceptor::Intercept {
            crate::interceptor::Intercept::Tamper(bytes[..bytes.len() / 2].to_vec())
        }
    }

    #[test]
    fn tampered_request_fails_to_parse() {
        let bus = echo_bus();
        bus.add_interceptor(Arc::new(CorruptRequests));
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("payload"));
        let err = bus.call("bus://svc", "urn:echo", &env).unwrap_err();
        assert!(matches!(err, BusError::MalformedEnvelope(_)));
        assert_eq!(bus.stats().injected, 1);
    }

    #[test]
    fn empty_chain_leaves_stats_identical() {
        let with_chain = echo_bus();
        with_chain.add_interceptor(Arc::new(Tagger { id: 9, log: Arc::default() }));
        with_chain.clear_interceptors();
        let without = echo_bus();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("same"));
        with_chain.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        without.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        assert_eq!(with_chain.stats(), without.stats());
    }

    #[test]
    fn reset_stats_zeroes_counters_and_bumps_epoch() {
        let bus = echo_bus();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("x"));
        bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        bus.record_retry("bus://svc");
        assert_eq!(bus.stats().epoch, 0);
        bus.reset_stats();
        let s = bus.stats();
        assert_eq!((s.messages, s.total_bytes(), s.retries), (0, 0, 0));
        assert_eq!(s.epoch, 1);
        assert_eq!(bus.endpoint_stats("bus://svc").epoch, 1);
        // Counters keep accumulating in the new epoch.
        bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        assert_eq!(bus.stats().messages, 1);
    }

    #[test]
    fn stats_fold_in_the_chain_injection_ledger() {
        use crate::interceptor::{FaultInjector, FaultPolicy, InjectorSnapshot};
        let bus = echo_bus();
        let inj = FaultInjector::new(1);
        inj.set_policy("bus://svc", FaultPolicy::default().busy(1.0));
        bus.add_interceptor(Arc::new(inj));
        let fault = bus.call("bus://svc", "urn:echo", &Envelope::default()).unwrap().unwrap_err();
        assert!(fault.is(crate::fault::DaisFault::ServiceBusy));
        assert_eq!(bus.stats().fault_injection.busy, 1);
        assert_eq!(bus.endpoint_stats("bus://svc").fault_injection.busy, 1);
        assert_eq!(bus.endpoint_stats("bus://other").fault_injection, InjectorSnapshot::default());
        bus.reset_stats();
        assert_eq!(bus.stats().fault_injection.total(), 0);
    }

    #[test]
    fn latency_histograms_record_every_call() {
        let bus = echo_bus();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("x"));
        for _ in 0..3 {
            bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        }
        let snap = bus.obs().metrics.snapshot();
        assert_eq!(snap["endpoint:bus://svc"].count, 3);
        assert_eq!(snap["action:urn:echo"].count, 3);
    }

    #[test]
    fn traced_call_records_correlated_spans_and_echoes_relates_to() {
        let bus = echo_bus();
        bus.enable_tracing(0xE13);
        // Stand in for a traced client: open a root span and carry its
        // context in `wsa:MessageID`, exactly as `ServiceClient` does.
        let root = bus.obs().tracer.span(span_names::CLIENT_CALL, None);
        let ctx = root.ctx().unwrap();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("x"))
            .with_header(XmlElement::new(ns::WSA, "wsa", "MessageID").with_text(ctx.encode()));
        let out = bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        let relates = out.header_block(ns::WSA, "RelatesTo").expect("RelatesTo echoed");
        assert_eq!(relates.text(), ctx.encode());
        drop(root);

        let sink = bus.obs().tracer.take();
        let names: Vec<&str> = sink.spans.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            ["client.call", "bus.call", "bus.request", "bus.dispatch", "bus.response"]
        );
        assert!(sink.spans.iter().all(|s| s.trace_id == ctx.trace_id));
        // Both the bus leg and the dispatch hang off the client span:
        // the former from the request argument, the latter from the
        // MessageID that crossed the wire.
        assert_eq!(sink.first("bus.call").unwrap().parent_id, Some(ctx.span_id));
        assert_eq!(sink.first("bus.dispatch").unwrap().parent_id, Some(ctx.span_id));
        let call_id = sink.first("bus.call").unwrap().span_id;
        assert_eq!(sink.first("bus.request").unwrap().parent_id, Some(call_id));
        assert_eq!(sink.first("bus.response").unwrap().parent_id, Some(call_id));
    }

    #[test]
    fn untraced_wire_gains_no_correlation_headers() {
        let bus = echo_bus();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("x"));
        let out = bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        assert!(out.header_block(ns::WSA, "RelatesTo").is_none());
        assert!(bus.obs().tracer.sink().is_empty());
    }

    #[test]
    fn record_retry_counts_total_and_endpoint() {
        let bus = echo_bus();
        bus.record_retry("bus://svc");
        bus.record_retry("bus://svc");
        bus.record_retry("bus://unknown"); // total only; endpoint never registered
        assert_eq!(bus.stats().retries, 3);
        assert_eq!(bus.endpoint_stats("bus://svc").retries, 2);
        assert_eq!(bus.endpoint_stats("bus://unknown").retries, 0);
    }
}
