//! The in-process message bus — the transport substitute.
//!
//! Endpoints register under logical addresses (`bus://orders-service`).
//! [`Bus::call`] serialises the request envelope to bytes, routes to the
//! endpoint, parses the bytes back, invokes the service, and does the same
//! on the way out. Faults become fault envelopes, exactly as an HTTP SOAP
//! stack would put them in a 500 response body.
//!
//! The bus meters traffic per endpoint and in total ([`BusStats`]); the
//! paper-figure experiments (E1/E5) use those counters to show how the
//! indirect access pattern avoids moving result data through intermediate
//! consumers.

use crate::envelope::Envelope;
use crate::fault::Fault;
use crate::service::SoapService;
use dais_util::sync::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A registered endpoint.
#[derive(Clone)]
pub struct Endpoint {
    pub address: String,
    service: Arc<dyn SoapService>,
}

/// Traffic counters. Byte counts measure the serialised envelope size in
/// each direction — the quantity a network transport would move.
#[derive(Debug, Default)]
pub struct BusStats {
    pub messages: AtomicU64,
    pub request_bytes: AtomicU64,
    pub response_bytes: AtomicU64,
    pub faults: AtomicU64,
}

/// A point-in-time copy of [`BusStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub messages: u64,
    pub request_bytes: u64,
    pub response_bytes: u64,
    pub faults: u64,
}

impl StatsSnapshot {
    pub fn total_bytes(&self) -> u64 {
        self.request_bytes + self.response_bytes
    }
}

impl BusStats {
    fn record(&self, request: u64, response: u64, fault: bool) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.request_bytes.fetch_add(request, Ordering::Relaxed);
        self.response_bytes.fetch_add(response, Ordering::Relaxed);
        if fault {
            self.faults.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            messages: self.messages.load(Ordering::Relaxed),
            request_bytes: self.request_bytes.load(Ordering::Relaxed),
            response_bytes: self.response_bytes.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
        }
    }
}

/// The in-process transport. Cheap to clone (shared state).
#[derive(Clone, Default)]
pub struct Bus {
    inner: Arc<BusInner>,
}

#[derive(Default)]
struct BusInner {
    endpoints: RwLock<HashMap<String, Endpoint>>,
    per_endpoint: RwLock<HashMap<String, Arc<BusStats>>>,
    total: BusStats,
}

/// Transport-level errors (distinct from SOAP faults, which are
/// application-level and travel in envelopes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// No endpoint registered at the address.
    NoSuchEndpoint(String),
    /// The peer produced bytes that do not parse as an envelope.
    MalformedEnvelope(String),
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::NoSuchEndpoint(a) => write!(f, "no endpoint registered at '{a}'"),
            BusError::MalformedEnvelope(m) => write!(f, "malformed envelope: {m}"),
        }
    }
}

impl std::error::Error for BusError {}

impl Bus {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a service at a logical address.
    pub fn register(&self, address: impl Into<String>, service: Arc<dyn SoapService>) {
        let address = address.into();
        self.inner
            .endpoints
            .write()
            .insert(address.clone(), Endpoint { address: address.clone(), service });
        self.inner.per_endpoint.write().entry(address).or_default();
    }

    /// Remove an endpoint. Subsequent calls to it fail with
    /// [`BusError::NoSuchEndpoint`].
    pub fn unregister(&self, address: &str) -> bool {
        self.inner.endpoints.write().remove(address).is_some()
    }

    /// Addresses currently registered, sorted.
    pub fn addresses(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.endpoints.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Send a request. Always serialises/parses both envelopes; a service
    /// fault is returned as `Ok(Err(fault))` after travelling through a
    /// fault envelope, mirroring SOAP-over-HTTP semantics.
    #[allow(clippy::type_complexity)]
    pub fn call(
        &self,
        to: &str,
        action: &str,
        request: &Envelope,
    ) -> Result<Result<Envelope, Fault>, BusError> {
        let endpoint = self
            .inner
            .endpoints
            .read()
            .get(to)
            .cloned()
            .ok_or_else(|| BusError::NoSuchEndpoint(to.to_string()))?;

        // Request wire trip.
        let request_bytes = request.to_bytes();
        let parsed_request = Envelope::from_bytes(&request_bytes)
            .map_err(|e| BusError::MalformedEnvelope(e.to_string()))?;

        let outcome = endpoint.service.handle(action, &parsed_request);

        // Response wire trip (fault or success both serialise).
        let (response_env, is_fault) = match &outcome {
            Ok(resp) => (resp.clone(), false),
            Err(fault) => (Envelope::with_body(fault.to_xml()), true),
        };
        let response_bytes = response_env.to_bytes();
        let parsed_response = Envelope::from_bytes(&response_bytes)
            .map_err(|e| BusError::MalformedEnvelope(e.to_string()))?;

        self.inner.total.record(request_bytes.len() as u64, response_bytes.len() as u64, is_fault);
        if let Some(stats) = self.inner.per_endpoint.read().get(to) {
            stats.record(request_bytes.len() as u64, response_bytes.len() as u64, is_fault);
        }

        // Reconstruct the outcome from the parsed response, so the caller
        // only ever sees data that crossed the "wire".
        if let Some(payload) = parsed_response.payload() {
            if let Some(fault) = Fault::from_xml(payload) {
                return Ok(Err(fault));
            }
        }
        Ok(Ok(parsed_response))
    }

    /// Totals across all endpoints.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.total.snapshot()
    }

    /// Per-endpoint counters (zero snapshot if never registered).
    pub fn endpoint_stats(&self, address: &str) -> StatsSnapshot {
        self.inner
            .per_endpoint
            .read()
            .get(address)
            .map(|s| s.snapshot())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SoapDispatcher;
    use dais_xml::XmlElement;

    fn echo_bus() -> Bus {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
        d.register("urn:fail", |_: &Envelope| Err(Fault::server("boom")));
        bus.register("bus://svc", Arc::new(d));
        bus
    }

    #[test]
    fn round_trips_through_serialisation() {
        let bus = echo_bus();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("payload"));
        let out = bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        assert_eq!(out, env);
    }

    #[test]
    fn faults_travel_as_envelopes() {
        let bus = echo_bus();
        let out = bus.call("bus://svc", "urn:fail", &Envelope::default()).unwrap();
        let fault = out.unwrap_err();
        assert_eq!(fault.reason, "boom");
        assert_eq!(bus.stats().faults, 1);
    }

    #[test]
    fn unknown_endpoint_is_transport_error() {
        let bus = echo_bus();
        assert_eq!(
            bus.call("bus://nope", "urn:echo", &Envelope::default()).unwrap_err(),
            BusError::NoSuchEndpoint("bus://nope".into())
        );
    }

    #[test]
    fn unknown_action_is_client_fault() {
        let bus = echo_bus();
        let fault = bus.call("bus://svc", "urn:unknown", &Envelope::default()).unwrap().unwrap_err();
        assert_eq!(fault.code, crate::fault::FaultCode::Client);
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let bus = echo_bus();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("0123456789"));
        bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        let s = bus.stats();
        assert_eq!(s.messages, 2);
        assert!(s.request_bytes > 0 && s.response_bytes > 0);
        assert_eq!(s.request_bytes, s.response_bytes); // echo
        let e = bus.endpoint_stats("bus://svc");
        assert_eq!(e.messages, 2);
        assert_eq!(e.total_bytes(), s.total_bytes());
    }

    #[test]
    fn unregister_removes_endpoint() {
        let bus = echo_bus();
        assert!(bus.unregister("bus://svc"));
        assert!(!bus.unregister("bus://svc"));
        assert!(matches!(
            bus.call("bus://svc", "urn:echo", &Envelope::default()),
            Err(BusError::NoSuchEndpoint(_))
        ));
    }

    #[test]
    fn addresses_lists_registered() {
        let bus = echo_bus();
        assert_eq!(bus.addresses(), vec!["bus://svc"]);
    }
}
