//! The in-process message bus — the transport substitute.
//!
//! Endpoints register under logical addresses (`bus://orders-service`).
//! [`Bus::call`] serialises the request envelope to bytes, routes to the
//! endpoint, parses the bytes back, invokes the service, and does the same
//! on the way out. Faults become fault envelopes, exactly as an HTTP SOAP
//! stack would put them in a 500 response body.
//!
//! The bus meters traffic per endpoint and in total ([`BusStats`]); the
//! paper-figure experiments (E1/E5) use those counters to show how the
//! indirect access pattern avoids moving result data through intermediate
//! consumers.

use crate::envelope::Envelope;
use crate::fault::Fault;
use crate::interceptor::{CallInfo, Intercept, Interceptor};
use crate::service::SoapService;
use dais_util::pool::PooledBuf;
use dais_util::sync::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A registered endpoint. Carries its own stats handle so the per-call
/// accounting path never takes the registry lock.
#[derive(Clone)]
pub struct Endpoint {
    pub address: String,
    service: Arc<dyn SoapService>,
    stats: Arc<BusStats>,
}

/// Traffic counters. Byte counts measure the serialised envelope size in
/// each direction — the quantity a network transport would move.
#[derive(Debug, Default)]
pub struct BusStats {
    pub messages: AtomicU64,
    pub request_bytes: AtomicU64,
    pub response_bytes: AtomicU64,
    pub faults: AtomicU64,
    /// Calls an interceptor interfered with (tampered, answered, aborted).
    pub injected: AtomicU64,
    /// Attempts re-sent by the client retry layer.
    pub retries: AtomicU64,
}

/// A point-in-time copy of [`BusStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub messages: u64,
    pub request_bytes: u64,
    pub response_bytes: u64,
    pub faults: u64,
    pub injected: u64,
    pub retries: u64,
}

impl StatsSnapshot {
    pub fn total_bytes(&self) -> u64 {
        self.request_bytes + self.response_bytes
    }
}

impl BusStats {
    fn record(&self, request: u64, response: u64, fault: bool) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.request_bytes.fetch_add(request, Ordering::Relaxed);
        self.response_bytes.fetch_add(response, Ordering::Relaxed);
        if fault {
            self.faults.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_injected(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            messages: self.messages.load(Ordering::Relaxed),
            request_bytes: self.request_bytes.load(Ordering::Relaxed),
            response_bytes: self.response_bytes.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            injected: self.injected.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

/// The in-process transport. Cheap to clone (shared state).
#[derive(Clone, Default)]
pub struct Bus {
    inner: Arc<BusInner>,
}

#[derive(Default)]
struct BusInner {
    endpoints: RwLock<HashMap<String, Endpoint>>,
    per_endpoint: RwLock<HashMap<String, Arc<BusStats>>>,
    /// Copy-on-write chain: `call` takes one `Arc` clone, so an empty
    /// chain costs nothing and mutation never blocks in-flight calls.
    interceptors: RwLock<Arc<Vec<Arc<dyn Interceptor>>>>,
    total: BusStats,
}

/// Transport-level errors (distinct from SOAP faults, which are
/// application-level and travel in envelopes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// No endpoint registered at the address.
    NoSuchEndpoint(String),
    /// The peer produced bytes that do not parse as an envelope.
    MalformedEnvelope(String),
    /// The request was sent but no response ever arrived (only ever
    /// produced by interceptors — the in-process transport itself
    /// cannot lose messages).
    Timeout(String),
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::NoSuchEndpoint(a) => write!(f, "no endpoint registered at '{a}'"),
            BusError::MalformedEnvelope(m) => write!(f, "malformed envelope: {m}"),
            BusError::Timeout(m) => write!(f, "timeout: {m}"),
        }
    }
}

impl std::error::Error for BusError {}

impl Bus {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a service at a logical address.
    pub fn register(&self, address: impl Into<String>, service: Arc<dyn SoapService>) {
        let address = address.into();
        // The stats slot outlives registration churn: re-registering the
        // same address keeps accumulating into the same counters, and the
        // resolved `Endpoint` carries the `Arc` so `call` never touches
        // the `per_endpoint` map again.
        let stats = Arc::clone(self.inner.per_endpoint.write().entry(address.clone()).or_default());
        self.inner.endpoints.write().insert(address.clone(), Endpoint { address, service, stats });
    }

    /// Remove an endpoint. Subsequent calls to it fail with
    /// [`BusError::NoSuchEndpoint`].
    pub fn unregister(&self, address: &str) -> bool {
        self.inner.endpoints.write().remove(address).is_some()
    }

    /// The service registered at `address`, if any. Conformance tests
    /// use this to interrogate a live endpoint's advertised actions
    /// without issuing wire calls.
    pub fn endpoint(&self, address: &str) -> Option<Arc<dyn SoapService>> {
        self.inner.endpoints.read().get(address).map(|e| e.service.clone())
    }

    /// Addresses currently registered, sorted.
    pub fn addresses(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.endpoints.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Append an interceptor to the transport chain. Requests traverse
    /// the chain in this order; responses traverse it in reverse.
    pub fn add_interceptor(&self, interceptor: Arc<dyn Interceptor>) {
        let mut chain = self.inner.interceptors.write();
        let mut next = Vec::clone(&chain);
        next.push(interceptor);
        *chain = Arc::new(next);
    }

    /// Drop every interceptor, restoring the bare transport.
    pub fn clear_interceptors(&self) {
        *self.inner.interceptors.write() = Arc::new(Vec::new());
    }

    /// Number of interceptors currently installed.
    pub fn interceptor_count(&self) -> usize {
        self.inner.interceptors.read().len()
    }

    /// Count one client-side retry against this endpoint (called by the
    /// retry layer, which sits above the bus).
    pub fn record_retry(&self, to: &str) {
        self.inner.total.record_retry();
        if let Some(stats) = self.inner.per_endpoint.read().get(to) {
            stats.record_retry();
        }
    }

    /// Send a request. Always serialises/parses both envelopes; a service
    /// fault is returned as `Ok(Err(fault))` after travelling through a
    /// fault envelope, mirroring SOAP-over-HTTP semantics.
    ///
    /// Wire bytes pass through the interceptor chain in both directions
    /// (requests in order, responses reversed). An aborted or
    /// unparseable call still bills the request leg it consumed.
    #[allow(clippy::type_complexity)]
    pub fn call(
        &self,
        to: &str,
        action: &str,
        request: &Envelope,
    ) -> Result<Result<Envelope, Fault>, BusError> {
        let endpoint = self
            .inner
            .endpoints
            .read()
            .get(to)
            .cloned()
            .ok_or_else(|| BusError::NoSuchEndpoint(to.to_string()))?;
        let chain = Arc::clone(&self.inner.interceptors.read());
        let info = CallInfo { to, action };
        let record = |request: u64, response: u64, fault: bool| {
            self.inner.total.record(request, response, fault);
            endpoint.stats.record(request, response, fault);
        };
        let note_injected = || {
            self.inner.total.record_injected();
            endpoint.stats.record_injected();
        };

        // Request wire trip, through the chain. Both legs serialise into
        // thread-local pooled buffers (the pool is a stack, so reentrant
        // calls from a handler get their own buffers); with an empty
        // chain the pooled bytes flow straight into the parser — no
        // extra copy. An interceptor swapping in owned bytes via
        // `Tamper`/`Reply` replaces the buffer contents outright.
        let mut request_bytes = PooledBuf::take();
        request.to_bytes_into(&mut request_bytes);
        // `Reply` at position i answers on the service's behalf; only the
        // interceptors outside it (0..i) then see the response.
        let mut replied: Option<(Vec<u8>, usize)> = None;
        for (i, interceptor) in chain.iter().enumerate() {
            match interceptor.on_request(&info, &request_bytes) {
                Intercept::Pass => {}
                Intercept::Tamper(bytes) => {
                    note_injected();
                    request_bytes.replace_with(bytes);
                }
                Intercept::Reply(bytes) => {
                    note_injected();
                    replied = Some((bytes, i));
                    break;
                }
                Intercept::Abort(err) => {
                    note_injected();
                    record(request_bytes.len() as u64, 0, false);
                    return Err(err);
                }
            }
        }

        let mut response_bytes = PooledBuf::take();
        let response_chain_len = match replied {
            Some((bytes, i)) => {
                response_bytes.replace_with(bytes);
                i
            }
            None => {
                let parsed_request = match Envelope::from_bytes(&request_bytes) {
                    Ok(env) => env,
                    Err(e) => {
                        record(request_bytes.len() as u64, 0, false);
                        return Err(BusError::MalformedEnvelope(e.to_string()));
                    }
                };
                let outcome = endpoint.service.handle(action, &parsed_request);
                // Fault or success both serialise for the return trip.
                let response_env = match outcome {
                    Ok(resp) => resp,
                    Err(fault) => Envelope::with_body(fault.to_xml()),
                };
                response_env.to_bytes_into(&mut response_bytes);
                chain.len()
            }
        };

        for interceptor in chain[..response_chain_len].iter().rev() {
            match interceptor.on_response(&info, &response_bytes) {
                Intercept::Pass => {}
                Intercept::Tamper(bytes) => {
                    note_injected();
                    response_bytes.replace_with(bytes);
                }
                Intercept::Reply(bytes) => {
                    note_injected();
                    response_bytes.replace_with(bytes);
                    break;
                }
                Intercept::Abort(err) => {
                    note_injected();
                    // A response leg was consumed before the abort: bill
                    // it, like the malformed-response path below does.
                    record(request_bytes.len() as u64, response_bytes.len() as u64, false);
                    return Err(err);
                }
            }
        }

        let parsed_response = match Envelope::from_bytes(&response_bytes) {
            Ok(env) => env,
            Err(e) => {
                record(request_bytes.len() as u64, response_bytes.len() as u64, false);
                return Err(BusError::MalformedEnvelope(e.to_string()));
            }
        };

        // Reconstruct the outcome from the parsed response, so the caller
        // only ever sees data that crossed the "wire". Fault accounting
        // follows the same classification.
        let fault = parsed_response.payload().and_then(Fault::from_xml);
        record(request_bytes.len() as u64, response_bytes.len() as u64, fault.is_some());
        match fault {
            Some(f) => Ok(Err(f)),
            None => Ok(Ok(parsed_response)),
        }
    }

    /// Totals across all endpoints.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.total.snapshot()
    }

    /// Per-endpoint counters (zero snapshot if never registered).
    pub fn endpoint_stats(&self, address: &str) -> StatsSnapshot {
        self.inner.per_endpoint.read().get(address).map(|s| s.snapshot()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SoapDispatcher;
    use dais_xml::XmlElement;

    fn echo_bus() -> Bus {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
        d.register("urn:fail", |_: &Envelope| Err(Fault::server("boom")));
        bus.register("bus://svc", Arc::new(d));
        bus
    }

    #[test]
    fn round_trips_through_serialisation() {
        let bus = echo_bus();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("payload"));
        let out = bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        assert_eq!(out, env);
    }

    #[test]
    fn faults_travel_as_envelopes() {
        let bus = echo_bus();
        let out = bus.call("bus://svc", "urn:fail", &Envelope::default()).unwrap();
        let fault = out.unwrap_err();
        assert_eq!(fault.reason, "boom");
        assert_eq!(bus.stats().faults, 1);
    }

    #[test]
    fn unknown_endpoint_is_transport_error() {
        let bus = echo_bus();
        assert_eq!(
            bus.call("bus://nope", "urn:echo", &Envelope::default()).unwrap_err(),
            BusError::NoSuchEndpoint("bus://nope".into())
        );
    }

    #[test]
    fn unknown_action_is_client_fault() {
        let bus = echo_bus();
        let fault =
            bus.call("bus://svc", "urn:unknown", &Envelope::default()).unwrap().unwrap_err();
        assert_eq!(fault.code, crate::fault::FaultCode::Client);
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let bus = echo_bus();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("0123456789"));
        bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        bus.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        let s = bus.stats();
        assert_eq!(s.messages, 2);
        assert!(s.request_bytes > 0 && s.response_bytes > 0);
        assert_eq!(s.request_bytes, s.response_bytes); // echo
        let e = bus.endpoint_stats("bus://svc");
        assert_eq!(e.messages, 2);
        assert_eq!(e.total_bytes(), s.total_bytes());
    }

    #[test]
    fn unregister_removes_endpoint() {
        let bus = echo_bus();
        assert!(bus.unregister("bus://svc"));
        assert!(!bus.unregister("bus://svc"));
        assert!(matches!(
            bus.call("bus://svc", "urn:echo", &Envelope::default()),
            Err(BusError::NoSuchEndpoint(_))
        ));
    }

    #[test]
    fn addresses_lists_registered() {
        let bus = echo_bus();
        assert_eq!(bus.addresses(), vec!["bus://svc"]);
    }

    type VisitLog = Arc<std::sync::Mutex<Vec<(u8, char)>>>;

    /// Tags request bytes on the way in and response bytes on the way
    /// out, appending to a log shared by the whole chain.
    struct Tagger {
        id: u8,
        log: VisitLog,
    }

    impl crate::interceptor::Interceptor for Tagger {
        fn on_request(
            &self,
            _: &crate::interceptor::CallInfo<'_>,
            _: &[u8],
        ) -> crate::interceptor::Intercept {
            self.log.lock().unwrap().push((self.id, 'q'));
            crate::interceptor::Intercept::Pass
        }

        fn on_response(
            &self,
            _: &crate::interceptor::CallInfo<'_>,
            _: &[u8],
        ) -> crate::interceptor::Intercept {
            self.log.lock().unwrap().push((self.id, 's'));
            crate::interceptor::Intercept::Pass
        }
    }

    #[test]
    fn chain_runs_in_order_and_reversed() {
        let bus = echo_bus();
        let log: VisitLog = Arc::default();
        bus.add_interceptor(Arc::new(Tagger { id: 1, log: log.clone() }));
        bus.add_interceptor(Arc::new(Tagger { id: 2, log: log.clone() }));
        assert_eq!(bus.interceptor_count(), 2);
        bus.call("bus://svc", "urn:echo", &Envelope::default()).unwrap().unwrap();
        assert_eq!(*log.lock().unwrap(), vec![(1, 'q'), (2, 'q'), (2, 's'), (1, 's')]);
        bus.clear_interceptors();
        assert_eq!(bus.interceptor_count(), 0);
    }

    struct AbortAll;
    impl crate::interceptor::Interceptor for AbortAll {
        fn on_request(
            &self,
            call: &crate::interceptor::CallInfo<'_>,
            _: &[u8],
        ) -> crate::interceptor::Intercept {
            crate::interceptor::Intercept::Abort(BusError::Timeout(call.to.to_string()))
        }
    }

    #[test]
    fn abort_surfaces_as_transport_error_and_bills_request_leg() {
        let bus = echo_bus();
        bus.add_interceptor(Arc::new(AbortAll));
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("payload"));
        let err = bus.call("bus://svc", "urn:echo", &env).unwrap_err();
        assert_eq!(err, BusError::Timeout("bus://svc".into()));
        let s = bus.stats();
        assert_eq!(s.messages, 1);
        assert_eq!(s.injected, 1);
        assert!(s.request_bytes > 0);
        assert_eq!(s.response_bytes, 0);
        assert_eq!(s.faults, 0);
    }

    struct AbortResponses;
    impl crate::interceptor::Interceptor for AbortResponses {
        fn on_response(
            &self,
            call: &crate::interceptor::CallInfo<'_>,
            _: &[u8],
        ) -> crate::interceptor::Intercept {
            crate::interceptor::Intercept::Abort(BusError::Timeout(call.to.to_string()))
        }
    }

    #[test]
    fn response_abort_bills_the_consumed_response_leg() {
        let bus = echo_bus();
        bus.add_interceptor(Arc::new(AbortResponses));
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("payload"));
        let err = bus.call("bus://svc", "urn:echo", &env).unwrap_err();
        assert_eq!(err, BusError::Timeout("bus://svc".into()));
        let s = bus.stats();
        assert_eq!(s.messages, 1);
        // The service ran and produced a response before the abort: both
        // legs moved bytes and both are billed (this is an echo, so the
        // legs are equal).
        assert!(s.request_bytes > 0);
        assert_eq!(s.response_bytes, s.request_bytes);
    }

    struct ReplyCanned(Vec<u8>);
    impl crate::interceptor::Interceptor for ReplyCanned {
        fn on_request(
            &self,
            _: &crate::interceptor::CallInfo<'_>,
            _: &[u8],
        ) -> crate::interceptor::Intercept {
            crate::interceptor::Intercept::Reply(self.0.clone())
        }
    }

    #[test]
    fn reply_short_circuits_the_service() {
        let bus = echo_bus();
        let canned = Envelope::with_body(Fault::server("synthetic").to_xml()).to_bytes();
        bus.add_interceptor(Arc::new(ReplyCanned(canned)));
        // The echo service never runs; the canned fault comes back.
        let fault = bus.call("bus://svc", "urn:echo", &Envelope::default()).unwrap().unwrap_err();
        assert_eq!(fault.reason, "synthetic");
        let s = bus.stats();
        assert_eq!((s.messages, s.faults, s.injected), (1, 1, 1));
    }

    struct CorruptRequests;
    impl crate::interceptor::Interceptor for CorruptRequests {
        fn on_request(
            &self,
            _: &crate::interceptor::CallInfo<'_>,
            bytes: &[u8],
        ) -> crate::interceptor::Intercept {
            crate::interceptor::Intercept::Tamper(bytes[..bytes.len() / 2].to_vec())
        }
    }

    #[test]
    fn tampered_request_fails_to_parse() {
        let bus = echo_bus();
        bus.add_interceptor(Arc::new(CorruptRequests));
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("payload"));
        let err = bus.call("bus://svc", "urn:echo", &env).unwrap_err();
        assert!(matches!(err, BusError::MalformedEnvelope(_)));
        assert_eq!(bus.stats().injected, 1);
    }

    #[test]
    fn empty_chain_leaves_stats_identical() {
        let with_chain = echo_bus();
        with_chain.add_interceptor(Arc::new(Tagger { id: 9, log: Arc::default() }));
        with_chain.clear_interceptors();
        let without = echo_bus();
        let env = Envelope::with_body(XmlElement::new_local("m").with_text("same"));
        with_chain.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        without.call("bus://svc", "urn:echo", &env).unwrap().unwrap();
        assert_eq!(with_chain.stats(), without.stats());
    }

    #[test]
    fn record_retry_counts_total_and_endpoint() {
        let bus = echo_bus();
        bus.record_retry("bus://svc");
        bus.record_retry("bus://svc");
        bus.record_retry("bus://unknown"); // total only; endpoint never registered
        assert_eq!(bus.stats().retries, 3);
        assert_eq!(bus.endpoint_stats("bus://svc").retries, 2);
        assert_eq!(bus.endpoint_stats("bus://unknown").retries, 0);
    }
}
