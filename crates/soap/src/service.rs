//! The service side: a trait for SOAP endpoints and an action dispatcher.

use crate::envelope::Envelope;
use crate::fault::Fault;
use std::collections::HashMap;
use std::sync::Arc;

/// A SOAP endpoint. Implementations receive the parsed envelope and the
/// SOAP action and either return a response envelope or a fault (which the
/// bus renders as a fault envelope).
///
/// Handlers run on whichever thread carries the request across the
/// transport seam: the caller's thread (inline mode), an executor worker
/// (queued mode), or a [`TcpServer`](crate::tcp::TcpServer) connection
/// thread. Executor workers and server connection threads are marked as
/// worker threads, so a handler that calls back into the bus runs that
/// nested call inline — a handler must be `Send + Sync` and free of
/// thread-affine state, but never needs to worry about executor-queue
/// deadlock.
pub trait SoapService: Send + Sync {
    fn handle(&self, action: &str, request: &Envelope) -> Result<Envelope, Fault>;

    /// The SOAP actions this endpoint understands (used by conformance
    /// tests and the Figure-6 operation inventory experiment).
    fn actions(&self) -> Vec<String> {
        Vec::new()
    }
}

/// Type of a boxed operation handler.
pub type Handler = Arc<dyn Fn(&Envelope) -> Result<Envelope, Fault> + Send + Sync>;

/// A dispatcher mapping SOAP actions to handlers. DAIS services are
/// assembled by registering each interface's operations onto one of these
/// ("the proposed interfaces may be used in isolation or in conjunction
/// with others", paper §4.3).
#[derive(Default, Clone)]
pub struct SoapDispatcher {
    handlers: HashMap<String, Handler>,
}

impl SoapDispatcher {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a handler for an action. Later registrations replace
    /// earlier ones (used by the thick-wrapper experiment to intercept).
    pub fn register<F>(&mut self, action: impl Into<String>, handler: F)
    where
        F: Fn(&Envelope) -> Result<Envelope, Fault> + Send + Sync + 'static,
    {
        self.handlers.insert(action.into(), Arc::new(handler));
    }

    /// Does this dispatcher know the action?
    pub fn supports(&self, action: &str) -> bool {
        self.handlers.contains_key(action)
    }

    /// All registered actions, sorted for stable output.
    pub fn actions(&self) -> Vec<String> {
        let mut v: Vec<String> = self.handlers.keys().cloned().collect();
        v.sort();
        v
    }
}

impl SoapService for SoapDispatcher {
    fn handle(&self, action: &str, request: &Envelope) -> Result<Envelope, Fault> {
        match self.handlers.get(action) {
            Some(h) => h(request),
            None => Err(Fault::client(format!("unknown SOAP action '{action}'"))),
        }
    }

    fn actions(&self) -> Vec<String> {
        SoapDispatcher::actions(self)
    }
}

impl std::fmt::Debug for SoapDispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SoapDispatcher").field("actions", &self.actions()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_xml::XmlElement;

    #[test]
    fn dispatches_by_action() {
        let mut d = SoapDispatcher::new();
        d.register("urn:echo", |req| Ok(req.clone()));
        let env = Envelope::with_body(XmlElement::new_local("m"));
        assert_eq!(d.handle("urn:echo", &env).unwrap(), env);
        assert!(d.handle("urn:nope", &env).is_err());
    }

    #[test]
    fn reregistration_replaces() {
        let mut d = SoapDispatcher::new();
        d.register("a", |_| Ok(Envelope::with_body(XmlElement::new_local("one"))));
        d.register("a", |_| Ok(Envelope::with_body(XmlElement::new_local("two"))));
        let out = d.handle("a", &Envelope::default()).unwrap();
        assert_eq!(out.payload().unwrap().name.local, "two");
        assert_eq!(d.actions().len(), 1);
    }

    #[test]
    fn actions_sorted() {
        let mut d = SoapDispatcher::new();
        d.register("b", |_| Ok(Envelope::default()));
        d.register("a", |_| Ok(Envelope::default()));
        assert_eq!(d.actions(), vec!["a", "b"]);
        assert!(d.supports("a"));
    }

    #[test]
    fn unknown_action_is_a_client_fault_naming_the_action() {
        let d = SoapDispatcher::new();
        let err = d.handle("urn:nope", &Envelope::default()).unwrap_err();
        assert_eq!(err.code, crate::fault::FaultCode::Client);
        assert!(err.dais.is_none(), "dispatcher faults carry no DAIS classification");
        assert!(err.reason.contains("unknown SOAP action"));
        assert!(err.reason.contains("urn:nope"));
    }

    #[test]
    fn actions_ordering_is_stable_across_insertion_orders() {
        let names = ["urn:c", "urn:a", "urn:b", "urn:d"];
        let mut forward = SoapDispatcher::new();
        for n in names {
            forward.register(n, |_| Ok(Envelope::default()));
        }
        let mut reverse = SoapDispatcher::new();
        for n in names.iter().rev() {
            reverse.register(*n, |_| Ok(Envelope::default()));
        }
        assert_eq!(forward.actions(), reverse.actions());
        assert_eq!(forward.actions(), vec!["urn:a", "urn:b", "urn:c", "urn:d"]);
    }

    #[test]
    fn every_advertised_action_dispatches() {
        let mut d = SoapDispatcher::new();
        d.register("urn:x", |_| Ok(Envelope::default()));
        d.register("urn:y", |_| Ok(Envelope::default()));
        for action in d.actions() {
            assert!(d.supports(&action));
            // Dispatch must reach the handler, not the unknown-action arm.
            assert!(d.handle(&action, &Envelope::default()).is_ok());
        }
    }
}
