//! Client-side retry with deterministic exponential backoff.
//!
//! A [`RetryPolicy`] bounds how hard a consumer leans on a flaky
//! transport: at most `max_attempts` sends, exponentially growing
//! pauses between them (with deterministic jitter, so a seeded run
//! replays exactly), and a hard ceiling on the *total* time spent
//! sleeping. The [`ServiceClient`](crate::client::ServiceClient) applies
//! the policy only to operations named idempotent by an
//! [`IdempotencySet`] — re-sending a property read is safe, re-sending
//! an insert is not — and bills every re-send to
//! [`BusStats::retries`](crate::bus::BusStats).

use crate::bus::BusError;
use crate::client::CallError;
use crate::fault::DaisFault;
use dais_util::rng::mix2;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// How a client paces re-sends of a failed idempotent request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total sends, first attempt included (minimum 1).
    pub max_attempts: u32,
    /// Pause after the first failure; later pauses double from here.
    pub base_delay: Duration,
    /// Ceiling on any single pause.
    pub max_delay: Duration,
    /// Ceiling on the *sum* of pauses — once the budget cannot cover the
    /// next pause, the client gives up and returns the last error.
    pub deadline: Duration,
    /// Seed for jitter; the full backoff schedule is a pure function of
    /// the policy, so equal policies retry identically.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// A policy with sensible defaults for `max_attempts` sends.
    pub fn new(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(5),
            deadline: Duration::from_secs(30),
            jitter_seed: 0,
        }
    }

    /// Never retry.
    pub fn none() -> RetryPolicy {
        RetryPolicy::new(1)
    }

    pub fn base_delay(mut self, d: Duration) -> Self {
        self.base_delay = d;
        self
    }

    pub fn max_delay(mut self, d: Duration) -> Self {
        self.max_delay = d;
        self
    }

    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = d;
        self
    }

    pub fn jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The pause after failed attempt `attempt` (1-based). The schedule
    /// is monotone non-decreasing: the raw delay doubles each step while
    /// jitter stays below half the raw delay, and the cap is applied
    /// after jitter, so `delay(k+1) >= delay(k)` for any parameters.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let attempt = attempt.max(1);
        let base = self.base_delay.as_nanos().min(u64::MAX as u128) as u64;
        let raw = (u128::from(base) << (attempt - 1).min(64)).min(u128::from(u64::MAX)) as u64;
        let span = raw / 2;
        let jitter = if span == 0 { 0 } else { mix2(self.jitter_seed, u64::from(attempt)) % span };
        let capped = raw
            .saturating_add(jitter)
            .min(self.max_delay.as_nanos().min(u128::from(u64::MAX)) as u64);
        Duration::from_nanos(capped)
    }

    /// The whole pause schedule (one entry per possible retry).
    pub fn backoff_schedule(&self) -> Vec<Duration> {
        (1..self.max_attempts).map(|k| self.backoff_delay(k)).collect()
    }
}

/// The set of SOAP actions a client may safely re-send.
#[derive(Debug, Clone, Default)]
pub struct IdempotencySet {
    actions: Arc<HashSet<String>>,
}

impl IdempotencySet {
    pub fn new<I, S>(actions: I) -> IdempotencySet
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        IdempotencySet { actions: Arc::new(actions.into_iter().map(Into::into).collect()) }
    }

    pub fn contains(&self, action: &str) -> bool {
        self.actions.contains(action)
    }

    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// How the client sleeps between attempts — injectable so tests retry
/// without wall-clock cost.
pub type SleepFn = Arc<dyn Fn(Duration) + Send + Sync>;

/// A policy plus the action classification and sleep mechanism.
#[derive(Clone)]
pub struct RetryConfig {
    pub policy: RetryPolicy,
    pub idempotent: IdempotencySet,
    sleep: SleepFn,
}

impl RetryConfig {
    pub fn new(policy: RetryPolicy, idempotent: IdempotencySet) -> RetryConfig {
        RetryConfig { policy, idempotent, sleep: Arc::new(std::thread::sleep) }
    }

    /// Replace the sleeper (tests pass a recorder; the default blocks
    /// the calling thread).
    pub fn with_sleep(mut self, sleep: SleepFn) -> RetryConfig {
        self.sleep = sleep;
        self
    }

    pub(crate) fn sleep(&self, d: Duration) {
        (self.sleep)(d)
    }
}

/// Whether an error is worth re-sending the same request for: transient
/// transport loss and the WS-DAI "try again later" faults qualify;
/// everything else (bad requests, missing endpoints, application
/// faults) will fail identically on a re-send.
pub fn is_retryable(error: &CallError) -> bool {
    match error {
        CallError::Transport(BusError::Timeout(_))
        | CallError::Transport(BusError::MalformedEnvelope(_))
        | CallError::Transport(BusError::Overloaded { .. })
        | CallError::Transport(BusError::ConnectionLost(_)) => true,
        CallError::Transport(BusError::NoSuchEndpoint(_)) => false,
        CallError::Fault(f) => {
            f.is(DaisFault::ServiceBusy) || f.is(DaisFault::DataResourceUnavailable)
        }
        CallError::UnexpectedResponse(_) => false,
    }
}

// ---------------------------------------------------------------------------
// Journal cause codes
// ---------------------------------------------------------------------------

/// A SOAP fault ended the exchange (`req.fault` journal events).
pub const CAUSE_FAULT: u64 = 1;
/// [`BusError::Timeout`].
pub const CAUSE_TIMEOUT: u64 = 2;
/// [`BusError::MalformedEnvelope`].
pub const CAUSE_MALFORMED: u64 = 3;
/// [`BusError::Overloaded`] — bounded admission refused the request.
pub const CAUSE_OVERLOADED: u64 = 4;
/// [`BusError::ConnectionLost`].
pub const CAUSE_CONNECTION_LOST: u64 = 5;
/// [`BusError::NoSuchEndpoint`].
pub const CAUSE_NO_SUCH_ENDPOINT: u64 = 6;
/// The reply parsed but was not the message shape the client expected.
pub const CAUSE_UNEXPECTED_RESPONSE: u64 = 7;

/// The fixed numeric code the flight-recorder journal carries for a
/// failed exchange. Journal events hold one `u64` argument — no
/// strings — so the error taxonomy is numbered here, next to the retry
/// classification that consumes it. Codes are stable: they appear in
/// rendered journals pinned by golden tests.
pub fn bus_error_code(error: &BusError) -> u64 {
    match error {
        BusError::Timeout(_) => CAUSE_TIMEOUT,
        BusError::MalformedEnvelope(_) => CAUSE_MALFORMED,
        BusError::Overloaded { .. } => CAUSE_OVERLOADED,
        BusError::ConnectionLost(_) => CAUSE_CONNECTION_LOST,
        BusError::NoSuchEndpoint(_) => CAUSE_NO_SUCH_ENDPOINT,
    }
}

/// [`bus_error_code`] lifted over the client's error type: SOAP faults
/// map to [`CAUSE_FAULT`], transport errors to their bus code.
pub fn cause_code(error: &CallError) -> u64 {
    match error {
        CallError::Fault(_) => CAUSE_FAULT,
        CallError::Transport(e) => bus_error_code(e),
        CallError::UnexpectedResponse(_) => CAUSE_UNEXPECTED_RESPONSE,
    }
}

/// The server-supplied pacing hint carried by an error, if any. An
/// [`Overloaded`](BusError::Overloaded) refusal names the earliest
/// moment a re-send could be admitted; the retry loop takes the *max*
/// of this hint and its own backoff schedule, so a shed never re-sends
/// sooner than the executor asked for.
pub fn retry_after_hint(error: &CallError) -> Option<Duration> {
    match error {
        CallError::Transport(BusError::Overloaded { retry_after, .. }) => Some(*retry_after),
        _ => None,
    }
}

/// Where an `Overloaded{retry_after}` refusal originated relative to
/// the endpoint the caller addressed. A generic retry loop treats every
/// overload the same way — back off — but a replica-aware router wants
/// to distinguish *this replica is hot* (switch to a sibling now, no
/// sleep) from *admission upstream of the replica shed the request*
/// (backing off is all there is).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadOrigin {
    /// The shed names the endpoint the caller addressed: the replica
    /// itself refused. Prefer failing over to a sibling replica.
    Replica,
    /// The shed names some other endpoint — admission upstream of the
    /// addressed replica (e.g. the federation endpoint's own executor).
    /// No sibling replica would fare better; honour the pacing hint.
    Upstream,
}

/// Classify an `Overloaded` error against the endpoint the caller
/// addressed; `None` for every other error. This is what lets the
/// federation failover loop prefer switching replica over backing off
/// (the "one hot replica, one idle replica" case) while still honouring
/// `retry_after` when the whole shard is hot.
pub fn overload_origin(error: &CallError, addressed: &str) -> Option<(OverloadOrigin, Duration)> {
    match error {
        CallError::Transport(BusError::Overloaded { endpoint, retry_after }) => {
            let origin = if endpoint == addressed {
                OverloadOrigin::Replica
            } else {
                OverloadOrigin::Upstream
            };
            Some((origin, *retry_after))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::new(6)
            .base_delay(Duration::from_millis(10))
            .max_delay(Duration::from_millis(55))
            .jitter_seed(7);
        let schedule = p.backoff_schedule();
        assert_eq!(schedule.len(), 5);
        for pair in schedule.windows(2) {
            assert!(pair[1] >= pair[0], "{schedule:?} not monotone");
        }
        for d in &schedule {
            assert!(*d <= Duration::from_millis(55));
        }
        // First pause: raw 10ms plus jitter below 5ms.
        assert!(schedule[0] >= Duration::from_millis(10));
        assert!(schedule[0] < Duration::from_millis(15));
        assert_eq!(*schedule.last().unwrap(), Duration::from_millis(55));
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_policy() {
        let p = RetryPolicy::new(8).jitter_seed(0xFEED);
        assert_eq!(p.backoff_schedule(), p.backoff_schedule());
        let q = p.jitter_seed(0xBEEF);
        assert_ne!(p.backoff_schedule(), q.backoff_schedule());
    }

    #[test]
    fn zero_base_delay_never_sleeps() {
        let p = RetryPolicy::new(5).base_delay(Duration::ZERO);
        assert!(p.backoff_schedule().iter().all(|d| d.is_zero()));
    }

    #[test]
    fn retryable_classification() {
        assert!(is_retryable(&CallError::Transport(BusError::Timeout("t".into()))));
        assert!(is_retryable(&CallError::Transport(BusError::MalformedEnvelope("m".into()))));
        assert!(!is_retryable(&CallError::Transport(BusError::NoSuchEndpoint("e".into()))));
        assert!(is_retryable(&CallError::Transport(BusError::ConnectionLost("c".into()))));
        assert!(is_retryable(&CallError::Fault(Fault::dais(DaisFault::ServiceBusy, "b"))));
        assert!(is_retryable(&CallError::Fault(Fault::dais(
            DaisFault::DataResourceUnavailable,
            "u"
        ))));
        assert!(!is_retryable(&CallError::Fault(Fault::dais(DaisFault::InvalidExpression, "x"))));
        assert!(!is_retryable(&CallError::Fault(Fault::client("c"))));
        assert!(!is_retryable(&CallError::UnexpectedResponse("r".into())));
    }

    #[test]
    fn cause_codes_are_distinct_and_stable() {
        let errors: Vec<(CallError, u64)> = vec![
            (CallError::Fault(Fault::client("c")), CAUSE_FAULT),
            (CallError::Transport(BusError::Timeout("t".into())), CAUSE_TIMEOUT),
            (CallError::Transport(BusError::MalformedEnvelope("m".into())), CAUSE_MALFORMED),
            (
                CallError::Transport(BusError::Overloaded {
                    endpoint: "e".into(),
                    retry_after: Duration::from_millis(1),
                }),
                CAUSE_OVERLOADED,
            ),
            (CallError::Transport(BusError::ConnectionLost("c".into())), CAUSE_CONNECTION_LOST),
            (CallError::Transport(BusError::NoSuchEndpoint("e".into())), CAUSE_NO_SUCH_ENDPOINT),
            (CallError::UnexpectedResponse("r".into()), CAUSE_UNEXPECTED_RESPONSE),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (error, expected) in &errors {
            assert_eq!(cause_code(error), *expected);
            assert!(seen.insert(*expected), "duplicate cause code {expected}");
            assert_ne!(*expected, 0, "0 is reserved for 'no cause'");
        }
    }

    #[test]
    fn overload_origin_distinguishes_replica_from_upstream() {
        let hot = CallError::Transport(BusError::Overloaded {
            endpoint: "bus://fleet/shard/0/r0".into(),
            retry_after: Duration::from_millis(25),
        });
        assert_eq!(
            overload_origin(&hot, "bus://fleet/shard/0/r0"),
            Some((OverloadOrigin::Replica, Duration::from_millis(25)))
        );
        assert_eq!(
            overload_origin(&hot, "bus://fleet/shard/0/r1"),
            Some((OverloadOrigin::Upstream, Duration::from_millis(25)))
        );
        assert_eq!(
            overload_origin(&CallError::Transport(BusError::Timeout("t".into())), "bus://x"),
            None
        );
        assert_eq!(overload_origin(&CallError::Fault(Fault::client("c")), "bus://x"), None);
    }

    #[test]
    fn idempotency_set_membership() {
        let set = IdempotencySet::new(["urn:a", "urn:b"]);
        assert!(set.contains("urn:a"));
        assert!(!set.contains("urn:c"));
        assert!(IdempotencySet::default().is_empty());
    }
}
