//! Consumer-side helper: address a service (optionally via an EPR with
//! reference parameters) and exchange request/response payloads.

use crate::addressing::{message_headers, Epr};
use crate::bus::{Bus, BusError};
use crate::envelope::Envelope;
use crate::fault::Fault;
use crate::retry::{is_retryable, RetryConfig};
use dais_obs::names::span_names;
use dais_obs::{SpanHandle, TraceContext};
use dais_xml::{ns, XmlElement};
use std::time::Duration;

/// Errors a consumer can observe: transport failures or SOAP faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    Transport(BusError),
    Fault(Fault),
    /// The response parsed but did not contain the expected payload.
    UnexpectedResponse(String),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Transport(e) => write!(f, "transport error: {e}"),
            CallError::Fault(fault) => write!(f, "{fault}"),
            CallError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for CallError {}

impl From<BusError> for CallError {
    fn from(e: BusError) -> Self {
        CallError::Transport(e)
    }
}

impl From<Fault> for CallError {
    fn from(f: Fault) -> Self {
        CallError::Fault(f)
    }
}

impl CallError {
    /// The DAIS fault classification, if this is a classified fault.
    pub fn dais_fault(&self) -> Option<crate::fault::DaisFault> {
        match self {
            CallError::Fault(f) => f.dais,
            _ => None,
        }
    }
}

/// A client bound to one endpoint (by address or EPR), optionally with a
/// retry layer over the transport.
#[derive(Clone)]
pub struct ServiceClient {
    bus: Bus,
    epr: Epr,
    retry: Option<RetryConfig>,
}

impl ServiceClient {
    /// Bind to a bare address.
    pub fn new(bus: Bus, address: impl Into<String>) -> Self {
        ServiceClient { bus, epr: Epr::new(address), retry: None }
    }

    /// Bind to an EPR (indirect access: reference parameters will be
    /// echoed as headers on every request).
    pub fn from_epr(bus: Bus, epr: Epr) -> Self {
        ServiceClient { bus, epr, retry: None }
    }

    /// Layer retry behaviour over this client. Only actions the config
    /// classifies as idempotent are ever re-sent (see
    /// [`request_with_idempotency`](Self::request_with_idempotency) for
    /// per-call overrides).
    pub fn with_retry(mut self, config: RetryConfig) -> Self {
        self.retry = Some(config);
        self
    }

    /// The active retry configuration, if any.
    pub fn retry_config(&self) -> Option<&RetryConfig> {
        self.retry.as_ref()
    }

    /// The bound EPR.
    pub fn epr(&self) -> &Epr {
        &self.epr
    }

    /// The underlying bus (for chaining clients off returned EPRs).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Send `payload` with the given SOAP action and return the response
    /// payload element. Retries (if configured) apply when the action is
    /// in the config's idempotency set.
    pub fn request(&self, action: &str, payload: XmlElement) -> Result<XmlElement, CallError> {
        let idempotent =
            self.retry.as_ref().map(|c| c.idempotent.contains(action)).unwrap_or(false);
        self.request_with_idempotency(action, payload, idempotent)
    }

    /// Like [`request`](Self::request) but with the idempotency verdict
    /// supplied by the caller — for operations whose safety depends on
    /// the payload (a `SQLExecute` carrying a SELECT re-sends safely; one
    /// carrying an INSERT must not).
    pub fn request_with_idempotency(
        &self,
        action: &str,
        payload: XmlElement,
        idempotent: bool,
    ) -> Result<XmlElement, CallError> {
        // The root span of the whole logical operation. Every attempt's
        // `wsa:MessageID` carries a context from this trace, so the bus
        // legs and the service dispatch all correlate. Inert (one atomic
        // load, no allocation) when the bus's tracer is off.
        let tracer = &self.bus.obs().tracer;
        let call_span = if tracer.enabled() {
            let mut span = tracer.span(span_names::CLIENT_CALL, None);
            span.attr("to", &self.epr.address);
            span.attr("action", action);
            span
        } else {
            SpanHandle::inert()
        };

        let Some(config) = self.retry.as_ref().filter(|_| idempotent) else {
            let result = self.request_once(action, &payload, call_span.ctx());
            finish_call_span(call_span, result.is_ok(), 1);
            return result;
        };
        let mut slept = Duration::ZERO;
        let mut attempt: u32 = 1;
        // The span the in-flight attempt hangs off: the root for attempt
        // 1, then each retry span. Held across the loop so the retry
        // span covers its attempt's bus leg.
        let mut retry_span = SpanHandle::inert();
        loop {
            let parent = retry_span.ctx().or_else(|| call_span.ctx());
            let error = match self.request_once(action, &payload, parent) {
                Ok(response) => {
                    drop(retry_span);
                    finish_call_span(call_span, true, attempt);
                    return Ok(response);
                }
                Err(e) => e,
            };
            if !is_retryable(&error) || attempt >= config.policy.max_attempts {
                drop(retry_span);
                finish_call_span(call_span, false, attempt);
                return Err(error);
            }
            let pause = config.policy.backoff_delay(attempt);
            match slept.checked_add(pause) {
                // Total sleep stays within the deadline budget.
                Some(total) if total <= config.policy.deadline => slept = total,
                _ => {
                    drop(retry_span);
                    finish_call_span(call_span, false, attempt);
                    return Err(error);
                }
            }
            config.sleep(pause);
            self.bus.record_retry(&self.epr.address);
            attempt += 1;
            // Each retry is a child of the root call, tagged with what
            // drove it and the backoff that preceded it.
            retry_span = tracer.child_span(span_names::CLIENT_RETRY, call_span.ctx());
            if retry_span.is_recording() {
                retry_span.attr("attempt", attempt);
                retry_span.attr("backoff_ns", pause.as_nanos());
                retry_span.attr("cause", cause_label(&error));
            }
        }
    }

    /// One send, no retry. When `trace_parent` is set (only ever while
    /// tracing), the request carries it as `wsa:MessageID` so the bus and
    /// service join the caller's trace.
    fn request_once(
        &self,
        action: &str,
        payload: &XmlElement,
        trace_parent: Option<TraceContext>,
    ) -> Result<XmlElement, CallError> {
        let mut env = Envelope::with_body(payload.clone());
        for h in message_headers(&self.epr.address, action, &self.epr.reference_parameters) {
            env.add_header(h);
        }
        if let Some(ctx) = trace_parent {
            env.add_header(XmlElement::new(ns::WSA, "wsa", "MessageID").with_text(ctx.encode()));
        }
        let response = self.bus.call(&self.epr.address, action, &env)??;
        response
            .payload()
            .cloned()
            .ok_or_else(|| CallError::UnexpectedResponse("empty response body".into()))
    }
}

/// Stamp the root span with how the operation ended.
fn finish_call_span(mut span: SpanHandle, ok: bool, attempts: u32) {
    if span.is_recording() {
        span.attr("outcome", if ok { "ok" } else { "error" });
        span.attr("attempts", attempts);
    }
}

/// Compact, deterministic label for what failed an attempt.
fn cause_label(error: &CallError) -> String {
    match error {
        CallError::Fault(f) => match f.dais {
            Some(kind) => format!("{kind:?}"),
            None => "fault".to_string(),
        },
        CallError::Transport(BusError::Timeout(_)) => "timeout".to_string(),
        CallError::Transport(_) => "transport".to_string(),
        CallError::UnexpectedResponse(_) => "unexpected-response".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SoapDispatcher;
    use dais_xml::ns;
    use std::sync::Arc;

    #[test]
    fn client_attaches_addressing_headers() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:probe", |req: &Envelope| {
            // Echo back what headers we saw.
            let mut out = XmlElement::new_local("seen");
            if req.header_block(ns::WSA, "To").is_some() {
                out.set_attr("to", "1");
            }
            if req.header_block(ns::WSA, "Action").is_some() {
                out.set_attr("action", "1");
            }
            if req.header_block(ns::WSDAI, "DataResourceAbstractName").is_some() {
                out.set_attr("refparam", "1");
            }
            Ok(Envelope::with_body(out))
        });
        bus.register("bus://svc", Arc::new(d));

        let client = ServiceClient::from_epr(bus, Epr::for_resource("bus://svc", "urn:r1"));
        let resp = client.request("urn:probe", XmlElement::new_local("q")).unwrap();
        assert_eq!(resp.attribute("to"), Some("1"));
        assert_eq!(resp.attribute("action"), Some("1"));
        assert_eq!(resp.attribute("refparam"), Some("1"));
    }

    #[test]
    fn faults_surface_as_call_errors() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:f", |_: &Envelope| {
            Err(Fault::dais(crate::fault::DaisFault::InvalidResourceName, "nope"))
        });
        bus.register("bus://svc", Arc::new(d));
        let client = ServiceClient::new(bus, "bus://svc");
        let err = client.request("urn:f", XmlElement::new_local("q")).unwrap_err();
        assert_eq!(err.dais_fault(), Some(crate::fault::DaisFault::InvalidResourceName));
    }

    #[test]
    fn transport_error_for_missing_service() {
        let client = ServiceClient::new(Bus::new(), "bus://ghost");
        let err = client.request("urn:x", XmlElement::new_local("q")).unwrap_err();
        assert!(matches!(err, CallError::Transport(BusError::NoSuchEndpoint(_))));
    }

    use crate::fault::DaisFault;
    use crate::retry::{IdempotencySet, RetryConfig, RetryPolicy};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    /// A service that answers ServiceBusy `failures` times, then succeeds.
    fn flaky_bus(failures: u32) -> Bus {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        let remaining = Arc::new(AtomicU32::new(failures));
        for action in ["urn:read", "urn:write"] {
            let remaining = remaining.clone();
            d.register(action, move |_: &Envelope| {
                if remaining
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    Err(Fault::dais(DaisFault::ServiceBusy, "busy"))
                } else {
                    Ok(Envelope::with_body(XmlElement::new_local("ok")))
                }
            });
        }
        bus.register("bus://flaky", Arc::new(d));
        bus
    }

    fn retrying_client(
        bus: Bus,
        attempts: u32,
    ) -> (ServiceClient, Arc<std::sync::Mutex<Vec<Duration>>>) {
        let sleeps: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let recorder = sleeps.clone();
        let config = RetryConfig::new(
            RetryPolicy::new(attempts).base_delay(Duration::from_nanos(1)),
            IdempotencySet::new(["urn:read"]),
        )
        .with_sleep(Arc::new(move |d| recorder.lock().unwrap().push(d)));
        (ServiceClient::new(bus, "bus://flaky").with_retry(config), sleeps)
    }

    #[test]
    fn idempotent_actions_retry_until_success() {
        let bus = flaky_bus(2);
        let (client, sleeps) = retrying_client(bus.clone(), 4);
        let response = client.request("urn:read", XmlElement::new_local("q")).unwrap();
        assert_eq!(response.name.local, "ok");
        assert_eq!(sleeps.lock().unwrap().len(), 2);
        let s = bus.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.messages, 3);
        assert_eq!(s.faults, 2);
    }

    #[test]
    fn non_idempotent_actions_fail_fast() {
        let bus = flaky_bus(1);
        let (client, sleeps) = retrying_client(bus.clone(), 4);
        let err = client.request("urn:write", XmlElement::new_local("q")).unwrap_err();
        assert_eq!(err.dais_fault(), Some(DaisFault::ServiceBusy));
        assert!(sleeps.lock().unwrap().is_empty());
        assert_eq!(bus.stats().retries, 0);
        // The very next read succeeds — the failure budget was not spent.
        assert!(client.request("urn:read", XmlElement::new_local("q")).is_ok());
    }

    #[test]
    fn attempts_stop_at_the_policy_maximum() {
        let bus = flaky_bus(u32::MAX);
        let (client, sleeps) = retrying_client(bus.clone(), 3);
        let err = client.request("urn:read", XmlElement::new_local("q")).unwrap_err();
        assert_eq!(err.dais_fault(), Some(DaisFault::ServiceBusy));
        assert_eq!(sleeps.lock().unwrap().len(), 2); // 3 attempts, 2 pauses
        assert_eq!(bus.stats().messages, 3);
    }

    #[test]
    fn deadline_budget_stops_retrying_early() {
        let bus = flaky_bus(u32::MAX);
        let sleeps: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let recorder = sleeps.clone();
        let config = RetryConfig::new(
            RetryPolicy::new(100)
                .base_delay(Duration::from_millis(10))
                .deadline(Duration::from_millis(25)),
            IdempotencySet::new(["urn:read"]),
        )
        .with_sleep(Arc::new(move |d| recorder.lock().unwrap().push(d)));
        let client = ServiceClient::new(bus, "bus://flaky").with_retry(config);
        client.request("urn:read", XmlElement::new_local("q")).unwrap_err();
        let total: Duration = sleeps.lock().unwrap().iter().sum();
        assert!(total <= Duration::from_millis(25), "slept {total:?}");
        assert!(!sleeps.lock().unwrap().is_empty());
    }

    #[test]
    fn traced_retry_builds_one_correlated_trace() {
        let bus = flaky_bus(1);
        bus.enable_tracing(0xAB);
        let (client, _) = retrying_client(bus.clone(), 4);
        client.request("urn:read", XmlElement::new_local("q")).unwrap();
        let sink = bus.obs().tracer.take();

        let root = sink.first("client.call").expect("root span");
        assert!(sink.spans.iter().all(|s| s.trace_id == root.trace_id), "one trace");
        assert_eq!(sink.spans_named("bus.call").len(), 2, "one bus leg per attempt");
        assert_eq!(sink.spans_named("bus.dispatch").len(), 2, "context crossed the wire");
        let retry = sink.first("client.retry").expect("retry span");
        assert_eq!(retry.parent_id, Some(root.span_id));
        // The second attempt's bus leg hangs off the retry span.
        assert_eq!(sink.spans_named("bus.call")[1].parent_id, Some(retry.span_id));
        assert!(retry.attrs.iter().any(|(k, v)| *k == "cause" && v == "ServiceBusy"));
        assert!(retry.attrs.iter().any(|(k, _)| *k == "backoff_ns"));
        assert!(root.attrs.iter().any(|(k, v)| *k == "outcome" && v == "ok"));
        assert!(root.attrs.iter().any(|(k, v)| *k == "attempts" && v == "2"));
    }

    #[test]
    fn per_call_idempotency_override_retries() {
        let bus = flaky_bus(1);
        let (client, _) = retrying_client(bus, 4);
        // `urn:write` is not in the set, but the caller vouches for this
        // particular payload.
        let response =
            client.request_with_idempotency("urn:write", XmlElement::new_local("q"), true).unwrap();
        assert_eq!(response.name.local, "ok");
    }
}
