//! Consumer-side helper: address a service (optionally via an EPR with
//! reference parameters) and exchange request/response payloads.

use crate::addressing::{message_headers, Epr};
use crate::bus::{Bus, BusError};
use crate::envelope::Envelope;
use crate::fault::Fault;
use dais_xml::XmlElement;

/// Errors a consumer can observe: transport failures or SOAP faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    Transport(BusError),
    Fault(Fault),
    /// The response parsed but did not contain the expected payload.
    UnexpectedResponse(String),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Transport(e) => write!(f, "transport error: {e}"),
            CallError::Fault(fault) => write!(f, "{fault}"),
            CallError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for CallError {}

impl From<BusError> for CallError {
    fn from(e: BusError) -> Self {
        CallError::Transport(e)
    }
}

impl From<Fault> for CallError {
    fn from(f: Fault) -> Self {
        CallError::Fault(f)
    }
}

impl CallError {
    /// The DAIS fault classification, if this is a classified fault.
    pub fn dais_fault(&self) -> Option<crate::fault::DaisFault> {
        match self {
            CallError::Fault(f) => f.dais,
            _ => None,
        }
    }
}

/// A client bound to one endpoint (by address or EPR).
#[derive(Clone)]
pub struct ServiceClient {
    bus: Bus,
    epr: Epr,
}

impl ServiceClient {
    /// Bind to a bare address.
    pub fn new(bus: Bus, address: impl Into<String>) -> Self {
        ServiceClient { bus, epr: Epr::new(address) }
    }

    /// Bind to an EPR (indirect access: reference parameters will be
    /// echoed as headers on every request).
    pub fn from_epr(bus: Bus, epr: Epr) -> Self {
        ServiceClient { bus, epr }
    }

    /// The bound EPR.
    pub fn epr(&self) -> &Epr {
        &self.epr
    }

    /// The underlying bus (for chaining clients off returned EPRs).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Send `payload` with the given SOAP action and return the response
    /// payload element.
    pub fn request(&self, action: &str, payload: XmlElement) -> Result<XmlElement, CallError> {
        let mut env = Envelope::with_body(payload);
        for h in message_headers(&self.epr.address, action, &self.epr.reference_parameters) {
            env.add_header(h);
        }
        let response = self.bus.call(&self.epr.address, action, &env)??;
        response
            .payload()
            .cloned()
            .ok_or_else(|| CallError::UnexpectedResponse("empty response body".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SoapDispatcher;
    use dais_xml::ns;
    use std::sync::Arc;

    #[test]
    fn client_attaches_addressing_headers() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:probe", |req: &Envelope| {
            // Echo back what headers we saw.
            let mut out = XmlElement::new_local("seen");
            if req.header_block(ns::WSA, "To").is_some() {
                out.set_attr("to", "1");
            }
            if req.header_block(ns::WSA, "Action").is_some() {
                out.set_attr("action", "1");
            }
            if req.header_block(ns::WSDAI, "DataResourceAbstractName").is_some() {
                out.set_attr("refparam", "1");
            }
            Ok(Envelope::with_body(out))
        });
        bus.register("bus://svc", Arc::new(d));

        let client = ServiceClient::from_epr(bus, Epr::for_resource("bus://svc", "urn:r1"));
        let resp = client.request("urn:probe", XmlElement::new_local("q")).unwrap();
        assert_eq!(resp.attribute("to"), Some("1"));
        assert_eq!(resp.attribute("action"), Some("1"));
        assert_eq!(resp.attribute("refparam"), Some("1"));
    }

    #[test]
    fn faults_surface_as_call_errors() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:f", |_: &Envelope| {
            Err(Fault::dais(crate::fault::DaisFault::InvalidResourceName, "nope"))
        });
        bus.register("bus://svc", Arc::new(d));
        let client = ServiceClient::new(bus, "bus://svc");
        let err = client.request("urn:f", XmlElement::new_local("q")).unwrap_err();
        assert_eq!(err.dais_fault(), Some(crate::fault::DaisFault::InvalidResourceName));
    }

    #[test]
    fn transport_error_for_missing_service() {
        let client = ServiceClient::new(Bus::new(), "bus://ghost");
        let err = client.request("urn:x", XmlElement::new_local("q")).unwrap_err();
        assert!(matches!(err, CallError::Transport(BusError::NoSuchEndpoint(_))));
    }
}
