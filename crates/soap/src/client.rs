//! Consumer-side helper: address a service (optionally via an EPR with
//! reference parameters) and exchange request/response payloads.

use crate::addressing::{message_headers, Epr};
use crate::bus::{Bus, BusError};
use crate::envelope::Envelope;
use crate::fault::Fault;
use crate::retry::{is_retryable, RetryConfig};
use dais_xml::XmlElement;
use std::time::Duration;

/// Errors a consumer can observe: transport failures or SOAP faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    Transport(BusError),
    Fault(Fault),
    /// The response parsed but did not contain the expected payload.
    UnexpectedResponse(String),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Transport(e) => write!(f, "transport error: {e}"),
            CallError::Fault(fault) => write!(f, "{fault}"),
            CallError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for CallError {}

impl From<BusError> for CallError {
    fn from(e: BusError) -> Self {
        CallError::Transport(e)
    }
}

impl From<Fault> for CallError {
    fn from(f: Fault) -> Self {
        CallError::Fault(f)
    }
}

impl CallError {
    /// The DAIS fault classification, if this is a classified fault.
    pub fn dais_fault(&self) -> Option<crate::fault::DaisFault> {
        match self {
            CallError::Fault(f) => f.dais,
            _ => None,
        }
    }
}

/// A client bound to one endpoint (by address or EPR), optionally with a
/// retry layer over the transport.
#[derive(Clone)]
pub struct ServiceClient {
    bus: Bus,
    epr: Epr,
    retry: Option<RetryConfig>,
}

impl ServiceClient {
    /// Bind to a bare address.
    pub fn new(bus: Bus, address: impl Into<String>) -> Self {
        ServiceClient { bus, epr: Epr::new(address), retry: None }
    }

    /// Bind to an EPR (indirect access: reference parameters will be
    /// echoed as headers on every request).
    pub fn from_epr(bus: Bus, epr: Epr) -> Self {
        ServiceClient { bus, epr, retry: None }
    }

    /// Layer retry behaviour over this client. Only actions the config
    /// classifies as idempotent are ever re-sent (see
    /// [`request_with_idempotency`](Self::request_with_idempotency) for
    /// per-call overrides).
    pub fn with_retry(mut self, config: RetryConfig) -> Self {
        self.retry = Some(config);
        self
    }

    /// The active retry configuration, if any.
    pub fn retry_config(&self) -> Option<&RetryConfig> {
        self.retry.as_ref()
    }

    /// The bound EPR.
    pub fn epr(&self) -> &Epr {
        &self.epr
    }

    /// The underlying bus (for chaining clients off returned EPRs).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Send `payload` with the given SOAP action and return the response
    /// payload element. Retries (if configured) apply when the action is
    /// in the config's idempotency set.
    pub fn request(&self, action: &str, payload: XmlElement) -> Result<XmlElement, CallError> {
        let idempotent =
            self.retry.as_ref().map(|c| c.idempotent.contains(action)).unwrap_or(false);
        self.request_with_idempotency(action, payload, idempotent)
    }

    /// Like [`request`](Self::request) but with the idempotency verdict
    /// supplied by the caller — for operations whose safety depends on
    /// the payload (a `SQLExecute` carrying a SELECT re-sends safely; one
    /// carrying an INSERT must not).
    pub fn request_with_idempotency(
        &self,
        action: &str,
        payload: XmlElement,
        idempotent: bool,
    ) -> Result<XmlElement, CallError> {
        let Some(config) = self.retry.as_ref().filter(|_| idempotent) else {
            return self.request_once(action, &payload);
        };
        let mut slept = Duration::ZERO;
        let mut attempt: u32 = 1;
        loop {
            let error = match self.request_once(action, &payload) {
                Ok(response) => return Ok(response),
                Err(e) => e,
            };
            if !is_retryable(&error) || attempt >= config.policy.max_attempts {
                return Err(error);
            }
            let pause = config.policy.backoff_delay(attempt);
            match slept.checked_add(pause) {
                // Total sleep stays within the deadline budget.
                Some(total) if total <= config.policy.deadline => slept = total,
                _ => return Err(error),
            }
            config.sleep(pause);
            self.bus.record_retry(&self.epr.address);
            attempt += 1;
        }
    }

    /// One send, no retry.
    fn request_once(&self, action: &str, payload: &XmlElement) -> Result<XmlElement, CallError> {
        let mut env = Envelope::with_body(payload.clone());
        for h in message_headers(&self.epr.address, action, &self.epr.reference_parameters) {
            env.add_header(h);
        }
        let response = self.bus.call(&self.epr.address, action, &env)??;
        response
            .payload()
            .cloned()
            .ok_or_else(|| CallError::UnexpectedResponse("empty response body".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SoapDispatcher;
    use dais_xml::ns;
    use std::sync::Arc;

    #[test]
    fn client_attaches_addressing_headers() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:probe", |req: &Envelope| {
            // Echo back what headers we saw.
            let mut out = XmlElement::new_local("seen");
            if req.header_block(ns::WSA, "To").is_some() {
                out.set_attr("to", "1");
            }
            if req.header_block(ns::WSA, "Action").is_some() {
                out.set_attr("action", "1");
            }
            if req.header_block(ns::WSDAI, "DataResourceAbstractName").is_some() {
                out.set_attr("refparam", "1");
            }
            Ok(Envelope::with_body(out))
        });
        bus.register("bus://svc", Arc::new(d));

        let client = ServiceClient::from_epr(bus, Epr::for_resource("bus://svc", "urn:r1"));
        let resp = client.request("urn:probe", XmlElement::new_local("q")).unwrap();
        assert_eq!(resp.attribute("to"), Some("1"));
        assert_eq!(resp.attribute("action"), Some("1"));
        assert_eq!(resp.attribute("refparam"), Some("1"));
    }

    #[test]
    fn faults_surface_as_call_errors() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:f", |_: &Envelope| {
            Err(Fault::dais(crate::fault::DaisFault::InvalidResourceName, "nope"))
        });
        bus.register("bus://svc", Arc::new(d));
        let client = ServiceClient::new(bus, "bus://svc");
        let err = client.request("urn:f", XmlElement::new_local("q")).unwrap_err();
        assert_eq!(err.dais_fault(), Some(crate::fault::DaisFault::InvalidResourceName));
    }

    #[test]
    fn transport_error_for_missing_service() {
        let client = ServiceClient::new(Bus::new(), "bus://ghost");
        let err = client.request("urn:x", XmlElement::new_local("q")).unwrap_err();
        assert!(matches!(err, CallError::Transport(BusError::NoSuchEndpoint(_))));
    }

    use crate::fault::DaisFault;
    use crate::retry::{IdempotencySet, RetryConfig, RetryPolicy};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    /// A service that answers ServiceBusy `failures` times, then succeeds.
    fn flaky_bus(failures: u32) -> Bus {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        let remaining = Arc::new(AtomicU32::new(failures));
        for action in ["urn:read", "urn:write"] {
            let remaining = remaining.clone();
            d.register(action, move |_: &Envelope| {
                if remaining
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    Err(Fault::dais(DaisFault::ServiceBusy, "busy"))
                } else {
                    Ok(Envelope::with_body(XmlElement::new_local("ok")))
                }
            });
        }
        bus.register("bus://flaky", Arc::new(d));
        bus
    }

    fn retrying_client(
        bus: Bus,
        attempts: u32,
    ) -> (ServiceClient, Arc<std::sync::Mutex<Vec<Duration>>>) {
        let sleeps: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let recorder = sleeps.clone();
        let config = RetryConfig::new(
            RetryPolicy::new(attempts).base_delay(Duration::from_nanos(1)),
            IdempotencySet::new(["urn:read"]),
        )
        .with_sleep(Arc::new(move |d| recorder.lock().unwrap().push(d)));
        (ServiceClient::new(bus, "bus://flaky").with_retry(config), sleeps)
    }

    #[test]
    fn idempotent_actions_retry_until_success() {
        let bus = flaky_bus(2);
        let (client, sleeps) = retrying_client(bus.clone(), 4);
        let response = client.request("urn:read", XmlElement::new_local("q")).unwrap();
        assert_eq!(response.name.local, "ok");
        assert_eq!(sleeps.lock().unwrap().len(), 2);
        let s = bus.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.messages, 3);
        assert_eq!(s.faults, 2);
    }

    #[test]
    fn non_idempotent_actions_fail_fast() {
        let bus = flaky_bus(1);
        let (client, sleeps) = retrying_client(bus.clone(), 4);
        let err = client.request("urn:write", XmlElement::new_local("q")).unwrap_err();
        assert_eq!(err.dais_fault(), Some(DaisFault::ServiceBusy));
        assert!(sleeps.lock().unwrap().is_empty());
        assert_eq!(bus.stats().retries, 0);
        // The very next read succeeds — the failure budget was not spent.
        assert!(client.request("urn:read", XmlElement::new_local("q")).is_ok());
    }

    #[test]
    fn attempts_stop_at_the_policy_maximum() {
        let bus = flaky_bus(u32::MAX);
        let (client, sleeps) = retrying_client(bus.clone(), 3);
        let err = client.request("urn:read", XmlElement::new_local("q")).unwrap_err();
        assert_eq!(err.dais_fault(), Some(DaisFault::ServiceBusy));
        assert_eq!(sleeps.lock().unwrap().len(), 2); // 3 attempts, 2 pauses
        assert_eq!(bus.stats().messages, 3);
    }

    #[test]
    fn deadline_budget_stops_retrying_early() {
        let bus = flaky_bus(u32::MAX);
        let sleeps: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let recorder = sleeps.clone();
        let config = RetryConfig::new(
            RetryPolicy::new(100)
                .base_delay(Duration::from_millis(10))
                .deadline(Duration::from_millis(25)),
            IdempotencySet::new(["urn:read"]),
        )
        .with_sleep(Arc::new(move |d| recorder.lock().unwrap().push(d)));
        let client = ServiceClient::new(bus, "bus://flaky").with_retry(config);
        client.request("urn:read", XmlElement::new_local("q")).unwrap_err();
        let total: Duration = sleeps.lock().unwrap().iter().sum();
        assert!(total <= Duration::from_millis(25), "slept {total:?}");
        assert!(!sleeps.lock().unwrap().is_empty());
    }

    #[test]
    fn per_call_idempotency_override_retries() {
        let bus = flaky_bus(1);
        let (client, _) = retrying_client(bus, 4);
        // `urn:write` is not in the set, but the caller vouches for this
        // particular payload.
        let response =
            client.request_with_idempotency("urn:write", XmlElement::new_local("q"), true).unwrap();
        assert_eq!(response.name.local, "ok");
    }
}
