//! Consumer-side helper: address a service (optionally via an EPR with
//! reference parameters) and exchange request/response payloads.

use crate::addressing::{message_headers, Epr};
use crate::bus::{Bus, BusError};
use crate::envelope::Envelope;
use crate::executor::Pending;
use crate::fault::Fault;
use crate::retry::{is_retryable, retry_after_hint, RetryConfig};
use dais_obs::names::{event_names, span_names};
use dais_obs::{SpanHandle, TraceContext};
use dais_xml::{ns, XmlElement};
use std::collections::VecDeque;
use std::time::Duration;

/// How many hint-paced waits [`ServiceClient::request_pipelined`] will
/// sit through for one request when the endpoint keeps shedding and
/// there is nothing in flight left to drain, before giving up and
/// surfacing the [`Overloaded`](BusError::Overloaded) error.
const MAX_SHED_WAITS: u32 = 32;

/// Errors a consumer can observe: transport failures or SOAP faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    Transport(BusError),
    Fault(Fault),
    /// The response parsed but did not contain the expected payload.
    UnexpectedResponse(String),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Transport(e) => write!(f, "transport error: {e}"),
            CallError::Fault(fault) => write!(f, "{fault}"),
            CallError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for CallError {}

impl From<BusError> for CallError {
    fn from(e: BusError) -> Self {
        CallError::Transport(e)
    }
}

impl From<Fault> for CallError {
    fn from(f: Fault) -> Self {
        CallError::Fault(f)
    }
}

impl CallError {
    /// The DAIS fault classification, if this is a classified fault.
    pub fn dais_fault(&self) -> Option<crate::fault::DaisFault> {
        match self {
            CallError::Fault(f) => f.dais,
            _ => None,
        }
    }
}

/// A client bound to one endpoint (by address or EPR), optionally with a
/// retry layer over the transport.
#[derive(Clone)]
pub struct ServiceClient {
    bus: Bus,
    epr: Epr,
    retry: Option<RetryConfig>,
}

impl ServiceClient {
    /// Bind to a bare address.
    pub fn new(bus: Bus, address: impl Into<String>) -> Self {
        ServiceClient { bus, epr: Epr::new(address), retry: None }
    }

    /// Bind to an EPR (indirect access: reference parameters will be
    /// echoed as headers on every request).
    pub fn from_epr(bus: Bus, epr: Epr) -> Self {
        ServiceClient { bus, epr, retry: None }
    }

    /// Layer retry behaviour over this client. Only actions the config
    /// classifies as idempotent are ever re-sent (see
    /// [`request_with_idempotency`](Self::request_with_idempotency) for
    /// per-call overrides).
    pub fn with_retry(mut self, config: RetryConfig) -> Self {
        self.retry = Some(config);
        self
    }

    /// The active retry configuration, if any.
    pub fn retry_config(&self) -> Option<&RetryConfig> {
        self.retry.as_ref()
    }

    /// The bound EPR.
    pub fn epr(&self) -> &Epr {
        &self.epr
    }

    /// The underlying bus (for chaining clients off returned EPRs).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Send `payload` with the given SOAP action and return the response
    /// payload element. Retries (if configured) apply when the action is
    /// in the config's idempotency set.
    pub fn request(&self, action: &str, payload: XmlElement) -> Result<XmlElement, CallError> {
        let idempotent =
            self.retry.as_ref().map(|c| c.idempotent.contains(action)).unwrap_or(false);
        self.request_with_idempotency(action, payload, idempotent)
    }

    /// Like [`request`](Self::request) but with the idempotency verdict
    /// supplied by the caller — for operations whose safety depends on
    /// the payload (a `SQLExecute` carrying a SELECT re-sends safely; one
    /// carrying an INSERT must not).
    pub fn request_with_idempotency(
        &self,
        action: &str,
        payload: XmlElement,
        idempotent: bool,
    ) -> Result<XmlElement, CallError> {
        self.request_retrying(action, idempotent, |parent| {
            self.request_once(action, &payload, parent)
        })
    }

    /// Like [`request`](Self::request), but append the serialised
    /// response envelope to `out` instead of parsing a payload tree —
    /// the raw-reply lane for bulk data (see [`Bus::call_bytes_into`]).
    /// The caller decodes `out` with a streaming parser; faults and
    /// retries behave exactly as on [`request`](Self::request), and a
    /// retried attempt truncates `out` back to its entry length first.
    pub fn request_bytes_into(
        &self,
        action: &str,
        payload: &XmlElement,
        out: &mut Vec<u8>,
    ) -> Result<(), CallError> {
        let idempotent =
            self.retry.as_ref().map(|c| c.idempotent.contains(action)).unwrap_or(false);
        let mark = out.len();
        self.request_retrying(action, idempotent, |parent| {
            let env = self.build_envelope(action, payload, parent);
            out.truncate(mark);
            self.bus.call_bytes_into(&self.epr.address, action, &env, out)??;
            Ok(())
        })
    }

    /// The root span plus the retry loop shared by every request shape.
    /// Every attempt's `wsa:MessageID` carries a context from this
    /// trace, so the bus legs and the service dispatch all correlate.
    /// Inert (one atomic load, no allocation) when the bus's tracer is
    /// off.
    fn request_retrying<T>(
        &self,
        action: &str,
        idempotent: bool,
        mut once: impl FnMut(Option<TraceContext>) -> Result<T, CallError>,
    ) -> Result<T, CallError> {
        let tracer = &self.bus.obs().tracer;
        let call_span = if tracer.enabled() {
            let mut span = tracer.span(span_names::CLIENT_CALL, None);
            span.attr("to", &self.epr.address);
            span.attr("action", action);
            span
        } else {
            SpanHandle::inert()
        };

        let Some(config) = self.retry.as_ref().filter(|_| idempotent) else {
            let result = once(call_span.ctx());
            finish_call_span(call_span, result.is_ok(), 1);
            return result;
        };
        let mut slept = Duration::ZERO;
        let mut attempt: u32 = 1;
        // The span the in-flight attempt hangs off: the root for attempt
        // 1, then each retry span. Held across the loop so the retry
        // span covers its attempt's bus leg.
        let mut retry_span = SpanHandle::inert();
        loop {
            let parent = retry_span.ctx().or_else(|| call_span.ctx());
            let error = match once(parent) {
                Ok(response) => {
                    drop(retry_span);
                    finish_call_span(call_span, true, attempt);
                    return Ok(response);
                }
                Err(e) => e,
            };
            if !is_retryable(&error) || attempt >= config.policy.max_attempts {
                drop(retry_span);
                finish_call_span(call_span, false, attempt);
                return Err(error);
            }
            // An Overloaded refusal carries the executor's own pacing
            // hint; never re-send sooner than it asked for.
            let pause = match retry_after_hint(&error) {
                Some(hint) => config.policy.backoff_delay(attempt).max(hint),
                None => config.policy.backoff_delay(attempt),
            };
            match slept.checked_add(pause) {
                // Total sleep stays within the deadline budget.
                Some(total) if total <= config.policy.deadline => slept = total,
                _ => {
                    drop(retry_span);
                    finish_call_span(call_span, false, attempt);
                    return Err(error);
                }
            }
            config.sleep(pause);
            self.bus.record_retry(&self.epr.address);
            attempt += 1;
            self.bus.obs().journal.event_ctx(
                event_names::REQ_RETRY,
                call_span.ctx(),
                attempt as u64,
            );
            // Each retry is a child of the root call, tagged with what
            // drove it and the backoff that preceded it.
            retry_span = tracer.child_span(span_names::CLIENT_RETRY, call_span.ctx());
            if retry_span.is_recording() {
                retry_span.attr("attempt", attempt);
                retry_span.attr("backoff_ns", pause.as_nanos());
                retry_span.attr("cause", cause_label(&error));
            }
        }
    }

    /// One send, no retry. When `trace_parent` is set (only ever while
    /// tracing), the request carries it as `wsa:MessageID` so the bus and
    /// service join the caller's trace.
    fn request_once(
        &self,
        action: &str,
        payload: &XmlElement,
        trace_parent: Option<TraceContext>,
    ) -> Result<XmlElement, CallError> {
        let env = self.build_envelope(action, payload, trace_parent);
        let response = self.bus.call(&self.epr.address, action, &env)??;
        extract_payload(response)
    }

    /// The one addressed envelope both execution paths send: payload in
    /// the body, WS-Addressing headers (plus the EPR's reference
    /// parameters), and — only while tracing — the caller's context as
    /// `wsa:MessageID`.
    fn build_envelope(
        &self,
        action: &str,
        payload: &XmlElement,
        trace_parent: Option<TraceContext>,
    ) -> Envelope {
        let mut env = Envelope::with_body(payload.clone());
        for h in message_headers(&self.epr.address, action, &self.epr.reference_parameters) {
            env.add_header(h);
        }
        if let Some(ctx) = trace_parent {
            env.add_header(XmlElement::new(ns::WSA, "wsa", "MessageID").with_text(ctx.encode()));
        }
        env
    }

    /// Send a request without waiting for its reply: the pipelined path.
    /// The returned [`PendingReply`] resolves to exactly what
    /// [`request`](Self::request) without retry would have returned.
    ///
    /// No retry layer applies here — an admission refusal
    /// ([`BusError::Overloaded`], with its retry-after hint) surfaces
    /// immediately so the caller can pace the whole batch; that is what
    /// [`request_pipelined`](Self::request_pipelined) does.
    pub fn call_async(&self, action: &str, payload: XmlElement) -> Result<PendingReply, CallError> {
        let tracer = &self.bus.obs().tracer;
        let mut call_span = if tracer.enabled() {
            let mut span = tracer.span(span_names::CLIENT_CALL, None);
            span.attr("to", &self.epr.address);
            span.attr("action", action);
            span
        } else {
            SpanHandle::inert()
        };
        let env = self.build_envelope(action, &payload, call_span.ctx());
        match self.bus.call_async(&self.epr.address, action, &env) {
            Ok(pending) => Ok(PendingReply { pending, span: call_span }),
            Err(e) => {
                call_span.attr("outcome", "error");
                Err(e.into())
            }
        }
    }

    /// Send one action against many payloads, keeping up to `window`
    /// requests in flight, and return one result per payload in input
    /// order.
    ///
    /// Backpressure is cooperative: when the endpoint sheds a submit
    /// ([`BusError::Overloaded`]), the oldest in-flight reply is drained
    /// first (freeing queue space and pacing the producer); with nothing
    /// left to drain the client sleeps the refusal's retry-after hint —
    /// a bounded number of times — before giving up on that payload.
    pub fn request_pipelined(
        &self,
        action: &str,
        payloads: Vec<XmlElement>,
        window: usize,
    ) -> Vec<Result<XmlElement, CallError>> {
        let window = window.max(1);
        let mut results: Vec<Option<Result<XmlElement, CallError>>> =
            (0..payloads.len()).map(|_| None).collect();
        let mut in_flight: VecDeque<(usize, PendingReply)> = VecDeque::new();
        for (i, payload) in payloads.into_iter().enumerate() {
            if in_flight.len() >= window {
                drain_oldest(&mut in_flight, &mut results);
            }
            let mut shed_waits: u32 = 0;
            let outcome = loop {
                match self.call_async(action, payload.clone()) {
                    Ok(reply) => break Ok(reply),
                    Err(err) => {
                        let Some(hint) = retry_after_hint(&err) else { break Err(err) };
                        if !in_flight.is_empty() {
                            drain_oldest(&mut in_flight, &mut results);
                            continue;
                        }
                        shed_waits += 1;
                        if shed_waits > MAX_SHED_WAITS {
                            break Err(err);
                        }
                        self.pace(hint);
                    }
                }
            };
            match outcome {
                Ok(reply) => in_flight.push_back((i, reply)),
                Err(err) => results[i] = Some(Err(err)),
            }
        }
        while !in_flight.is_empty() {
            drain_oldest(&mut in_flight, &mut results);
        }
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(CallError::UnexpectedResponse("request was never submitted".into()))
                })
            })
            .collect()
    }

    /// Sleep out a shed's retry-after hint, through the retry config's
    /// injectable sleeper when one is present (so tests pace for free).
    fn pace(&self, hint: Duration) {
        match &self.retry {
            Some(config) => config.sleep(hint),
            None => std::thread::sleep(hint),
        }
    }
}

/// A reply in flight on the pipelined path; the `client.call` span stays
/// open until the reply is claimed.
pub struct PendingReply {
    pending: Pending,
    span: SpanHandle,
}

impl std::fmt::Debug for PendingReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingReply").field("ready", &self.is_ready()).finish()
    }
}

impl PendingReply {
    /// Has the exchange finished? Never blocks.
    pub fn is_ready(&self) -> bool {
        self.pending.is_ready()
    }

    /// Block until the exchange finishes and extract the response
    /// payload.
    pub fn wait(self) -> Result<XmlElement, CallError> {
        let PendingReply { pending, span } = self;
        let result = match pending.wait() {
            Ok(Ok(response)) => extract_payload(response),
            Ok(Err(fault)) => Err(fault.into()),
            Err(e) => Err(e.into()),
        };
        finish_call_span(span, result.is_ok(), 1);
        result
    }
}

/// Resolve the oldest in-flight reply into its slot.
fn drain_oldest(
    in_flight: &mut VecDeque<(usize, PendingReply)>,
    results: &mut [Option<Result<XmlElement, CallError>>],
) {
    if let Some((idx, reply)) = in_flight.pop_front() {
        results[idx] = Some(reply.wait());
    }
}

/// The response payload, or the error shared by both execution paths.
/// Consumes the envelope so the payload is moved out, never deep-cloned.
fn extract_payload(response: Envelope) -> Result<XmlElement, CallError> {
    response
        .into_payload()
        .ok_or_else(|| CallError::UnexpectedResponse("empty response body".into()))
}

/// Stamp the root span with how the operation ended.
fn finish_call_span(mut span: SpanHandle, ok: bool, attempts: u32) {
    if span.is_recording() {
        span.attr("outcome", if ok { "ok" } else { "error" });
        span.attr("attempts", attempts);
    }
}

/// Compact, deterministic label for what failed an attempt.
fn cause_label(error: &CallError) -> String {
    match error {
        CallError::Fault(f) => match f.dais {
            Some(kind) => format!("{kind:?}"),
            None => "fault".to_string(),
        },
        CallError::Transport(BusError::Timeout(_)) => "timeout".to_string(),
        CallError::Transport(BusError::Overloaded { .. }) => "overloaded".to_string(),
        CallError::Transport(BusError::ConnectionLost(_)) => "connection-lost".to_string(),
        CallError::Transport(_) => "transport".to_string(),
        CallError::UnexpectedResponse(_) => "unexpected-response".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SoapDispatcher;
    use dais_xml::ns;
    use std::sync::Arc;

    #[test]
    fn client_attaches_addressing_headers() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:probe", |req: &Envelope| {
            // Echo back what headers we saw.
            let mut out = XmlElement::new_local("seen");
            if req.header_block(ns::WSA, "To").is_some() {
                out.set_attr("to", "1");
            }
            if req.header_block(ns::WSA, "Action").is_some() {
                out.set_attr("action", "1");
            }
            if req.header_block(ns::WSDAI, "DataResourceAbstractName").is_some() {
                out.set_attr("refparam", "1");
            }
            Ok(Envelope::with_body(out))
        });
        bus.register("bus://svc", Arc::new(d));

        let client = ServiceClient::from_epr(bus, Epr::for_resource("bus://svc", "urn:r1"));
        let resp = client.request("urn:probe", XmlElement::new_local("q")).unwrap();
        assert_eq!(resp.attribute("to"), Some("1"));
        assert_eq!(resp.attribute("action"), Some("1"));
        assert_eq!(resp.attribute("refparam"), Some("1"));
    }

    #[test]
    fn faults_surface_as_call_errors() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:f", |_: &Envelope| {
            Err(Fault::dais(crate::fault::DaisFault::InvalidResourceName, "nope"))
        });
        bus.register("bus://svc", Arc::new(d));
        let client = ServiceClient::new(bus, "bus://svc");
        let err = client.request("urn:f", XmlElement::new_local("q")).unwrap_err();
        assert_eq!(err.dais_fault(), Some(crate::fault::DaisFault::InvalidResourceName));
    }

    #[test]
    fn transport_error_for_missing_service() {
        let client = ServiceClient::new(Bus::new(), "bus://ghost");
        let err = client.request("urn:x", XmlElement::new_local("q")).unwrap_err();
        assert!(matches!(err, CallError::Transport(BusError::NoSuchEndpoint(_))));
    }

    use crate::fault::DaisFault;
    use crate::retry::{IdempotencySet, RetryConfig, RetryPolicy};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    /// A service that answers ServiceBusy `failures` times, then succeeds.
    fn flaky_bus(failures: u32) -> Bus {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        let remaining = Arc::new(AtomicU32::new(failures));
        for action in ["urn:read", "urn:write"] {
            let remaining = remaining.clone();
            d.register(action, move |_: &Envelope| {
                if remaining
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    Err(Fault::dais(DaisFault::ServiceBusy, "busy"))
                } else {
                    Ok(Envelope::with_body(XmlElement::new_local("ok")))
                }
            });
        }
        bus.register("bus://flaky", Arc::new(d));
        bus
    }

    fn retrying_client(
        bus: Bus,
        attempts: u32,
    ) -> (ServiceClient, Arc<std::sync::Mutex<Vec<Duration>>>) {
        let sleeps: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let recorder = sleeps.clone();
        let config = RetryConfig::new(
            RetryPolicy::new(attempts).base_delay(Duration::from_nanos(1)),
            IdempotencySet::new(["urn:read"]),
        )
        .with_sleep(Arc::new(move |d| recorder.lock().unwrap().push(d)));
        (ServiceClient::new(bus, "bus://flaky").with_retry(config), sleeps)
    }

    #[test]
    fn idempotent_actions_retry_until_success() {
        let bus = flaky_bus(2);
        let (client, sleeps) = retrying_client(bus.clone(), 4);
        let response = client.request("urn:read", XmlElement::new_local("q")).unwrap();
        assert_eq!(response.name.local, "ok");
        assert_eq!(sleeps.lock().unwrap().len(), 2);
        let s = bus.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.messages, 3);
        assert_eq!(s.faults, 2);
    }

    #[test]
    fn non_idempotent_actions_fail_fast() {
        let bus = flaky_bus(1);
        let (client, sleeps) = retrying_client(bus.clone(), 4);
        let err = client.request("urn:write", XmlElement::new_local("q")).unwrap_err();
        assert_eq!(err.dais_fault(), Some(DaisFault::ServiceBusy));
        assert!(sleeps.lock().unwrap().is_empty());
        assert_eq!(bus.stats().retries, 0);
        // The very next read succeeds — the failure budget was not spent.
        assert!(client.request("urn:read", XmlElement::new_local("q")).is_ok());
    }

    #[test]
    fn attempts_stop_at_the_policy_maximum() {
        let bus = flaky_bus(u32::MAX);
        let (client, sleeps) = retrying_client(bus.clone(), 3);
        let err = client.request("urn:read", XmlElement::new_local("q")).unwrap_err();
        assert_eq!(err.dais_fault(), Some(DaisFault::ServiceBusy));
        assert_eq!(sleeps.lock().unwrap().len(), 2); // 3 attempts, 2 pauses
        assert_eq!(bus.stats().messages, 3);
    }

    #[test]
    fn deadline_budget_stops_retrying_early() {
        let bus = flaky_bus(u32::MAX);
        let sleeps: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let recorder = sleeps.clone();
        let config = RetryConfig::new(
            RetryPolicy::new(100)
                .base_delay(Duration::from_millis(10))
                .deadline(Duration::from_millis(25)),
            IdempotencySet::new(["urn:read"]),
        )
        .with_sleep(Arc::new(move |d| recorder.lock().unwrap().push(d)));
        let client = ServiceClient::new(bus, "bus://flaky").with_retry(config);
        client.request("urn:read", XmlElement::new_local("q")).unwrap_err();
        let total: Duration = sleeps.lock().unwrap().iter().sum();
        assert!(total <= Duration::from_millis(25), "slept {total:?}");
        assert!(!sleeps.lock().unwrap().is_empty());
    }

    #[test]
    fn traced_retry_builds_one_correlated_trace() {
        let bus = flaky_bus(1);
        bus.enable_tracing(0xAB);
        let (client, _) = retrying_client(bus.clone(), 4);
        client.request("urn:read", XmlElement::new_local("q")).unwrap();
        let sink = bus.obs().tracer.take();

        let root = sink.first("client.call").expect("root span");
        assert!(sink.spans.iter().all(|s| s.trace_id == root.trace_id), "one trace");
        assert_eq!(sink.spans_named("bus.call").len(), 2, "one bus leg per attempt");
        assert_eq!(sink.spans_named("bus.dispatch").len(), 2, "context crossed the wire");
        let retry = sink.first("client.retry").expect("retry span");
        assert_eq!(retry.parent_id, Some(root.span_id));
        // The second attempt's bus leg hangs off the retry span.
        assert_eq!(sink.spans_named("bus.call")[1].parent_id, Some(retry.span_id));
        assert!(retry.attrs.iter().any(|(k, v)| *k == "cause" && v == "ServiceBusy"));
        assert!(retry.attrs.iter().any(|(k, _)| *k == "backoff_ns"));
        assert!(root.attrs.iter().any(|(k, v)| *k == "outcome" && v == "ok"));
        assert!(root.attrs.iter().any(|(k, v)| *k == "attempts" && v == "2"));
    }

    use crate::executor::ExecutorConfig;

    #[test]
    fn pipelined_requests_preserve_input_order() {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
        bus.register("bus://svc", Arc::new(d));
        bus.install_executor(ExecutorConfig::new(4).seed(11));
        let client = ServiceClient::new(bus.clone(), "bus://svc");
        let payloads: Vec<XmlElement> =
            (0..24).map(|i| XmlElement::new_local("q").with_text(format!("{i}"))).collect();
        let results = client.request_pipelined("urn:echo", payloads.clone(), 8);
        assert_eq!(results.len(), 24);
        for (i, r) in results.into_iter().enumerate() {
            assert_eq!(r.unwrap().text(), format!("{i}"));
        }
        assert_eq!(bus.stats().messages, 24);
        bus.shutdown_executor();
    }

    #[test]
    fn pipelined_batch_survives_backpressure() {
        // A tiny queue forces sheds mid-batch; the client drains and
        // paces instead of failing, and every payload still answers.
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
        bus.register("bus://svc", Arc::new(d));
        bus.install_executor(
            ExecutorConfig::new(1)
                .queue_capacity(2)
                .max_in_flight(1)
                .retry_after(Duration::from_micros(50))
                .seed(13),
        );
        let client = ServiceClient::new(bus.clone(), "bus://svc");
        let payloads: Vec<XmlElement> =
            (0..40).map(|i| XmlElement::new_local("q").with_text(format!("{i}"))).collect();
        let results = client.request_pipelined("urn:echo", payloads, 8);
        for (i, r) in results.into_iter().enumerate() {
            assert_eq!(r.unwrap().text(), format!("{i}"));
        }
        bus.shutdown_executor();
    }

    #[test]
    fn retry_pause_respects_the_overload_hint() {
        let bus = Bus::new();
        let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let entered = Arc::new(AtomicU32::new(0));
        let mut d = SoapDispatcher::new();
        {
            let gate = gate.clone();
            let entered = entered.clone();
            d.register("urn:read", move |req: &Envelope| {
                entered.fetch_add(1, Ordering::SeqCst);
                let mut open = gate.0.lock().unwrap_or_else(|e| e.into_inner());
                while !*open {
                    open = gate.1.wait(open).unwrap_or_else(|e| e.into_inner());
                }
                Ok(req.clone())
            });
        }
        bus.register("bus://svc", Arc::new(d));
        let hint = Duration::from_millis(40);
        bus.install_executor(
            ExecutorConfig::new(1).queue_capacity(1).max_in_flight(1).retry_after(hint).seed(17),
        );
        // Occupy the worker and fill the queue, so the retrying call's
        // first attempt is shed.
        let busy = bus.call_async(
            "bus://svc",
            "urn:read",
            &Envelope::with_body(XmlElement::new_local("q")),
        );
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let queued = bus.call_async(
            "bus://svc",
            "urn:read",
            &Envelope::with_body(XmlElement::new_local("q")),
        );
        let sleeps: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let config = RetryConfig::new(
            // Policy backoff is 1ns — far below the hint, which must win.
            RetryPolicy::new(4).base_delay(Duration::from_nanos(1)),
            IdempotencySet::new(["urn:read"]),
        )
        .with_sleep(Arc::new({
            let sleeps = sleeps.clone();
            let gate = gate.clone();
            move |d| {
                sleeps.lock().unwrap_or_else(|e| e.into_inner()).push(d);
                // Unblock the service, then genuinely wait the pause so
                // the worker drains before the re-send.
                *gate.0.lock().unwrap_or_else(|e| e.into_inner()) = true;
                gate.1.notify_all();
                std::thread::sleep(d.min(Duration::from_millis(50)));
            }
        }));
        let client = ServiceClient::new(bus.clone(), "bus://svc").with_retry(config);
        let response = client.request("urn:read", XmlElement::new_local("q")).unwrap();
        assert_eq!(response.name.local, "q");
        {
            let sleeps = sleeps.lock().unwrap_or_else(|e| e.into_inner());
            assert!(!sleeps.is_empty());
            assert!(sleeps[0] >= hint, "pause {:?} ignored the {hint:?} hint", sleeps[0]);
        }
        assert!(bus.stats().shed >= 1);
        for p in [busy, queued].into_iter().flatten() {
            let _ = p.wait();
        }
        bus.shutdown_executor();
    }

    #[test]
    fn per_call_idempotency_override_retries() {
        let bus = flaky_bus(1);
        let (client, _) = retrying_client(bus, 4);
        // `urn:write` is not in the set, but the caller vouches for this
        // particular payload.
        let response =
            client.request_with_idempotency("urn:write", XmlElement::new_local("q"), true).unwrap();
        assert_eq!(response.name.local, "ok");
    }
}
