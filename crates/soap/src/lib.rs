//! # dais-soap
//!
//! SOAP 1.1-style messaging for the DAIS stack: envelope model, faults,
//! WS-Addressing endpoint references, a service trait, and an in-process
//! message bus that plays the role of the HTTP transport.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The DAIS specifications assume a conventional SOAP-over-HTTP stack.
//! Rust's SOAP/WSDL ecosystem is immature, so this crate implements the
//! envelope layer directly. Below the serialise→route→parse boundary a
//! [`Transport`] carries the bytes: the default in-process path hands
//! them straight to the bus registry (the deterministic test/chaos
//! transport), while [`TcpTransport`] frames them onto real `std::net`
//! sockets. Crucially no path hands object references between client
//! and service: every message is serialised to XML bytes, routed, and
//! re-parsed at the receiving side. All marshalling costs and
//! message-structure bugs are therefore still exercised, and the bus
//! meters bytes in both directions ([`BusStats`]) which the paper-figure
//! experiments use to quantify data movement.

pub mod addressing;
pub mod bus;
pub mod client;
pub mod envelope;
pub mod executor;
pub mod fault;
pub mod interceptor;
pub mod retry;
pub mod service;
pub mod tcp;
pub mod transport;

pub use addressing::Epr;
pub use bus::Endpoint;
pub use bus::{Bus, BusError, BusStats, StatsSnapshot};
pub use client::{CallError, PendingReply, ServiceClient};
pub use envelope::Envelope;
pub use executor::{BusExecutor, CallOutcome, ExecMode, ExecutorConfig, Pending};
pub use fault::{DaisFault, Fault, FaultCode};
pub use interceptor::{FaultInjector, FaultPolicy, Intercept, Interceptor};
pub use retry::{IdempotencySet, RetryConfig, RetryPolicy};
pub use service::{SoapDispatcher, SoapService};
pub use tcp::{TcpConfig, TcpServer, TcpServerConfig, TcpTransport};
pub use transport::{InProcessTransport, Transport};
