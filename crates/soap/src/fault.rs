//! SOAP faults and the DAIS fault taxonomy.
//!
//! The WS-DAI specification defines a family of faults raised by data
//! services (invalid resource name, invalid query language, and so on).
//! They are carried as standard SOAP `Fault` body elements with the DAIS
//! fault name in the detail section.

use dais_xml::{ns, XmlElement};

/// SOAP 1.1 fault code classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCode {
    /// The message was malformed or names an unknown operation — the
    /// consumer's mistake (`soap:Client`).
    Client,
    /// The service failed to process a well-formed request (`soap:Server`).
    Server,
}

impl FaultCode {
    fn as_str(self) -> &'static str {
        match self {
            FaultCode::Client => "soap:Client",
            FaultCode::Server => "soap:Server",
        }
    }
}

/// The DAIS fault vocabulary (WS-DAI §Faults plus realisation additions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DaisFault {
    /// The abstract name does not identify a resource known to the service.
    InvalidResourceName,
    /// The resource exists but cannot currently be reached.
    DataResourceUnavailable,
    /// The requested query language is not in `GenericQueryLanguage`.
    InvalidLanguage,
    /// The query/update expression failed to parse or execute.
    InvalidExpression,
    /// The requested dataset format is not in the `DatasetMap`.
    InvalidDatasetFormat,
    /// The requested port type is not in the `ConfigurationMap`.
    InvalidPortType,
    /// A configuration document requested an unsupported property value.
    InvalidConfigurationDocument,
    /// The resource is not readable / writeable as required by the request.
    NotAuthorized,
    /// The service will not accept new work at present.
    ServiceBusy,
    /// Generic processing failure inside the service.
    ServiceError,
}

impl DaisFault {
    pub fn name(self) -> &'static str {
        match self {
            DaisFault::InvalidResourceName => "InvalidResourceNameFault",
            DaisFault::DataResourceUnavailable => "DataResourceUnavailableFault",
            DaisFault::InvalidLanguage => "InvalidLanguageFault",
            DaisFault::InvalidExpression => "InvalidExpressionFault",
            DaisFault::InvalidDatasetFormat => "InvalidDatasetFormatFault",
            DaisFault::InvalidPortType => "InvalidPortTypeFault",
            DaisFault::InvalidConfigurationDocument => "InvalidConfigurationDocumentFault",
            DaisFault::NotAuthorized => "NotAuthorizedFault",
            DaisFault::ServiceBusy => "ServiceBusyFault",
            DaisFault::ServiceError => "ServiceErrorFault",
        }
    }

    fn from_name(name: &str) -> Option<DaisFault> {
        Some(match name {
            "InvalidResourceNameFault" => DaisFault::InvalidResourceName,
            "DataResourceUnavailableFault" => DaisFault::DataResourceUnavailable,
            "InvalidLanguageFault" => DaisFault::InvalidLanguage,
            "InvalidExpressionFault" => DaisFault::InvalidExpression,
            "InvalidDatasetFormatFault" => DaisFault::InvalidDatasetFormat,
            "InvalidPortTypeFault" => DaisFault::InvalidPortType,
            "InvalidConfigurationDocumentFault" => DaisFault::InvalidConfigurationDocument,
            "NotAuthorizedFault" => DaisFault::NotAuthorized,
            "ServiceBusyFault" => DaisFault::ServiceBusy,
            "ServiceErrorFault" => DaisFault::ServiceError,
            _ => return None,
        })
    }

    fn code(self) -> FaultCode {
        match self {
            DaisFault::DataResourceUnavailable
            | DaisFault::ServiceBusy
            | DaisFault::ServiceError => FaultCode::Server,
            _ => FaultCode::Client,
        }
    }
}

/// A SOAP fault, optionally classified with a DAIS fault name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    pub code: FaultCode,
    pub reason: String,
    pub dais: Option<DaisFault>,
}

impl Fault {
    /// A DAIS-classified fault.
    pub fn dais(kind: DaisFault, reason: impl Into<String>) -> Self {
        Fault { code: kind.code(), reason: reason.into(), dais: Some(kind) }
    }

    /// A bare client fault (malformed message, unknown operation).
    pub fn client(reason: impl Into<String>) -> Self {
        Fault { code: FaultCode::Client, reason: reason.into(), dais: None }
    }

    /// A bare server fault.
    pub fn server(reason: impl Into<String>) -> Self {
        Fault { code: FaultCode::Server, reason: reason.into(), dais: None }
    }

    /// True when this fault carries the given DAIS classification.
    pub fn is(&self, kind: DaisFault) -> bool {
        self.dais == Some(kind)
    }

    /// Render as the SOAP `Fault` body element.
    pub fn to_xml(&self) -> XmlElement {
        let mut fault = XmlElement::new(ns::SOAP_ENV, "soap", "Fault");
        fault.push(XmlElement::new_local("faultcode").with_text(self.code.as_str()));
        fault.push(XmlElement::new_local("faultstring").with_text(&self.reason));
        if let Some(d) = self.dais {
            let detail = XmlElement::new_local("detail").with_child(XmlElement::new(
                ns::WSDAI,
                "wsdai",
                d.name(),
            ));
            fault.push(detail);
        }
        fault
    }

    /// Recognise a fault in a response body, if present.
    pub fn from_xml(element: &XmlElement) -> Option<Fault> {
        if !element.name.is(ns::SOAP_ENV, "Fault") {
            return None;
        }
        let code = match element.child_text("", "faultcode").as_deref() {
            Some("soap:Server") => FaultCode::Server,
            _ => FaultCode::Client,
        };
        let reason = element.child_text("", "faultstring").unwrap_or_default();
        let dais = element
            .child("", "detail")
            .and_then(|d| d.elements().next())
            .and_then(|e| DaisFault::from_name(&e.name.local));
        Some(Fault { code, reason, dais })
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.dais {
            Some(d) => write!(f, "{} ({}): {}", d.name(), self.code.as_str(), self.reason),
            None => write!(f, "{}: {}", self.code.as_str(), self.reason),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dais_fault_roundtrip() {
        let f = Fault::dais(DaisFault::InvalidResourceName, "no such resource urn:x");
        let rt = Fault::from_xml(&f.to_xml()).unwrap();
        assert_eq!(rt, f);
        assert!(rt.is(DaisFault::InvalidResourceName));
        assert_eq!(rt.code, FaultCode::Client);
    }

    #[test]
    fn server_faults_classified() {
        let f = Fault::dais(DaisFault::ServiceBusy, "overloaded");
        assert_eq!(f.code, FaultCode::Server);
        let rt = Fault::from_xml(&f.to_xml()).unwrap();
        assert_eq!(rt.code, FaultCode::Server);
    }

    #[test]
    fn bare_fault_roundtrip() {
        let f = Fault::client("unknown operation");
        let rt = Fault::from_xml(&f.to_xml()).unwrap();
        assert_eq!(rt, f);
        assert!(rt.dais.is_none());
    }

    #[test]
    fn non_fault_elements_ignored() {
        assert!(Fault::from_xml(&XmlElement::new_local("NotAFault")).is_none());
    }

    #[test]
    fn all_fault_names_roundtrip() {
        for kind in [
            DaisFault::InvalidResourceName,
            DaisFault::DataResourceUnavailable,
            DaisFault::InvalidLanguage,
            DaisFault::InvalidExpression,
            DaisFault::InvalidDatasetFormat,
            DaisFault::InvalidPortType,
            DaisFault::InvalidConfigurationDocument,
            DaisFault::NotAuthorized,
            DaisFault::ServiceBusy,
            DaisFault::ServiceError,
        ] {
            assert_eq!(DaisFault::from_name(kind.name()), Some(kind));
        }
    }
}
