//! The TCP transport: length-prefixed SOAP frames over `std::net`.
//!
//! # Framing
//!
//! Every frame on the wire is
//!
//! ```text
//! [u32 BE body length][u64 BE correlation id][u8 kind][payload]
//! ```
//!
//! where the body length covers the id, kind, and payload, and is capped
//! at [`MAX_FRAME_LEN`] (a peer announcing more is a protocol error, not
//! an allocation request). Three kinds exist:
//!
//! * `1` **Request** — `u16 BE` address length + address bytes, `u16 BE`
//!   action length + action bytes, then the serialised envelope.
//! * `2` **Response** — the serialised response envelope (fault
//!   envelopes included: SOAP faults are payload, never error frames).
//! * `3` **Error** — a one-byte [`BusError`] tag plus its detail, so a
//!   routing failure on the server crosses back as the same error the
//!   in-process bus would have returned.
//!
//! # Where this sits
//!
//! Everything observable — interceptors, fault injection, spans, stats
//! billing — lives *above* the [`Transport`] seam in `Bus::dispatch`.
//! [`TcpTransport`] only moves bytes: it keeps a small connection pool
//! per server address (lazily connected, pruned on death) and pipelines
//! concurrent requests over each connection, demultiplexing replies by
//! correlation id on a per-connection reader thread. [`TcpServer`]
//! accepts connections and feeds each frame to `Bus::serve_wire` on the
//! connection's thread, which is marked as a worker so nested service
//! calls run inline rather than deadlocking a finite executor pool.
//!
//! Timeout mapping: a write that cannot complete or a reply that never
//! arrives within the configured window is [`BusError::Timeout`]; a
//! closed or refused connection is [`BusError::ConnectionLost`]
//! (retryable — the pool reconnects lazily on the next send); a server
//! past its in-flight cap answers with an error frame carrying
//! [`BusError::Overloaded`] and its retry-after hint.

use crate::bus::{Bus, BusError, BusInner};
use crate::executor;
use crate::transport::Transport;
use dais_obs::names::event_names;
use dais_obs::{Journal, Metrics};
use dais_util::sync::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Largest frame body a peer may announce (16 MiB). A length prefix
/// beyond this is rejected before any buffer grows to meet it.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;

const ERR_NO_SUCH_ENDPOINT: u8 = 0;
const ERR_MALFORMED: u8 = 1;
const ERR_TIMEOUT: u8 = 2;
const ERR_OVERLOADED: u8 = 3;
const ERR_CONNECTION_LOST: u8 = 4;

/// One frame, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Correlation id: echoed by the response/error frame answering a
    /// request, so replies demultiplex over a pipelined connection.
    pub id: u64,
    pub body: FrameBody,
}

/// What a frame carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameBody {
    /// A request addressed to an endpoint, naming its SOAP action.
    Request { to: String, action: String, envelope: Vec<u8> },
    /// A serialised response envelope (SOAP faults included).
    Response(Vec<u8>),
    /// A transport-level error produced on the serving side.
    Error(BusError),
}

/// Why bytes did not decode into a [`Frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough bytes yet: a complete frame needs `needed` bytes in
    /// total. Keep reading — this is the normal torn-read case.
    Incomplete { needed: usize },
    /// The length prefix announced a body beyond [`MAX_FRAME_LEN`].
    TooLarge { len: usize },
    /// The length prefix was satisfied but the body does not follow the
    /// frame grammar. The connection is unrecoverable (framing is lost).
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Incomplete { needed } => {
                write!(f, "incomplete frame: {needed} bytes needed")
            }
            FrameError::TooLarge { len } => {
                write!(f, "frame body of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit")
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Serialise `frame` onto the end of `out`.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let body_start = out.len() + 4;
    out.extend_from_slice(&[0u8; 4]);
    out.extend_from_slice(&frame.id.to_be_bytes());
    match &frame.body {
        FrameBody::Request { to, action, envelope } => {
            out.push(KIND_REQUEST);
            out.extend_from_slice(&(to.len() as u16).to_be_bytes());
            out.extend_from_slice(to.as_bytes());
            out.extend_from_slice(&(action.len() as u16).to_be_bytes());
            out.extend_from_slice(action.as_bytes());
            out.extend_from_slice(envelope);
        }
        FrameBody::Response(envelope) => {
            out.push(KIND_RESPONSE);
            out.extend_from_slice(envelope);
        }
        FrameBody::Error(err) => {
            out.push(KIND_ERROR);
            match err {
                BusError::NoSuchEndpoint(m) => {
                    out.push(ERR_NO_SUCH_ENDPOINT);
                    out.extend_from_slice(m.as_bytes());
                }
                BusError::MalformedEnvelope(m) => {
                    out.push(ERR_MALFORMED);
                    out.extend_from_slice(m.as_bytes());
                }
                BusError::Timeout(m) => {
                    out.push(ERR_TIMEOUT);
                    out.extend_from_slice(m.as_bytes());
                }
                BusError::Overloaded { endpoint, retry_after } => {
                    out.push(ERR_OVERLOADED);
                    out.extend_from_slice(&(retry_after.as_nanos() as u64).to_be_bytes());
                    out.extend_from_slice(endpoint.as_bytes());
                }
                BusError::ConnectionLost(m) => {
                    out.push(ERR_CONNECTION_LOST);
                    out.extend_from_slice(m.as_bytes());
                }
            }
        }
    }
    let body_len = (out.len() - body_start) as u32;
    out[body_start - 4..body_start].copy_from_slice(&body_len.to_be_bytes());
}

fn utf8(bytes: &[u8], what: &str) -> Result<String, FrameError> {
    String::from_utf8(bytes.to_vec())
        .map_err(|_| FrameError::Malformed(format!("{what} is not UTF-8")))
}

/// Decode one frame from the front of `buf`. Returns the frame and the
/// number of bytes it occupied; [`FrameError::Incomplete`] asks for more
/// input and consumes nothing.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Incomplete { needed: 4 });
    }
    let body_len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if body_len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge { len: body_len });
    }
    if body_len < 9 {
        return Err(FrameError::Malformed(format!(
            "frame body of {body_len} bytes cannot hold an id and kind"
        )));
    }
    let total = 4 + body_len;
    if buf.len() < total {
        return Err(FrameError::Incomplete { needed: total });
    }
    let body = &buf[4..total];
    let id = u64::from_be_bytes([
        body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
    ]);
    let payload = &body[9..];
    let frame_body = match body[8] {
        KIND_REQUEST => {
            if payload.len() < 2 {
                return Err(FrameError::Malformed("request truncated before address".into()));
            }
            let to_len = u16::from_be_bytes([payload[0], payload[1]]) as usize;
            let rest = &payload[2..];
            if rest.len() < to_len + 2 {
                return Err(FrameError::Malformed("request truncated inside address".into()));
            }
            let to = utf8(&rest[..to_len], "request address")?;
            let rest = &rest[to_len..];
            let action_len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
            let rest = &rest[2..];
            if rest.len() < action_len {
                return Err(FrameError::Malformed("request truncated inside action".into()));
            }
            let action = utf8(&rest[..action_len], "request action")?;
            FrameBody::Request { to, action, envelope: rest[action_len..].to_vec() }
        }
        KIND_RESPONSE => FrameBody::Response(payload.to_vec()),
        KIND_ERROR => {
            if payload.is_empty() {
                return Err(FrameError::Malformed("error frame missing its tag".into()));
            }
            let detail = &payload[1..];
            let err = match payload[0] {
                ERR_NO_SUCH_ENDPOINT => BusError::NoSuchEndpoint(utf8(detail, "error detail")?),
                ERR_MALFORMED => BusError::MalformedEnvelope(utf8(detail, "error detail")?),
                ERR_TIMEOUT => BusError::Timeout(utf8(detail, "error detail")?),
                ERR_OVERLOADED => {
                    if detail.len() < 8 {
                        return Err(FrameError::Malformed(
                            "overloaded frame truncated before its hint".into(),
                        ));
                    }
                    let nanos = u64::from_be_bytes([
                        detail[0], detail[1], detail[2], detail[3], detail[4], detail[5],
                        detail[6], detail[7],
                    ]);
                    BusError::Overloaded {
                        endpoint: utf8(&detail[8..], "error detail")?,
                        retry_after: Duration::from_nanos(nanos),
                    }
                }
                ERR_CONNECTION_LOST => BusError::ConnectionLost(utf8(detail, "error detail")?),
                tag => return Err(FrameError::Malformed(format!("unknown error tag {tag}"))),
            };
            FrameBody::Error(err)
        }
        kind => return Err(FrameError::Malformed(format!("unknown frame kind {kind}"))),
    };
    Ok((Frame { id, body: frame_body }, total))
}

/// Incremental frame decoder over a byte stream. Feed it whatever the
/// socket produced — single bytes, torn frames, several frames at once —
/// and take complete frames off the front as they become available.
/// Partial input stays buffered; a decode error is terminal for the
/// stream (framing is lost once bytes stop lining up).
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    consumed: usize,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Append newly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the dead prefix dominates the buffer.
        if self.consumed > 0 && self.consumed * 2 > self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete frame, `Ok(None)` if more input is needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        match decode_frame(&self.buf[self.consumed..]) {
            Ok((frame, used)) => {
                self.consumed += used;
                Ok(Some(frame))
            }
            Err(FrameError::Incomplete { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Bytes buffered but not yet decoded into a frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }
}

// ---------------------------------------------------------------------------
// Client side: connection pool with per-connection pipelining
// ---------------------------------------------------------------------------

/// Client-side knobs for [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Connections kept per server address; concurrent requests
    /// round-robin across them and pipeline within each.
    pub pool_size: usize,
    /// How long to wait for a reply frame before the call fails with
    /// [`BusError::Timeout`].
    pub reply_timeout: Duration,
    /// Socket write timeout; an expired write fails the call with
    /// [`BusError::Timeout`].
    pub write_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            pool_size: 2,
            reply_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(1),
        }
    }
}

/// One in-flight request's rendezvous: the reader thread fulfils it with
/// the reply frame's payload (or the error that killed the connection)
/// and the calling thread waits on it with a deadline.
struct ReplySlot {
    state: Mutex<Option<Result<Vec<u8>, BusError>>>,
    cv: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<ReplySlot> {
        Arc::new(ReplySlot { state: Mutex::new(None), cv: Condvar::new() })
    }

    fn fulfil(&self, outcome: Result<Vec<u8>, BusError>) {
        let mut state = self.state.lock();
        if state.is_none() {
            *state = Some(outcome);
            self.cv.notify_all();
        }
    }

    fn wait(&self, deadline: Instant) -> Result<Vec<u8>, BusError> {
        let mut state = self.state.lock();
        loop {
            if let Some(outcome) = state.take() {
                return outcome;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(BusError::Timeout("no reply frame within the reply window".into()));
            }
            state = self.cv.wait_timeout(state, deadline - now).0;
        }
    }
}

/// One pooled connection: a shared write half, the pending-reply map the
/// reader thread demultiplexes into, and a liveness flag.
struct Conn {
    writer: Mutex<TcpStream>,
    pending: Arc<Mutex<HashMap<u64, Arc<ReplySlot>>>>,
    dead: Arc<AtomicBool>,
    closed: Arc<AtomicBool>,
}

impl Conn {
    fn open(addr: SocketAddr, config: &TcpConfig) -> Result<Arc<Conn>, BusError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| BusError::ConnectionLost(format!("connect to {addr} failed: {e}")))?;
        stream
            .set_nodelay(true)
            .and_then(|_| stream.set_write_timeout(Some(config.write_timeout)))
            .map_err(|e| {
                BusError::ConnectionLost(format!("socket setup for {addr} failed: {e}"))
            })?;
        let reader_stream = stream
            .try_clone()
            .map_err(|e| BusError::ConnectionLost(format!("clone of {addr} stream failed: {e}")))?;
        let conn = Arc::new(Conn {
            writer: Mutex::new(stream),
            pending: Arc::new(Mutex::new(HashMap::new())),
            dead: Arc::new(AtomicBool::new(false)),
            closed: Arc::new(AtomicBool::new(false)),
        });
        let pending = Arc::clone(&conn.pending);
        let dead = Arc::clone(&conn.dead);
        let closed = Arc::clone(&conn.closed);
        thread::Builder::new()
            .name(format!("dais-tcp-reader-{addr}"))
            .spawn(move || reader_loop(reader_stream, pending, dead, closed))
            .map_err(|e| BusError::ConnectionLost(format!("reader thread spawn failed: {e}")))?;
        Ok(conn)
    }

    fn alive(&self) -> bool {
        !self.dead.load(Ordering::Acquire)
    }

    /// Kill the connection and fail everything still waiting on it.
    fn fail_all(&self, error: &BusError) {
        self.dead.store(true, Ordering::Release);
        let slots: Vec<Arc<ReplySlot>> = self.pending.lock().drain().map(|(_, s)| s).collect();
        for slot in slots {
            slot.fulfil(Err(error.clone()));
        }
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.closed.store(true, Ordering::Release);
        self.dead.store(true, Ordering::Release);
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }
}

/// The connection's read half: demultiplex reply frames into the pending
/// map by correlation id. Read timeouts only exist to poll the closed
/// flag; partial frames stay buffered in the [`FrameReader`] across
/// them, so a torn read never corrupts framing.
fn reader_loop(
    mut stream: TcpStream,
    pending: Arc<Mutex<HashMap<u64, Arc<ReplySlot>>>>,
    dead: Arc<AtomicBool>,
    closed: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut reader = FrameReader::new();
    let mut scratch = [0u8; 64 * 1024];
    let fail_all = |error: BusError| {
        dead.store(true, Ordering::Release);
        let slots: Vec<Arc<ReplySlot>> = pending.lock().drain().map(|(_, s)| s).collect();
        for slot in slots {
            slot.fulfil(Err(error.clone()));
        }
    };
    loop {
        if closed.load(Ordering::Acquire) {
            fail_all(BusError::ConnectionLost("connection closed by the client pool".into()));
            return;
        }
        let n = match stream.read(&mut scratch) {
            Ok(0) => {
                fail_all(BusError::ConnectionLost("server closed the connection".into()));
                return;
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) => {
                fail_all(BusError::ConnectionLost(format!("read failed: {e}")));
                return;
            }
        };
        reader.feed(&scratch[..n]);
        loop {
            match reader.next_frame() {
                Ok(Some(frame)) => {
                    let slot = pending.lock().remove(&frame.id);
                    if let Some(slot) = slot {
                        match frame.body {
                            FrameBody::Response(bytes) => slot.fulfil(Ok(bytes)),
                            FrameBody::Error(err) => slot.fulfil(Err(err)),
                            FrameBody::Request { .. } => {
                                slot.fulfil(Err(BusError::MalformedEnvelope(
                                    "server answered with a request frame".into(),
                                )))
                            }
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    fail_all(BusError::ConnectionLost(format!("reply framing lost: {e}")));
                    return;
                }
            }
        }
    }
}

/// The socket transport below the serialise→route→parse boundary.
///
/// Routing: explicit per-address routes ([`add_route`](TcpTransport::add_route))
/// plus an optional default route carrying every other address — a
/// split deployment typically points the default at one server. A bus
/// with this transport installed serves unrouted addresses from its own
/// registry, so local and remote endpoints coexist.
pub struct TcpTransport {
    config: TcpConfig,
    routes: RwLock<HashMap<String, SocketAddr>>,
    default_route: RwLock<Option<SocketAddr>>,
    pools: Mutex<HashMap<SocketAddr, Vec<Option<Arc<Conn>>>>>,
    rr: AtomicU64,
    next_id: AtomicU64,
}

impl TcpTransport {
    pub fn new(config: TcpConfig) -> TcpTransport {
        TcpTransport {
            config,
            routes: RwLock::default(),
            default_route: RwLock::default(),
            pools: Mutex::new(HashMap::new()),
            rr: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
        }
    }

    /// Route one endpoint address to a server.
    pub fn add_route(&self, to: impl Into<String>, addr: SocketAddr) {
        self.routes.write().insert(to.into(), addr);
    }

    /// Route every address without an explicit route to `addr`.
    pub fn set_default_route(&self, addr: SocketAddr) {
        *self.default_route.write() = Some(addr);
    }

    fn route_for(&self, to: &str) -> Option<SocketAddr> {
        if let Some(addr) = self.routes.read().get(to) {
            return Some(*addr);
        }
        *self.default_route.read()
    }

    /// A live connection to `addr`: round-robin over the pool, reviving
    /// dead slots by reconnecting (lazily — a dropped connection costs
    /// nothing until the next request needs its slot).
    fn checkout(&self, addr: SocketAddr) -> Result<Arc<Conn>, BusError> {
        let slot_count = self.config.pool_size.max(1);
        let slot_idx = (self.rr.fetch_add(1, Ordering::Relaxed) % slot_count as u64) as usize;
        {
            let mut pools = self.pools.lock();
            let pool = pools.entry(addr).or_insert_with(|| vec![None; slot_count]);
            if let Some(conn) = &pool[slot_idx] {
                if conn.alive() {
                    return Ok(Arc::clone(conn));
                }
            }
        }
        // Dial outside the pool lock: connect() can block for the full
        // OS connect timeout, and holding the lock would stall every
        // checkout to every address behind this one dial.
        let conn = Conn::open(addr, &self.config)?;
        let mut pools = self.pools.lock();
        let pool = pools.entry(addr).or_insert_with(|| vec![None; slot_count]);
        // Two callers may have dialled the same dead slot concurrently;
        // installing unconditionally keeps the slot live either way and
        // the loser's connection closes when its last user finishes.
        pool[slot_idx] = Some(Arc::clone(&conn));
        Ok(conn)
    }

    fn call_once(
        &self,
        addr: SocketAddr,
        to: &str,
        action: &str,
        request: &[u8],
    ) -> Result<Vec<u8>, BusError> {
        let conn = self.checkout(addr)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = ReplySlot::new();
        conn.pending.lock().insert(id, Arc::clone(&slot));

        let mut wire = Vec::with_capacity(request.len() + to.len() + action.len() + 32);
        encode_frame(
            &Frame {
                id,
                body: FrameBody::Request {
                    to: to.to_string(),
                    action: action.to_string(),
                    envelope: request.to_vec(),
                },
            },
            &mut wire,
        );
        let write_result = conn.writer.lock().write_all(&wire);
        if let Err(e) = write_result {
            conn.pending.lock().remove(&id);
            let err = if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut {
                BusError::Timeout(format!("write to {addr} did not complete: {e}"))
            } else {
                conn.fail_all(&BusError::ConnectionLost(format!("write to {addr} failed: {e}")));
                BusError::ConnectionLost(format!("write to {addr} failed: {e}"))
            };
            return Err(err);
        }
        let outcome = slot.wait(Instant::now() + self.config.reply_timeout);
        if outcome.is_err() {
            conn.pending.lock().remove(&id);
        }
        outcome
    }
}

impl Default for TcpTransport {
    fn default() -> TcpTransport {
        TcpTransport::new(TcpConfig::default())
    }
}

impl Transport for TcpTransport {
    fn call(
        &self,
        to: &str,
        action: &str,
        request: &[u8],
        response: &mut Vec<u8>,
    ) -> Result<(), BusError> {
        let addr = self
            .route_for(to)
            .ok_or_else(|| BusError::ConnectionLost(format!("no TCP route for '{to}'")))?;
        let bytes = self.call_once(addr, to, action, request)?;
        *response = bytes;
        Ok(())
    }

    fn routes(&self, to: &str) -> bool {
        self.route_for(to).is_some()
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

// ---------------------------------------------------------------------------
// Server side: accept loop feeding the bus registry
// ---------------------------------------------------------------------------

/// Server-side knobs for [`TcpServer`].
#[derive(Debug, Clone)]
pub struct TcpServerConfig {
    /// Server-wide cap on requests being served at once; a request over
    /// the cap is refused with an [`BusError::Overloaded`] error frame.
    /// `0` means uncapped.
    pub max_in_flight: usize,
    /// The retry-after hint carried by overload refusals.
    pub retry_after: Duration,
    /// Chaos knob for churn tests: close the connection instead of
    /// writing every Nth response (counted server-wide), *after* the
    /// request was dispatched. `0` disables. This is the worst-case
    /// failure for idempotency: the work happened, the reply is lost.
    pub drop_every: u64,
}

impl Default for TcpServerConfig {
    fn default() -> TcpServerConfig {
        TcpServerConfig { max_in_flight: 0, retry_after: Duration::from_millis(25), drop_every: 0 }
    }
}

struct ServerShared {
    bus: Weak<BusInner>,
    config: TcpServerConfig,
    metrics: Metrics,
    journal: Journal,
    shutdown: AtomicBool,
    in_flight: AtomicU64,
    responses: AtomicU64,
    accepted: AtomicU64,
}

/// A blocking accept-loop server: every accepted connection gets a
/// thread that reads request frames, serves them through the bus
/// registry (`Bus::serve_wire`), and writes response frames back in
/// order. Connection threads are marked as executor workers, so a
/// service handler calling back into the bus runs inline instead of
/// queueing — the PR 5 starvation-avoidance rule, kept.
pub struct TcpServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<thread::JoinHandle<()>>>,
    conn_threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl TcpServer {
    /// Bind with default configuration. `127.0.0.1:0` picks a free port;
    /// read it back with [`local_addr`](TcpServer::local_addr).
    pub fn bind(bus: &Bus, addr: impl ToSocketAddrs) -> std::io::Result<TcpServer> {
        TcpServer::bind_with(bus, addr, TcpServerConfig::default())
    }

    /// Bind with explicit configuration.
    pub fn bind_with(
        bus: &Bus,
        addr: impl ToSocketAddrs,
        config: TcpServerConfig,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            bus: bus.downgrade(),
            config,
            metrics: bus.obs().metrics.clone(),
            journal: bus.obs().journal.clone(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
        });
        let conn_threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conn_threads);
        let accept_thread = thread::Builder::new()
            .name(format!("dais-tcp-accept-{local_addr}"))
            .spawn(move || accept_loop(listener, accept_shared, accept_conns))?;
        Ok(TcpServer {
            shared,
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
            conn_threads,
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections accepted so far (churn tests count reconnects here).
    pub fn connections_accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain connection threads, and join them all.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
        let threads: Vec<thread::JoinHandle<()>> = self.conn_threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<ServerShared>,
    conn_threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let idx = shared.accepted.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let spawned = thread::Builder::new()
                    .name(format!("dais-tcp-conn-{idx}"))
                    .spawn(move || connection_loop(stream, conn_shared, idx));
                if let Ok(handle) = spawned {
                    conn_threads.lock().push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Serve one connection: frames are handled serially in arrival order
/// (pipelining across requests comes from the client opening several
/// connections and from multiple clients), which keeps per-connection
/// response ordering trivially correct.
fn connection_loop(mut stream: TcpStream, shared: Arc<ServerShared>, conn_idx: u64) {
    executor::mark_worker_thread();
    if stream.set_nodelay(true).is_err()
        || stream.set_read_timeout(Some(Duration::from_millis(50))).is_err()
    {
        return;
    }
    let label = format!("tcp#{conn_idx}");
    let mut reader = FrameReader::new();
    let mut scratch = [0u8; 64 * 1024];
    let mut wire = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let n = match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => return,
        };
        reader.feed(&scratch[..n]);
        loop {
            let frame = match reader.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                // Framing lost: nothing sensible can be written back.
                Err(_) => return,
            };
            let (to, action, envelope) = match frame.body {
                FrameBody::Request { to, action, envelope } => (to, action, envelope),
                // Only clients send non-request frames; drop the peer.
                _ => return,
            };
            let reply = serve_one(&shared, &label, &to, &action, &envelope, frame.id);
            let reply = match reply {
                Some(reply) => reply,
                // The bus behind this server is gone; the closed socket
                // tells the client (ConnectionLost, retryable).
                None => return,
            };
            let drop_every = shared.config.drop_every;
            if drop_every > 0 {
                let nth = shared.responses.fetch_add(1, Ordering::Relaxed) + 1;
                if nth.is_multiple_of(drop_every) {
                    // Chaos: the request WAS dispatched; its reply is
                    // dropped with the connection. Clients must treat
                    // this as ConnectionLost and apply idempotency
                    // rules, not assume the work never happened.
                    return;
                }
            }
            wire.clear();
            encode_frame(&reply, &mut wire);
            if stream.write_all(&wire).is_err() {
                return;
            }
        }
    }
}

/// Serve one request frame through the bus registry. Returns `None` only
/// when the bus has been dropped (the connection closes in response).
fn serve_one(
    shared: &ServerShared,
    label: &str,
    to: &str,
    action: &str,
    envelope: &[u8],
    id: u64,
) -> Option<Frame> {
    let config = &shared.config;
    if config.max_in_flight > 0 {
        let admitted = shared.in_flight.fetch_add(1, Ordering::AcqRel);
        if admitted >= config.max_in_flight as u64 {
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Some(Frame {
                id,
                body: FrameBody::Error(BusError::Overloaded {
                    endpoint: to.to_string(),
                    retry_after: config.retry_after,
                }),
            });
        }
    }
    let outcome = match shared.bus.upgrade() {
        Some(inner) => {
            let bus = Bus::from_inner(inner);
            let started = Instant::now();
            let mut out = Vec::new();
            // Server-side wire legs. The frame codec has not parsed the
            // envelope at this layer, so no trace ids are available yet;
            // the dispatch event the bus emits below joins the trace.
            shared.journal.event(event_names::WIRE_READ, 0, 0, envelope.len() as u64);
            let result = bus.serve_wire(to, action, envelope, &mut out);
            shared.metrics.observe_connection(label, started.elapsed().as_nanos() as u64);
            if result.is_ok() {
                shared.journal.event(event_names::WIRE_WRITE, 0, 0, out.len() as u64);
            }
            Some(match result {
                Ok(()) => Frame { id, body: FrameBody::Response(out) },
                Err(err) => Frame { id, body: FrameBody::Error(err) },
            })
        }
        None => None,
    };
    if config.max_in_flight > 0 {
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_frame(id: u64) -> Frame {
        Frame {
            id,
            body: FrameBody::Request {
                to: "bus://svc".into(),
                action: "urn:echo".into(),
                envelope: b"<env>payload</env>".to_vec(),
            },
        }
    }

    #[test]
    fn frames_round_trip_through_the_codec() {
        let frames = vec![
            request_frame(7),
            Frame { id: 8, body: FrameBody::Response(b"<env>ok</env>".to_vec()) },
            Frame { id: 9, body: FrameBody::Error(BusError::NoSuchEndpoint("bus://x".into())) },
            Frame { id: 10, body: FrameBody::Error(BusError::MalformedEnvelope("bad".into())) },
            Frame { id: 11, body: FrameBody::Error(BusError::Timeout("slow".into())) },
            Frame {
                id: 12,
                body: FrameBody::Error(BusError::Overloaded {
                    endpoint: "bus://busy".into(),
                    retry_after: Duration::from_millis(125),
                }),
            },
            Frame { id: 13, body: FrameBody::Error(BusError::ConnectionLost("gone".into())) },
        ];
        for frame in frames {
            let mut wire = Vec::new();
            encode_frame(&frame, &mut wire);
            let (decoded, used) = decode_frame(&wire).unwrap();
            assert_eq!(used, wire.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn torn_input_is_incomplete_not_malformed() {
        let mut wire = Vec::new();
        encode_frame(&request_frame(1), &mut wire);
        for cut in 0..wire.len() {
            match decode_frame(&wire[..cut]) {
                Err(FrameError::Incomplete { needed }) => assert!(needed > cut),
                other => panic!("cut at {cut} produced {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut wire = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        assert!(matches!(decode_frame(&wire), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn frame_reader_reassembles_byte_at_a_time() {
        let mut wire = Vec::new();
        encode_frame(&request_frame(3), &mut wire);
        encode_frame(&Frame { id: 4, body: FrameBody::Response(b"<r/>".to_vec()) }, &mut wire);
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        for byte in wire {
            reader.feed(&[byte]);
            while let Some(frame) = reader.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], request_frame(3));
        assert_eq!(reader.pending_bytes(), 0);
    }
}
