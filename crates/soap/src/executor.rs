//! The sharded bus executor: a bounded worker pool behind [`Bus::call`].
//!
//! With no executor installed the bus keeps its seed behaviour — every
//! call executes inline on the caller's thread ([`ExecMode::Inline`]).
//! Installing a [`BusExecutor`] ([`Bus::install_executor`]) switches the
//! bus to [`ExecMode::Queued`]: requests are admitted to **bounded
//! per-endpoint MPMC work queues** and executed by N worker threads, so
//! many consumers keep requests in flight at once and an overloaded
//! endpoint sheds work instead of melting.
//!
//! Admission control has two knobs, both per endpoint:
//!
//! * `queue_capacity` bounds the waiting room. A submit against a full
//!   queue is refused with [`BusError::Overloaded`] — carrying a
//!   retry-after hint the retry layer folds into its backoff — and
//!   billed to the `shed` counter.
//! * `max_in_flight` caps concurrent executions: workers leave an
//!   endpoint's queue untouched while that many of its requests are
//!   already running, so one hot endpoint cannot monopolise the pool.
//!
//! Endpoints are hashed onto shards (each with its own lock, condvar
//! and queue map) by a seeded hash; workers are assigned round-robin to
//! shards and pick among their shard's eligible queues with a
//! per-worker seeded RNG. With one worker the whole schedule is a pure
//! function of the seed, which is what the deterministic tests lean on.
//!
//! A nested call — a service handler calling back into the bus while
//! running on a worker — always executes inline on that worker thread:
//! queueing it could starve a finite pool into deadlock (every worker
//! blocked waiting for a job only another worker could run).

use crate::bus::{Bus, BusError, BusInner, Endpoint};
use crate::envelope::Envelope;
use crate::fault::Fault;
use crate::interceptor::Interceptor;
use dais_obs::names::{event_names, span_names};
use dais_obs::TraceContext;
use dais_util::rng::{mix2, SplitMix64};
use dais_util::sync::{Condvar, Mutex};
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a completed exchange resolves to — exactly the return type of
/// [`Bus::call`].
pub type CallOutcome = Result<Result<Envelope, Fault>, BusError>;

/// How a bus executes requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// No executor installed: every call runs on the caller's thread.
    Inline,
    /// An executor is installed: calls go through its bounded queues.
    Queued,
}

/// Admission-control and scheduling knobs for a [`BusExecutor`]. All
/// zero/empty values are normalised up to 1 at install time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Worker threads pulling from the queues.
    pub workers: usize,
    /// Queue-map shards (each with its own lock). `0` derives one shard
    /// per two workers, so every shard has multiple consumers.
    pub shards: usize,
    /// Per-endpoint bound on queued (not yet executing) requests; a
    /// submit beyond it sheds with [`BusError::Overloaded`].
    pub queue_capacity: usize,
    /// Per-endpoint cap on concurrently *executing* requests.
    pub max_in_flight: usize,
    /// The retry-after hint carried by [`BusError::Overloaded`].
    pub retry_after: Duration,
    /// Seed for shard assignment and worker scheduling; equal seeds
    /// give equal schedules for a serial caller.
    pub seed: u64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: 4,
            shards: 0,
            queue_capacity: 64,
            max_in_flight: 16,
            retry_after: Duration::from_micros(500),
            seed: 0,
        }
    }
}

impl ExecutorConfig {
    /// A default configuration with `workers` worker threads.
    pub fn new(workers: usize) -> ExecutorConfig {
        ExecutorConfig { workers, ..ExecutorConfig::default() }
    }

    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n;
        self
    }

    pub fn retry_after(mut self, d: Duration) -> Self {
        self.retry_after = d;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn normalised(mut self) -> Self {
        self.workers = self.workers.max(1);
        if self.shards == 0 {
            self.shards = (self.workers / 2).max(1);
        }
        self.shards = self.shards.min(self.workers).max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self.max_in_flight = self.max_in_flight.max(1);
        self
    }
}

// ---------------------------------------------------------------------------
// Reply slots and the Pending handle
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Slot {
    outcome: Mutex<Option<CallOutcome>>,
    cv: Condvar,
}

impl Slot {
    fn fulfil(&self, outcome: CallOutcome) {
        *self.outcome.lock() = Some(outcome);
        self.cv.notify_all();
    }
}

/// A request in flight on the pipelined path. Every admitted request's
/// handle resolves eventually: executed by a worker, or failed with
/// [`BusError::Timeout`] when the executor shuts down first.
pub struct Pending {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending").field("ready", &self.is_ready()).finish()
    }
}

impl Pending {
    /// A handle that is already resolved (inline execution).
    pub(crate) fn ready(outcome: CallOutcome) -> Pending {
        let slot = Slot::default();
        *slot.outcome.lock() = Some(outcome);
        Pending { slot: Arc::new(slot) }
    }

    fn unresolved() -> (Pending, Arc<Slot>) {
        let slot = Arc::new(Slot::default());
        (Pending { slot: Arc::clone(&slot) }, slot)
    }

    /// Has the exchange finished? Never blocks.
    pub fn is_ready(&self) -> bool {
        self.slot.outcome.lock().is_some()
    }

    /// Block until the exchange finishes and take its outcome.
    pub fn wait(self) -> CallOutcome {
        let mut guard = self.slot.outcome.lock();
        loop {
            if let Some(outcome) = guard.take() {
                return outcome;
            }
            guard = self.slot.cv.wait(guard);
        }
    }
}

// ---------------------------------------------------------------------------
// Work queues
// ---------------------------------------------------------------------------

struct Job {
    endpoint: Endpoint,
    chain: Arc<Vec<Arc<dyn Interceptor>>>,
    to: String,
    action: String,
    request: Envelope,
    /// The `bus.enqueue` span's context; the worker's `bus.execute`
    /// span joins the trace through it.
    enqueue_ctx: Option<TraceContext>,
    enqueued_at: Instant,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct EndpointQueue {
    jobs: VecDeque<Job>,
    executing: usize,
}

#[derive(Default)]
struct ShardState {
    queues: BTreeMap<String, EndpointQueue>,
}

#[derive(Default)]
struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

struct ExecShared {
    config: ExecutorConfig,
    shards: Vec<Shard>,
    shutdown: AtomicBool,
}

impl ExecShared {
    fn shard_of(&self, to: &str) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        to.hash(&mut h);
        (mix2(self.config.seed, h.finish()) % self.shards.len() as u64) as usize
    }
}

/// The worker pool. Owned by the bus it serves; workers hold a `Weak`
/// back-reference so dropping the last bus handle tears everything
/// down instead of leaking a keep-alive cycle.
pub struct BusExecutor {
    shared: Arc<ExecShared>,
    bus: Weak<BusInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl BusExecutor {
    /// Spawn the worker pool.
    pub(crate) fn start(config: ExecutorConfig, bus: Weak<BusInner>) -> BusExecutor {
        let config = config.normalised();
        let shards = (0..config.shards).map(|_| Shard::default()).collect();
        let shared = Arc::new(ExecShared { config, shards, shutdown: AtomicBool::new(false) });
        let workers = (0..config.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let bus = bus.clone();
                std::thread::spawn(move || worker_loop(shared, bus, w))
            })
            .collect();
        BusExecutor { shared, bus, workers: Mutex::new(workers) }
    }

    /// The normalised configuration the pool runs with.
    pub(crate) fn config(&self) -> ExecutorConfig {
        self.shared.config
    }

    /// Admit one request to its endpoint's queue. Returns the pending
    /// handle and the queue depth after admission, or hands the
    /// endpoint back with the refusal so the caller can bill the shed.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    pub(crate) fn submit(
        &self,
        bus: &Bus,
        endpoint: Endpoint,
        chain: Arc<Vec<Arc<dyn Interceptor>>>,
        to: &str,
        action: &str,
        request: &Envelope,
        enqueue_ctx: Option<TraceContext>,
    ) -> Result<(Pending, usize), (Endpoint, BusError)> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            let err = BusError::Timeout(format!("executor shut down; request to '{to}' refused"));
            return Err((endpoint, err));
        }
        let shard = &self.shared.shards[self.shared.shard_of(to)];
        let mut state = shard.state.lock();
        let queue = state.queues.entry(to.to_string()).or_default();
        if queue.jobs.len() >= self.shared.config.queue_capacity {
            bus.obs().journal.event_ctx(
                event_names::QUEUE_SHED,
                enqueue_ctx,
                queue.jobs.len() as u64,
            );
            let err = BusError::Overloaded {
                endpoint: to.to_string(),
                retry_after: self.shared.config.retry_after,
            };
            return Err((endpoint, err));
        }
        let (pending, slot) = Pending::unresolved();
        // Gauges move under the shard lock (dequeues do too), so the
        // depth counters can never transiently underflow.
        endpoint.stats().record_enqueued();
        bus.total_stats().record_enqueued();
        queue.jobs.push_back(Job {
            endpoint,
            chain,
            to: to.to_string(),
            action: action.to_string(),
            request: request.clone(),
            enqueue_ctx,
            enqueued_at: Instant::now(),
            slot,
        });
        let depth = queue.jobs.len();
        bus.obs().journal.event_ctx(event_names::QUEUE_ENQUEUE, enqueue_ctx, depth as u64);
        shard.cv.notify_one();
        Ok((pending, depth))
    }

    /// Stop the pool: signal shutdown, join every worker (except the
    /// calling thread, when a worker itself triggered the teardown),
    /// then fail whatever was still queued so no waiter blocks forever.
    pub(crate) fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for shard in &self.shared.shards {
            shard.cv.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers.lock());
        let me = std::thread::current().id();
        for handle in handles {
            if handle.thread().id() == me {
                continue;
            }
            let _ = handle.join();
        }
        let total = self.bus.upgrade();
        for shard in &self.shared.shards {
            let queues = std::mem::take(&mut shard.state.lock().queues);
            for (_, queue) in queues {
                for job in queue.jobs {
                    job.endpoint.stats().record_dequeued();
                    if let Some(inner) = &total {
                        Bus::from_inner(Arc::clone(inner)).total_stats().record_dequeued();
                    }
                    job.slot.fulfil(Err(BusError::Timeout(format!(
                        "executor shut down before the request to '{}' was executed",
                        job.to
                    ))));
                }
            }
        }
    }
}

impl Drop for BusExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Worker threads
// ---------------------------------------------------------------------------

thread_local! {
    static ON_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Is the current thread a bus-executor worker? Nested calls from a
/// worker execute inline (see the module docs).
pub(crate) fn on_worker_thread() -> bool {
    ON_WORKER.with(Cell::get)
}

/// Mark the current thread as a worker without it belonging to an
/// executor pool. Transport server connection threads set this so a
/// service handler that calls back into the bus runs inline instead of
/// queueing — the same starvation-avoidance rule the pool's own workers
/// follow.
pub(crate) fn mark_worker_thread() {
    ON_WORKER.with(|w| w.set(true));
}

/// Adopt the calling thread into the workers' inline-dispatch
/// discipline: bus calls made from it execute on this thread instead of
/// queueing onto the executor. A service handler that fans work out to
/// helper threads (e.g. a scatter over shards) must call this at the top
/// of each helper — the handler blocks joining them, so letting their
/// nested calls queue behind a finite worker pool could deadlock the
/// pool on itself.
pub fn adopt_worker_thread() {
    mark_worker_thread();
}

fn worker_loop(shared: Arc<ExecShared>, bus: Weak<BusInner>, worker_idx: usize) {
    ON_WORKER.with(|w| w.set(true));
    let mut rng = SplitMix64::new(mix2(shared.config.seed, worker_idx as u64 + 1));
    let shard = &shared.shards[worker_idx % shared.shards.len()];
    loop {
        let job = {
            let mut state = shard.state.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = pick_job(&mut state, &mut rng, shared.config.max_in_flight) {
                    // Leaving the queue: move the depth gauges while
                    // still holding the shard lock.
                    job.endpoint.stats().record_dequeued();
                    if let Some(inner) = bus.upgrade() {
                        Bus::from_inner(inner).total_stats().record_dequeued();
                    }
                    break job;
                }
                // Timed wait doubles as liveness: if every bus handle is
                // gone the weak upgrade fails and the worker retires.
                state = shard.cv.wait_timeout(state, Duration::from_millis(50)).0;
                if bus.strong_count() == 0 {
                    return;
                }
            }
        };
        execute(&bus, shard, job);
    }
}

/// Pick the next job in this shard: among endpoints with queued work
/// and spare in-flight budget, chosen by the worker's seeded RNG.
fn pick_job(state: &mut ShardState, rng: &mut SplitMix64, max_in_flight: usize) -> Option<Job> {
    let eligible: Vec<String> = state
        .queues
        .iter()
        .filter(|(_, q)| !q.jobs.is_empty() && q.executing < max_in_flight)
        .map(|(addr, _)| addr.clone())
        .collect();
    if eligible.is_empty() {
        return None;
    }
    let pick = rng.gen_range(0, eligible.len() as u64) as usize;
    let queue = state.queues.get_mut(&eligible[pick])?;
    let job = queue.jobs.pop_front()?;
    queue.executing += 1;
    Some(job)
}

/// Run one job through the single exchange path, resolve its handle,
/// and release the endpoint's in-flight budget.
fn execute(bus: &Weak<BusInner>, shard: &Shard, job: Job) {
    let outcome = match bus.upgrade() {
        Some(inner) => {
            let bus = Bus::from_inner(inner);
            let tracer = &bus.obs().tracer;
            let wait_ns = job.enqueued_at.elapsed().as_nanos() as u64;
            bus.obs().journal.event_ctx(event_names::QUEUE_DEQUEUE, job.enqueue_ctx, wait_ns);
            let mut span = tracer.child_span(span_names::BUS_EXECUTE, job.enqueue_ctx);
            if span.is_recording() {
                span.attr("to", &job.to);
                span.attr("action", &job.action);
                span.attr("queue_wait_ns", wait_ns);
            }
            bus.perform(&job.endpoint, &job.chain, &job.to, &job.action, &job.request, &mut span)
        }
        None => Err(BusError::Timeout(format!(
            "bus dropped before the request to '{}' was executed",
            job.to
        ))),
    };
    job.slot.fulfil(outcome);
    {
        let mut state = shard.state.lock();
        if let Some(queue) = state.queues.get_mut(&job.to) {
            queue.executing = queue.executing.saturating_sub(1);
        }
    }
    // An endpoint may have been waiting on its in-flight budget; every
    // worker on the shard gets a chance to re-scan.
    shard.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SoapDispatcher;
    use dais_xml::XmlElement;
    use std::sync::atomic::AtomicU32;

    fn echo_bus() -> Bus {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
        bus.register("bus://svc", Arc::new(d));
        bus
    }

    fn env(text: &str) -> Envelope {
        Envelope::with_body(XmlElement::new_local("m").with_text(text))
    }

    #[test]
    fn queued_call_round_trips_like_inline() {
        let bus = echo_bus();
        assert_eq!(bus.exec_mode(), ExecMode::Inline);
        bus.install_executor(ExecutorConfig::new(2).seed(7));
        assert_eq!(bus.exec_mode(), ExecMode::Queued);
        let out = bus.call("bus://svc", "urn:echo", &env("queued")).unwrap().unwrap();
        assert_eq!(out, env("queued"));
        let s = bus.stats();
        assert_eq!(s.messages, 1);
        assert_eq!(s.queue_peak, 1);
        assert_eq!(s.queue_depth, 0);
        bus.shutdown_executor();
        assert_eq!(bus.exec_mode(), ExecMode::Inline);
    }

    #[test]
    fn call_async_keeps_many_requests_in_flight() {
        let bus = echo_bus();
        bus.install_executor(ExecutorConfig::new(4).queue_capacity(64).seed(3));
        let pendings: Vec<Pending> = (0..32)
            .map(|i| bus.call_async("bus://svc", "urn:echo", &env(&format!("m{i}"))).unwrap())
            .collect();
        for (i, p) in pendings.into_iter().enumerate() {
            let out = p.wait().unwrap().unwrap();
            assert_eq!(out, env(&format!("m{i}")), "reply order matches submit order");
        }
        assert_eq!(bus.stats().messages, 32);
        bus.shutdown_executor();
    }

    #[test]
    fn call_async_without_executor_resolves_inline() {
        let bus = echo_bus();
        let pending = bus.call_async("bus://svc", "urn:echo", &env("now")).unwrap();
        assert!(pending.is_ready());
        assert_eq!(pending.wait().unwrap().unwrap(), env("now"));
    }

    #[test]
    fn full_queue_sheds_with_retry_after_hint() {
        let bus = Bus::new();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new(AtomicU32::new(0));
        let mut d = SoapDispatcher::new();
        {
            let gate = Arc::clone(&gate);
            let entered = Arc::clone(&entered);
            d.register("urn:block", move |req: &Envelope| {
                entered.fetch_add(1, Ordering::SeqCst);
                let mut open = gate.0.lock();
                while !*open {
                    open = gate.1.wait(open);
                }
                Ok(req.clone())
            });
        }
        bus.register("bus://slow", Arc::new(d));
        let hint = Duration::from_millis(3);
        bus.install_executor(
            ExecutorConfig::new(1).queue_capacity(2).max_in_flight(1).retry_after(hint).seed(1),
        );
        // First request occupies the single worker...
        let first = bus.call_async("bus://slow", "urn:block", &env("a")).unwrap();
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        // ...two more fill the queue to capacity...
        let queued: Vec<Pending> =
            (0..2).map(|_| bus.call_async("bus://slow", "urn:block", &env("b")).unwrap()).collect();
        assert_eq!(bus.endpoint_stats("bus://slow").queue_depth, 2);
        // ...and the next is shed with the configured hint.
        let err = bus.call_async("bus://slow", "urn:block", &env("c")).unwrap_err();
        assert_eq!(err, BusError::Overloaded { endpoint: "bus://slow".into(), retry_after: hint });
        let stats = bus.endpoint_stats("bus://slow");
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.queue_peak, 2);
        // Release the gate: everything admitted completes.
        *gate.0.lock() = true;
        gate.1.notify_all();
        assert!(first.wait().is_ok());
        for p in queued {
            assert!(p.wait().is_ok());
        }
        assert_eq!(bus.endpoint_stats("bus://slow").queue_depth, 0);
        bus.shutdown_executor();
    }

    #[test]
    fn shutdown_fails_undelivered_requests_instead_of_losing_them() {
        let bus = Bus::new();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new(AtomicU32::new(0));
        let mut d = SoapDispatcher::new();
        {
            let gate = Arc::clone(&gate);
            let entered = Arc::clone(&entered);
            d.register("urn:block", move |req: &Envelope| {
                entered.fetch_add(1, Ordering::SeqCst);
                let mut open = gate.0.lock();
                while !*open {
                    open = gate.1.wait(open);
                }
                Ok(req.clone())
            });
        }
        bus.register("bus://slow", Arc::new(d));
        bus.install_executor(ExecutorConfig::new(1).queue_capacity(8).max_in_flight(1).seed(2));
        let executing = bus.call_async("bus://slow", "urn:block", &env("x")).unwrap();
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let stuck = bus.call_async("bus://slow", "urn:block", &env("y")).unwrap();
        // Shutdown from another thread: it must join the worker, which
        // only finishes once the gate opens.
        let opener = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                *gate.0.lock() = true;
                gate.1.notify_all();
            })
        };
        bus.shutdown_executor();
        opener.join().ok();
        assert!(executing.wait().is_ok(), "in-flight request completed");
        assert!(matches!(stuck.wait(), Err(BusError::Timeout(_))), "queued request failed loudly");
    }

    #[test]
    fn nested_calls_from_a_handler_run_inline_and_do_not_deadlock() {
        let bus = Bus::new();
        let mut backend = SoapDispatcher::new();
        backend.register("urn:echo", |req: &Envelope| Ok(req.clone()));
        bus.register("bus://backend", Arc::new(backend));
        let mut front = SoapDispatcher::new();
        {
            let bus = bus.clone();
            front.register("urn:relay", move |req: &Envelope| {
                // Runs on the (single) worker; a queued nested call
                // would wait on ourselves forever.
                bus.call("bus://backend", "urn:echo", req)
                    .map_err(|e| Fault::server(e.to_string()))?
            });
        }
        bus.register("bus://front", Arc::new(front));
        bus.install_executor(ExecutorConfig::new(1).seed(5));
        let out = bus.call("bus://front", "urn:relay", &env("hop")).unwrap().unwrap();
        assert_eq!(out, env("hop"));
        assert_eq!(bus.stats().messages, 2, "both hops billed");
        bus.shutdown_executor();
    }

    #[test]
    fn same_seed_same_single_worker_schedule() {
        // With one worker and a serial submitter, completion order is a
        // pure function of the seed: replies arrive in submit order per
        // endpoint, and the queue gauges replay identically.
        let run = |seed: u64| -> Vec<String> {
            let bus = Bus::new();
            let mut d = SoapDispatcher::new();
            d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
            let svc = Arc::new(d);
            for addr in ["bus://a", "bus://b"] {
                bus.register(addr, svc.clone());
            }
            bus.install_executor(ExecutorConfig::new(1).queue_capacity(32).seed(seed));
            let pendings: Vec<(String, Pending)> = (0..12)
                .map(|i| {
                    let addr = if i % 2 == 0 { "bus://a" } else { "bus://b" };
                    let p = bus.call_async(addr, "urn:echo", &env(&format!("{i}"))).unwrap();
                    (format!("{addr}#{i}"), p)
                })
                .collect();
            let mut order = Vec::new();
            for (label, p) in pendings {
                p.wait().unwrap().unwrap();
                order.push(label);
            }
            bus.shutdown_executor();
            order
        };
        assert_eq!(run(0xDA15), run(0xDA15));
    }
}
