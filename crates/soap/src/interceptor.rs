//! Transport interceptors and deterministic fault injection.
//!
//! A [`Bus`](crate::bus::Bus) carries an ordered chain of
//! [`Interceptor`]s. Every call's serialised wire bytes pass through the
//! chain — request phase in registration order, response phase in
//! reverse — and each interceptor can wave the bytes through, rewrite
//! them, answer on the service's behalf, or kill the call with a
//! transport error. This is the seam where chaos lives: the bundled
//! [`FaultInjector`] drops, delays, corrupts, and synthesises WS-DAI
//! faults according to per-endpoint policies, driven entirely by a
//! caller-seeded RNG so a failure run replays byte-for-byte.
//!
//! An empty chain leaves [`Bus::call`](crate::bus::Bus::call) exactly as
//! it was: the bus takes one shared-pointer clone and skips the loop, so
//! the paper-figure experiments measure unchanged behaviour.

use crate::bus::BusError;
use crate::envelope::Envelope;
use crate::fault::{DaisFault, Fault};
use dais_util::rng::SplitMix64;
use dais_util::sync::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Identity of the call being intercepted.
#[derive(Debug, Clone, Copy)]
pub struct CallInfo<'a> {
    /// Logical bus address of the callee.
    pub to: &'a str,
    /// SOAP action URI.
    pub action: &'a str,
}

/// An interceptor's verdict on one direction of one call.
#[derive(Debug)]
pub enum Intercept {
    /// Let the bytes through untouched.
    Pass,
    /// Replace the bytes and continue down the chain.
    Tamper(Vec<u8>),
    /// Answer in the service's place: the bytes are the response wire
    /// image. On the request phase this skips the service entirely; on
    /// the response phase it replaces the response and stops the chain.
    Reply(Vec<u8>),
    /// Kill the call with a transport error.
    Abort(BusError),
}

/// A stage in the bus's transport chain. Both hooks default to
/// [`Intercept::Pass`], so an interceptor implements only the direction
/// it cares about.
pub trait Interceptor: Send + Sync {
    fn on_request(&self, _call: &CallInfo<'_>, _bytes: &[u8]) -> Intercept {
        Intercept::Pass
    }

    fn on_response(&self, _call: &CallInfo<'_>, _bytes: &[u8]) -> Intercept {
        Intercept::Pass
    }

    /// What this stage has injected so far — for the whole bus
    /// (`None`) or one endpoint address. The bus folds every stage's
    /// ledger into [`StatsSnapshot::fault_injection`]
    /// (`crate::bus::StatsSnapshot`), so one snapshot tells the whole
    /// story. Passive interceptors keep the default empty ledger.
    fn injection_ledger(&self, _endpoint: Option<&str>) -> InjectorSnapshot {
        InjectorSnapshot::default()
    }

    /// Zero the ledger; called by `Bus::reset_stats` so measurement
    /// epochs stay consistent with the traffic counters.
    fn reset_injection_ledger(&self) {}
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Per-endpoint chaos policy. Probabilities are drawn independently in a
/// fixed order — drop, busy, unavailable, corrupt, delay — and the first
/// gate that fires decides the call's fate (delay excepted: it lets the
/// call proceed after sleeping).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultPolicy {
    /// Swallow the request: the caller sees [`BusError::Timeout`].
    pub drop_probability: f64,
    /// Answer with a synthetic `ServiceBusyFault` envelope.
    pub busy_probability: f64,
    /// Answer with a synthetic `DataResourceUnavailableFault` envelope.
    pub unavailable_probability: f64,
    /// Mangle the request bytes so they no longer parse.
    pub corrupt_probability: f64,
    /// Stall the request before delivery.
    pub delay_probability: f64,
    /// Upper bound for an injected stall.
    pub max_delay: Duration,
}

impl FaultPolicy {
    pub fn drop(mut self, p: f64) -> Self {
        self.drop_probability = p;
        self
    }

    pub fn busy(mut self, p: f64) -> Self {
        self.busy_probability = p;
        self
    }

    pub fn unavailable(mut self, p: f64) -> Self {
        self.unavailable_probability = p;
        self
    }

    pub fn corrupt(mut self, p: f64) -> Self {
        self.corrupt_probability = p;
        self
    }

    pub fn delay(mut self, p: f64, max: Duration) -> Self {
        self.delay_probability = p;
        self.max_delay = max;
        self
    }

    fn is_noop(&self) -> bool {
        self.drop_probability <= 0.0
            && self.busy_probability <= 0.0
            && self.unavailable_probability <= 0.0
            && self.corrupt_probability <= 0.0
            && self.delay_probability <= 0.0
    }
}

/// What the injector has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectorSnapshot {
    pub drops: u64,
    pub busy: u64,
    pub unavailable: u64,
    pub corruptions: u64,
    pub delays: u64,
}

impl InjectorSnapshot {
    /// Every event the injector produced.
    pub fn total(&self) -> u64 {
        self.drops + self.busy + self.unavailable + self.corruptions + self.delays
    }

    /// Fold another ledger in (used by the bus to sum a chain).
    pub fn merge(&mut self, other: InjectorSnapshot) {
        self.drops += other.drops;
        self.busy += other.busy;
        self.unavailable += other.unavailable;
        self.corruptions += other.corruptions;
        self.delays += other.delays;
    }
}

/// Which gate fired, for ledger bookkeeping.
#[derive(Clone, Copy)]
enum InjectedKind {
    Drop,
    Busy,
    Unavailable,
    Corrupt,
    Delay,
}

struct InjectorInner {
    rng: Mutex<SplitMix64>,
    policies: RwLock<HashMap<String, FaultPolicy>>,
    default_policy: RwLock<Option<FaultPolicy>>,
    /// Per-endpoint injected-fault counts; the whole-bus ledger is the
    /// sum. Only touched when a gate actually fires, so the no-fault
    /// path never takes this lock.
    ledger: Mutex<BTreeMap<String, InjectorSnapshot>>,
}

/// A chaos interceptor: injects transport and service failures on the
/// request path according to [`FaultPolicy`]s, deterministically from a
/// seed. Cheap to clone (shared state), so callers keep a handle for
/// reading counters after handing one to the bus.
#[derive(Clone)]
pub struct FaultInjector {
    inner: Arc<InjectorInner>,
}

impl FaultInjector {
    /// An injector with no policies; `seed` fixes every future decision.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            inner: Arc::new(InjectorInner {
                rng: Mutex::new(SplitMix64::new(seed)),
                policies: RwLock::new(HashMap::new()),
                default_policy: RwLock::new(None),
                ledger: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    fn note(&self, endpoint: &str, kind: InjectedKind) {
        let mut ledger = self.inner.ledger.lock();
        let entry = ledger.entry(endpoint.to_string()).or_default();
        match kind {
            InjectedKind::Drop => entry.drops += 1,
            InjectedKind::Busy => entry.busy += 1,
            InjectedKind::Unavailable => entry.unavailable += 1,
            InjectedKind::Corrupt => entry.corruptions += 1,
            InjectedKind::Delay => entry.delays += 1,
        }
    }

    /// Set (or replace) the policy for one endpoint address.
    pub fn set_policy(&self, endpoint: impl Into<String>, policy: FaultPolicy) {
        self.inner.policies.write().insert(endpoint.into(), policy);
    }

    /// Policy applied to endpoints without their own entry.
    pub fn set_default_policy(&self, policy: FaultPolicy) {
        *self.inner.default_policy.write() = Some(policy);
    }

    /// Stop injecting everywhere (policies are kept; counters are kept).
    pub fn clear_default_policy(&self) {
        *self.inner.default_policy.write() = None;
    }

    /// Everything injected so far, summed across endpoints.
    pub fn snapshot(&self) -> InjectorSnapshot {
        let mut total = InjectorSnapshot::default();
        for entry in self.inner.ledger.lock().values() {
            total.merge(*entry);
        }
        total
    }

    /// What was injected against one endpoint address.
    pub fn endpoint_snapshot(&self, endpoint: &str) -> InjectorSnapshot {
        self.inner.ledger.lock().get(endpoint).copied().unwrap_or_default()
    }

    fn policy_for(&self, endpoint: &str) -> Option<FaultPolicy> {
        if let Some(p) = self.inner.policies.read().get(endpoint) {
            return Some(*p);
        }
        *self.inner.default_policy.read()
    }

    /// Serialised fault envelope for a synthetic service answer.
    fn synthetic_fault(kind: DaisFault, endpoint: &str) -> Vec<u8> {
        let fault = Fault::dais(kind, format!("injected by chaos policy for '{endpoint}'"));
        Envelope::with_body(fault.to_xml()).to_bytes()
    }

    /// Mangle wire bytes so they are guaranteed not to parse: truncate
    /// to half and append an unbalanced tag.
    fn corrupt(bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes[..bytes.len() / 2].to_vec();
        out.extend_from_slice(b"<chaos-corrupted>");
        out
    }
}

impl Interceptor for FaultInjector {
    fn on_request(&self, call: &CallInfo<'_>, bytes: &[u8]) -> Intercept {
        let Some(policy) = self.policy_for(call.to) else { return Intercept::Pass };
        if policy.is_noop() {
            return Intercept::Pass;
        }
        // All decisions come off one RNG stream under a lock, in a fixed
        // gate order, so a seed fully determines the fault schedule for
        // a serial caller.
        let mut rng = self.inner.rng.lock();
        if rng.gen_bool(policy.drop_probability) {
            drop(rng);
            self.note(call.to, InjectedKind::Drop);
            return Intercept::Abort(BusError::Timeout(format!(
                "injected timeout calling '{}'",
                call.to
            )));
        }
        if rng.gen_bool(policy.busy_probability) {
            drop(rng);
            self.note(call.to, InjectedKind::Busy);
            return Intercept::Reply(Self::synthetic_fault(DaisFault::ServiceBusy, call.to));
        }
        if rng.gen_bool(policy.unavailable_probability) {
            drop(rng);
            self.note(call.to, InjectedKind::Unavailable);
            return Intercept::Reply(Self::synthetic_fault(
                DaisFault::DataResourceUnavailable,
                call.to,
            ));
        }
        if rng.gen_bool(policy.corrupt_probability) {
            drop(rng);
            self.note(call.to, InjectedKind::Corrupt);
            return Intercept::Tamper(Self::corrupt(bytes));
        }
        if rng.gen_bool(policy.delay_probability) {
            let micros = policy.max_delay.as_micros() as u64;
            let stall = if micros == 0 { 0 } else { rng.gen_range(0, micros + 1) };
            drop(rng); // never sleep while holding the stream
            self.note(call.to, InjectedKind::Delay);
            if stall > 0 {
                std::thread::sleep(Duration::from_micros(stall));
            }
        }
        Intercept::Pass
    }

    fn injection_ledger(&self, endpoint: Option<&str>) -> InjectorSnapshot {
        match endpoint {
            None => self.snapshot(),
            Some(address) => self.endpoint_snapshot(address),
        }
    }

    fn reset_injection_ledger(&self) {
        self.inner.ledger.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info<'a>(to: &'a str) -> CallInfo<'a> {
        CallInfo { to, action: "urn:test" }
    }

    fn always(p: fn(FaultPolicy) -> FaultPolicy) -> FaultPolicy {
        p(FaultPolicy::default())
    }

    #[test]
    fn no_policy_means_pass() {
        let inj = FaultInjector::new(1);
        assert!(matches!(inj.on_request(&info("bus://x"), b"<e/>"), Intercept::Pass));
        assert_eq!(inj.snapshot(), InjectorSnapshot::default());
    }

    #[test]
    fn drop_policy_aborts_with_timeout() {
        let inj = FaultInjector::new(1);
        inj.set_policy("bus://x", always(|p| p.drop(1.0)));
        match inj.on_request(&info("bus://x"), b"<e/>") {
            Intercept::Abort(BusError::Timeout(m)) => assert!(m.contains("bus://x")),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(inj.snapshot().drops, 1);
    }

    #[test]
    fn busy_policy_replies_with_fault_envelope() {
        let inj = FaultInjector::new(1);
        inj.set_default_policy(always(|p| p.busy(1.0)));
        match inj.on_request(&info("bus://y"), b"<e/>") {
            Intercept::Reply(bytes) => {
                let env = Envelope::from_bytes(&bytes).unwrap();
                let fault = Fault::from_xml(env.payload().unwrap()).unwrap();
                assert!(fault.is(DaisFault::ServiceBusy));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(inj.snapshot().busy, 1);
    }

    #[test]
    fn corruption_defeats_the_parser() {
        let inj = FaultInjector::new(1);
        inj.set_policy("bus://x", always(|p| p.corrupt(1.0)));
        let original = Envelope::default().to_bytes();
        match inj.on_request(&info("bus://x"), &original) {
            Intercept::Tamper(bytes) => {
                assert!(Envelope::from_bytes(&bytes).is_err());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn per_endpoint_policy_shadows_default() {
        let inj = FaultInjector::new(1);
        inj.set_default_policy(always(|p| p.drop(1.0)));
        inj.set_policy("bus://safe", FaultPolicy::default());
        assert!(matches!(inj.on_request(&info("bus://safe"), b"<e/>"), Intercept::Pass));
        assert!(matches!(
            inj.on_request(&info("bus://other"), b"<e/>"),
            Intercept::Abort(BusError::Timeout(_))
        ));
    }

    #[test]
    fn ledger_tracks_per_endpoint_counts_and_resets() {
        let inj = FaultInjector::new(1);
        inj.set_policy("bus://a", always(|p| p.drop(1.0)));
        inj.set_policy("bus://b", always(|p| p.busy(1.0)));
        inj.on_request(&info("bus://a"), b"<e/>");
        inj.on_request(&info("bus://a"), b"<e/>");
        inj.on_request(&info("bus://b"), b"<e/>");
        assert_eq!(inj.endpoint_snapshot("bus://a").drops, 2);
        assert_eq!(inj.endpoint_snapshot("bus://b").busy, 1);
        assert_eq!(inj.snapshot().total(), 3);
        // The Interceptor-trait view agrees with the inherent accessors.
        assert_eq!(inj.injection_ledger(Some("bus://a")), inj.endpoint_snapshot("bus://a"));
        assert_eq!(inj.injection_ledger(None), inj.snapshot());
        inj.reset_injection_ledger();
        assert_eq!(inj.snapshot(), InjectorSnapshot::default());
    }

    #[test]
    fn same_seed_same_schedule() {
        let schedule = |seed: u64| -> Vec<u8> {
            let inj = FaultInjector::new(seed);
            inj.set_default_policy(always(|p| p.drop(0.3).busy(0.3).corrupt(0.3)));
            (0..64)
                .map(|_| match inj.on_request(&info("bus://x"), b"<e/>") {
                    Intercept::Pass => 0,
                    Intercept::Tamper(_) => 1,
                    Intercept::Reply(_) => 2,
                    Intercept::Abort(_) => 3,
                })
                .collect()
        };
        assert_eq!(schedule(0xC0FFEE), schedule(0xC0FFEE));
        assert_ne!(schedule(0xC0FFEE), schedule(0xDECAF)); // astronomically unlikely to tie
    }
}
