//! Transport-level stress: the bus under concurrent registration,
//! unregistration and traffic, statistics coherence, and the
//! interceptor chain under fire from many threads.

use dais_soap::bus::{Bus, BusError};
use dais_soap::envelope::Envelope;
use dais_soap::fault::Fault;
use dais_soap::interceptor::{CallInfo, FaultInjector, FaultPolicy, Intercept, Interceptor};
use dais_soap::service::SoapDispatcher;
use dais_xml::XmlElement;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn echo_dispatcher() -> Arc<SoapDispatcher> {
    let mut d = SoapDispatcher::new();
    d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
    d.register("urn:fail", |_: &Envelope| Err(Fault::server("nope")));
    Arc::new(d)
}

#[test]
fn stats_are_exact_under_concurrency() {
    let bus = Bus::new();
    bus.register("bus://s", echo_dispatcher());
    let threads = 8;
    let per_thread = 50;
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let bus = bus.clone();
            std::thread::spawn(move || {
                for j in 0..per_thread {
                    let action = if (i + j) % 5 == 0 { "urn:fail" } else { "urn:echo" };
                    let env = Envelope::with_body(
                        XmlElement::new_local("m").with_text(format!("{i}:{j}")),
                    );
                    let _ = bus.call("bus://s", action, &env).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = bus.stats();
    assert_eq!(s.messages, (threads * per_thread) as u64);
    let expected_faults = (0..threads)
        .flat_map(|i| (0..per_thread).map(move |j| (i + j) % 5 == 0))
        .filter(|x| *x)
        .count();
    assert_eq!(s.faults, expected_faults as u64);
    assert_eq!(bus.endpoint_stats("bus://s").messages, s.messages);
}

#[test]
fn register_unregister_race_is_safe() {
    let bus = Bus::new();
    bus.register("bus://flap", echo_dispatcher());
    let flapper = {
        let bus = bus.clone();
        std::thread::spawn(move || {
            for _ in 0..100 {
                bus.unregister("bus://flap");
                bus.register("bus://flap", echo_dispatcher());
            }
        })
    };
    let caller = {
        let bus = bus.clone();
        std::thread::spawn(move || {
            let mut ok = 0;
            let mut gone = 0;
            let attempt = |ok: &mut u32, gone: &mut u32| {
                match bus.call(
                    "bus://flap",
                    "urn:echo",
                    &Envelope::with_body(XmlElement::new_local("x")),
                ) {
                    Ok(Ok(_)) => *ok += 1,
                    Ok(Err(_)) => panic!("echo cannot fault"),
                    Err(_) => *gone += 1, // transiently unregistered: fine
                }
            };
            for _ in 0..200 {
                attempt(&mut ok, &mut gone);
            }
            // Failing fast is cheap, so a caller preempted inside one
            // unregistered window can burn every attempt there. The
            // flapper always leaves the endpoint registered when it
            // exits, so insisting on one delivery terminates.
            while ok == 0 {
                std::thread::yield_now();
                attempt(&mut ok, &mut gone);
            }
            (ok, gone)
        })
    };
    flapper.join().unwrap();
    let (ok, gone) = caller.join().unwrap();
    assert!(ok + gone >= 200);
    assert!(ok > 0, "some calls must get through");
}

#[test]
fn many_endpoints() {
    let bus = Bus::new();
    for i in 0..200 {
        bus.register(format!("bus://svc{i}"), echo_dispatcher());
    }
    assert_eq!(bus.addresses().len(), 200);
    for i in (0..200).step_by(17) {
        let out = bus
            .call(
                &format!("bus://svc{i}"),
                "urn:echo",
                &Envelope::with_body(XmlElement::new_local("ping")),
            )
            .unwrap()
            .unwrap();
        assert_eq!(out.payload().unwrap().name.local, "ping");
    }
}

/// Counts every byte that passes each way — a pure observer.
#[derive(Default)]
struct Meter {
    requests: AtomicU64,
    responses: AtomicU64,
}

impl Interceptor for Meter {
    fn on_request(&self, _: &CallInfo<'_>, _: &[u8]) -> Intercept {
        self.requests.fetch_add(1, Ordering::Relaxed);
        Intercept::Pass
    }

    fn on_response(&self, _: &CallInfo<'_>, _: &[u8]) -> Intercept {
        self.responses.fetch_add(1, Ordering::Relaxed);
        Intercept::Pass
    }
}

#[test]
fn interceptor_chain_is_exact_under_concurrency() {
    let bus = Bus::new();
    bus.register("bus://s", echo_dispatcher());
    let outer = Arc::new(Meter::default());
    let injector = FaultInjector::new(0x57E55);
    injector.set_policy("bus://s", FaultPolicy::default().drop(0.2).busy(0.2).corrupt(0.2));
    let inner = Arc::new(Meter::default());
    // Observer / chaos / observer: the outer meter sees every call, the
    // inner only those the injector lets through to the service.
    bus.add_interceptor(outer.clone());
    bus.add_interceptor(Arc::new(injector.clone()));
    bus.add_interceptor(inner.clone());

    let threads = 8;
    let per_thread = 100;
    let outcomes: Vec<(u64, u64, u64, u64)> = (0..threads)
        .map(|i| {
            let bus = bus.clone();
            std::thread::spawn(move || {
                let (mut ok, mut timeouts, mut malformed, mut busy) = (0u64, 0u64, 0u64, 0u64);
                for j in 0..per_thread {
                    let env = Envelope::with_body(
                        XmlElement::new_local("m").with_text(format!("{i}:{j}")),
                    );
                    match bus.call("bus://s", "urn:echo", &env) {
                        Ok(Ok(_)) => ok += 1,
                        Ok(Err(_)) => busy += 1,
                        Err(BusError::Timeout(_)) => timeouts += 1,
                        Err(BusError::MalformedEnvelope(_)) => malformed += 1,
                        Err(other) => panic!("unexpected {other}"),
                    }
                }
                (ok, timeouts, malformed, busy)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    let total = (threads * per_thread) as u64;
    let ok: u64 = outcomes.iter().map(|o| o.0).sum();
    let timeouts: u64 = outcomes.iter().map(|o| o.1).sum();
    let malformed: u64 = outcomes.iter().map(|o| o.2).sum();
    let busy: u64 = outcomes.iter().map(|o| o.3).sum();
    assert_eq!(ok + timeouts + malformed + busy, total);

    // No event lost or double-counted anywhere in the stack:
    // the injector's own ledger matches caller-observed outcomes...
    let inj = injector.snapshot();
    assert_eq!(inj.drops, timeouts);
    assert_eq!(inj.corruptions, malformed);
    assert_eq!(inj.busy, busy);
    assert_eq!(inj.unavailable + inj.delays, 0);
    // ...the bus counted exactly one interference per injector event...
    let s = bus.stats();
    assert_eq!(s.injected, inj.total());
    assert_eq!(s.messages, total);
    assert_eq!(s.faults, busy);
    assert_eq!(bus.endpoint_stats("bus://s").messages, total);
    // ...and the meters bracket the injector correctly: every call hits
    // the outer request hook; only uninjured calls reach the inner one.
    assert_eq!(outer.requests.load(Ordering::Relaxed), total);
    assert_eq!(inner.requests.load(Ordering::Relaxed), ok + malformed);
    // Responses: the inner meter sees real service responses (including
    // ones that then fail to parse — none do here); the outer sees every
    // response that came back at all (service or synthetic).
    assert_eq!(inner.responses.load(Ordering::Relaxed), ok);
    assert_eq!(outer.responses.load(Ordering::Relaxed), ok + busy);
}

#[test]
fn large_payloads_roundtrip() {
    let bus = Bus::new();
    bus.register("bus://big", echo_dispatcher());
    let mut body = XmlElement::new_local("blob");
    body.push_text("y".repeat(2_000_000));
    let env = Envelope::with_body(body);
    let out = bus.call("bus://big", "urn:echo", &env).unwrap().unwrap();
    assert_eq!(out.payload().unwrap().text().len(), 2_000_000);
    assert!(bus.stats().request_bytes >= 2_000_000);
}
