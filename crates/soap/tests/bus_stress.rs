//! Transport-level stress: the bus under concurrent registration,
//! unregistration and traffic, plus statistics coherence.

use dais_soap::bus::Bus;
use dais_soap::envelope::Envelope;
use dais_soap::fault::Fault;
use dais_soap::service::SoapDispatcher;
use dais_xml::XmlElement;
use std::sync::Arc;

fn echo_dispatcher() -> Arc<SoapDispatcher> {
    let mut d = SoapDispatcher::new();
    d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
    d.register("urn:fail", |_: &Envelope| Err(Fault::server("nope")));
    Arc::new(d)
}

#[test]
fn stats_are_exact_under_concurrency() {
    let bus = Bus::new();
    bus.register("bus://s", echo_dispatcher());
    let threads = 8;
    let per_thread = 50;
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let bus = bus.clone();
            std::thread::spawn(move || {
                for j in 0..per_thread {
                    let action = if (i + j) % 5 == 0 { "urn:fail" } else { "urn:echo" };
                    let env = Envelope::with_body(
                        XmlElement::new_local("m").with_text(format!("{i}:{j}")),
                    );
                    let _ = bus.call("bus://s", action, &env).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = bus.stats();
    assert_eq!(s.messages, (threads * per_thread) as u64);
    let expected_faults =
        (0..threads).flat_map(|i| (0..per_thread).map(move |j| (i + j) % 5 == 0)).filter(|x| *x).count();
    assert_eq!(s.faults, expected_faults as u64);
    assert_eq!(bus.endpoint_stats("bus://s").messages, s.messages);
}

#[test]
fn register_unregister_race_is_safe() {
    let bus = Bus::new();
    bus.register("bus://flap", echo_dispatcher());
    let flapper = {
        let bus = bus.clone();
        std::thread::spawn(move || {
            for _ in 0..100 {
                bus.unregister("bus://flap");
                bus.register("bus://flap", echo_dispatcher());
            }
        })
    };
    let caller = {
        let bus = bus.clone();
        std::thread::spawn(move || {
            let mut ok = 0;
            let mut gone = 0;
            for _ in 0..200 {
                match bus.call(
                    "bus://flap",
                    "urn:echo",
                    &Envelope::with_body(XmlElement::new_local("x")),
                ) {
                    Ok(Ok(_)) => ok += 1,
                    Ok(Err(_)) => panic!("echo cannot fault"),
                    Err(_) => gone += 1, // transiently unregistered: fine
                }
            }
            (ok, gone)
        })
    };
    flapper.join().unwrap();
    let (ok, gone) = caller.join().unwrap();
    assert_eq!(ok + gone, 200);
    assert!(ok > 0, "some calls must get through");
}

#[test]
fn many_endpoints() {
    let bus = Bus::new();
    for i in 0..200 {
        bus.register(format!("bus://svc{i}"), echo_dispatcher());
    }
    assert_eq!(bus.addresses().len(), 200);
    for i in (0..200).step_by(17) {
        let out = bus
            .call(
                &format!("bus://svc{i}"),
                "urn:echo",
                &Envelope::with_body(XmlElement::new_local("ping")),
            )
            .unwrap()
            .unwrap();
        assert_eq!(out.payload().unwrap().name.local, "ping");
    }
}

#[test]
fn large_payloads_roundtrip() {
    let bus = Bus::new();
    bus.register("bus://big", echo_dispatcher());
    let mut body = XmlElement::new_local("blob");
    body.push_text("y".repeat(2_000_000));
    let env = Envelope::with_body(body);
    let out = bus.call("bus://big", "urn:echo", &env).unwrap().unwrap();
    assert_eq!(out.payload().unwrap().text().len(), 2_000_000);
    assert!(bus.stats().request_bytes >= 2_000_000);
}
