//! Property-based tests of the retry layer's backoff schedule, driven
//! by the in-repo mini property harness (`dais_util::prop`); failing
//! cases print a replay seed.
//!
//! The invariants under test, for *arbitrary* policies:
//! * a client never sends more than `max_attempts` times;
//! * pauses are monotone non-decreasing and never exceed `max_delay`;
//! * the pauses actually slept sum to at most `deadline`.

use dais_soap::envelope::Envelope;
use dais_soap::fault::{DaisFault, Fault};
use dais_soap::retry::{IdempotencySet, RetryConfig, RetryPolicy};
use dais_soap::service::SoapDispatcher;
use dais_soap::{Bus, ServiceClient};
use dais_util::prop::{run_cases, Gen};
use dais_xml::XmlElement;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn arb_policy(g: &mut Gen) -> RetryPolicy {
    RetryPolicy::new(g.u64_in(1, 12) as u32)
        .base_delay(Duration::from_nanos(g.u64_in(0, 2_000_000_000)))
        .max_delay(Duration::from_nanos(g.u64_in(0, 4_000_000_000)))
        .deadline(Duration::from_nanos(g.u64_in(0, 8_000_000_000)))
        .jitter_seed(g.rng().next_u64())
}

/// An always-busy service plus a counter of how often it was reached.
fn busy_bus() -> (Bus, Arc<AtomicU32>) {
    let bus = Bus::new();
    let hits = Arc::new(AtomicU32::new(0));
    let mut d = SoapDispatcher::new();
    let h = hits.clone();
    d.register("urn:read", move |_: &Envelope| {
        h.fetch_add(1, Ordering::SeqCst);
        Err(Fault::dais(DaisFault::ServiceBusy, "always busy"))
    });
    bus.register("bus://busy", Arc::new(d));
    (bus, hits)
}

/// A client whose sleeps are recorded instead of slept.
fn recording_client(bus: Bus, policy: RetryPolicy) -> (ServiceClient, Arc<Mutex<Vec<Duration>>>) {
    let sleeps: Arc<Mutex<Vec<Duration>>> = Arc::default();
    let recorder = sleeps.clone();
    let config = RetryConfig::new(policy, IdempotencySet::new(["urn:read"]))
        .with_sleep(Arc::new(move |d| recorder.lock().unwrap().push(d)));
    (ServiceClient::new(bus, "bus://busy").with_retry(config), sleeps)
}

#[test]
fn schedule_is_monotone_and_capped_for_arbitrary_policies() {
    run_cases("schedule_monotone_capped", 256, 0x5C4E, |g| {
        let policy = arb_policy(g);
        let schedule = policy.backoff_schedule();
        assert_eq!(schedule.len(), policy.max_attempts as usize - 1);
        for pair in schedule.windows(2) {
            assert!(pair[1] >= pair[0], "{policy:?}: {schedule:?} not monotone");
        }
        for d in &schedule {
            assert!(*d <= policy.max_delay, "{policy:?}: pause {d:?} above cap");
        }
    });
}

#[test]
fn schedule_survives_extreme_parameters() {
    // Hand-picked corners the random sweep may miss: saturating growth,
    // zero base, zero cap, one attempt.
    for policy in [
        RetryPolicy::new(200).base_delay(Duration::from_secs(10_000)),
        RetryPolicy::new(64).base_delay(Duration::from_nanos(1)).max_delay(Duration::MAX),
        RetryPolicy::new(8).base_delay(Duration::ZERO),
        RetryPolicy::new(8).max_delay(Duration::ZERO),
        RetryPolicy::new(1),
    ] {
        let schedule = policy.backoff_schedule();
        for pair in schedule.windows(2) {
            assert!(pair[1] >= pair[0], "{policy:?}: {schedule:?} not monotone");
        }
        for d in &schedule {
            assert!(*d <= policy.max_delay);
        }
    }
}

#[test]
fn attempts_never_exceed_the_policy_maximum() {
    run_cases("attempts_bounded", 48, 0xA77E, |g| {
        let policy = arb_policy(g);
        let (bus, hits) = busy_bus();
        let (client, sleeps) = recording_client(bus.clone(), policy);
        client.request("urn:read", XmlElement::new_local("q")).unwrap_err();
        let attempts = hits.load(Ordering::SeqCst);
        assert!(attempts >= 1);
        assert!(attempts <= policy.max_attempts, "{policy:?}: {attempts} attempts");
        // One pause per re-send, and the bus agrees on the re-send count.
        assert_eq!(sleeps.lock().unwrap().len() as u32, attempts - 1);
        assert_eq!(bus.stats().retries, u64::from(attempts) - 1);
    });
}

#[test]
fn total_sleep_stays_within_the_deadline() {
    run_cases("deadline_budget", 48, 0xDEAD, |g| {
        let policy = arb_policy(g);
        let (bus, _) = busy_bus();
        let (client, sleeps) = recording_client(bus, policy);
        client.request("urn:read", XmlElement::new_local("q")).unwrap_err();
        let total: Duration = sleeps.lock().unwrap().iter().sum();
        assert!(total <= policy.deadline, "{policy:?}: slept {total:?}");
    });
}

#[test]
fn equal_policies_sleep_identically() {
    run_cases("schedule_deterministic", 24, 0x1DE0, |g| {
        let policy = arb_policy(g);
        let observe = || {
            let (bus, _) = busy_bus();
            let (client, sleeps) = recording_client(bus, policy);
            client.request("urn:read", XmlElement::new_local("q")).unwrap_err();
            let v = sleeps.lock().unwrap().clone();
            v
        };
        assert_eq!(observe(), observe());
    });
}
