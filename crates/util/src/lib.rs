//! # dais-util
//!
//! Dependency-free building blocks shared across the DAIS workspace.
//!
//! The build environment has no access to crates.io, so the handful of
//! external utility crates the stack would normally lean on are realised
//! here instead:
//!
//! - [`sync`] — [`RwLock`]/[`Mutex`] with the `parking_lot` calling
//!   convention (guards returned directly, poisoning absorbed) over the
//!   std primitives.
//! - [`rng`] — [`SplitMix64`], a tiny deterministic PRNG, in place of
//!   `rand`. Every chaos/jitter decision in the stack draws from it so
//!   runs are reproducible from a seed.
//! - [`prop`] — a miniature property-testing harness in place of
//!   `proptest`: seeded case generation with per-case replay seeds.
//! - [`intern`] — a global lock-free-read string interner ([`IStr`])
//!   for the recurring wire vocabulary, in place of `string_cache`.
//! - [`pool`] — thread-local reusable byte buffers ([`PooledBuf`]) for
//!   the serialise/parse hot path, in place of `bytes`-style pooling.

pub mod intern;
#[cfg(debug_assertions)]
pub mod lockorder;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod sync;

pub use intern::{intern, IStr};
pub use pool::PooledBuf;
pub use prop::{run_cases, Gen};
pub use rng::SplitMix64;
pub use sync::{Mutex, RwLock};
