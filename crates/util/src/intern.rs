//! A global, lock-free-read string interner for the wire vocabulary.
//!
//! DAIS messages re-use a small, fixed vocabulary — a dozen namespace
//! URIs and a few dozen element/attribute local names — on every single
//! envelope. Re-allocating those strings for every parsed element is the
//! dominant allocation cost of the wire path, so the parser (and any
//! builder) routes name strings through [`intern`]: well-known strings
//! come back as clones of one shared [`IStr`] (a refcount bump, no
//! allocation), unknown strings fall through to a fresh allocation.
//!
//! The table is built once on first use inside a [`OnceLock`]; after
//! initialisation every lookup is a read of an immutable map — no lock
//! is ever taken on the hot path.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// An immutable, cheaply-cloneable string: `Arc<str>` with string-like
/// equality, ordering, hashing and display. Cloning never allocates.
#[derive(Clone)]
pub struct IStr(Arc<str>);

impl IStr {
    /// The string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Two `IStr`s sharing one allocation (the fast path interning gives
    /// every well-known name). Used by tests; equality itself is by
    /// content with a pointer-equality fast path.
    pub fn ptr_eq(a: &IStr, b: &IStr) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Deref for IStr {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl Default for IStr {
    fn default() -> Self {
        intern("")
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl PartialEq for IStr {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for IStr {}

impl PartialOrd for IStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IStr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl std::hash::Hash for IStr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Matches `str`'s hash so `Borrow<str>` map lookups work.
        self.0.hash(state)
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<IStr> for str {
    fn eq(&self, other: &IStr) -> bool {
        self == &*other.0
    }
}

impl PartialEq<IStr> for &str {
    fn eq(&self, other: &IStr) -> bool {
        *self == &*other.0
    }
}

impl PartialEq<String> for IStr {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> IStr {
        intern(s)
    }
}

impl From<&String> for IStr {
    fn from(s: &String) -> IStr {
        intern(s)
    }
}

impl From<String> for IStr {
    fn from(s: String) -> IStr {
        // Check the table first: handing back the shared Arc beats
        // keeping the caller's allocation alive.
        if let Some(hit) = table().get(s.as_str()) {
            return hit.clone();
        }
        IStr(Arc::from(s))
    }
}

impl From<IStr> for String {
    fn from(s: IStr) -> String {
        s.as_str().to_string()
    }
}

/// Intern a string: well-known wire vocabulary comes back `Arc`-shared
/// (no allocation), anything else is freshly allocated.
pub fn intern(s: &str) -> IStr {
    match table().get(s) {
        Some(hit) => hit.clone(),
        None => IStr(Arc::from(s)),
    }
}

/// True when `s` is in the well-known table (diagnostics/tests).
pub fn is_interned(s: &str) -> bool {
    table().contains_key(s)
}

fn table() -> &'static HashMap<&'static str, IStr> {
    static TABLE: OnceLock<HashMap<&'static str, IStr>> = OnceLock::new();
    TABLE.get_or_init(|| WELL_KNOWN.iter().map(|&s| (s, IStr(Arc::from(s)))).collect())
}

/// The wire vocabulary: namespace URIs, preferred prefixes, and the
/// recurring element/attribute local names of the WS-DAI family
/// (SOAP 1.1, WS-Addressing, WS-DAI/DAIR/DAIX, WSRF, WebRowSet).
/// Unknown names still intern — they just pay one allocation.
const WELL_KNOWN: &[&str] = &[
    // The empty string: "no namespace" / "no prefix".
    "",
    // Namespace URIs.
    "http://docs.oasis-open.org/wsrf/rl-2",
    "http://docs.oasis-open.org/wsrf/rp-2",
    "http://java.sun.com/xml/ns/jdbc",
    "http://schemas.dmtf.org/wbem/wscim/1/cim-schema/2",
    "http://schemas.xmlsoap.org/soap/envelope/",
    "http://www.ggf.org/namespaces/2005/12/WS-DAI",
    "http://www.ggf.org/namespaces/2005/12/WS-DAIR",
    "http://www.ggf.org/namespaces/2005/12/WS-DAIX",
    "http://www.w3.org/2005/08/addressing",
    "http://www.w3.org/XML/1998/namespace",
    // Preferred prefixes.
    "cim",
    "soap",
    "wrs",
    "wsa",
    "wsdai",
    "wsdair",
    "wsdaix",
    "wsrf-rl",
    "wsrf-rp",
    "xml",
    // SOAP envelope structure.
    "Envelope",
    "Header",
    "Body",
    "Fault",
    "faultcode",
    "faultstring",
    "faultactor",
    "detail",
    // WS-Addressing.
    "To",
    "From",
    "Action",
    "MessageID",
    "ReplyTo",
    "Address",
    "EndpointReference",
    "ReferenceParameters",
    // WS-DAI core vocabulary (paper Figure 4 property tables).
    "DataResourceAbstractName",
    "DataResourceAddress",
    "DataResourceDescription",
    "DataResourceManagement",
    "ParentDataResource",
    "ResourceProperty",
    "PropertyDocument",
    "ConfigurationDocument",
    "ConfigurationMap",
    "ConcurrentAccess",
    "Readable",
    "Writeable",
    "Sensitivity",
    "DatasetMap",
    "DatasetFormatURI",
    "DataFormatURI",
    "DatasetData",
    "PortTypeQName",
    "MessageName",
    "GenericQueryLanguage",
    "TransactionInitiation",
    "TransactionIsolation",
    "QueryExpression",
    // WS-DAIR.
    "SQLExecuteRequest",
    "SQLExecuteResponse",
    "SQLExpression",
    "SQLParameter",
    "SQLResponse",
    "SQLRowset",
    "SQLCommunicationArea",
    "SQLUpdateCount",
    "SQLReturnValue",
    "SQLOutputParameter",
    "GetTuplesRequest",
    "GetTuplesResponse",
    "StartPosition",
    "Count",
    "Index",
    "Item",
    // WS-DAIX.
    "Document",
    "DocumentName",
    "DocumentContent",
    "CollectionName",
    "Update",
    // WSRF lifetime/properties.
    "SetTerminationTime",
    "RequestedTerminationTime",
    "RequestedLifetimeDuration",
    "NewTerminationTime",
    "CurrentTime",
    "TerminationTime",
    // WebRowSet (paper Figure 5 dataset format).
    "webRowSet",
    "metadata",
    "data",
    "currentRow",
    "columnValue",
    "column-count",
    "column-definition",
    "column-index",
    "column-name",
    "column-type",
    "null",
    "value",
    "language",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_names_share_one_allocation() {
        let a = intern("DataResourceAbstractName");
        let b = intern("DataResourceAbstractName");
        assert!(IStr::ptr_eq(&a, &b));
        assert!(is_interned("http://schemas.xmlsoap.org/soap/envelope/"));
    }

    #[test]
    fn unknown_names_still_intern_correctly() {
        let a = intern("entirely-novel-name");
        assert_eq!(a, "entirely-novel-name");
        assert!(!is_interned("entirely-novel-name"));
    }

    #[test]
    fn empty_string_is_shared() {
        assert!(IStr::ptr_eq(&IStr::default(), &intern("")));
        assert!(IStr::default().is_empty());
    }

    #[test]
    fn string_like_behaviour() {
        let s = intern("Body");
        assert_eq!(s, "Body");
        assert_eq!("Body", s);
        assert_eq!(s, "Body".to_string());
        assert_eq!(format!("<{s}>"), "<Body>");
        assert_eq!(s.as_str(), "Body");
        assert!(intern("a") < intern("b"));
    }

    #[test]
    fn from_string_reuses_table_entries() {
        let owned = String::from("currentRow");
        let i = IStr::from(owned);
        assert!(IStr::ptr_eq(&i, &intern("currentRow")));
    }

    #[test]
    fn hash_matches_str_for_borrowed_lookup() {
        let mut set = std::collections::HashSet::new();
        set.insert(intern("metadata"));
        assert!(set.contains("metadata"));
    }

    #[test]
    fn table_has_no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for s in WELL_KNOWN {
            assert!(seen.insert(s), "duplicate table entry {s:?}");
        }
    }
}
