//! A tiny deterministic PRNG.
//!
//! SplitMix64 (Steele, Lea & Flood) — 64 bits of state, full-period,
//! passes BigCrush, and trivially seedable. Not cryptographic; used for
//! workload generation, chaos fault injection and retry jitter, where the
//! requirement is *reproducibility from a seed*, not unpredictability.

/// SplitMix64 generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// One SplitMix64 output step as a pure function: finalises `state` after
/// the golden-gamma increment. Usable as a stateless hash for
/// deterministic per-key decisions (e.g. jitter for attempt `k`).
pub fn mix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine two words into one hash value (order-sensitive).
pub fn mix2(a: u64, b: u64) -> u64 {
    mix(mix(a) ^ b)
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in the half-open range `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        // Lemire-style rejection-free reduction is overkill here; modulo
        // bias is negligible for the span sizes the stack draws.
        lo + self.next_u64() % (hi - lo)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Derive an independent generator (for giving each thread/component
    /// its own stream from one master seed).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.gen_range(5, 15);
            assert!((5..15).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_edges_and_rough_frequency() {
        let mut r = SplitMix64::new(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn mix_matches_stepping() {
        let mut r = SplitMix64::new(100);
        assert_eq!(r.next_u64(), mix(100));
    }

    #[test]
    fn split_streams_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = a.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
