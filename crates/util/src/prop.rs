//! A miniature property-testing harness.
//!
//! Stands in for `proptest` (unavailable offline): a property is a
//! closure over a [`Gen`]; [`run_cases`] drives it through `n` seeded
//! cases. Each case derives its own seed from the master seed, and a
//! failing case reports that seed so the exact inputs can be replayed
//! with `Gen::from_seed`. No shrinking — failures print the replay seed
//! instead, and generators are kept small enough that raw cases are
//! readable.

use crate::rng::{mix2, SplitMix64};

/// A source of arbitrary values for one property case.
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// The generator for a specific case seed (replay entry point).
    pub fn from_seed(seed: u64) -> Gen {
        Gen { rng: SplitMix64::new(seed) }
    }

    /// Direct access to the underlying RNG.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }

    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo, hi)
    }

    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo as u64, hi as u64) as usize
    }

    pub fn i64_any(&mut self) -> i64 {
        self.rng.next_u64() as i64
    }

    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }

    pub fn bool_any(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    pub fn byte(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }

    /// A `Vec` of `len` in `[min, max]` filled by `f`.
    pub fn vec_of<T>(
        &mut self,
        min: usize,
        max: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min, max + 1);
        (0..len).map(|_| f(self)).collect()
    }

    /// One element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        &choices[self.usize_in(0, choices.len())]
    }

    /// A string of `len` in `[min, max]` drawn from `alphabet`'s chars.
    pub fn string_from(&mut self, alphabet: &str, min: usize, max: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let len = self.usize_in(min, max + 1);
        (0..len).map(|_| *self.pick(&chars)).collect()
    }
}

/// Run `cases` seeded instances of `property`. A panic inside the
/// property is re-raised annotated with the case index and replay seed.
pub fn run_cases(name: &str, cases: u32, master_seed: u64, mut property: impl FnMut(&mut Gen)) {
    for i in 0..cases {
        let case_seed = mix2(master_seed, i as u64);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = Gen::from_seed(case_seed);
            property(&mut g);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into());
            panic!(
                "property '{name}' failed at case {i}/{cases} \
                 (replay with Gen::from_seed({case_seed:#x})): {msg}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_reproducible() {
        let mut first: Vec<u64> = Vec::new();
        run_cases("collect", 5, 99, |g| first.push(g.u64_in(0, 1000)));
        let mut second: Vec<u64> = Vec::new();
        run_cases("collect", 5, 99, |g| second.push(g.u64_in(0, 1000)));
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }

    #[test]
    fn failure_reports_replay_seed() {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cases("always-fails", 3, 1, |_| panic!("boom"));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always-fails"), "{msg}");
        assert!(msg.contains("replay with"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn generators_stay_in_bounds() {
        run_cases("bounds", 50, 7, |g| {
            let s = g.string_from("abc", 2, 5);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| "abc".contains(c)));
            let v = g.vec_of(0, 3, |g| g.bool_any());
            assert!(v.len() <= 3);
        });
    }
}
