//! Lock shims with the `parking_lot` calling convention.
//!
//! The std lock API returns `LockResult` so callers must thread poison
//! handling everywhere; `parking_lot` (which this workspace cannot fetch)
//! returns guards directly and has no poisoning. These wrappers recover
//! the ergonomic API: a panic while holding a lock leaves the data in
//! whatever state the panicking section produced, which is exactly the
//! `parking_lot` contract the call sites were written against.

use std::sync::{self, LockResult, PoisonError};

fn unpoison<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// `std::sync::RwLock` with guards returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// `std::sync::Mutex` with guards returned directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_basics() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let lock = Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        *lock.write() = 7;
        assert_eq!(*lock.read(), 7);
    }
}
