//! Lock shims with the `parking_lot` calling convention, plus (in debug
//! builds) lock-order deadlock detection.
//!
//! The std lock API returns `LockResult` so callers must thread poison
//! handling everywhere; `parking_lot` (which this workspace cannot fetch)
//! returns guards directly and has no poisoning. These wrappers recover
//! the ergonomic API: a panic while holding a lock leaves the data in
//! whatever state the panicking section produced, which is exactly the
//! `parking_lot` contract the call sites were written against.
//!
//! Under `cfg(debug_assertions)` every lock is additionally classed by
//! its construction site and every acquisition is checked against the
//! global acquisition-order graph in [`crate::lockorder`]; an inverted
//! order panics deterministically instead of deadlocking rarely. Release
//! builds compile all of that away — the types below are zero-cost
//! newtypes over `std::sync`.

use std::ops::{Deref, DerefMut};
use std::sync::{self, LockResult, PoisonError};

#[cfg(debug_assertions)]
use crate::lockorder;
#[cfg(debug_assertions)]
use crate::lockorder::Mode;
#[cfg(debug_assertions)]
use std::panic::Location;

fn unpoison<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Tracking state attached to a live guard in debug builds.
#[cfg(debug_assertions)]
#[derive(Debug)]
struct Tracked(u64);

#[cfg(debug_assertions)]
impl Drop for Tracked {
    fn drop(&mut self) {
        lockorder::release(self.0);
    }
}

macro_rules! guard {
    ($name:ident, $inner:ident, mutable: $mutable:tt) => {
        #[derive(Debug)]
        pub struct $name<'a, T: ?Sized> {
            inner: sync::$inner<'a, T>,
            #[cfg(debug_assertions)]
            #[allow(dead_code)]
            tracked: Tracked,
        }

        impl<T: ?Sized> Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }

        guard!(@mut $name, $mutable);

        impl<T: ?Sized + std::fmt::Display> std::fmt::Display for $name<'_, T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                (**self).fmt(f)
            }
        }
    };
    (@mut $name:ident, true) => {
        impl<T: ?Sized> DerefMut for $name<'_, T> {
            fn deref_mut(&mut self) -> &mut T {
                &mut self.inner
            }
        }
    };
    (@mut $name:ident, false) => {};
}

guard!(RwLockReadGuard, RwLockReadGuard, mutable: false);
guard!(RwLockWriteGuard, RwLockWriteGuard, mutable: true);
guard!(MutexGuard, MutexGuard, mutable: true);

/// `std::sync::RwLock` with guards returned directly.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: &'static Location<'static>,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    #[track_caller]
    pub fn new(value: T) -> Self {
        RwLock {
            #[cfg(debug_assertions)]
            class: Location::caller(),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let tracked = Tracked(lockorder::acquire(self.class, Location::caller(), Mode::Shared));
        RwLockReadGuard {
            inner: unpoison(self.inner.read()),
            #[cfg(debug_assertions)]
            tracked,
        }
    }

    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let tracked = Tracked(lockorder::acquire(self.class, Location::caller(), Mode::Exclusive));
        RwLockWriteGuard {
            inner: unpoison(self.inner.write()),
            #[cfg(debug_assertions)]
            tracked,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

/// `std::sync::Mutex` with guards returned directly.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: &'static Location<'static>,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    #[track_caller]
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(debug_assertions)]
            class: Location::caller(),
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let tracked = Tracked(lockorder::acquire(self.class, Location::caller(), Mode::Exclusive));
        MutexGuard {
            inner: unpoison(self.inner.lock()),
            #[cfg(debug_assertions)]
            tracked,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

/// `std::sync::Condvar` over [`Mutex`] guards, with the same
/// poison-transparent contract as the lock shims.
///
/// The guard's lock-order token is deliberately kept on the thread's
/// held stack across the wait: while parked the thread cannot acquire
/// anything else, so the stale frame can create no false edges, and
/// keeping it means the wakeup (which reacquires the same mutex) needs
/// no re-registration that could spuriously re-order the graph.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Atomically release `guard`'s mutex and park until notified; the
    /// mutex is reacquired before this returns.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(debug_assertions)]
        {
            let MutexGuard { inner, tracked } = guard;
            let inner = unpoison(self.inner.wait(inner));
            MutexGuard { inner, tracked }
        }
        #[cfg(not(debug_assertions))]
        {
            let MutexGuard { inner } = guard;
            MutexGuard { inner: unpoison(self.inner.wait(inner)) }
        }
    }

    /// Like [`Condvar::wait`] with an upper bound; the `bool` is true if
    /// the wait timed out rather than being notified.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        #[cfg(debug_assertions)]
        {
            let MutexGuard { inner, tracked } = guard;
            let (inner, timeout) = unpoison(self.inner.wait_timeout(inner, dur));
            (MutexGuard { inner, tracked }, timeout.timed_out())
        }
        #[cfg(not(debug_assertions))]
        {
            let MutexGuard { inner } = guard;
            let (inner, timeout) = unpoison(self.inner.wait_timeout(inner, dur));
            (MutexGuard { inner }, timeout.timed_out())
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_basics() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = shared.clone();
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*s2;
            let mut ready = lock.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (lock, cv) = &*shared;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().expect("waiter wakes");
    }

    #[test]
    fn condvar_wait_timeout_reports_timeout() {
        let lock = Mutex::new(0u8);
        let cv = Condvar::new();
        let guard = lock.lock();
        let (guard, timed_out) = cv.wait_timeout(guard, std::time::Duration::from_millis(5));
        assert!(timed_out);
        drop(guard);
        // The guard survived the round trip: the mutex is usable and
        // lock-order tracking still releases cleanly.
        *lock.lock() = 1;
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let lock = Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        *lock.write() = 7;
        assert_eq!(*lock.read(), 7);
    }
}
