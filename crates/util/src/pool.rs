//! Thread-local reusable byte buffers for the wire path.
//!
//! Every `Bus::call` serialises a request and a response; without
//! pooling each leg allocates (and regrows) a fresh `Vec<u8>`. The pool
//! hands out cleared buffers that keep their capacity across calls, so
//! steady-state traffic serialises into already-sized memory.
//!
//! The pool is a per-thread *stack*, not a fixed pair of slots, because
//! `Bus::call` is reentrant: a pipeline service handling one call may
//! issue nested calls on the same thread. Each borrower pops (or
//! creates) a buffer and its [`PooledBuf`] guard pushes the cleared
//! buffer back on drop.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Retained buffers per thread. Deep recursion beyond this just
/// allocates transiently; the excess is dropped instead of hoarded.
const MAX_POOLED: usize = 8;

/// Buffers that outgrow this are not returned to the pool, so one
/// pathological payload can't pin a huge allocation forever.
const MAX_RETAINED_CAPACITY: usize = 1 << 20;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// An owned, growable byte buffer on loan from the thread-local pool.
/// Dereferences to `Vec<u8>`; cleared and returned to the pool on drop.
pub struct PooledBuf {
    buf: Vec<u8>,
}

impl PooledBuf {
    /// Borrow a cleared buffer from this thread's pool (empty, but with
    /// whatever capacity its previous use grew it to).
    pub fn take() -> PooledBuf {
        let buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        debug_assert!(buf.is_empty());
        PooledBuf { buf }
    }

    /// Like [`take`](Self::take), but ensures at least `cap` bytes of
    /// capacity up front (one reservation instead of doubling regrowth).
    pub fn with_capacity(cap: usize) -> PooledBuf {
        let mut b = PooledBuf::take();
        b.buf.reserve(cap);
        b
    }

    /// Detach the buffer from the pool, e.g. to hand the bytes to an
    /// owner that outlives the call. The allocation is not returned.
    pub fn into_inner(mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Replace the pooled bytes with `owned` (interceptors swapping in
    /// tampered payloads). The previous allocation is recycled on drop
    /// only if `owned` itself came from the pool; either way behaviour
    /// stays correct — this is purely an exchange of contents.
    pub fn replace_with(&mut self, owned: Vec<u8>) {
        self.buf = owned;
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if self.buf.capacity() == 0 || self.buf.capacity() > MAX_RETAINED_CAPACITY {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                let mut buf = buf;
                buf.clear();
                pool.push(buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_survives_a_round_trip() {
        {
            let mut b = PooledBuf::take();
            b.extend_from_slice(&[0u8; 4096]);
        }
        let b = PooledBuf::take();
        assert!(b.capacity() >= 4096);
        assert!(b.is_empty());
    }

    #[test]
    fn nested_borrows_get_distinct_buffers() {
        let mut a = PooledBuf::take();
        let mut b = PooledBuf::take();
        a.push(1);
        b.push(2);
        assert_eq!(&a[..], &[1]);
        assert_eq!(&b[..], &[2]);
    }

    #[test]
    fn into_inner_detaches_from_the_pool() {
        let mut b = PooledBuf::take();
        b.extend_from_slice(b"keep me");
        let owned = b.into_inner();
        assert_eq!(&owned[..], b"keep me");
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let watermark = {
            let mut b = PooledBuf::take();
            b.reserve(MAX_RETAINED_CAPACITY + 1);
            b.capacity()
        };
        let b = PooledBuf::take();
        assert!(b.capacity() < watermark);
    }
}
