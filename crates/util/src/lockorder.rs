//! A deterministic lock-order deadlock detector (debug builds only).
//!
//! Every [`crate::sync::Mutex`] and [`crate::sync::RwLock`] is classed by
//! its *construction site* (file:line:column, captured with
//! `#[track_caller]`). Acquisitions push onto a thread-local stack of
//! held classes; each `(held, acquiring)` pair feeds a process-global
//! order graph. The first acquisition that would close a cycle in that
//! graph panics immediately — before blocking — with both acquisition
//! chains, so an ABBA deadlock is caught the first time the two orders
//! are *observed*, even when the interleaving that would actually
//! deadlock never happens in the run.
//!
//! Acquisitions carry a [`Mode`]: `RwLock::read` is [`Mode::Shared`],
//! `RwLock::write` and `Mutex::lock` are [`Mode::Exclusive`]. A
//! shared-while-shared pair records no edge — two readers never block
//! each other, so `read(A) → read(B)` against `read(B) → read(A)` cannot
//! deadlock. Every pair with an exclusive end stays a strict edge:
//! `read(A) → write(B)` against `read(B) → write(A)` deadlocks (each
//! writer blocks on the other thread's reader), and the detector treats
//! it exactly like a Mutex inversion.
//!
//! Same-class edges are deliberately ignored: two locks built at one
//! site (e.g. per-resource locks minted in a loop) share a class, and
//! nesting them is indistinguishable from re-acquisition at this level.
//! The detector therefore never false-positives on instance fan-out, at
//! the cost of missing same-site inversions.
//!
//! The observed graph is exportable: [`snapshot`] returns the edge list
//! (deterministically ordered) and [`dot`] renders it as Graphviz for
//! review. `tests/lock_order_atlas.rs` drives representative workloads
//! and pins the file-level projection of this graph as a golden
//! artifact, so a PR that introduces a new lock ordering shows up as a
//! reviewed diff rather than a latent deadlock.
//!
//! The whole module is compiled out of release builds; see
//! [`crate::sync`] for the `cfg(debug_assertions)` call sites.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::Location;
use std::sync::{Mutex as StdMutex, OnceLock};

/// A lock class: the `&'static Location` of the lock's constructor.
pub type Site = &'static Location<'static>;

/// How an acquisition excludes other holders. Shared acquisitions
/// (`RwLock::read`) coexist; exclusive ones (`Mutex::lock`,
/// `RwLock::write`) block everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mode {
    Shared,
    Exclusive,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Shared => "R",
            Mode::Exclusive => "W",
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Entries the per-thread `KNOWN` edge cache may hold before it is
/// reset. The cache only short-circuits the global mutex on steady-state
/// re-observations; clearing it is always correct, merely slower.
const KNOWN_CAP: usize = 4096;

#[derive(Clone, Copy)]
struct Held {
    /// Class of the lock this frame holds.
    class: Site,
    /// Where this acquisition happened.
    acquired_at: Site,
    mode: Mode,
    token: u64,
}

/// First observation of an ordering edge `from -> to`.
struct EdgeInfo {
    /// Where the `from` lock had been acquired when the edge was seen.
    holder_acquired_at: Site,
    /// Where the `to` acquisition that created the edge happened.
    acquiring_at: Site,
    /// Modes of the two acquisitions at first observation.
    held_mode: Mode,
    acquiring_mode: Mode,
}

#[derive(Default)]
struct Graph {
    edges: HashMap<(Site, Site), EdgeInfo>,
    adjacency: HashMap<Site, Vec<Site>>,
}

impl Graph {
    /// Is `to` reachable from `from` over recorded edges?
    fn reaches(&self, from: Site, to: Site) -> bool {
        let mut stack = vec![from];
        let mut seen: HashSet<Site> = HashSet::new();
        while let Some(node) = stack.pop() {
            if std::ptr::eq(node, to) {
                return true;
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(next) = self.adjacency.get(&node) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}

fn graph() -> &'static StdMutex<Graph> {
    static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    /// Per-thread cache of edges already recorded globally, so steady
    /// state acquisitions skip the global mutex entirely. Bounded by
    /// [`KNOWN_CAP`]: a long-lived thread touching many lock pairs
    /// resets the cache instead of growing it without limit.
    static KNOWN: RefCell<HashSet<(Site, Site)>> = RefCell::new(HashSet::new());
    static NEXT_TOKEN: RefCell<u64> = const { RefCell::new(0) };
}

fn site(s: Site) -> String {
    format!("{}:{}:{}", s.file(), s.line(), s.column())
}

/// Number of distinct ordering edges observed so far (for tests and the
/// stress workloads' sanity checks).
pub fn edges_observed() -> usize {
    graph().lock().unwrap_or_else(|e| e.into_inner()).edges.len()
}

/// One lock construction site, decomposed for export.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SiteInfo {
    pub file: String,
    pub line: u32,
    pub column: u32,
}

impl SiteInfo {
    fn of(s: Site) -> SiteInfo {
        SiteInfo { file: s.file().to_string(), line: s.line(), column: s.column() }
    }
}

impl fmt::Display for SiteInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.column)
    }
}

/// One observed acquisition-order edge: a lock of class `from` was held
/// (in `from_mode`) while a lock of class `to` was acquired (in
/// `to_mode`, modes as first observed).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeSnapshot {
    pub from: SiteInfo,
    pub to: SiteInfo,
    pub from_mode: Mode,
    pub to_mode: Mode,
}

/// The observed acquisition-order graph, deterministically ordered by
/// (from, to) site. Empty in release builds (nothing records).
pub fn snapshot() -> Vec<EdgeSnapshot> {
    let graph = graph().lock().unwrap_or_else(|e| e.into_inner());
    let mut edges: Vec<EdgeSnapshot> = graph
        .edges
        .iter()
        .map(|((from, to), info)| EdgeSnapshot {
            from: SiteInfo::of(from),
            to: SiteInfo::of(to),
            from_mode: info.held_mode,
            to_mode: info.acquiring_mode,
        })
        .collect();
    edges.sort();
    edges
}

/// Render the observed acquisition-order graph as a Graphviz digraph.
/// Nodes are lock classes (construction sites); each edge is labelled
/// with the held/acquiring modes at first observation, e.g. `R->W`.
pub fn dot() -> String {
    let edges = snapshot();
    let mut nodes: Vec<&SiteInfo> = Vec::new();
    for e in &edges {
        for s in [&e.from, &e.to] {
            if !nodes.contains(&s) {
                nodes.push(s);
            }
        }
    }
    nodes.sort();
    let mut out = String::from("digraph lock_order {\n");
    for n in &nodes {
        out.push_str(&format!("  \"{n}\";\n"));
    }
    for e in &edges {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}->{}\"];\n",
            e.from, e.to, e.from_mode, e.to_mode
        ));
    }
    out.push_str("}\n");
    out
}

/// Record that the current thread is about to acquire the lock classed
/// `class` from `acquired_at`, in `mode`. Panics if the acquisition
/// would invert an order already observed somewhere in the process.
/// Returns a token to hand back to [`release`] when the guard drops.
pub fn acquire(class: Site, acquired_at: Site, mode: Mode) -> u64 {
    let held: Vec<Held> = HELD.with(|h| h.borrow().clone());
    for frame in &held {
        if std::ptr::eq(frame.class, class) {
            // Same class: re-acquisition or sibling instance; not tracked.
            continue;
        }
        if frame.mode == Mode::Shared && mode == Mode::Shared {
            // Shared-while-shared: readers never exclude each other, so
            // opposite read orders cannot close a waits-for cycle.
            continue;
        }
        let edge = (frame.class, class);
        let cached = KNOWN.with(|k| k.borrow().contains(&edge));
        if cached {
            continue;
        }
        let mut graph = graph().lock().unwrap_or_else(|e| e.into_inner());
        if !graph.edges.contains_key(&edge) {
            if graph.reaches(class, frame.class) {
                let conflict = describe_conflict(&graph, class, frame.class);
                let chain = held
                    .iter()
                    .map(|f| {
                        format!(
                            "    {} held {}, acquired at {}",
                            site(f.class),
                            f.mode,
                            site(f.acquired_at)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
                drop(graph);
                panic!(
                    "lock-order inversion: acquiring lock {} ({}, at {}) while holding lock {} \
                     would close a cycle in the observed acquisition order.\n  \
                     this thread holds:\n{chain}\n  \
                     conflicting order previously observed:\n{conflict}",
                    site(class),
                    mode,
                    site(acquired_at),
                    site(frame.class),
                );
            }
            graph.edges.insert(
                edge,
                EdgeInfo {
                    holder_acquired_at: frame.acquired_at,
                    acquiring_at: acquired_at,
                    held_mode: frame.mode,
                    acquiring_mode: mode,
                },
            );
            graph.adjacency.entry(frame.class).or_default().push(class);
        }
        drop(graph);
        KNOWN.with(|k| {
            let mut known = k.borrow_mut();
            if known.len() >= KNOWN_CAP {
                known.clear();
            }
            known.insert(edge);
        });
    }
    let token = NEXT_TOKEN.with(|t| {
        let mut t = t.borrow_mut();
        *t += 1;
        *t
    });
    HELD.with(|h| h.borrow_mut().push(Held { class, acquired_at, mode, token }));
    token
}

/// Walk the recorded path `from -> ... -> to` and render each edge's
/// first-observed acquisition sites. Iterative DFS with an explicit
/// frame stack: the acquisition-order graph can grow one node per lock
/// construction site, and a panic path must not itself overflow the
/// stack on a deep chain.
fn describe_conflict(graph: &Graph, from: Site, to: Site) -> String {
    const NO_CHILDREN: &[Site] = &[];
    // Each frame is (node, index of the next child to try). The current
    // path is exactly the stack's nodes, in order.
    let mut stack: Vec<(Site, usize)> = vec![(from, 0)];
    let mut seen: HashSet<Site> = HashSet::new();
    seen.insert(from);
    let found = loop {
        let Some(frame) = stack.last_mut() else {
            break false;
        };
        let node = frame.0;
        if std::ptr::eq(node, to) {
            break true;
        }
        let children = graph.adjacency.get(&node).map(Vec::as_slice).unwrap_or(NO_CHILDREN);
        match children.get(frame.1) {
            Some(&next) => {
                frame.1 += 1;
                if seen.insert(next) {
                    stack.push((next, 0));
                }
            }
            None => {
                stack.pop();
            }
        }
    };
    if !found {
        return "    (path vanished — concurrent graph mutation)".to_string();
    }
    let path: Vec<Site> = stack.iter().map(|&(node, _)| node).collect();
    path.windows(2)
        .map(|w| {
            let info = &graph.edges[&(w[0], w[1])];
            format!(
                "    {} (held {}, acquired at {}) then {} ({}, acquired at {})",
                site(w[0]),
                info.held_mode,
                site(info.holder_acquired_at),
                site(w[1]),
                info.acquiring_mode,
                site(info.acquiring_at),
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The guard carrying `token` dropped; forget the acquisition. Guards
/// may drop out of LIFO order, so removal is by token, not by popping.
pub fn release(token: u64) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(i) = held.iter().rposition(|f| f.token == token) {
            held.remove(i);
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::sync::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn consistent_order_never_panics() {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(RwLock::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (a, b) = (a.clone(), b.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let ga = a.lock();
                    let gb = b.write();
                    drop(gb);
                    drop(ga);
                }
            }));
        }
        for h in handles {
            h.join().expect("ordered workers never panic");
        }
    }

    #[test]
    fn inverted_order_is_caught_deterministically() {
        // Single-threaded: A then B records the edge; B then A must
        // panic before any real deadlock can form.
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let (a2, b2) = (a.clone(), b.clone());
        let result = std::thread::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock(); // inversion
        })
        .join();
        let panic = result.expect_err("inverted acquisition must panic");
        let message = panic.downcast_ref::<String>().expect("panic carries a message");
        assert!(message.contains("lock-order inversion"), "{message}");
        assert!(message.contains("previously observed"), "{message}");
    }

    #[test]
    fn read_read_orders_never_edge_or_panic() {
        // Opposite read-read orders over the same pair: harmless, and
        // the graph must not even record them (the atlas stays quiet).
        let a = Arc::new(RwLock::new(0u32));
        let b = Arc::new(RwLock::new(0u32));
        let before = super::edges_observed();
        {
            let _ga = a.read();
            let _gb = b.read();
        }
        {
            let _gb = b.read();
            let _ga = a.read(); // reversed, still fine
        }
        assert_eq!(super::edges_observed(), before, "read-read pairs must not edge");
    }

    #[test]
    fn read_then_write_edges_stay_strict() {
        // read(A) → write(B) vs read(B) → write(A) is a real deadlock
        // (each writer waits on the other thread's reader): the second
        // order must panic even though every hold is partly shared.
        let a = Arc::new(RwLock::new(0u32));
        let b = Arc::new(RwLock::new(0u32));
        {
            let _ga = a.read();
            let _gb = b.write();
        }
        let (a2, b2) = (a.clone(), b.clone());
        let result = std::thread::spawn(move || {
            let _gb = b2.read();
            let _ga = a2.write(); // inversion through a shared hold
        })
        .join();
        let panic = result.expect_err("shared/exclusive inversion must panic");
        let message = panic.downcast_ref::<String>().expect("panic carries a message");
        assert!(message.contains("lock-order inversion"), "{message}");
        assert!(message.contains("held R"), "modes must render: {message}");
    }

    #[test]
    fn same_class_nesting_is_ignored() {
        // Two locks from one construction site share a class; nesting
        // them must not be treated as an inversion.
        fn mint() -> Vec<Mutex<u32>> {
            (0..2).map(Mutex::new).collect()
        }
        let locks = mint();
        let _g0 = locks[0].lock();
        let _g1 = locks[1].lock();
    }

    #[test]
    fn out_of_order_guard_drops_are_tracked() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // drop the outer guard first
        drop(gb);
        // The held stack must be empty again: a fresh acquisition pair
        // in the same order succeeds without phantom frames.
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn edges_accumulate() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        let before = super::edges_observed();
        let _ga = a.lock();
        let _gb = b.lock();
        assert!(super::edges_observed() > before);
    }

    #[test]
    fn snapshot_and_dot_render_the_observed_edges() {
        let a = Mutex::new(0u32);
        let b = RwLock::new(0u32);
        {
            let _ga = a.lock();
            let _gb = b.read();
        }
        let snap = super::snapshot();
        let here = file!();
        let edge = snap
            .iter()
            .find(|e| e.from.file == here && e.to.file == here && e.to_mode == super::Mode::Shared)
            .unwrap_or_else(|| panic!("edge from this test missing from snapshot: {snap:?}"));
        assert_eq!(edge.from_mode, super::Mode::Exclusive);
        assert!(edge.from.line < edge.to.line, "constructor order: {edge:?}");
        let dot = super::dot();
        assert!(dot.starts_with("digraph lock_order {"), "{dot}");
        assert!(dot.contains("label=\"W->R\""), "{dot}");
        // Deterministic: a second render is byte-identical.
        assert_eq!(dot, super::dot());
    }

    #[test]
    fn conflict_paths_render_through_chains() {
        // A → B → C recorded edge by edge; C → A then closes the cycle
        // and the panic must describe the full conflicting chain.
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let c = Arc::new(Mutex::new(0u32));
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _gc = c.lock();
        }
        let (a2, c2) = (a.clone(), c.clone());
        let result = std::thread::spawn(move || {
            let _gc = c2.lock();
            let _ga = a2.lock(); // closes A → B → C → A
        })
        .join();
        let panic = result.expect_err("transitive inversion must panic");
        let message = panic.downcast_ref::<String>().expect("panic carries a message");
        // The rendered conflict path must walk both edges of the chain.
        assert!(message.matches(") then ").count() >= 2, "{message}");
    }
}
