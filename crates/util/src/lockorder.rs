//! A deterministic lock-order deadlock detector (debug builds only).
//!
//! Every [`crate::sync::Mutex`] and [`crate::sync::RwLock`] is classed by
//! its *construction site* (file:line:column, captured with
//! `#[track_caller]`). Acquisitions push onto a thread-local stack of
//! held classes; each `(held, acquiring)` pair feeds a process-global
//! order graph. The first acquisition that would close a cycle in that
//! graph panics immediately — before blocking — with both acquisition
//! chains, so an ABBA deadlock is caught the first time the two orders
//! are *observed*, even when the interleaving that would actually
//! deadlock never happens in the run.
//!
//! Same-class edges are deliberately ignored: two locks built at one
//! site (e.g. per-resource locks minted in a loop) share a class, and
//! nesting them is indistinguishable from re-acquisition at this level.
//! The detector therefore never false-positives on instance fan-out, at
//! the cost of missing same-site inversions.
//!
//! The whole module is compiled out of release builds; see
//! [`crate::sync`] for the `cfg(debug_assertions)` call sites.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::panic::Location;
use std::sync::{Mutex as StdMutex, OnceLock};

/// A lock class: the `&'static Location` of the lock's constructor.
pub type Site = &'static Location<'static>;

#[derive(Clone, Copy)]
struct Held {
    /// Class of the lock this frame holds.
    class: Site,
    /// Where this acquisition happened.
    acquired_at: Site,
    token: u64,
}

/// First observation of an ordering edge `from -> to`.
struct EdgeInfo {
    /// Where the `from` lock had been acquired when the edge was seen.
    holder_acquired_at: Site,
    /// Where the `to` acquisition that created the edge happened.
    acquiring_at: Site,
}

#[derive(Default)]
struct Graph {
    edges: HashMap<(Site, Site), EdgeInfo>,
    adjacency: HashMap<Site, Vec<Site>>,
}

impl Graph {
    /// Is `to` reachable from `from` over recorded edges?
    fn reaches(&self, from: Site, to: Site) -> bool {
        let mut stack = vec![from];
        let mut seen: HashSet<Site> = HashSet::new();
        while let Some(node) = stack.pop() {
            if std::ptr::eq(node, to) {
                return true;
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(next) = self.adjacency.get(&node) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}

fn graph() -> &'static StdMutex<Graph> {
    static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    /// Per-thread cache of edges already recorded globally, so steady
    /// state acquisitions skip the global mutex entirely.
    static KNOWN: RefCell<HashSet<(Site, Site)>> = RefCell::new(HashSet::new());
    static NEXT_TOKEN: RefCell<u64> = const { RefCell::new(0) };
}

fn site(s: Site) -> String {
    format!("{}:{}:{}", s.file(), s.line(), s.column())
}

/// Number of distinct ordering edges observed so far (for tests and the
/// stress workloads' sanity checks).
pub fn edges_observed() -> usize {
    graph().lock().unwrap_or_else(|e| e.into_inner()).edges.len()
}

/// Record that the current thread is about to acquire the lock classed
/// `class` from `acquired_at`. Panics if the acquisition would invert an
/// order already observed somewhere in the process. Returns a token to
/// hand back to [`release`] when the guard drops.
pub fn acquire(class: Site, acquired_at: Site) -> u64 {
    let held: Vec<Held> = HELD.with(|h| h.borrow().clone());
    for frame in &held {
        if std::ptr::eq(frame.class, class) {
            // Same class: re-acquisition or sibling instance; not tracked.
            continue;
        }
        let edge = (frame.class, class);
        let cached = KNOWN.with(|k| k.borrow().contains(&edge));
        if cached {
            continue;
        }
        let mut graph = graph().lock().unwrap_or_else(|e| e.into_inner());
        if !graph.edges.contains_key(&edge) {
            if graph.reaches(class, frame.class) {
                let conflict = describe_conflict(&graph, class, frame.class);
                let chain = held
                    .iter()
                    .map(|f| format!("    {} acquired at {}", site(f.class), site(f.acquired_at)))
                    .collect::<Vec<_>>()
                    .join("\n");
                drop(graph);
                panic!(
                    "lock-order inversion: acquiring lock {} (at {}) while holding lock {} \
                     would close a cycle in the observed acquisition order.\n  \
                     this thread holds:\n{chain}\n  \
                     conflicting order previously observed:\n{conflict}",
                    site(class),
                    site(acquired_at),
                    site(frame.class),
                );
            }
            graph.edges.insert(
                edge,
                EdgeInfo { holder_acquired_at: frame.acquired_at, acquiring_at: acquired_at },
            );
            graph.adjacency.entry(frame.class).or_default().push(class);
        }
        drop(graph);
        KNOWN.with(|k| k.borrow_mut().insert(edge));
    }
    let token = NEXT_TOKEN.with(|t| {
        let mut t = t.borrow_mut();
        *t += 1;
        *t
    });
    HELD.with(|h| h.borrow_mut().push(Held { class, acquired_at, token }));
    token
}

/// Walk the recorded path `from -> ... -> to` and render each edge's
/// first-observed acquisition sites.
fn describe_conflict(graph: &Graph, from: Site, to: Site) -> String {
    // Depth-first search retaining the path.
    let mut path: Vec<Site> = vec![from];
    let mut seen: HashSet<Site> = HashSet::new();
    fn dfs(graph: &Graph, path: &mut Vec<Site>, seen: &mut HashSet<Site>, to: Site) -> bool {
        let Some(&node) = path.last() else {
            return false;
        };
        if std::ptr::eq(node, to) {
            return true;
        }
        if !seen.insert(node) {
            return false;
        }
        let Some(next) = graph.adjacency.get(&node) else { return false };
        for n in next {
            path.push(n);
            if dfs(graph, path, seen, to) {
                return true;
            }
            path.pop();
        }
        false
    }
    if !dfs(graph, &mut path, &mut seen, to) {
        return "    (path vanished — concurrent graph mutation)".to_string();
    }
    path.windows(2)
        .map(|w| {
            let info = &graph.edges[&(w[0], w[1])];
            format!(
                "    {} (held, acquired at {}) then {} (acquired at {})",
                site(w[0]),
                site(info.holder_acquired_at),
                site(w[1]),
                site(info.acquiring_at),
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The guard carrying `token` dropped; forget the acquisition. Guards
/// may drop out of LIFO order, so removal is by token, not by popping.
pub fn release(token: u64) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(i) = held.iter().rposition(|f| f.token == token) {
            held.remove(i);
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::sync::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn consistent_order_never_panics() {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(RwLock::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (a, b) = (a.clone(), b.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let ga = a.lock();
                    let gb = b.write();
                    drop(gb);
                    drop(ga);
                }
            }));
        }
        for h in handles {
            h.join().expect("ordered workers never panic");
        }
    }

    #[test]
    fn inverted_order_is_caught_deterministically() {
        // Single-threaded: A then B records the edge; B then A must
        // panic before any real deadlock can form.
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let (a2, b2) = (a.clone(), b.clone());
        let result = std::thread::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock(); // inversion
        })
        .join();
        let panic = result.expect_err("inverted acquisition must panic");
        let message = panic.downcast_ref::<String>().expect("panic carries a message");
        assert!(message.contains("lock-order inversion"), "{message}");
        assert!(message.contains("previously observed"), "{message}");
    }

    #[test]
    fn same_class_nesting_is_ignored() {
        // Two locks from one construction site share a class; nesting
        // them must not be treated as an inversion.
        fn mint() -> Vec<Mutex<u32>> {
            (0..2).map(Mutex::new).collect()
        }
        let locks = mint();
        let _g0 = locks[0].lock();
        let _g1 = locks[1].lock();
    }

    #[test]
    fn out_of_order_guard_drops_are_tracked() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // drop the outer guard first
        drop(gb);
        // The held stack must be empty again: a fresh acquisition pair
        // in the same order succeeds without phantom frames.
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn edges_accumulate() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        let before = super::edges_observed();
        let _ga = a.lock();
        let _gb = b.lock();
        assert!(super::edges_observed() > before);
    }
}
