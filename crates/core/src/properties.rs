//! The WS-DAI core property document (paper §4.2, Figure 4).

use crate::name::AbstractName;
use dais_xml::{ns, QName, XmlElement};

/// Whether the resource's lifetime is controlled by the service (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceManagementKind {
    ExternallyManaged,
    ServiceManaged,
}

impl ResourceManagementKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ResourceManagementKind::ExternallyManaged => "ExternallyManaged",
            ResourceManagementKind::ServiceManaged => "ServiceManaged",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ExternallyManaged" => Some(Self::ExternallyManaged),
            "ServiceManaged" => Some(Self::ServiceManaged),
            _ => None,
        }
    }
}

/// Transactional behaviour on message arrival (§4.2: "there is no
/// transactional support, an atomic transaction is initiated on the
/// arrival of each message or the message corresponds to a transactional
/// context which is under the control of the consumer").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransactionInitiation {
    NotSupported,
    #[default]
    TransactionalPerMessage,
    TransactionalFromContext,
}

impl TransactionInitiation {
    pub fn as_str(self) -> &'static str {
        match self {
            TransactionInitiation::NotSupported => "NotSupported",
            TransactionInitiation::TransactionalPerMessage => "TransactionalPerMessage",
            TransactionInitiation::TransactionalFromContext => "TransactionalFromContext",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "NotSupported" => Some(Self::NotSupported),
            "TransactionalPerMessage" => Some(Self::TransactionalPerMessage),
            "TransactionalFromContext" => Some(Self::TransactionalFromContext),
            _ => None,
        }
    }
}

/// Isolation of concurrent transactions (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransactionIsolation {
    NotSupported,
    #[default]
    ReadUncommitted,
    ReadCommitted,
    RepeatableRead,
    Serializable,
}

impl TransactionIsolation {
    pub fn as_str(self) -> &'static str {
        match self {
            TransactionIsolation::NotSupported => "NotSupported",
            TransactionIsolation::ReadUncommitted => "ReadUncommitted",
            TransactionIsolation::ReadCommitted => "ReadCommitted",
            TransactionIsolation::RepeatableRead => "RepeatableRead",
            TransactionIsolation::Serializable => "Serializable",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "NotSupported" => Some(Self::NotSupported),
            "ReadUncommitted" => Some(Self::ReadUncommitted),
            "ReadCommitted" => Some(Self::ReadCommitted),
            "RepeatableRead" => Some(Self::RepeatableRead),
            "Serializable" => Some(Self::Serializable),
            _ => None,
        }
    }
}

/// Whether derived data reflects later changes to its parent (§4.2:
/// "whether changes in the parent data resource will be reflected in the
/// derived data or not").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sensitivity {
    /// A materialised copy: parent changes are not visible.
    #[default]
    Insensitive,
    /// View-like: re-evaluated against the parent on access.
    Sensitive,
}

impl Sensitivity {
    pub fn as_str(self) -> &'static str {
        match self {
            Sensitivity::Insensitive => "Insensitive",
            Sensitivity::Sensitive => "Sensitive",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "Insensitive" => Some(Self::Insensitive),
            "Sensitive" => Some(Self::Sensitive),
            _ => None,
        }
    }
}

/// One `DatasetMap` entry: for a given request message, the data format
/// URI the service can return (§4.2: "there will be one of these elements
/// for each possible supported return type").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetMap {
    /// The request message this mapping applies to (e.g. `SQLExecuteRequest`).
    pub message: QName,
    /// The format URI (e.g. the WebRowSet namespace).
    pub dataset_format: String,
}

/// One `ConfigurationMap` entry: for a factory message, the port type of
/// the data service that will serve the derived resource, plus the default
/// configurable property values (§4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigurationMap {
    pub message: QName,
    pub port_type: QName,
    pub defaults: ConfigurationDocument,
}

/// The configurable property values a consumer may set when creating a
/// derived resource through the indirect access pattern (§4.2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConfigurationDocument {
    pub description: Option<String>,
    pub readable: Option<bool>,
    pub writeable: Option<bool>,
    pub transaction_initiation: Option<TransactionInitiation>,
    pub transaction_isolation: Option<TransactionIsolation>,
    pub sensitivity: Option<Sensitivity>,
}

impl ConfigurationDocument {
    /// Overlay `other` on `self`: fields set in `other` win.
    pub fn overridden_by(&self, other: &ConfigurationDocument) -> ConfigurationDocument {
        ConfigurationDocument {
            description: other.description.clone().or_else(|| self.description.clone()),
            readable: other.readable.or(self.readable),
            writeable: other.writeable.or(self.writeable),
            transaction_initiation: other.transaction_initiation.or(self.transaction_initiation),
            transaction_isolation: other.transaction_isolation.or(self.transaction_isolation),
            sensitivity: other.sensitivity.or(self.sensitivity),
        }
    }

    /// Serialise as a `wsdai:ConfigurationDocument` element.
    pub fn to_xml(&self) -> XmlElement {
        let mut el = XmlElement::new(ns::WSDAI, "wsdai", "ConfigurationDocument");
        if let Some(d) = &self.description {
            el.push(XmlElement::new(ns::WSDAI, "wsdai", "DataResourceDescription").with_text(d));
        }
        if let Some(r) = self.readable {
            el.push(XmlElement::new(ns::WSDAI, "wsdai", "Readable").with_text(r.to_string()));
        }
        if let Some(w) = self.writeable {
            el.push(XmlElement::new(ns::WSDAI, "wsdai", "Writeable").with_text(w.to_string()));
        }
        if let Some(t) = self.transaction_initiation {
            el.push(
                XmlElement::new(ns::WSDAI, "wsdai", "TransactionInitiation").with_text(t.as_str()),
            );
        }
        if let Some(t) = self.transaction_isolation {
            el.push(
                XmlElement::new(ns::WSDAI, "wsdai", "TransactionIsolation").with_text(t.as_str()),
            );
        }
        if let Some(s) = self.sensitivity {
            el.push(XmlElement::new(ns::WSDAI, "wsdai", "Sensitivity").with_text(s.as_str()));
        }
        el
    }

    /// Parse from XML; unknown enum values yield `Err` (the
    /// `InvalidConfigurationDocument` fault at the service boundary).
    pub fn from_xml(el: &XmlElement) -> Result<ConfigurationDocument, String> {
        let mut doc = ConfigurationDocument {
            description: el.child_text(ns::WSDAI, "DataResourceDescription"),
            ..Default::default()
        };
        if let Some(t) = el.child_text(ns::WSDAI, "Readable") {
            doc.readable = Some(t.trim().parse().map_err(|_| format!("bad Readable value '{t}'"))?);
        }
        if let Some(t) = el.child_text(ns::WSDAI, "Writeable") {
            doc.writeable =
                Some(t.trim().parse().map_err(|_| format!("bad Writeable value '{t}'"))?);
        }
        if let Some(t) = el.child_text(ns::WSDAI, "TransactionInitiation") {
            doc.transaction_initiation = Some(
                TransactionInitiation::parse(t.trim())
                    .ok_or_else(|| format!("bad TransactionInitiation value '{t}'"))?,
            );
        }
        if let Some(t) = el.child_text(ns::WSDAI, "TransactionIsolation") {
            doc.transaction_isolation = Some(
                TransactionIsolation::parse(t.trim())
                    .ok_or_else(|| format!("bad TransactionIsolation value '{t}'"))?,
            );
        }
        if let Some(t) = el.child_text(ns::WSDAI, "Sensitivity") {
            doc.sensitivity = Some(
                Sensitivity::parse(t.trim())
                    .ok_or_else(|| format!("bad Sensitivity value '{t}'"))?,
            );
        }
        Ok(doc)
    }
}

/// The complete set of WS-DAI core properties for one resource.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreProperties {
    // -- static properties --
    pub abstract_name: AbstractName,
    pub parent: Option<AbstractName>,
    pub management: ResourceManagementKind,
    pub concurrent_access: bool,
    pub dataset_maps: Vec<DatasetMap>,
    pub configuration_maps: Vec<ConfigurationMap>,
    pub generic_query_languages: Vec<String>,
    // -- configurable properties --
    pub description: String,
    pub readable: bool,
    pub writeable: bool,
    pub transaction_initiation: TransactionInitiation,
    pub transaction_isolation: TransactionIsolation,
    pub sensitivity: Sensitivity,
}

impl CoreProperties {
    /// Sensible defaults for a fresh resource.
    pub fn new(abstract_name: AbstractName, management: ResourceManagementKind) -> CoreProperties {
        CoreProperties {
            abstract_name,
            parent: None,
            management,
            concurrent_access: true,
            dataset_maps: Vec::new(),
            configuration_maps: Vec::new(),
            generic_query_languages: Vec::new(),
            description: String::new(),
            readable: true,
            writeable: false,
            transaction_initiation: TransactionInitiation::default(),
            transaction_isolation: TransactionIsolation::default(),
            sensitivity: Sensitivity::default(),
        }
    }

    /// Apply a configuration document to the configurable properties.
    pub fn apply_configuration(&mut self, config: &ConfigurationDocument) {
        if let Some(d) = &config.description {
            self.description = d.clone();
        }
        if let Some(r) = config.readable {
            self.readable = r;
        }
        if let Some(w) = config.writeable {
            self.writeable = w;
        }
        if let Some(t) = config.transaction_initiation {
            self.transaction_initiation = t;
        }
        if let Some(t) = config.transaction_isolation {
            self.transaction_isolation = t;
        }
        if let Some(s) = config.sensitivity {
            self.sensitivity = s;
        }
    }

    /// Does the `DatasetMap` advertise `format` for `message`?
    pub fn supports_format(&self, message: &QName, format: &str) -> bool {
        self.dataset_maps.iter().any(|m| &m.message == message && m.dataset_format == format)
    }

    /// Serialise the property document: a `wsdai:PropertyDocument` whose
    /// children are the individual properties (ready for WSRF layering).
    pub fn to_xml(&self) -> XmlElement {
        let mut doc = XmlElement::new(ns::WSDAI, "wsdai", "PropertyDocument");
        doc.push(
            XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAbstractName")
                .with_text(self.abstract_name.as_str()),
        );
        let parent = XmlElement::new(ns::WSDAI, "wsdai", "ParentDataResource");
        doc.push(match &self.parent {
            Some(p) => parent.with_text(p.as_str()),
            None => parent,
        });
        doc.push(
            XmlElement::new(ns::WSDAI, "wsdai", "DataResourceManagement")
                .with_text(self.management.as_str()),
        );
        doc.push(
            XmlElement::new(ns::WSDAI, "wsdai", "ConcurrentAccess")
                .with_text(self.concurrent_access.to_string()),
        );
        for m in &self.dataset_maps {
            doc.push(
                XmlElement::new(ns::WSDAI, "wsdai", "DatasetMap")
                    .with_child(
                        XmlElement::new(ns::WSDAI, "wsdai", "MessageName")
                            .with_text(m.message.lexical()),
                    )
                    .with_child(
                        XmlElement::new(ns::WSDAI, "wsdai", "DatasetFormatURI")
                            .with_text(&m.dataset_format),
                    ),
            );
        }
        for m in &self.configuration_maps {
            doc.push(
                XmlElement::new(ns::WSDAI, "wsdai", "ConfigurationMap")
                    .with_child(
                        XmlElement::new(ns::WSDAI, "wsdai", "MessageName")
                            .with_text(m.message.lexical()),
                    )
                    .with_child(
                        XmlElement::new(ns::WSDAI, "wsdai", "PortTypeQName")
                            .with_text(m.port_type.lexical()),
                    )
                    .with_child(m.defaults.to_xml()),
            );
        }
        for l in &self.generic_query_languages {
            doc.push(XmlElement::new(ns::WSDAI, "wsdai", "GenericQueryLanguage").with_text(l));
        }
        doc.push(
            XmlElement::new(ns::WSDAI, "wsdai", "DataResourceDescription")
                .with_text(&self.description),
        );
        doc.push(
            XmlElement::new(ns::WSDAI, "wsdai", "Readable").with_text(self.readable.to_string()),
        );
        doc.push(
            XmlElement::new(ns::WSDAI, "wsdai", "Writeable").with_text(self.writeable.to_string()),
        );
        doc.push(
            XmlElement::new(ns::WSDAI, "wsdai", "TransactionInitiation")
                .with_text(self.transaction_initiation.as_str()),
        );
        doc.push(
            XmlElement::new(ns::WSDAI, "wsdai", "TransactionIsolation")
                .with_text(self.transaction_isolation.as_str()),
        );
        doc.push(
            XmlElement::new(ns::WSDAI, "wsdai", "Sensitivity").with_text(self.sensitivity.as_str()),
        );
        doc
    }

    /// Parse a property document back into the typed form.
    pub fn from_xml(doc: &XmlElement) -> Result<CoreProperties, String> {
        let name_text = doc
            .child_text(ns::WSDAI, "DataResourceAbstractName")
            .ok_or("missing DataResourceAbstractName")?;
        let abstract_name = AbstractName::new(name_text).map_err(|e| e.to_string())?;
        let parent = match doc.child_text(ns::WSDAI, "ParentDataResource") {
            Some(t) if !t.is_empty() => Some(AbstractName::new(t).map_err(|e| e.to_string())?),
            _ => None,
        };
        let management = doc
            .child_text(ns::WSDAI, "DataResourceManagement")
            .and_then(|t| ResourceManagementKind::parse(t.trim()))
            .ok_or("missing or invalid DataResourceManagement")?;
        let mut props = CoreProperties::new(abstract_name, management);
        props.parent = parent;
        props.concurrent_access = doc
            .child_text(ns::WSDAI, "ConcurrentAccess")
            .and_then(|t| t.trim().parse().ok())
            .unwrap_or(true);
        for m in doc.children_named(ns::WSDAI, "DatasetMap") {
            props.dataset_maps.push(DatasetMap {
                message: parse_lexical_qname(
                    &m.child_text(ns::WSDAI, "MessageName").unwrap_or_default(),
                ),
                dataset_format: m.child_text(ns::WSDAI, "DatasetFormatURI").unwrap_or_default(),
            });
        }
        for m in doc.children_named(ns::WSDAI, "ConfigurationMap") {
            props.configuration_maps.push(ConfigurationMap {
                message: parse_lexical_qname(
                    &m.child_text(ns::WSDAI, "MessageName").unwrap_or_default(),
                ),
                port_type: parse_lexical_qname(
                    &m.child_text(ns::WSDAI, "PortTypeQName").unwrap_or_default(),
                ),
                defaults: m
                    .child(ns::WSDAI, "ConfigurationDocument")
                    .map(ConfigurationDocument::from_xml)
                    .transpose()?
                    .unwrap_or_default(),
            });
        }
        props.generic_query_languages =
            doc.children_named(ns::WSDAI, "GenericQueryLanguage").map(|e| e.text()).collect();
        props.description =
            doc.child_text(ns::WSDAI, "DataResourceDescription").unwrap_or_default();
        props.readable = doc
            .child_text(ns::WSDAI, "Readable")
            .and_then(|t| t.trim().parse().ok())
            .unwrap_or(true);
        props.writeable = doc
            .child_text(ns::WSDAI, "Writeable")
            .and_then(|t| t.trim().parse().ok())
            .unwrap_or(false);
        if let Some(t) = doc.child_text(ns::WSDAI, "TransactionInitiation") {
            props.transaction_initiation =
                TransactionInitiation::parse(t.trim()).ok_or("invalid TransactionInitiation")?;
        }
        if let Some(t) = doc.child_text(ns::WSDAI, "TransactionIsolation") {
            props.transaction_isolation =
                TransactionIsolation::parse(t.trim()).ok_or("invalid TransactionIsolation")?;
        }
        if let Some(t) = doc.child_text(ns::WSDAI, "Sensitivity") {
            props.sensitivity = Sensitivity::parse(t.trim()).ok_or("invalid Sensitivity")?;
        }
        Ok(props)
    }
}

/// Parse a `prefix:local` lexical QName; the prefix is preserved but the
/// namespace is resolved by well-known prefixes (wsdai/wsdair/wsdaix).
/// Message and port-type names in property documents use these canonical
/// prefixes throughout this implementation.
fn parse_lexical_qname(lexical: &str) -> QName {
    match lexical.split_once(':') {
        Some((p, l)) => {
            let namespace = match p {
                "wsdai" => ns::WSDAI,
                "wsdair" => ns::WSDAIR,
                "wsdaix" => ns::WSDAIX,
                _ => "",
            };
            QName::new(namespace, p, l)
        }
        None => QName::local(lexical),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoreProperties {
        let mut p = CoreProperties::new(
            AbstractName::new("urn:dais:svc:db:0").unwrap(),
            ResourceManagementKind::ExternallyManaged,
        );
        p.parent = Some(AbstractName::new("urn:dais:svc:parent:0").unwrap());
        p.generic_query_languages = vec!["urn:sql:92".to_string()];
        p.dataset_maps.push(DatasetMap {
            message: QName::new(ns::WSDAIR, "wsdair", "SQLExecuteRequest"),
            dataset_format: ns::ROWSET.to_string(),
        });
        p.configuration_maps.push(ConfigurationMap {
            message: QName::new(ns::WSDAIR, "wsdair", "SQLExecuteFactoryRequest"),
            port_type: QName::new(ns::WSDAIR, "wsdair", "SQLResponseAccessPT"),
            defaults: ConfigurationDocument {
                readable: Some(true),
                writeable: Some(false),
                sensitivity: Some(Sensitivity::Insensitive),
                ..Default::default()
            },
        });
        p.description = "orders database".into();
        p
    }

    #[test]
    fn property_document_roundtrip() {
        let p = sample();
        let doc = p.to_xml();
        let rt = CoreProperties::from_xml(&doc).unwrap();
        assert_eq!(rt, p);
    }

    #[test]
    fn roundtrip_through_text() {
        let p = sample();
        let text = dais_xml::to_string(&p.to_xml());
        let rt = CoreProperties::from_xml(&dais_xml::parse(&text).unwrap()).unwrap();
        assert_eq!(rt, p);
    }

    #[test]
    fn document_contains_all_core_properties() {
        let doc = sample().to_xml();
        for local in [
            "DataResourceAbstractName",
            "ParentDataResource",
            "DataResourceManagement",
            "ConcurrentAccess",
            "DatasetMap",
            "ConfigurationMap",
            "GenericQueryLanguage",
            "DataResourceDescription",
            "Readable",
            "Writeable",
            "TransactionInitiation",
            "TransactionIsolation",
            "Sensitivity",
        ] {
            assert!(doc.child(ns::WSDAI, local).is_some(), "missing property {local}");
        }
    }

    #[test]
    fn configuration_document_roundtrip() {
        let c = ConfigurationDocument {
            description: Some("derived".into()),
            readable: Some(true),
            writeable: Some(false),
            transaction_initiation: Some(TransactionInitiation::NotSupported),
            transaction_isolation: Some(TransactionIsolation::ReadUncommitted),
            sensitivity: Some(Sensitivity::Sensitive),
        };
        let rt = ConfigurationDocument::from_xml(&c.to_xml()).unwrap();
        assert_eq!(rt, c);
        // Empty config is valid and empty.
        let empty = ConfigurationDocument::default();
        assert_eq!(ConfigurationDocument::from_xml(&empty.to_xml()).unwrap(), empty);
    }

    #[test]
    fn configuration_document_rejects_bad_values() {
        let el = XmlElement::new(ns::WSDAI, "wsdai", "ConfigurationDocument")
            .with_child(XmlElement::new(ns::WSDAI, "wsdai", "Readable").with_text("maybe"));
        assert!(ConfigurationDocument::from_xml(&el).is_err());
        let el = XmlElement::new(ns::WSDAI, "wsdai", "ConfigurationDocument")
            .with_child(XmlElement::new(ns::WSDAI, "wsdai", "Sensitivity").with_text("Psychic"));
        assert!(ConfigurationDocument::from_xml(&el).is_err());
    }

    #[test]
    fn overlay_semantics() {
        let base = ConfigurationDocument {
            readable: Some(true),
            writeable: Some(false),
            sensitivity: Some(Sensitivity::Insensitive),
            ..Default::default()
        };
        let request = ConfigurationDocument {
            writeable: Some(true),
            description: Some("mine".into()),
            ..Default::default()
        };
        let merged = base.overridden_by(&request);
        assert_eq!(merged.readable, Some(true)); // from base
        assert_eq!(merged.writeable, Some(true)); // overridden
        assert_eq!(merged.description.as_deref(), Some("mine"));
        assert_eq!(merged.sensitivity, Some(Sensitivity::Insensitive));
    }

    #[test]
    fn apply_configuration_sets_only_present_fields() {
        let mut p = sample();
        p.apply_configuration(&ConfigurationDocument {
            writeable: Some(true),
            ..Default::default()
        });
        assert!(p.writeable);
        assert!(p.readable); // untouched
        assert_eq!(p.description, "orders database"); // untouched
    }

    #[test]
    fn supports_format_consults_dataset_map() {
        let p = sample();
        let msg = QName::new(ns::WSDAIR, "wsdair", "SQLExecuteRequest");
        assert!(p.supports_format(&msg, ns::ROWSET));
        assert!(!p.supports_format(&msg, "urn:csv"));
        assert!(!p.supports_format(&QName::local("Other"), ns::ROWSET));
    }

    #[test]
    fn enum_parsing() {
        assert_eq!(
            TransactionIsolation::parse("Serializable"),
            Some(TransactionIsolation::Serializable)
        );
        assert_eq!(TransactionIsolation::parse("nope"), None);
        assert_eq!(Sensitivity::parse("Sensitive"), Some(Sensitivity::Sensitive));
        assert_eq!(
            TransactionInitiation::parse("TransactionalPerMessage"),
            Some(TransactionInitiation::TransactionalPerMessage)
        );
        assert_eq!(
            ResourceManagementKind::parse("ServiceManaged"),
            Some(ResourceManagementKind::ServiceManaged)
        );
    }
}
