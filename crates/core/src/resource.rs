//! The data resource abstraction (paper §3).

use crate::name::AbstractName;
use crate::properties::CoreProperties;
use dais_soap::fault::{DaisFault, Fault};
use dais_xml::XmlElement;
use std::any::Any;

pub use crate::properties::ResourceManagementKind as ResourceManagement;

/// Anything a data service can represent: "any entity that can act as a
/// source or sink of data". Realisations implement this for their
/// resource kinds (relational databases, SQL responses, rowsets, XML
/// collections, query sequences…).
pub trait DataResource: Send + Sync {
    /// The unique, persistent abstract name.
    fn abstract_name(&self) -> &AbstractName;

    /// The WS-DAI core properties (a snapshot).
    fn core_properties(&self) -> CoreProperties;

    /// The full property document: the core properties plus any
    /// realisation-specific extension properties.
    fn property_document(&self) -> XmlElement {
        self.core_properties().to_xml()
    }

    /// Service the model-independent `GenericQuery` operation. The
    /// default rejects every language; realisations override for the
    /// languages they advertise in `GenericQueryLanguage`.
    fn generic_query(&self, language: &str, _expression: &str) -> Result<Vec<XmlElement>, Fault> {
        Err(Fault::dais(
            DaisFault::InvalidLanguage,
            format!("query language '{language}' is not supported by this resource"),
        ))
    }

    /// Service one property update from the WSRF `SetResourceProperties`
    /// operation (Figure 7). The default refuses: most DAIS properties
    /// are descriptive and read-only. Resources with configurable
    /// properties override this for the subset they accept.
    fn set_property(&self, property: &XmlElement) -> Result<(), Fault> {
        Err(Fault::dais(
            DaisFault::NotAuthorized,
            format!("property '{}' is read-only on this resource", property.name.local),
        ))
    }

    /// Downcast hook so realisations can recover their concrete types
    /// from the shared registry.
    fn as_any(&self) -> &dyn Any;
}

/// A trivial in-memory resource used by tests and the thin examples: it
/// stores a property set and a fixed payload served via `GenericQuery`
/// with the pseudo-language `urn:echo`. Its description and access
/// flags are configurable through WSRF `SetResourceProperties`.
pub struct StaticResource {
    /// The abstract name is immutable for the resource's lifetime, so it
    /// is kept outside the lock and served without synchronisation.
    name: AbstractName,
    properties: dais_util::sync::RwLock<CoreProperties>,
    payload: Vec<XmlElement>,
}

impl StaticResource {
    pub fn new(mut properties: CoreProperties, payload: Vec<XmlElement>) -> StaticResource {
        if !properties.generic_query_languages.iter().any(|l| l == "urn:echo") {
            properties.generic_query_languages.push("urn:echo".to_string());
        }
        StaticResource {
            name: properties.abstract_name.clone(),
            properties: dais_util::sync::RwLock::new(properties),
            payload,
        }
    }
}

impl DataResource for StaticResource {
    fn abstract_name(&self) -> &AbstractName {
        &self.name
    }

    fn core_properties(&self) -> CoreProperties {
        self.properties.read().clone()
    }

    fn set_property(&self, property: &XmlElement) -> Result<(), Fault> {
        let parse_flag = |p: &XmlElement| match p.text().trim() {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(Fault::dais(
                DaisFault::InvalidConfigurationDocument,
                format!("'{other}' is not a boolean for {}", p.name.local),
            )),
        };
        if !property.name.is(dais_xml::ns::WSDAI, &property.name.local) {
            return Err(Fault::dais(
                DaisFault::NotAuthorized,
                format!("property '{}' is read-only on this resource", property.name.local),
            ));
        }
        let mut props = self.properties.write();
        match property.name.local.as_str() {
            "DataResourceDescription" => props.description = property.text().trim().to_string(),
            "Readable" => props.readable = parse_flag(property)?,
            "Writeable" => props.writeable = parse_flag(property)?,
            other => {
                return Err(Fault::dais(
                    DaisFault::NotAuthorized,
                    format!("property '{other}' is read-only on this resource"),
                ))
            }
        }
        Ok(())
    }

    fn generic_query(&self, language: &str, _expression: &str) -> Result<Vec<XmlElement>, Fault> {
        if language == "urn:echo" {
            Ok(self.payload.clone())
        } else {
            Err(Fault::dais(
                DaisFault::InvalidLanguage,
                format!("query language '{language}' is not supported by this resource"),
            ))
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::ResourceManagementKind;

    fn make() -> StaticResource {
        let props = CoreProperties::new(
            AbstractName::new("urn:dais:t:r:0").unwrap(),
            ResourceManagementKind::ServiceManaged,
        );
        StaticResource::new(props, vec![XmlElement::new_local("data").with_text("42")])
    }

    #[test]
    fn serves_echo_queries() {
        let r = make();
        let out = r.generic_query("urn:echo", "").unwrap();
        assert_eq!(out[0].text(), "42");
        let err = r.generic_query("urn:sql:92", "SELECT 1").unwrap_err();
        assert!(err.is(DaisFault::InvalidLanguage));
    }

    #[test]
    fn advertises_echo_language() {
        let r = make();
        assert!(r.core_properties().generic_query_languages.contains(&"urn:echo".to_string()));
    }

    #[test]
    fn property_document_defaults_to_core() {
        let r = make();
        let doc = r.property_document();
        assert!(doc.name.is(dais_xml::ns::WSDAI, "PropertyDocument"));
    }

    #[test]
    fn downcasting_works() {
        let r: Box<dyn DataResource> = Box::new(make());
        assert!(r.as_any().downcast_ref::<StaticResource>().is_some());
    }
}
