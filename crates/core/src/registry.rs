//! The data service's resource registry.
//!
//! "A data service may represent zero or more data resources" (§3). The
//! registry maps abstract names to resources and backs the optional
//! CoreResourceList interface (`GetResourceList` / `Resolve`).

use crate::name::AbstractName;
use crate::resource::DataResource;
use dais_util::sync::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A shared, thread-safe name → resource map.
#[derive(Clone, Default)]
pub struct ResourceRegistry {
    inner: Arc<RwLock<BTreeMap<AbstractName, Arc<dyn DataResource>>>>,
}

impl ResourceRegistry {
    pub fn new() -> ResourceRegistry {
        ResourceRegistry::default()
    }

    /// Register a resource under its abstract name. Returns `false` if a
    /// resource with that name was already present (and leaves it).
    pub fn register(&self, resource: Arc<dyn DataResource>) -> bool {
        let name = resource.abstract_name().clone();
        let mut map = self.inner.write();
        if map.contains_key(&name) {
            return false;
        }
        map.insert(name, resource);
        true
    }

    /// Look up by abstract name.
    pub fn get(&self, name: &AbstractName) -> Option<Arc<dyn DataResource>> {
        self.inner.read().get(name).cloned()
    }

    /// Look up by abstract name in string form.
    pub fn get_str(&self, name: &str) -> Option<Arc<dyn DataResource>> {
        let name = AbstractName::new(name).ok()?;
        self.get(&name)
    }

    /// Remove (destroy the service–resource relationship). Returns the
    /// removed resource so callers can finalise service-managed data.
    pub fn remove(&self, name: &AbstractName) -> Option<Arc<dyn DataResource>> {
        self.inner.write().remove(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<AbstractName> {
        self.inner.read().keys().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{CoreProperties, ResourceManagementKind};
    use crate::resource::StaticResource;

    fn resource(name: &str) -> Arc<dyn DataResource> {
        Arc::new(StaticResource::new(
            CoreProperties::new(
                AbstractName::new(name).unwrap(),
                ResourceManagementKind::ServiceManaged,
            ),
            vec![],
        ))
    }

    #[test]
    fn register_resolve_remove() {
        let reg = ResourceRegistry::new();
        assert!(reg.register(resource("urn:a")));
        assert!(reg.register(resource("urn:b")));
        assert!(!reg.register(resource("urn:a"))); // duplicate
        assert_eq!(reg.len(), 2);
        assert!(reg.get_str("urn:a").is_some());
        assert!(reg.get_str("urn:zzz").is_none());
        assert!(reg.get_str("not a uri").is_none());
        let removed = reg.remove(&AbstractName::new("urn:a").unwrap());
        assert!(removed.is_some());
        assert!(reg.get_str("urn:a").is_none());
        assert_eq!(reg.names(), vec![AbstractName::new("urn:b").unwrap()]);
    }

    #[test]
    fn shared_between_clones() {
        let reg = ResourceRegistry::new();
        let reg2 = reg.clone();
        reg.register(resource("urn:x"));
        assert!(reg2.get_str("urn:x").is_some());
    }
}
