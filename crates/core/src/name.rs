//! Abstract names: unique, persistent URIs identifying data resources.
//!
//! The paper (§3): "A data resource must always have an identifier, an
//! abstract name, which is unique and persistent. … for now DAIS uses a
//! URI to represent data resource's abstract names."

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A data resource's abstract name — an opaque URI.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AbstractName(String);

impl AbstractName {
    /// Wrap an existing URI. Leading/trailing whitespace is rejected:
    /// abstract names travel in XML text content and must round-trip.
    pub fn new(uri: impl Into<String>) -> Result<AbstractName, InvalidName> {
        let uri = uri.into();
        if uri.is_empty() || uri.trim() != uri || !uri.contains(':') {
            return Err(InvalidName(uri));
        }
        Ok(AbstractName(uri))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AbstractName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The error for a string that cannot be an abstract name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidName(pub String);

impl fmt::Display for InvalidName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'{}' is not a valid abstract name (must be a non-empty URI)", self.0)
    }
}

impl std::error::Error for InvalidName {}

/// Mints unique abstract names within a naming authority (usually the
/// data service). Deterministic — a process-local counter — so tests and
/// experiments are reproducible.
#[derive(Debug)]
pub struct NameGenerator {
    authority: String,
    counter: AtomicU64,
}

impl NameGenerator {
    /// `authority` scopes the generated URIs, e.g. a service name.
    pub fn new(authority: impl Into<String>) -> NameGenerator {
        NameGenerator { authority: authority.into(), counter: AtomicU64::new(0) }
    }

    /// Mint the next name: `urn:dais:<authority>:<kind>:<n>`.
    pub fn mint(&self, kind: &str) -> AbstractName {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        AbstractName(format!("urn:dais:{}:{}:{}", self.authority, kind, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_names() {
        assert!(AbstractName::new("urn:dais:x").is_ok());
        assert!(AbstractName::new("http://example.org/r1").is_ok());
        assert!(AbstractName::new("").is_err());
        assert!(AbstractName::new(" urn:x").is_err());
        assert!(AbstractName::new("no-scheme").is_err());
    }

    #[test]
    fn generator_mints_unique_names() {
        let g = NameGenerator::new("svc1");
        let a = g.mint("response");
        let b = g.mint("response");
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("urn:dais:svc1:response:"));
    }

    #[test]
    fn generator_is_thread_safe() {
        let g = std::sync::Arc::new(NameGenerator::new("svc"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || (0..100).map(|_| g.mint("r")).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<AbstractName> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before);
    }
}
