//! `ResourceRef`: one value naming both halves of a data resource's
//! address.
//!
//! Consumers used to thread a stringly-typed `(endpoint address,
//! resource id)` pair through every client they built — the endpoint to
//! bind the SOAP client to and the abstract name to put in each request
//! body. A [`ResourceRef`] carries both, parses from and displays as a
//! single URI, and is the key the federation shard router maps logical
//! resources with.
//!
//! ## Grammar
//!
//! ```text
//! dais://<authority>/<resource>
//! ```
//!
//! `<authority>` is the bus endpoint path (what follows `bus://` in a
//! service address; it may itself contain `/` segments, e.g. `e13/sql`).
//! `<resource>` is the data resource's abstract name — a URI, so it
//! always contains a `:`. The split point is unambiguous because bus
//! authorities never contain `:`: the resource starts at the first
//! path segment that does.

use crate::name::{AbstractName, InvalidName};
use std::fmt;
use std::str::FromStr;

/// A fully-qualified reference to one data resource behind one service
/// endpoint: `dais://<authority>/<resource>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceRef {
    authority: String,
    resource: AbstractName,
}

/// The error for a string that cannot be a [`ResourceRef`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidRef(pub String);

impl fmt::Display for InvalidRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'{}' is not a valid resource reference (dais://<authority>/<resource>)", self.0)
    }
}

impl std::error::Error for InvalidRef {}

impl ResourceRef {
    /// Pair an authority with a resource name. The authority must be
    /// non-empty and `:`-free (a `:` would make the grammar ambiguous).
    pub fn new(
        authority: impl Into<String>,
        resource: AbstractName,
    ) -> Result<ResourceRef, InvalidRef> {
        let authority = authority.into();
        if authority.is_empty()
            || authority.contains(':')
            || authority.starts_with('/')
            || authority.ends_with('/')
        {
            return Err(InvalidRef(format!("dais://{authority}/{resource}")));
        }
        Ok(ResourceRef { authority, resource })
    }

    /// Build from a bus endpoint address (`bus://orders`) and the
    /// resource served there.
    pub fn from_parts(address: &str, resource: &AbstractName) -> Result<ResourceRef, InvalidRef> {
        let authority = address.strip_prefix("bus://").unwrap_or(address);
        ResourceRef::new(authority, resource.clone())
    }

    /// Parse the `dais://<authority>/<resource>` form.
    pub fn parse(s: &str) -> Result<ResourceRef, InvalidRef> {
        let err = || InvalidRef(s.to_string());
        let rest = s.strip_prefix("dais://").ok_or_else(err)?;
        // The resource starts at the first path segment containing `:`.
        let mut offset = 0usize;
        for segment in rest.split('/') {
            if segment.contains(':') {
                if offset == 0 {
                    return Err(err()); // no authority
                }
                let authority = &rest[..offset - 1];
                let resource = AbstractName::new(&rest[offset..]).map_err(|_| err())?;
                return ResourceRef::new(authority, resource).map_err(|_| err());
            }
            offset += segment.len() + 1;
        }
        Err(err())
    }

    /// The bus endpoint path (without the `bus://` scheme).
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// The abstract name carried in request bodies.
    pub fn resource(&self) -> &AbstractName {
        &self.resource
    }

    /// The service address a client binds to: `bus://<authority>`.
    pub fn endpoint_address(&self) -> String {
        format!("bus://{}", self.authority)
    }

    /// The same authority, naming a different resource — how a consumer
    /// follows a factory response without re-stating the endpoint.
    pub fn with_resource(&self, resource: AbstractName) -> ResourceRef {
        ResourceRef { authority: self.authority.clone(), resource }
    }
}

impl fmt::Display for ResourceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dais://{}/{}", self.authority, self.resource)
    }
}

impl FromStr for ResourceRef {
    type Err = InvalidRef;

    fn from_str(s: &str) -> Result<ResourceRef, InvalidRef> {
        ResourceRef::parse(s)
    }
}

impl From<InvalidName> for InvalidRef {
    fn from(e: InvalidName) -> InvalidRef {
        InvalidRef(e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> AbstractName {
        AbstractName::new(s).unwrap()
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let r = ResourceRef::new("orders", name("urn:dais:orders:db:0")).unwrap();
        assert_eq!(r.to_string(), "dais://orders/urn:dais:orders:db:0");
        assert_eq!(ResourceRef::parse(&r.to_string()).unwrap(), r);
        assert_eq!(r.endpoint_address(), "bus://orders");
        assert_eq!(r.resource().as_str(), "urn:dais:orders:db:0");
    }

    #[test]
    fn multi_segment_authorities_split_unambiguously() {
        let r: ResourceRef = "dais://e13/sql/urn:dais:e13-sql:db:0".parse().unwrap();
        assert_eq!(r.authority(), "e13/sql");
        assert_eq!(r.resource().as_str(), "urn:dais:e13-sql:db:0");
        assert_eq!(r.endpoint_address(), "bus://e13/sql");
        assert_eq!(ResourceRef::parse(&r.to_string()).unwrap(), r);
    }

    #[test]
    fn from_parts_strips_the_bus_scheme() {
        let r =
            ResourceRef::from_parts("bus://fleet/shard/0/r1", &name("urn:dais:s:db:0")).unwrap();
        assert_eq!(r.authority(), "fleet/shard/0/r1");
        let bare = ResourceRef::from_parts("fleet", &name("urn:dais:s:db:0")).unwrap();
        assert_eq!(bare.endpoint_address(), "bus://fleet");
    }

    #[test]
    fn with_resource_keeps_the_authority() {
        let r = ResourceRef::new("orders", name("urn:dais:orders:db:0")).unwrap();
        let derived = r.with_resource(name("urn:dais:orders:rowset:3"));
        assert_eq!(derived.authority(), "orders");
        assert_eq!(derived.resource().as_str(), "urn:dais:orders:rowset:3");
    }

    #[test]
    fn malformed_refs_are_rejected() {
        for bad in [
            "orders/urn:dais:x",         // missing scheme
            "dais://urn:dais:x",         // no authority
            "dais:///urn:dais:x",        // empty authority
            "dais://orders",             // no resource
            "dais://orders/plain-name",  // resource is not a URI
            "dais://or:ders/urn:dais:x", // `:` in the authority
        ] {
            assert!(ResourceRef::parse(bad).is_err(), "accepted {bad}");
        }
        assert!(ResourceRef::new("", name("urn:x:y")).is_err());
        assert!(ResourceRef::new("a:b", name("urn:x:y")).is_err());
        assert!(ResourceRef::new("/a", name("urn:x:y")).is_err());
    }

    #[test]
    fn refs_order_and_hash_for_router_keys() {
        use std::collections::HashMap;
        let a = ResourceRef::new("a", name("urn:x:1")).unwrap();
        let b = ResourceRef::new("b", name("urn:x:1")).unwrap();
        assert!(a < b);
        let mut m = HashMap::new();
        m.insert(a.clone(), 1);
        assert_eq!(m.get(&a), Some(&1));
        assert_eq!(m.get(&b), None);
    }
}
