//! Indirect-access plumbing (paper Figure 3): derived resources created
//! by factory operations, configured by a `ConfigurationDocument`, and
//! addressed by an EPR whose reference parameters carry the abstract name.

use crate::messages;
use crate::name::AbstractName;
use crate::properties::{ConfigurationDocument, ConfigurationMap, CoreProperties};
use dais_soap::addressing::Epr;
use dais_soap::fault::{DaisFault, Fault};
use dais_xml::{ns, QName, XmlElement};

/// What a factory request asked for: the port type the consumer wants the
/// derived resource served through, and configurable property overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedResourceConfig {
    pub parent: AbstractName,
    /// Lexical QName of the requested access port type, if any.
    pub requested_port_type: Option<String>,
    pub configuration: ConfigurationDocument,
}

impl DerivedResourceConfig {
    /// Parse the common factory-request fields (Figure 3: abstract name,
    /// optional `PortTypeQName`, optional `ConfigurationDocument`).
    pub fn from_request(body: &XmlElement) -> Result<DerivedResourceConfig, Fault> {
        let parent = messages::extract_resource_name(body)?;
        let requested_port_type = messages::extract_port_type(body);
        let configuration = match body.child(ns::WSDAI, "ConfigurationDocument") {
            Some(el) => ConfigurationDocument::from_xml(el)
                .map_err(|e| Fault::dais(DaisFault::InvalidConfigurationDocument, e))?,
            None => ConfigurationDocument::default(),
        };
        Ok(DerivedResourceConfig { parent, requested_port_type, configuration })
    }

    /// Validate against the parent's `ConfigurationMap` for `message`:
    /// the requested port type (if named) must be the advertised one, and
    /// the map's defaults are merged under the request's overrides.
    /// Returns the port type to serve and the effective configuration.
    pub fn resolve_against(
        &self,
        maps: &[ConfigurationMap],
        message: &QName,
    ) -> Result<(QName, ConfigurationDocument), Fault> {
        let map = maps.iter().find(|m| &m.message == message).ok_or_else(|| {
            Fault::dais(
                DaisFault::InvalidPortType,
                format!("service has no ConfigurationMap for message {message}"),
            )
        })?;
        if let Some(requested) = &self.requested_port_type {
            if requested != &map.port_type.lexical() {
                return Err(Fault::dais(
                    DaisFault::InvalidPortType,
                    format!(
                        "requested port type '{requested}' is not available; the ConfigurationMap offers '{}'",
                        map.port_type.lexical()
                    ),
                ));
            }
        }
        Ok((map.port_type.clone(), map.defaults.overridden_by(&self.configuration)))
    }

    /// Build the core properties of the derived (service-managed)
    /// resource: parented to this request's target, configured by the
    /// effective configuration document.
    pub fn derived_properties(
        &self,
        name: AbstractName,
        effective: &ConfigurationDocument,
    ) -> CoreProperties {
        let mut props =
            CoreProperties::new(name, crate::properties::ResourceManagementKind::ServiceManaged);
        props.parent = Some(self.parent.clone());
        props.apply_configuration(effective);
        props
    }
}

/// Mint the EPR for a resource served at `service_address`, with the
/// abstract name in the reference parameters (§3: "a data resource
/// address … which also contains the abstract name of the data resource
/// in its reference parameters").
pub fn mint_resource_epr(service_address: &str, name: &AbstractName) -> Epr {
    Epr::for_resource(service_address, name.as_str())
}

/// Build the standard factory response: the EPR wrapped as
/// `wsdai:DataResourceAddress` inside a named response element.
pub fn factory_response(
    response_name: &str,
    namespace: &str,
    prefix: &str,
    epr: &Epr,
) -> XmlElement {
    let mut response = XmlElement::new(namespace, prefix, response_name);
    response.push(epr.to_xml_named(XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAddress")));
    response
}

/// Extract the EPR from a factory response.
pub fn parse_factory_response(response: &XmlElement) -> Result<Epr, Fault> {
    let addr = response
        .child(ns::WSDAI, "DataResourceAddress")
        .ok_or_else(|| Fault::client("factory response carries no DataResourceAddress"))?;
    Epr::from_xml(addr).ok_or_else(|| Fault::client("malformed DataResourceAddress"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::Sensitivity;

    fn map() -> ConfigurationMap {
        ConfigurationMap {
            message: QName::new(ns::WSDAIR, "wsdair", "SQLExecuteFactoryRequest"),
            port_type: QName::new(ns::WSDAIR, "wsdair", "SQLResponseAccessPT"),
            defaults: ConfigurationDocument {
                readable: Some(true),
                writeable: Some(false),
                sensitivity: Some(Sensitivity::Insensitive),
                ..Default::default()
            },
        }
    }

    fn request_body(port: Option<&str>) -> XmlElement {
        let mut body = messages::request(
            "SQLExecuteFactoryRequest",
            &AbstractName::new("urn:dais:svc:db:0").unwrap(),
        );
        if let Some(p) = port {
            body.push(XmlElement::new(ns::WSDAI, "wsdai", "PortTypeQName").with_text(p));
        }
        body.push(
            ConfigurationDocument { description: Some("derived".into()), ..Default::default() }
                .to_xml(),
        );
        body
    }

    #[test]
    fn parses_factory_request() {
        let config =
            DerivedResourceConfig::from_request(&request_body(Some("wsdair:SQLResponseAccessPT")))
                .unwrap();
        assert_eq!(config.parent.as_str(), "urn:dais:svc:db:0");
        assert_eq!(config.requested_port_type.as_deref(), Some("wsdair:SQLResponseAccessPT"));
        assert_eq!(config.configuration.description.as_deref(), Some("derived"));
    }

    #[test]
    fn resolves_port_type_and_defaults() {
        let config = DerivedResourceConfig::from_request(&request_body(None)).unwrap();
        let (port, effective) = config
            .resolve_against(
                &[map()],
                &QName::new(ns::WSDAIR, "wsdair", "SQLExecuteFactoryRequest"),
            )
            .unwrap();
        assert_eq!(port.lexical(), "wsdair:SQLResponseAccessPT");
        // Defaults from the map, overrides from the request.
        assert_eq!(effective.readable, Some(true));
        assert_eq!(effective.description.as_deref(), Some("derived"));
        assert_eq!(effective.sensitivity, Some(Sensitivity::Insensitive));
    }

    #[test]
    fn wrong_port_type_faults() {
        let config =
            DerivedResourceConfig::from_request(&request_body(Some("wsdair:SomethingElse")))
                .unwrap();
        let err = config
            .resolve_against(
                &[map()],
                &QName::new(ns::WSDAIR, "wsdair", "SQLExecuteFactoryRequest"),
            )
            .unwrap_err();
        assert!(err.is(DaisFault::InvalidPortType));
    }

    #[test]
    fn unknown_message_faults() {
        let config = DerivedResourceConfig::from_request(&request_body(None)).unwrap();
        let err = config
            .resolve_against(
                &[map()],
                &QName::new(ns::WSDAIX, "wsdaix", "XPathExecuteFactoryRequest"),
            )
            .unwrap_err();
        assert!(err.is(DaisFault::InvalidPortType));
    }

    #[test]
    fn invalid_configuration_faults() {
        let mut body = messages::request(
            "SQLExecuteFactoryRequest",
            &AbstractName::new("urn:dais:svc:db:0").unwrap(),
        );
        body.push(
            XmlElement::new(ns::WSDAI, "wsdai", "ConfigurationDocument")
                .with_child(XmlElement::new(ns::WSDAI, "wsdai", "Readable").with_text("perhaps")),
        );
        let err = DerivedResourceConfig::from_request(&body).unwrap_err();
        assert!(err.is(DaisFault::InvalidConfigurationDocument));
    }

    #[test]
    fn derived_properties_are_service_managed_and_parented() {
        let config = DerivedResourceConfig::from_request(&request_body(None)).unwrap();
        let (_, effective) = config
            .resolve_against(
                &[map()],
                &QName::new(ns::WSDAIR, "wsdair", "SQLExecuteFactoryRequest"),
            )
            .unwrap();
        let props = config
            .derived_properties(AbstractName::new("urn:dais:svc:response:7").unwrap(), &effective);
        assert_eq!(props.management, crate::properties::ResourceManagementKind::ServiceManaged);
        assert_eq!(props.parent.as_ref().unwrap().as_str(), "urn:dais:svc:db:0");
        assert_eq!(props.description, "derived");
        assert!(!props.writeable);
    }

    #[test]
    fn factory_response_roundtrip() {
        let epr = mint_resource_epr("bus://svc2", &AbstractName::new("urn:dais:svc:r:1").unwrap());
        let response = factory_response("SQLExecuteFactoryResponse", ns::WSDAIR, "wsdair", &epr);
        assert!(response.name.is(ns::WSDAIR, "SQLExecuteFactoryResponse"));
        let parsed = parse_factory_response(&response).unwrap();
        assert_eq!(parsed, epr);
        assert_eq!(parsed.resource_abstract_name().as_deref(), Some("urn:dais:svc:r:1"));
    }
}
