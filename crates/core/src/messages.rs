//! WS-DAI message names, SOAP actions, and request/response helpers.
//!
//! Every DAIS request body carries the target resource's
//! `DataResourceAbstractName` (paper §3 and §5: mandated "so that the
//! messaging framework is the same regardless of whether WSRF is used or
//! not"). Helpers here build and pick apart those message shapes so the
//! realisations share one implementation of the pattern in Figure 2.

use crate::name::AbstractName;
use dais_soap::fault::{DaisFault, Fault};
use dais_xml::{ns, XmlElement};

/// SOAP action URIs for the WS-DAI core operations (Figure 6).
pub mod actions {
    pub const GET_DATA_RESOURCE_PROPERTY_DOCUMENT: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAI/GetDataResourcePropertyDocument";
    pub const DESTROY_DATA_RESOURCE: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAI/DestroyDataResource";
    pub const GENERIC_QUERY: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAI/GenericQuery";
    pub const GET_RESOURCE_LIST: &str =
        "http://www.ggf.org/namespaces/2005/12/WS-DAI/GetResourceList";
    pub const RESOLVE: &str = "http://www.ggf.org/namespaces/2005/12/WS-DAI/Resolve";

    /// The complete WS-DAI core inventory, for conformance tests.
    pub const ALL: &[&str] = &[
        GET_DATA_RESOURCE_PROPERTY_DOCUMENT,
        DESTROY_DATA_RESOURCE,
        GENERIC_QUERY,
        GET_RESOURCE_LIST,
        RESOLVE,
    ];
}

/// Build a request element carrying the mandatory abstract name.
pub fn request(local: &str, resource: &AbstractName) -> XmlElement {
    XmlElement::new(ns::WSDAI, "wsdai", local).with_child(
        XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAbstractName")
            .with_text(resource.as_str()),
    )
}

/// Extract the mandatory abstract name from a request body, faulting with
/// `InvalidResourceName` when absent or malformed.
pub fn extract_resource_name(body: &XmlElement) -> Result<AbstractName, Fault> {
    let text = body.child_text(ns::WSDAI, "DataResourceAbstractName").ok_or_else(|| {
        Fault::dais(
            DaisFault::InvalidResourceName,
            "request body carries no wsdai:DataResourceAbstractName",
        )
    })?;
    AbstractName::new(text.trim().to_string())
        .map_err(|e| Fault::dais(DaisFault::InvalidResourceName, e.to_string()))
}

/// Extract the `DataFormatURI` of a direct-access request, if present.
pub fn extract_format_uri(body: &XmlElement) -> Option<String> {
    body.child_text(ns::WSDAI, "DataFormatURI").map(|t| t.trim().to_string())
}

/// Extract the `PortTypeQName` of an indirect-access (factory) request.
pub fn extract_port_type(body: &XmlElement) -> Option<String> {
    body.child_text(ns::WSDAI, "PortTypeQName").map(|t| t.trim().to_string())
}

/// Build a `GenericQueryRequest`.
pub fn generic_query_request(
    resource: &AbstractName,
    language: &str,
    expression: &str,
) -> XmlElement {
    request("GenericQueryRequest", resource)
        .with_child(XmlElement::new(ns::WSDAI, "wsdai", "GenericQueryLanguage").with_text(language))
        .with_child(XmlElement::new(ns::WSDAI, "wsdai", "GenericExpression").with_text(expression))
}

/// Parse the language/expression pair from a `GenericQueryRequest`.
pub fn parse_generic_query(body: &XmlElement) -> Result<(String, String), Fault> {
    let language = body
        .child_text(ns::WSDAI, "GenericQueryLanguage")
        .ok_or_else(|| Fault::dais(DaisFault::InvalidLanguage, "missing GenericQueryLanguage"))?;
    let expression = body
        .child_text(ns::WSDAI, "GenericExpression")
        .ok_or_else(|| Fault::dais(DaisFault::InvalidExpression, "missing GenericExpression"))?;
    Ok((language, expression))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_carries_abstract_name() {
        let name = AbstractName::new("urn:dais:x:r:1").unwrap();
        let req = request("GetDataResourcePropertyDocumentRequest", &name);
        assert_eq!(extract_resource_name(&req).unwrap(), name);
    }

    #[test]
    fn missing_name_faults() {
        let body = XmlElement::new(ns::WSDAI, "wsdai", "SomeRequest");
        let fault = extract_resource_name(&body).unwrap_err();
        assert!(fault.is(DaisFault::InvalidResourceName));
    }

    #[test]
    fn malformed_name_faults() {
        let body = XmlElement::new(ns::WSDAI, "wsdai", "SomeRequest").with_child(
            XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAbstractName").with_text("not a uri"),
        );
        assert!(extract_resource_name(&body).unwrap_err().is(DaisFault::InvalidResourceName));
    }

    #[test]
    fn generic_query_roundtrip() {
        let name = AbstractName::new("urn:dais:x:r:1").unwrap();
        let req = generic_query_request(&name, "urn:sql:92", "SELECT 1");
        let (lang, expr) = parse_generic_query(&req).unwrap();
        assert_eq!(lang, "urn:sql:92");
        assert_eq!(expr, "SELECT 1");
        assert_eq!(extract_resource_name(&req).unwrap(), name);
    }

    #[test]
    fn optional_fields() {
        let name = AbstractName::new("urn:dais:x:r:1").unwrap();
        let mut req = request("X", &name);
        assert_eq!(extract_format_uri(&req), None);
        assert_eq!(extract_port_type(&req), None);
        req.push(XmlElement::new(ns::WSDAI, "wsdai", "DataFormatURI").with_text("urn:fmt"));
        req.push(XmlElement::new(ns::WSDAI, "wsdai", "PortTypeQName").with_text("wsdair:PT"));
        assert_eq!(extract_format_uri(&req).as_deref(), Some("urn:fmt"));
        assert_eq!(extract_port_type(&req).as_deref(), Some("wsdair:PT"));
    }
}
