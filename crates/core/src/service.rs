//! Service-side assembly: core WS-DAI operations and the optional WSRF
//! layer, registered onto a SOAP dispatcher.
//!
//! DAIS does not prescribe how interfaces combine into services (§4.3:
//! "the proposed interfaces may be used in isolation or in conjunction
//! with others"), so this module exposes *registrars*: a realisation
//! builds a [`dais_soap::SoapDispatcher`], calls [`register_core_ops`]
//! (and optionally [`register_wsrf_ops`], Figure 7) and then registers
//! its own realisation-specific operations.

use crate::messages::{self, actions};
use crate::name::AbstractName;
use crate::registry::ResourceRegistry;
use crate::resource::DataResource;
use dais_soap::addressing::Epr;
use dais_soap::envelope::Envelope;
use dais_soap::fault::{DaisFault, Fault};
use dais_soap::service::SoapDispatcher;
use dais_wsrf::{lifetime, properties as wsrf_props, LifetimeRegistry};
use dais_xml::{ns, QName, XPathContext, XPathValue, XmlElement};
use std::sync::Arc;

/// A hook that may rewrite `(language, expression)` before execution —
/// the "thick wrapper" of §2.1 ("at liberty to intercept, parse,
/// translate or redirect such language statements"). `None` is the thin
/// wrapper: statements pass through untouched.
pub type QueryRewriter = Arc<dyn Fn(&str, &str) -> (String, String) + Send + Sync>;

/// Everything the operation handlers need about their data service.
pub struct ServiceContext {
    /// The bus address consumers reach this service at (used to mint EPRs).
    pub address: String,
    pub registry: ResourceRegistry,
    /// Present when the WSRF layer is enabled: soft-state lifetimes.
    pub lifetime: Option<Arc<LifetimeRegistry>>,
    /// Optional thick-wrapper statement rewriter.
    pub query_rewriter: Option<QueryRewriter>,
}

impl ServiceContext {
    pub fn new(address: impl Into<String>, registry: ResourceRegistry) -> Arc<ServiceContext> {
        Arc::new(ServiceContext {
            address: address.into(),
            registry,
            lifetime: None,
            query_rewriter: None,
        })
    }

    pub fn with_wsrf(
        address: impl Into<String>,
        registry: ResourceRegistry,
        lifetime: Arc<LifetimeRegistry>,
    ) -> Arc<ServiceContext> {
        Arc::new(ServiceContext {
            address: address.into(),
            registry,
            lifetime: Some(lifetime),
            query_rewriter: None,
        })
    }

    /// Resolve the resource a request body targets, honouring soft-state
    /// expiry when the WSRF layer is active.
    pub fn resolve_resource(&self, body: &XmlElement) -> Result<Arc<dyn DataResource>, Fault> {
        let name = messages::extract_resource_name(body)?;
        self.resolve_by_name(&name)
    }

    /// Resolve by abstract name, faulting appropriately.
    pub fn resolve_by_name(&self, name: &AbstractName) -> Result<Arc<dyn DataResource>, Fault> {
        if let Some(lifetime) = &self.lifetime {
            // Expired soft-state resources are unavailable and reaped.
            if lifetime.termination_time(name.as_str()).is_ok() && !lifetime.is_alive(name.as_str())
            {
                let _ = lifetime.destroy(name.as_str());
                self.registry.remove(name);
                return Err(Fault::dais(
                    DaisFault::DataResourceUnavailable,
                    format!("resource {name} has passed its termination time"),
                ));
            }
        }
        self.registry.get(name).ok_or_else(|| {
            Fault::dais(DaisFault::InvalidResourceName, format!("no resource named {name}"))
        })
    }

    /// Register a resource, also tracking its lifetime when WSRF is on.
    pub fn add_resource(&self, resource: Arc<dyn DataResource>) {
        if let Some(lifetime) = &self.lifetime {
            lifetime.register(resource.abstract_name().as_str());
        }
        self.registry.register(resource);
    }

    /// Destroy the service–resource relationship (the core
    /// `DestroyDataResource` semantics of §4.3).
    pub fn destroy_resource(&self, name: &AbstractName) -> Result<(), Fault> {
        if let Some(lifetime) = &self.lifetime {
            let _ = lifetime.destroy(name.as_str());
        }
        self.registry.remove(name).map(|_| ()).ok_or_else(|| {
            Fault::dais(DaisFault::InvalidResourceName, format!("no resource named {name}"))
        })
    }

    /// Reap every expired soft-state resource (the sweeper of §5).
    /// Returns the abstract names removed.
    pub fn sweep_expired(&self) -> Vec<String> {
        let Some(lifetime) = &self.lifetime else { return Vec::new() };
        let expired = lifetime.sweep();
        for name in &expired {
            if let Ok(n) = AbstractName::new(name.clone()) {
                self.registry.remove(&n);
            }
        }
        expired
    }
}

fn payload(request: &Envelope) -> Result<&XmlElement, Fault> {
    request.payload().ok_or_else(|| Fault::client("request has an empty SOAP body"))
}

fn respond(element: XmlElement) -> Result<Envelope, Fault> {
    Ok(Envelope::with_body(element))
}

/// Register the CoreDataAccess and CoreResourceList operations (Figure 6).
pub fn register_core_ops(dispatcher: &mut SoapDispatcher, ctx: Arc<ServiceContext>) {
    let c = ctx.clone();
    dispatcher.register(actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let mut response =
            XmlElement::new(ns::WSDAI, "wsdai", "GetDataResourcePropertyDocumentResponse");
        response.push(resource.property_document());
        respond(response)
    });

    let c = ctx.clone();
    dispatcher.register(actions::DESTROY_DATA_RESOURCE, move |req: &Envelope| {
        let body = payload(req)?;
        let name = messages::extract_resource_name(body)?;
        c.destroy_resource(&name)?;
        respond(XmlElement::new(ns::WSDAI, "wsdai", "DestroyDataResourceResponse"))
    });

    let c = ctx.clone();
    dispatcher.register(actions::GENERIC_QUERY, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let (language, expression) = messages::parse_generic_query(body)?;
        let props = resource.core_properties();
        if !props.readable {
            return Err(Fault::dais(DaisFault::NotAuthorized, "resource is not readable"));
        }
        if !props.generic_query_languages.iter().any(|l| l == &language) {
            return Err(Fault::dais(
                DaisFault::InvalidLanguage,
                format!("language '{language}' is not in GenericQueryLanguage"),
            ));
        }
        let (language, expression) = match &c.query_rewriter {
            Some(rw) => rw(&language, &expression),
            None => (language, expression),
        };
        let results = resource.generic_query(&language, &expression)?;
        let mut response = XmlElement::new(ns::WSDAI, "wsdai", "GenericQueryResponse");
        for r in results {
            response.push(r);
        }
        respond(response)
    });

    let c = ctx.clone();
    dispatcher.register(actions::GET_RESOURCE_LIST, move |_req: &Envelope| {
        let mut response = XmlElement::new(ns::WSDAI, "wsdai", "GetResourceListResponse");
        for name in c.registry.names() {
            response.push(
                XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAbstractName")
                    .with_text(name.as_str()),
            );
        }
        respond(response)
    });

    let c = ctx;
    dispatcher.register(actions::RESOLVE, move |req: &Envelope| {
        let body = payload(req)?;
        let name = messages::extract_resource_name(body)?;
        // Resolve() maps a known abstract name to an EPR.
        c.resolve_by_name(&name)?;
        let epr = Epr::for_resource(&c.address, name.as_str());
        let mut response = XmlElement::new(ns::WSDAI, "wsdai", "ResolveResponse");
        response.push(epr.to_xml_named(XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAddress")));
        respond(response)
    });
}

/// Resolve a lexical property QName using the canonical DAIS prefixes.
fn property_qname(lexical: &str) -> QName {
    match lexical.trim().split_once(':') {
        Some(("wsdai", l)) => QName::new(ns::WSDAI, "wsdai", l),
        Some(("wsdair", l)) => QName::new(ns::WSDAIR, "wsdair", l),
        Some(("wsdaix", l)) => QName::new(ns::WSDAIX, "wsdaix", l),
        Some((p, l)) => QName::new("", p, l),
        None => QName::local(lexical.trim()),
    }
}

/// The XPath namespace context for property queries: the canonical DAIS
/// prefixes are pre-bound.
fn property_query_context() -> XPathContext {
    XPathContext::new()
        .with_namespace("wsdai", ns::WSDAI)
        .with_namespace("wsdair", ns::WSDAIR)
        .with_namespace("wsdaix", ns::WSDAIX)
}

/// Register the WSRF operations over the same registry (Figure 7). This
/// is strictly additive: the core operations behave identically with or
/// without this call, which is exactly the upgrade path §5 describes.
pub fn register_wsrf_ops(dispatcher: &mut SoapDispatcher, ctx: Arc<ServiceContext>) {
    use dais_wsrf::actions as wsrf_actions;

    let c = ctx.clone();
    dispatcher.register(wsrf_actions::GET_RESOURCE_PROPERTY, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let lexical = body
            .child_text(ns::WSRF_RP, "ResourceProperty")
            .ok_or_else(|| Fault::client("missing wsrf-rp:ResourceProperty"))?;
        let qname = property_qname(&lexical);
        let document = resource.property_document();
        let found = wsrf_props::get_property(&document, &qname);
        if found.is_empty() {
            return Err(Fault::client(format!("unknown resource property '{lexical}'")));
        }
        let mut response = XmlElement::new(ns::WSRF_RP, "wsrf-rp", "GetResourcePropertyResponse");
        for f in found {
            response.push(f);
        }
        respond(response)
    });

    let c = ctx.clone();
    dispatcher.register(wsrf_actions::GET_MULTIPLE_RESOURCE_PROPERTIES, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let document = resource.property_document();
        let mut response =
            XmlElement::new(ns::WSRF_RP, "wsrf-rp", "GetMultipleResourcePropertiesResponse");
        for p in body.children_named(ns::WSRF_RP, "ResourceProperty") {
            let qname = property_qname(&p.text());
            for f in wsrf_props::get_property(&document, &qname) {
                response.push(f);
            }
        }
        respond(response)
    });

    let c = ctx.clone();
    dispatcher.register(wsrf_actions::QUERY_RESOURCE_PROPERTIES, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let query = body
            .child_text(ns::WSRF_RP, "QueryExpression")
            .ok_or_else(|| Fault::client("missing wsrf-rp:QueryExpression"))?;
        let document = resource.property_document();
        let value = wsrf_props::query_properties(&document, &query, &property_query_context())
            .map_err(|e| Fault::dais(DaisFault::InvalidExpression, e.to_string()))?;
        let mut response =
            XmlElement::new(ns::WSRF_RP, "wsrf-rp", "QueryResourcePropertiesResponse");
        match value {
            XPathValue::NodeSet(nodes) => {
                for n in nodes {
                    match n {
                        dais_xml::xpath::XPathNode::Element(e)
                        | dais_xml::xpath::XPathNode::Root(e) => response.push(e),
                        dais_xml::xpath::XPathNode::Attribute { value, .. } => {
                            response.push_text(value)
                        }
                        dais_xml::xpath::XPathNode::Text(t) => response.push_text(t),
                        dais_xml::xpath::XPathNode::Comment(_) => {}
                    }
                }
            }
            other => response.push_text(other.to_xpath_string()),
        }
        respond(response)
    });

    let c = ctx.clone();
    dispatcher.register(wsrf_actions::SET_RESOURCE_PROPERTIES, move |req: &Envelope| {
        let body = payload(req)?;
        let resource = c.resolve_resource(body)?;
        let mut touched = 0usize;
        for update in body.children_named(ns::WSRF_RP, "Update") {
            for property in update.elements() {
                resource.set_property(property)?;
                touched += 1;
            }
        }
        for verb in ["Insert", "Delete"] {
            if body.child(ns::WSRF_RP, verb).is_some() {
                return Err(Fault::client(format!(
                    "SetResourceProperties {verb} is not supported; DAIS property \
                     documents have a fixed shape — use Update"
                )));
            }
        }
        if touched == 0 {
            return Err(Fault::client("SetResourceProperties carried no wsrf-rp:Update entries"));
        }
        respond(XmlElement::new(ns::WSRF_RP, "wsrf-rp", "SetResourcePropertiesResponse"))
    });

    let c = ctx.clone();
    dispatcher.register(wsrf_actions::SET_TERMINATION_TIME, move |req: &Envelope| {
        let body = payload(req)?;
        let name = messages::extract_resource_name(body)?;
        c.resolve_by_name(&name)?;
        let lifetime = c
            .lifetime
            .as_ref()
            .ok_or_else(|| Fault::server("lifetime management is not enabled on this service"))?;
        let requested = lifetime::parse_set_termination_time(body).ok_or_else(|| {
            Fault::client("missing RequestedLifetimeDuration or nil RequestedTerminationTime")
        })?;
        let new_time = lifetime
            .set_termination_in(name.as_str(), requested)
            .map_err(|e| Fault::dais(DaisFault::InvalidResourceName, e.to_string()))?;
        respond(lifetime::set_termination_time_response(new_time, lifetime.now()))
    });

    let c = ctx;
    dispatcher.register(wsrf_actions::DESTROY, move |req: &Envelope| {
        let body = payload(req)?;
        let name = messages::extract_resource_name(body)?;
        c.destroy_resource(&name)?;
        respond(XmlElement::new(ns::WSRF_RL, "wsrf-rl", "DestroyResponse"))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{CoreProperties, ResourceManagementKind};
    use crate::resource::StaticResource;
    use dais_soap::bus::Bus;
    use dais_soap::client::ServiceClient;
    use dais_wsrf::ManualClock;

    fn make_service(wsrf: bool) -> (Bus, Arc<ServiceContext>, Arc<ManualClock>) {
        let bus = Bus::new();
        let registry = ResourceRegistry::new();
        let clock = ManualClock::new();
        let ctx = if wsrf {
            ServiceContext::with_wsrf(
                "bus://svc",
                registry,
                Arc::new(LifetimeRegistry::new(clock.clone())),
            )
        } else {
            ServiceContext::new("bus://svc", registry)
        };
        let mut d = SoapDispatcher::new();
        register_core_ops(&mut d, ctx.clone());
        if wsrf {
            register_wsrf_ops(&mut d, ctx.clone());
        }
        bus.register("bus://svc", Arc::new(d));

        let mut props = CoreProperties::new(
            AbstractName::new("urn:dais:svc:db:0").unwrap(),
            ResourceManagementKind::ExternallyManaged,
        );
        props.description = "test resource".into();
        ctx.add_resource(Arc::new(StaticResource::new(
            props,
            vec![XmlElement::new_local("payload").with_text("hello")],
        )));
        (bus, ctx, clock)
    }

    fn client(bus: &Bus) -> ServiceClient {
        ServiceClient::new(bus.clone(), "bus://svc")
    }

    fn name_req(local: &str) -> XmlElement {
        messages::request(local, &AbstractName::new("urn:dais:svc:db:0").unwrap())
    }

    #[test]
    fn get_property_document() {
        let (bus, _, _) = make_service(false);
        let resp = client(&bus)
            .request(
                actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT,
                name_req("GetDataResourcePropertyDocumentRequest"),
            )
            .unwrap();
        let doc = resp.child(ns::WSDAI, "PropertyDocument").unwrap();
        assert_eq!(
            doc.child_text(ns::WSDAI, "DataResourceAbstractName").as_deref(),
            Some("urn:dais:svc:db:0")
        );
        assert_eq!(
            doc.child_text(ns::WSDAI, "DataResourceDescription").as_deref(),
            Some("test resource")
        );
    }

    #[test]
    fn generic_query_roundtrip() {
        let (bus, _, _) = make_service(false);
        let req = messages::generic_query_request(
            &AbstractName::new("urn:dais:svc:db:0").unwrap(),
            "urn:echo",
            "",
        );
        let resp = client(&bus).request(actions::GENERIC_QUERY, req).unwrap();
        assert_eq!(resp.child("", "payload").unwrap().text(), "hello");
    }

    #[test]
    fn generic_query_language_validation() {
        let (bus, _, _) = make_service(false);
        let req = messages::generic_query_request(
            &AbstractName::new("urn:dais:svc:db:0").unwrap(),
            "urn:nope",
            "",
        );
        let err = client(&bus).request(actions::GENERIC_QUERY, req).unwrap_err();
        assert_eq!(err.dais_fault(), Some(DaisFault::InvalidLanguage));
    }

    #[test]
    fn unknown_resource_faults() {
        let (bus, _, _) = make_service(false);
        let req = messages::request(
            "GetDataResourcePropertyDocumentRequest",
            &AbstractName::new("urn:dais:svc:db:999").unwrap(),
        );
        let err =
            client(&bus).request(actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT, req).unwrap_err();
        assert_eq!(err.dais_fault(), Some(DaisFault::InvalidResourceName));
    }

    #[test]
    fn resource_list_and_resolve() {
        let (bus, _, _) = make_service(false);
        let resp = client(&bus)
            .request(
                actions::GET_RESOURCE_LIST,
                XmlElement::new(ns::WSDAI, "wsdai", "GetResourceListRequest"),
            )
            .unwrap();
        let names: Vec<String> =
            resp.children_named(ns::WSDAI, "DataResourceAbstractName").map(|e| e.text()).collect();
        assert_eq!(names, vec!["urn:dais:svc:db:0"]);

        let resp = client(&bus).request(actions::RESOLVE, name_req("ResolveRequest")).unwrap();
        let addr = resp.child(ns::WSDAI, "DataResourceAddress").unwrap();
        let epr = Epr::from_xml(addr).unwrap();
        assert_eq!(epr.address, "bus://svc");
        assert_eq!(epr.resource_abstract_name().as_deref(), Some("urn:dais:svc:db:0"));
    }

    #[test]
    fn destroy_data_resource() {
        let (bus, ctx, _) = make_service(false);
        client(&bus)
            .request(actions::DESTROY_DATA_RESOURCE, name_req("DestroyDataResourceRequest"))
            .unwrap();
        assert!(ctx.registry.is_empty());
        // Second destroy faults.
        let err = client(&bus)
            .request(actions::DESTROY_DATA_RESOURCE, name_req("DestroyDataResourceRequest"))
            .unwrap_err();
        assert_eq!(err.dais_fault(), Some(DaisFault::InvalidResourceName));
    }

    #[test]
    fn wsrf_fine_grained_property_access() {
        let (bus, _, _) = make_service(true);
        let mut req = name_req("GetResourcePropertyRequest");
        req.push(
            XmlElement::new(ns::WSRF_RP, "wsrf-rp", "ResourceProperty").with_text("wsdai:Readable"),
        );
        let resp = client(&bus).request(dais_wsrf::actions::GET_RESOURCE_PROPERTY, req).unwrap();
        assert_eq!(resp.child_text(ns::WSDAI, "Readable").as_deref(), Some("true"));
        // Unknown property name.
        let mut req = name_req("GetResourcePropertyRequest");
        req.push(
            XmlElement::new(ns::WSRF_RP, "wsrf-rp", "ResourceProperty").with_text("wsdai:Bogus"),
        );
        assert!(client(&bus).request(dais_wsrf::actions::GET_RESOURCE_PROPERTY, req).is_err());
    }

    #[test]
    fn wsrf_multiple_and_query() {
        let (bus, _, _) = make_service(true);
        let mut req = name_req("GetMultipleResourcePropertiesRequest");
        req.push(
            XmlElement::new(ns::WSRF_RP, "wsrf-rp", "ResourceProperty").with_text("wsdai:Readable"),
        );
        req.push(
            XmlElement::new(ns::WSRF_RP, "wsrf-rp", "ResourceProperty")
                .with_text("wsdai:Writeable"),
        );
        let resp = client(&bus)
            .request(dais_wsrf::actions::GET_MULTIPLE_RESOURCE_PROPERTIES, req)
            .unwrap();
        assert_eq!(resp.elements().count(), 2);

        let mut req = name_req("QueryResourcePropertiesRequest");
        req.push(
            XmlElement::new(ns::WSRF_RP, "wsrf-rp", "QueryExpression")
                .with_text("count(//wsdai:GenericQueryLanguage)"),
        );
        let resp =
            client(&bus).request(dais_wsrf::actions::QUERY_RESOURCE_PROPERTIES, req).unwrap();
        assert_eq!(resp.text(), "1");
    }

    #[test]
    fn wsrf_soft_state_lifetime() {
        let (bus, ctx, clock) = make_service(true);
        // Set a 1000 ms lease.
        let mut req = name_req("SetTerminationTime");
        req.push(
            XmlElement::new(ns::WSRF_RL, "wsrf-rl", "RequestedLifetimeDuration").with_text("1000"),
        );
        let resp = client(&bus).request(dais_wsrf::actions::SET_TERMINATION_TIME, req).unwrap();
        assert_eq!(resp.child_text(ns::WSRF_RL, "NewTerminationTime").as_deref(), Some("1000"));

        // Still alive before expiry.
        client(&bus)
            .request(
                actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT,
                name_req("GetDataResourcePropertyDocumentRequest"),
            )
            .unwrap();

        clock.advance(1001);
        let err = client(&bus)
            .request(
                actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT,
                name_req("GetDataResourcePropertyDocumentRequest"),
            )
            .unwrap_err();
        assert_eq!(err.dais_fault(), Some(DaisFault::DataResourceUnavailable));
        // Expired resource was reaped on access.
        assert!(ctx.registry.is_empty());
    }

    #[test]
    fn sweeper_reaps_expired_resources() {
        let (_, ctx, clock) = make_service(true);
        ctx.lifetime.as_ref().unwrap().set_termination_in("urn:dais:svc:db:0", Some(10)).unwrap();
        clock.advance(11);
        let swept = ctx.sweep_expired();
        assert_eq!(swept, vec!["urn:dais:svc:db:0"]);
        assert!(ctx.registry.is_empty());
        assert!(ctx.sweep_expired().is_empty());
    }

    #[test]
    fn wsrf_set_resource_properties() {
        let (bus, _, _) = make_service(true);
        let mut req = name_req("SetResourcePropertiesRequest");
        req.push(XmlElement::new(ns::WSRF_RP, "wsrf-rp", "Update").with_child(
            XmlElement::new(ns::WSDAI, "wsdai", "DataResourceDescription").with_text("renamed"),
        ));
        client(&bus).request(dais_wsrf::actions::SET_RESOURCE_PROPERTIES, req).unwrap();
        let resp = client(&bus)
            .request(
                actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT,
                name_req("GetDataResourcePropertyDocumentRequest"),
            )
            .unwrap();
        let doc = resp.child(ns::WSDAI, "PropertyDocument").unwrap();
        assert_eq!(
            doc.child_text(ns::WSDAI, "DataResourceDescription").as_deref(),
            Some("renamed")
        );

        // Read-only properties refuse the update.
        let mut req = name_req("SetResourcePropertiesRequest");
        req.push(XmlElement::new(ns::WSRF_RP, "wsrf-rp", "Update").with_child(
            XmlElement::new(ns::WSDAI, "wsdai", "DataResourceAbstractName").with_text("urn:new"),
        ));
        let err =
            client(&bus).request(dais_wsrf::actions::SET_RESOURCE_PROPERTIES, req).unwrap_err();
        assert_eq!(err.dais_fault(), Some(DaisFault::NotAuthorized));

        // Insert/Delete are rejected: the property document shape is fixed.
        let mut req = name_req("SetResourcePropertiesRequest");
        req.push(XmlElement::new(ns::WSRF_RP, "wsrf-rp", "Insert").with_child(XmlElement::new(
            ns::WSDAI,
            "wsdai",
            "Extra",
        )));
        assert!(client(&bus).request(dais_wsrf::actions::SET_RESOURCE_PROPERTIES, req).is_err());
    }

    #[test]
    fn wsrf_destroy_via_lifetime_port() {
        let (bus, ctx, _) = make_service(true);
        client(&bus).request(dais_wsrf::actions::DESTROY, name_req("Destroy")).unwrap();
        assert!(ctx.registry.is_empty());
    }

    #[test]
    fn thick_wrapper_rewrites_statements() {
        let bus = Bus::new();
        let registry = ResourceRegistry::new();
        let mut ctx = ServiceContext {
            address: "bus://svc".into(),
            registry,
            lifetime: None,
            query_rewriter: None,
        };
        // The thick wrapper swaps the expression for a canned one.
        ctx.query_rewriter =
            Some(Arc::new(|lang: &str, _expr: &str| (lang.to_string(), "rewritten".to_string())));
        let ctx = Arc::new(ctx);
        let mut d = SoapDispatcher::new();
        register_core_ops(&mut d, ctx.clone());
        bus.register("bus://svc", Arc::new(d));

        // A resource that echoes its expression back.
        struct EchoExpr(CoreProperties);
        impl DataResource for EchoExpr {
            fn abstract_name(&self) -> &AbstractName {
                &self.0.abstract_name
            }
            fn core_properties(&self) -> CoreProperties {
                self.0.clone()
            }
            fn generic_query(&self, _l: &str, e: &str) -> Result<Vec<XmlElement>, Fault> {
                Ok(vec![XmlElement::new_local("expr").with_text(e)])
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let mut props = CoreProperties::new(
            AbstractName::new("urn:dais:svc:db:0").unwrap(),
            ResourceManagementKind::ExternallyManaged,
        );
        props.generic_query_languages.push("urn:echo".into());
        ctx.add_resource(Arc::new(EchoExpr(props)));

        let req = messages::generic_query_request(
            &AbstractName::new("urn:dais:svc:db:0").unwrap(),
            "urn:echo",
            "original",
        );
        let resp =
            ServiceClient::new(bus, "bus://svc").request(actions::GENERIC_QUERY, req).unwrap();
        assert_eq!(resp.child("", "expr").unwrap().text(), "rewritten");
    }

    #[test]
    fn wsrf_is_additive_core_ops_identical() {
        // The same request yields the same property document with and
        // without the WSRF layer (§5's upgrade-path claim).
        let (bus_plain, _, _) = make_service(false);
        let (bus_wsrf, _, _) = make_service(true);
        let req = name_req("GetDataResourcePropertyDocumentRequest");
        let a = client(&bus_plain)
            .request(actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT, req.clone())
            .unwrap();
        let b =
            client(&bus_wsrf).request(actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT, req).unwrap();
        assert_eq!(a, b);
        // But the WSRF op only exists on the WSRF service.
        let mut preq = name_req("GetResourcePropertyRequest");
        preq.push(
            XmlElement::new(ns::WSRF_RP, "wsrf-rp", "ResourceProperty").with_text("wsdai:Readable"),
        );
        assert!(client(&bus_plain)
            .request(dais_wsrf::actions::GET_RESOURCE_PROPERTY, preq)
            .is_err());
    }
}
