//! The monitoring resource: a WS-DAI-style read-only property document
//! over the bus's observability fabric.
//!
//! Every launched service registers one [`MonitoringResource`] alongside
//! its data resources, so a plain `GetDataResourcePropertyDocument`
//! against its abstract name returns the live picture — traffic
//! counters, injected-fault ledger, and latency histograms — rendered as
//! extension properties in the `urn:dais:obs` namespace. Nothing about
//! the core protocol changes: monitoring rides the same operations,
//! resource list, and resolution path as data.

use crate::name::AbstractName;
use crate::properties::{CoreProperties, ResourceManagementKind};
use crate::resource::DataResource;
use dais_obs::metrics::ENDPOINT_PREFIX;
use dais_obs::slo::SloReport;
use dais_obs::{HistogramSnapshot, SloSample};
use dais_soap::bus::Bus;
use dais_xml::XmlElement;
use std::any::Any;

/// Namespace for the monitoring extension properties.
pub const MON_NS: &str = "urn:dais:obs";

fn mon(local: &str) -> XmlElement {
    XmlElement::new(MON_NS, "mon", local)
}

/// A service-managed resource whose property document is the live
/// monitoring view of one bus endpoint.
pub struct MonitoringResource {
    name: AbstractName,
    bus: Bus,
    address: String,
}

impl MonitoringResource {
    pub fn new(name: AbstractName, bus: Bus, address: impl Into<String>) -> MonitoringResource {
        MonitoringResource { name, bus, address: address.into() }
    }

    /// The `mon:BusMonitoring` element: endpoint traffic, the whole-bus
    /// injected-fault ledger, and every latency histogram the bus's
    /// metrics registry holds.
    fn monitoring_element(&self) -> XmlElement {
        let mut root = mon("BusMonitoring");
        root.push(mon("Endpoint").with_text(&self.address));

        let stats = self.bus.endpoint_stats(&self.address);
        let mut traffic = mon("Traffic");
        traffic.set_attr("messages", stats.messages.to_string());
        traffic.set_attr("requestBytes", stats.request_bytes.to_string());
        traffic.set_attr("responseBytes", stats.response_bytes.to_string());
        traffic.set_attr("faults", stats.faults.to_string());
        traffic.set_attr("injected", stats.injected.to_string());
        traffic.set_attr("retries", stats.retries.to_string());
        traffic.set_attr("epoch", stats.epoch.to_string());
        root.push(traffic);

        let mut queue = mon("Queue");
        queue.set_attr("depth", stats.queue_depth.to_string());
        queue.set_attr("peakDepth", stats.queue_peak.to_string());
        queue.set_attr("shed", stats.shed.to_string());
        root.push(queue);

        // Admission-control knobs, present only while an executor is
        // installed (queued mode).
        if let Some(config) = self.bus.executor_config() {
            let mut executor = mon("Executor");
            executor.set_attr("workers", config.workers.to_string());
            executor.set_attr("shards", config.shards.to_string());
            executor.set_attr("queueCapacity", config.queue_capacity.to_string());
            executor.set_attr("maxInFlight", config.max_in_flight.to_string());
            executor.set_attr("retryAfterNs", config.retry_after.as_nanos().to_string());
            root.push(executor);
        }

        let injected = self.bus.stats().fault_injection;
        let mut ledger = mon("InjectedFaults");
        ledger.set_attr("drops", injected.drops.to_string());
        ledger.set_attr("busy", injected.busy.to_string());
        ledger.set_attr("unavailable", injected.unavailable.to_string());
        ledger.set_attr("corruptions", injected.corruptions.to_string());
        ledger.set_attr("delays", injected.delays.to_string());
        root.push(ledger);

        let snapshots = self.bus.obs().metrics.snapshot();
        for (key, snapshot) in &snapshots {
            root.push(histogram_element(key, snapshot));
        }

        // Service levels: rendering the document IS the sampling tick.
        // Each metrics key gets one cumulative sample (the SLO engine
        // turns consecutive samples into per-second delta frames); the
        // fault and shed counters only exist per endpoint, so only this
        // resource's endpoint key carries them — action and connection
        // keys are latency-only.
        let slo = &self.bus.obs().slo;
        let endpoint_key = format!("{ENDPOINT_PREFIX}{}", self.address);
        for (key, snapshot) in &snapshots {
            let (faults, shed) =
                if *key == endpoint_key { (stats.faults, stats.shed) } else { (0, 0) };
            slo.observe(key, SloSample { hist: *snapshot, faults, shed });
        }
        for report in slo.reports() {
            root.push(service_level_element(&report));
        }
        root
    }
}

/// The `mon:ServiceLevel` element: one per metrics key, carrying the
/// engine's objective, the multi-window burn-alert verdict, and one
/// `mon:Window` child per rolling window.
fn service_level_element(report: &SloReport) -> XmlElement {
    let mut sl = mon("ServiceLevel");
    sl.set_attr("key", report.key.clone());
    sl.set_attr("targetP99Ns", report.objective.target_p99_ns.to_string());
    sl.set_attr("maxErrorRate", report.objective.max_error_rate.to_string());
    sl.set_attr("maxShedRate", report.objective.max_shed_rate.to_string());
    sl.set_attr("burnAlert", report.burn_alert().to_string());
    for w in &report.windows {
        let mut win = mon("Window");
        win.set_attr("seconds", w.window_s.to_string());
        win.set_attr("completed", w.completed.to_string());
        win.set_attr("faults", w.faults.to_string());
        win.set_attr("shed", w.shed.to_string());
        win.set_attr("p99Ns", w.p99_ns.to_string());
        win.set_attr("errorRate", format!("{:.6}", w.error_rate));
        win.set_attr("shedRate", format!("{:.6}", w.shed_rate));
        win.set_attr("errorBurn", format!("{:.3}", w.error_burn));
        win.set_attr("shedBurn", format!("{:.3}", w.shed_burn));
        win.set_attr("p99Breached", w.p99_breached.to_string());
        sl.push(win);
    }
    sl
}

fn histogram_element(key: &str, snapshot: &HistogramSnapshot) -> XmlElement {
    let mut hist = mon("LatencyHistogram");
    hist.set_attr("key", key);
    hist.set_attr("count", snapshot.count.to_string());
    hist.set_attr("meanNs", snapshot.mean().to_string());
    hist.set_attr("p50Ns", snapshot.percentile(0.50).to_string());
    hist.set_attr("p95Ns", snapshot.percentile(0.95).to_string());
    hist.set_attr("p99Ns", snapshot.percentile(0.99).to_string());
    for (lower, upper, count) in snapshot.non_empty() {
        let mut bucket = mon("Bucket");
        bucket.set_attr("lowerNs", lower.to_string());
        bucket.set_attr("upperNs", upper.to_string());
        bucket.set_attr("observations", count.to_string());
        hist.push(bucket);
    }
    hist
}

impl DataResource for MonitoringResource {
    fn abstract_name(&self) -> &AbstractName {
        &self.name
    }

    fn core_properties(&self) -> CoreProperties {
        let mut props =
            CoreProperties::new(self.name.clone(), ResourceManagementKind::ServiceManaged);
        props.description =
            format!("live observability document for bus endpoint '{}'", self.address);
        props
    }

    fn property_document(&self) -> XmlElement {
        // The core document plus one extension property, mirroring how
        // realisations extend it with their model-specific properties.
        let mut doc = self.core_properties().to_xml();
        doc.push(self.monitoring_element());
        doc
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_soap::envelope::Envelope;
    use dais_soap::service::SoapDispatcher;
    use std::sync::Arc;

    fn traffic_bus() -> Bus {
        let bus = Bus::new();
        let mut d = SoapDispatcher::new();
        d.register("urn:echo", |req: &Envelope| Ok(req.clone()));
        bus.register("bus://svc", Arc::new(d));
        for _ in 0..3 {
            bus.call("bus://svc", "urn:echo", &Envelope::default()).unwrap().unwrap();
        }
        bus
    }

    fn make(bus: &Bus) -> MonitoringResource {
        let name = AbstractName::new("urn:dais:t:monitoring:9").unwrap();
        MonitoringResource::new(name, bus.clone(), "bus://svc")
    }

    #[test]
    fn document_reports_traffic_and_histograms() {
        let bus = traffic_bus();
        let doc = make(&bus).property_document();
        let monitoring = doc
            .children_named(MON_NS, "BusMonitoring")
            .next()
            .expect("BusMonitoring extension property");
        let traffic = monitoring.children_named(MON_NS, "Traffic").next().unwrap();
        assert_eq!(traffic.attribute("messages"), Some("3"));
        let hists: Vec<_> = monitoring.children_named(MON_NS, "LatencyHistogram").collect();
        assert_eq!(hists.len(), 2, "endpoint + action histograms");
        for hist in hists {
            assert_eq!(hist.attribute("count"), Some("3"));
            let buckets: Vec<_> = hist.children_named(MON_NS, "Bucket").collect();
            assert!(!buckets.is_empty(), "non-zero buckets after traffic");
            let total: u64 = buckets
                .iter()
                .map(|b| b.attribute("observations").unwrap().parse::<u64>().unwrap())
                .sum();
            assert_eq!(total, 3);
        }
    }

    #[test]
    fn document_reports_queue_and_executor() {
        let bus = traffic_bus();
        // Inline mode: queue gauges present (all zero), no Executor.
        let doc = make(&bus).property_document();
        let monitoring = doc.children_named(MON_NS, "BusMonitoring").next().unwrap();
        let queue = monitoring.children_named(MON_NS, "Queue").next().unwrap();
        assert_eq!(queue.attribute("depth"), Some("0"));
        assert_eq!(queue.attribute("shed"), Some("0"));
        assert!(monitoring.children_named(MON_NS, "Executor").next().is_none());

        // Queued mode: the admission-control knobs are published.
        bus.install_executor(dais_soap::executor::ExecutorConfig::new(3).queue_capacity(16));
        bus.call("bus://svc", "urn:echo", &Envelope::default()).unwrap().unwrap();
        let doc = make(&bus).property_document();
        let monitoring = doc.children_named(MON_NS, "BusMonitoring").next().unwrap();
        let executor = monitoring.children_named(MON_NS, "Executor").next().unwrap();
        assert_eq!(executor.attribute("workers"), Some("3"));
        assert_eq!(executor.attribute("queueCapacity"), Some("16"));
        let queue = monitoring.children_named(MON_NS, "Queue").next().unwrap();
        assert_eq!(queue.attribute("peakDepth"), Some("1"));
        bus.shutdown_executor();
    }

    #[test]
    fn document_reports_service_levels() {
        let bus = traffic_bus();
        let resource = make(&bus);
        // First render primes the engine (cumulative baseline), the
        // second render turns the traffic into frames.
        resource.property_document();
        let doc = resource.property_document();
        let monitoring = doc.children_named(MON_NS, "BusMonitoring").next().unwrap();
        let levels: Vec<_> = monitoring.children_named(MON_NS, "ServiceLevel").collect();
        assert_eq!(levels.len(), 2, "endpoint + action service levels");
        for level in levels {
            assert_eq!(level.attribute("burnAlert"), Some("false"));
            assert_eq!(level.attribute("targetP99Ns"), Some("50000000"));
            let windows: Vec<_> = level.children_named(MON_NS, "Window").collect();
            assert_eq!(windows.len(), 3, "1 s / 10 s / 60 s windows");
            let w60 = windows.last().unwrap();
            assert_eq!(w60.attribute("seconds"), Some("60"));
            assert_eq!(w60.attribute("completed"), Some("3"));
            assert_eq!(w60.attribute("faults"), Some("0"));
            assert_eq!(w60.attribute("p99Breached"), Some("false"));
        }
    }

    #[test]
    fn document_keeps_the_core_shape() {
        let bus = traffic_bus();
        let resource = make(&bus);
        let doc = resource.property_document();
        assert!(doc.name.is(dais_xml::ns::WSDAI, "PropertyDocument"));
        let name =
            doc.children_named(dais_xml::ns::WSDAI, "DataResourceAbstractName").next().unwrap();
        assert_eq!(name.text(), resource.abstract_name().as_str());
        // Read-only: property updates are refused like any other
        // descriptive resource.
        let attempt = XmlElement::new(dais_xml::ns::WSDAI, "wsdai", "Readable").with_text("false");
        assert!(resource.set_property(&attempt).is_err());
    }
}
