//! The consumer-side plumbing shared by every typed DAIS client.
//!
//! `CoreClient`, `SqlClient`, `XmlClient` and `FileClient` all wrap the
//! same [`ServiceClient`] and used to copy-paste the retry/EPR/bus
//! accessors four times. [`DaisClient`] hoists that plumbing into one
//! trait: a typed client only names its raw client and its protocol
//! layer's idempotent action set, and inherits retry layering plus the
//! pipelined batch entry points. The old inherent methods survive as
//! thin wrappers over these defaults, so existing call sites compile
//! unchanged.

use dais_soap::addressing::Epr;
use dais_soap::bus::Bus;
use dais_soap::client::{CallError, PendingReply, ServiceClient};
use dais_soap::retry::{IdempotencySet, RetryConfig, RetryPolicy};
use dais_xml::XmlElement;

/// The shared shape of a typed DAIS consumer.
pub trait DaisClient: Sized {
    /// The raw SOAP client every typed operation goes through.
    fn service(&self) -> &ServiceClient;

    /// Wrap an already-configured raw client. This is the one true
    /// constructor — [`ClientBuilder`](crate::builder::ClientBuilder)
    /// terminates here, and the deprecated per-client constructors
    /// forward through it.
    fn from_service(service: ServiceClient) -> Self;

    /// Start assembling a client:
    /// `CoreClient::builder().bus(..).resource(&r).retry(..).build()`.
    fn builder() -> crate::builder::ClientBuilder<Self> {
        crate::builder::ClientBuilder::new()
    }

    /// Mutable access to the raw client, for layering retry.
    fn service_mut(&mut self) -> &mut ServiceClient;

    /// The actions this client's protocol layer may safely re-send.
    fn default_idempotent_actions() -> IdempotencySet;

    /// Layer retry over this client for its protocol layer's read
    /// operations ([`Self::default_idempotent_actions`]).
    fn with_retry(self, policy: RetryPolicy) -> Self {
        self.with_retry_config(RetryConfig::new(policy, Self::default_idempotent_actions()))
    }

    /// Layer retry with a caller-assembled configuration (custom
    /// idempotency set or sleep function).
    fn with_retry_config(mut self, config: RetryConfig) -> Self {
        let inner = self.service().clone().with_retry(config);
        *self.service_mut() = inner;
        self
    }

    /// The bound EPR.
    fn epr(&self) -> &Epr {
        self.service().epr()
    }

    /// The underlying bus.
    fn bus(&self) -> &Bus {
        self.service().bus()
    }

    /// Send one request without waiting for its reply (the pipelined
    /// path; see [`ServiceClient::call_async`]).
    fn call_async(&self, action: &str, payload: XmlElement) -> Result<PendingReply, CallError> {
        self.service().call_async(action, payload)
    }

    /// Send one action against many payloads with up to `window`
    /// requests in flight, in input order (see
    /// [`ServiceClient::request_pipelined`]). The typed batch entry
    /// points (`execute_many`, `read_files`, …) are wrappers over this.
    fn request_pipelined(
        &self,
        action: &str,
        payloads: Vec<XmlElement>,
        window: usize,
    ) -> Vec<Result<XmlElement, CallError>> {
        self.service().request_pipelined(action, payloads, window)
    }
}
