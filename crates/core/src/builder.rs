//! One builder for every typed client.
//!
//! The typed clients had accreted a constructor permutation per concern
//! — `new` for a local bind, `with_transport` for a remote one,
//! `with_retry`/`with_retry_config` layered after the fact — and every
//! new concern doubled the surface. [`ClientBuilder`] collapses them:
//!
//! ```
//! use dais_core::{CoreClient, DaisClient, ResourceRef};
//! use dais_soap::bus::Bus;
//!
//! let bus = Bus::new();
//! let r: ResourceRef = "dais://svc/urn:dais:svc:db:0".parse().unwrap();
//! let client = CoreClient::builder().bus(bus).resource(&r).build();
//! # let _ = client;
//! ```
//!
//! The same shape works for `SqlClient`, `XmlClient` and `FileClient`
//! (anything implementing [`DaisClient`]); the old constructors survive
//! as deprecated shims that forward here.

use crate::dais_client::DaisClient;
use crate::resource_ref::ResourceRef;
use dais_soap::addressing::Epr;
use dais_soap::bus::Bus;
use dais_soap::client::ServiceClient;
use dais_soap::retry::{RetryConfig, RetryPolicy};
use dais_soap::Transport;
use std::marker::PhantomData;
use std::sync::Arc;

enum Target {
    None,
    Address(String),
    Epr(Epr),
}

/// Assembles a typed client from its parts; obtain one via
/// [`DaisClient::builder`]. `bus` plus one target (`address`,
/// `resource` or `epr`) are required; everything else is optional.
pub struct ClientBuilder<C: DaisClient> {
    bus: Option<Bus>,
    target: Target,
    transport: Option<Arc<dyn Transport>>,
    retry: Option<RetryConfig>,
    _client: PhantomData<C>,
}

impl<C: DaisClient> Default for ClientBuilder<C> {
    fn default() -> ClientBuilder<C> {
        ClientBuilder {
            bus: None,
            target: Target::None,
            transport: None,
            retry: None,
            _client: PhantomData,
        }
    }
}

impl<C: DaisClient> ClientBuilder<C> {
    pub fn new() -> ClientBuilder<C> {
        ClientBuilder::default()
    }

    /// The bus requests travel on. Required.
    pub fn bus(mut self, bus: Bus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Bind to a raw service address (`bus://svc`). Prefer
    /// [`resource`](Self::resource) when you hold a [`ResourceRef`].
    pub fn address(mut self, address: impl Into<String>) -> Self {
        self.target = Target::Address(address.into());
        self
    }

    /// Bind to the endpoint a [`ResourceRef`] names. The ref's abstract
    /// name still travels per-request; this sets where requests go.
    pub fn resource(mut self, r: &ResourceRef) -> Self {
        self.target = Target::Address(r.endpoint_address());
        self
    }

    /// Bind through an EPR obtained from a factory or `Resolve`.
    pub fn epr(mut self, epr: Epr) -> Self {
        self.target = Target::Epr(epr);
        self
    }

    /// Reach the service over `transport` (installed on the bus at
    /// `build`): the split-deployment bind, where the service registry
    /// lives behind a [`TcpServer`](dais_soap::TcpServer) rather than
    /// in this process.
    pub fn transport(mut self, transport: Arc<dyn Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Layer retry for the client's protocol-level read operations
    /// ([`DaisClient::default_idempotent_actions`]).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(RetryConfig::new(policy, C::default_idempotent_actions()));
        self
    }

    /// Layer retry with a caller-assembled configuration (custom
    /// idempotency set or sleep function). Overrides [`retry`](Self::retry).
    pub fn retry_config(mut self, config: RetryConfig) -> Self {
        self.retry = Some(config);
        self
    }

    /// Assemble the client.
    ///
    /// # Panics
    /// If no bus or no target was supplied — these are programming
    /// errors, not runtime conditions.
    pub fn build(self) -> C {
        let bus = self.bus.expect("ClientBuilder::build: a bus is required — call .bus(..)");
        if let Some(transport) = self.transport {
            bus.set_transport(transport);
        }
        let service = match self.target {
            Target::Address(address) => ServiceClient::new(bus, address),
            Target::Epr(epr) => ServiceClient::from_epr(bus, epr),
            Target::None => panic!(
                "ClientBuilder::build: a target is required — call .address(..), .resource(..) or .epr(..)"
            ),
        };
        let client = C::from_service(service);
        match self.retry {
            Some(config) => client.with_retry_config(config),
            None => client,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::CoreClient;

    #[test]
    fn builds_from_address_and_resource_ref() {
        let bus = Bus::new();
        let r: ResourceRef = "dais://svc/urn:dais:svc:db:0".parse().unwrap();
        let a = CoreClient::builder().bus(bus.clone()).address("bus://svc").build();
        let b = CoreClient::builder().bus(bus).resource(&r).build();
        assert_eq!(a.epr().address, b.epr().address);
    }

    #[test]
    fn retry_is_layered_at_build() {
        let bus = Bus::new();
        let client =
            CoreClient::builder().bus(bus).address("bus://svc").retry(RetryPolicy::new(3)).build();
        assert!(client.soap().retry_config().is_some());
    }

    #[test]
    #[should_panic(expected = "a bus is required")]
    fn missing_bus_is_a_programming_error() {
        let _ = CoreClient::builder().address("bus://svc").build();
    }

    #[test]
    #[should_panic(expected = "a target is required")]
    fn missing_target_is_a_programming_error() {
        let _ = CoreClient::builder().bus(Bus::new()).build();
    }
}
