//! # dais-core
//!
//! The WS-DAI core specification: data resources, abstract names,
//! property documents, the direct and indirect access patterns, and the
//! model-independent operations every DAIS data service offers.
//!
//! This crate is the paper's primary contribution rendered as a library:
//!
//! * **Naming** (§3): every data resource has a unique, persistent
//!   *abstract name* (a URI), carried in the body of every message —
//!   whether or not WSRF addressing is also in use ([`name`]).
//! * **Resources** (§3): externally managed vs service managed resources,
//!   with parent links for derived data ([`resource`]).
//! * **Properties** (§4.2): the core property document — static
//!   properties (`DataResourceAbstractName`, `ParentDataResource`,
//!   `DataResourceManagement`, `ConcurrentAccess`, `DatasetMap`,
//!   `ConfigurationMap`, `GenericQueryLanguage`) and configurable ones
//!   (`DataResourceDescription`, `Readable`, `Writeable`,
//!   `TransactionInitiation`, `TransactionIsolation`, `Sensitivity`)
//!   ([`properties`]).
//! * **Core operations** (§4.3, Figure 6): `GetDataResourcePropertyDocument`,
//!   `DestroyDataResource`, `GenericQuery`, and the optional
//!   CoreResourceList pair `GetResourceList` / `Resolve` ([`service`]).
//! * **Access patterns** (Figures 1–3): direct access helpers and the
//!   factory plumbing for indirect access — derived resources configured
//!   by a `ConfigurationDocument` and addressed by an EPR whose reference
//!   parameters carry the abstract name ([`factory`]).
//! * **WSRF layering** (§5, Figure 7): strictly additive registration of
//!   the WS-ResourceProperties / WS-ResourceLifetime operations over the
//!   same registry ([`service::register_wsrf_ops`]).
//!
//! Realisations (WS-DAIR in `dais-dair`, WS-DAIX in `dais-daix`) extend
//! these types with model-specific properties and operations, exactly as
//! the specification family is structured.

pub mod builder;
pub mod client;
pub mod dais_client;
pub mod factory;
pub mod messages;
pub mod monitoring;
pub mod name;
pub mod properties;
pub mod registry;
pub mod resource;
pub mod resource_ref;
pub mod service;

pub use builder::ClientBuilder;
pub use client::CoreClient;
pub use dais_client::DaisClient;
pub use factory::{mint_resource_epr, DerivedResourceConfig};
pub use monitoring::MonitoringResource;
pub use name::{AbstractName, NameGenerator};
pub use properties::{
    ConfigurationDocument, ConfigurationMap, CoreProperties, DatasetMap, Sensitivity,
    TransactionInitiation, TransactionIsolation,
};
pub use registry::ResourceRegistry;
pub use resource::{DataResource, ResourceManagement};
pub use resource_ref::{InvalidRef, ResourceRef};
pub use service::{register_core_ops, register_wsrf_ops, ServiceContext};
