//! Consumer-side typed client for the WS-DAI core operations.

use crate::dais_client::DaisClient;
use crate::messages::{self, actions};
use crate::name::AbstractName;
use crate::properties::CoreProperties;
use dais_soap::addressing::Epr;
use dais_soap::bus::Bus;
use dais_soap::client::{CallError, ServiceClient};
use dais_soap::retry::{IdempotencySet, RetryConfig, RetryPolicy};
use dais_xml::{ns, XmlElement};

/// The WS-DAI core operations a consumer may safely re-send: reads and
/// resolves only. `DestroyDataResource`, WSRF `Destroy` and
/// `SetTerminationTime` mutate service state and are excluded.
pub fn idempotent_actions() -> IdempotencySet {
    IdempotencySet::new([
        actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT,
        actions::GENERIC_QUERY,
        actions::GET_RESOURCE_LIST,
        actions::RESOLVE,
        dais_wsrf::actions::GET_RESOURCE_PROPERTY,
        dais_wsrf::actions::GET_MULTIPLE_RESOURCE_PROPERTIES,
        dais_wsrf::actions::QUERY_RESOURCE_PROPERTIES,
    ])
}

/// A consumer of a DAIS data service ("an application that exploits a
/// data service to access a data resource", §3).
#[derive(Clone)]
pub struct CoreClient {
    inner: ServiceClient,
}

impl CoreClient {
    /// Bind to a service address on the bus.
    #[deprecated(
        since = "0.10.0",
        note = "use `CoreClient::builder().bus(..).address(..)` \
                 (or `.resource(&ResourceRef)`) instead"
    )]
    pub fn new(bus: Bus, address: impl Into<String>) -> CoreClient {
        CoreClient::from_service(ServiceClient::new(bus, address))
    }

    /// Bind through an EPR obtained from a factory or `Resolve`.
    pub fn from_epr(bus: Bus, epr: Epr) -> CoreClient {
        CoreClient { inner: ServiceClient::from_epr(bus, epr) }
    }

    /// Bind to a service reached over `transport`.
    #[deprecated(
        since = "0.10.0",
        note = "use `CoreClient::builder().bus(..).transport(..)` instead"
    )]
    pub fn with_transport(
        bus: Bus,
        transport: std::sync::Arc<dyn dais_soap::Transport>,
        address: impl Into<String>,
    ) -> CoreClient {
        CoreClient::builder().bus(bus).transport(transport).address(address).build()
    }

    /// The raw SOAP client (realisations layer their own calls over it).
    pub fn soap(&self) -> &ServiceClient {
        &self.inner
    }

    /// Layer retry over this client for the core read operations
    /// ([`idempotent_actions`]). Destructive operations are never
    /// re-sent. (Thin wrapper over [`DaisClient::with_retry`].)
    pub fn with_retry(self, policy: RetryPolicy) -> CoreClient {
        DaisClient::with_retry(self, policy)
    }

    /// Layer retry with a caller-assembled configuration (custom
    /// idempotency set or sleep function). (Thin wrapper over
    /// [`DaisClient::with_retry_config`].)
    pub fn with_retry_config(self, config: RetryConfig) -> CoreClient {
        DaisClient::with_retry_config(self, config)
    }

    /// `GetDataResourcePropertyDocument` against many resources at
    /// once, keeping up to `window` requests in flight on the pipelined
    /// path; one result per resource, in input order.
    pub fn get_property_documents(
        &self,
        resources: &[AbstractName],
        window: usize,
    ) -> Vec<Result<CoreProperties, CallError>> {
        let payloads = resources
            .iter()
            .map(|r| messages::request("GetDataResourcePropertyDocumentRequest", r))
            .collect();
        self.request_pipelined(actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT, payloads, window)
            .into_iter()
            .map(|result| {
                let response = result?;
                let doc = response.child(ns::WSDAI, "PropertyDocument").ok_or_else(|| {
                    CallError::UnexpectedResponse("no PropertyDocument in response".into())
                })?;
                CoreProperties::from_xml(doc).map_err(CallError::UnexpectedResponse)
            })
            .collect()
    }

    /// `GetDataResourcePropertyDocument`: the whole property document.
    pub fn get_property_document(
        &self,
        resource: &AbstractName,
    ) -> Result<CoreProperties, CallError> {
        let response = self.inner.request(
            actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT,
            messages::request("GetDataResourcePropertyDocumentRequest", resource),
        )?;
        let doc = response.child(ns::WSDAI, "PropertyDocument").ok_or_else(|| {
            CallError::UnexpectedResponse("no PropertyDocument in response".into())
        })?;
        CoreProperties::from_xml(doc).map_err(CallError::UnexpectedResponse)
    }

    /// The raw property document XML (realisations read extension
    /// properties out of it).
    pub fn get_property_document_xml(
        &self,
        resource: &AbstractName,
    ) -> Result<XmlElement, CallError> {
        let response = self.inner.request(
            actions::GET_DATA_RESOURCE_PROPERTY_DOCUMENT,
            messages::request("GetDataResourcePropertyDocumentRequest", resource),
        )?;
        response
            .child(ns::WSDAI, "PropertyDocument")
            .cloned()
            .ok_or_else(|| CallError::UnexpectedResponse("no PropertyDocument in response".into()))
    }

    /// `DestroyDataResource`.
    pub fn destroy(&self, resource: &AbstractName) -> Result<(), CallError> {
        self.inner
            .request(
                actions::DESTROY_DATA_RESOURCE,
                messages::request("DestroyDataResourceRequest", resource),
            )
            .map(|_| ())
    }

    /// `GenericQuery` in one of the advertised languages.
    pub fn generic_query(
        &self,
        resource: &AbstractName,
        language: &str,
        expression: &str,
    ) -> Result<Vec<XmlElement>, CallError> {
        let response = self.inner.request(
            actions::GENERIC_QUERY,
            messages::generic_query_request(resource, language, expression),
        )?;
        Ok(response.elements().cloned().collect())
    }

    /// `GetResourceList` (CoreResourceList).
    pub fn get_resource_list(&self) -> Result<Vec<AbstractName>, CallError> {
        let response = self.inner.request(
            actions::GET_RESOURCE_LIST,
            XmlElement::new(ns::WSDAI, "wsdai", "GetResourceListRequest"),
        )?;
        response
            .children_named(ns::WSDAI, "DataResourceAbstractName")
            .map(|e| {
                AbstractName::new(e.text())
                    .map_err(|err| CallError::UnexpectedResponse(err.to_string()))
            })
            .collect()
    }

    /// `Resolve` (CoreResourceList): abstract name → EPR.
    pub fn resolve(&self, resource: &AbstractName) -> Result<Epr, CallError> {
        let response =
            self.inner.request(actions::RESOLVE, messages::request("ResolveRequest", resource))?;
        let addr = response
            .child(ns::WSDAI, "DataResourceAddress")
            .ok_or_else(|| CallError::UnexpectedResponse("no DataResourceAddress".into()))?;
        Epr::from_xml(addr).ok_or_else(|| CallError::UnexpectedResponse("malformed EPR".into()))
    }

    // -- WSRF-layer calls (only meaningful against WSRF-enabled services) --

    /// WSRF `GetResourceProperty` by lexical QName (`wsdai:Readable`).
    pub fn get_resource_property(
        &self,
        resource: &AbstractName,
        lexical_qname: &str,
    ) -> Result<Vec<XmlElement>, CallError> {
        let mut req = messages::request("GetResourcePropertyRequest", resource);
        req.push(
            XmlElement::new(ns::WSRF_RP, "wsrf-rp", "ResourceProperty").with_text(lexical_qname),
        );
        let response = self.inner.request(dais_wsrf::actions::GET_RESOURCE_PROPERTY, req)?;
        Ok(response.elements().cloned().collect())
    }

    /// WSRF `GetMultipleResourceProperties`: fetch several properties
    /// (by lexical QName) in one round trip.
    pub fn get_multiple_resource_properties(
        &self,
        resource: &AbstractName,
        lexical_qnames: &[&str],
    ) -> Result<Vec<XmlElement>, CallError> {
        let mut req = messages::request("GetMultipleResourcePropertiesRequest", resource);
        for q in lexical_qnames {
            req.push(XmlElement::new(ns::WSRF_RP, "wsrf-rp", "ResourceProperty").with_text(*q));
        }
        let response =
            self.inner.request(dais_wsrf::actions::GET_MULTIPLE_RESOURCE_PROPERTIES, req)?;
        Ok(response.elements().cloned().collect())
    }

    /// WSRF `QueryResourceProperties` with an XPath expression.
    pub fn query_resource_properties(
        &self,
        resource: &AbstractName,
        xpath: &str,
    ) -> Result<XmlElement, CallError> {
        let mut req = messages::request("QueryResourcePropertiesRequest", resource);
        req.push(XmlElement::new(ns::WSRF_RP, "wsrf-rp", "QueryExpression").with_text(xpath));
        self.inner.request(dais_wsrf::actions::QUERY_RESOURCE_PROPERTIES, req)
    }

    /// WSRF `SetResourceProperties`: update the given property elements
    /// on the resource. Only configurable properties are accepted; the
    /// service faults with `NotAuthorized` for read-only ones.
    pub fn set_resource_properties(
        &self,
        resource: &AbstractName,
        updates: &[XmlElement],
    ) -> Result<(), CallError> {
        let mut req = messages::request("SetResourcePropertiesRequest", resource);
        let mut update = XmlElement::new(ns::WSRF_RP, "wsrf-rp", "Update");
        for u in updates {
            update.push(u.clone());
        }
        req.push(update);
        self.inner.request(dais_wsrf::actions::SET_RESOURCE_PROPERTIES, req).map(|_| ())
    }

    /// WSRF `SetTerminationTime` with a lifetime duration in clock
    /// milliseconds (`None` clears scheduled termination).
    pub fn set_termination_time(
        &self,
        resource: &AbstractName,
        duration_millis: Option<u64>,
    ) -> Result<Option<u64>, CallError> {
        let mut req = messages::request("SetTerminationTime", resource);
        match duration_millis {
            Some(d) => req.push(
                XmlElement::new(ns::WSRF_RL, "wsrf-rl", "RequestedLifetimeDuration")
                    .with_text(d.to_string()),
            ),
            None => {
                let mut t = XmlElement::new(ns::WSRF_RL, "wsrf-rl", "RequestedTerminationTime");
                t.set_attr("nil", "true");
                req.push(t);
            }
        }
        let response = self.inner.request(dais_wsrf::actions::SET_TERMINATION_TIME, req)?;
        let new_time = response.child(ns::WSRF_RL, "NewTerminationTime").and_then(|e| {
            if e.attribute("nil") == Some("true") {
                None
            } else {
                e.text().trim().parse::<u64>().ok()
            }
        });
        Ok(new_time)
    }

    /// WSRF `Destroy` (ImmediateResourceTermination).
    pub fn wsrf_destroy(&self, resource: &AbstractName) -> Result<(), CallError> {
        self.inner
            .request(dais_wsrf::actions::DESTROY, messages::request("Destroy", resource))
            .map(|_| ())
    }
}

impl DaisClient for CoreClient {
    fn service(&self) -> &ServiceClient {
        &self.inner
    }

    fn from_service(service: ServiceClient) -> CoreClient {
        CoreClient { inner: service }
    }

    fn service_mut(&mut self) -> &mut ServiceClient {
        &mut self.inner
    }

    fn default_idempotent_actions() -> IdempotencySet {
        idempotent_actions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::ResourceManagementKind;
    use crate::registry::ResourceRegistry;
    use crate::resource::StaticResource;
    use crate::service::{register_core_ops, register_wsrf_ops, ServiceContext};
    use dais_soap::service::SoapDispatcher;
    use dais_wsrf::{LifetimeRegistry, ManualClock};
    use std::sync::Arc;

    fn setup() -> (Bus, CoreClient, AbstractName, Arc<ManualClock>) {
        let bus = Bus::new();
        let clock = ManualClock::new();
        let ctx = ServiceContext::with_wsrf(
            "bus://svc",
            ResourceRegistry::new(),
            Arc::new(LifetimeRegistry::new(clock.clone())),
        );
        let mut d = SoapDispatcher::new();
        register_core_ops(&mut d, ctx.clone());
        register_wsrf_ops(&mut d, ctx.clone());
        bus.register("bus://svc", Arc::new(d));

        let name = AbstractName::new("urn:dais:svc:db:0").unwrap();
        let props = CoreProperties::new(name.clone(), ResourceManagementKind::ExternallyManaged);
        ctx.add_resource(Arc::new(StaticResource::new(
            props,
            vec![XmlElement::new_local("row").with_text("1")],
        )));
        (bus.clone(), CoreClient::builder().bus(bus).address("bus://svc").build(), name, clock)
    }

    #[test]
    fn typed_property_document() {
        let (_, client, name, _) = setup();
        let props = client.get_property_document(&name).unwrap();
        assert_eq!(props.abstract_name, name);
        assert!(props.readable);
    }

    #[test]
    fn typed_generic_query() {
        let (_, client, name, _) = setup();
        let rows = client.generic_query(&name, "urn:echo", "").unwrap();
        assert_eq!(rows.len(), 1);
        let err = client.generic_query(&name, "urn:nope", "").unwrap_err();
        assert_eq!(err.dais_fault(), Some(dais_soap::fault::DaisFault::InvalidLanguage));
    }

    #[test]
    fn list_resolve_and_epr_binding() {
        let (bus, client, name, _) = setup();
        assert_eq!(client.get_resource_list().unwrap(), vec![name.clone()]);
        let epr = client.resolve(&name).unwrap();
        assert_eq!(epr.resource_abstract_name().as_deref(), Some(name.as_str()));
        // A client bound through the EPR works identically.
        let via_epr = CoreClient::builder().bus(bus).epr(epr).build();
        let props = via_epr.get_property_document(&name).unwrap();
        assert_eq!(props.abstract_name, name);
    }

    #[test]
    fn wsrf_property_and_lifetime_calls() {
        let (_, client, name, clock) = setup();
        let vals = client.get_resource_property(&name, "wsdai:ConcurrentAccess").unwrap();
        assert_eq!(vals[0].text(), "true");
        let result = client.query_resource_properties(&name, "//wsdai:Readable").unwrap();
        assert_eq!(result.elements().count(), 1);

        let t = client.set_termination_time(&name, Some(500)).unwrap();
        assert_eq!(t, Some(500));
        clock.advance(501);
        assert!(client.get_property_document(&name).is_err());
    }

    #[test]
    fn batched_property_documents() {
        let (bus, client, name, _) = setup();
        bus.install_executor(dais_soap::executor::ExecutorConfig::new(2).seed(41));
        let missing = AbstractName::new("urn:dais:svc:db:404").unwrap();
        let results = client.get_property_documents(&[name.clone(), missing, name.clone()], 2);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().abstract_name, name);
        assert!(results[1].is_err(), "unknown resource fails its slot only");
        assert_eq!(results[2].as_ref().unwrap().abstract_name, name);
        bus.shutdown_executor();
    }

    #[test]
    fn trait_accessors_match_inherent_state() {
        let (bus, client, _, _) = setup();
        assert_eq!(DaisClient::epr(&client).address, "bus://svc");
        assert!(std::ptr::eq(DaisClient::bus(&client).obs(), bus.obs()));
        // The trait-level retry layering is what the inherent wrapper does.
        let client = client.with_retry(RetryPolicy::new(3));
        assert!(client.soap().retry_config().is_some());
    }

    #[test]
    fn transport_bound_client_behaves_like_a_local_bind() {
        let (bus, _, name, _) = setup();
        let client = CoreClient::builder()
            .bus(bus.clone())
            .transport(Arc::new(dais_soap::InProcessTransport::new(&bus)))
            .address("bus://svc")
            .build();
        assert_eq!(bus.transport_name(), Some("in-process"));
        let props = client.get_property_document(&name).unwrap();
        assert_eq!(props.abstract_name, name);
        bus.clear_transport();
        assert_eq!(bus.transport_name(), None);
    }

    #[test]
    fn destroy_roundtrip() {
        let (_, client, name, _) = setup();
        client.destroy(&name).unwrap();
        assert!(client.get_property_document(&name).is_err());
        assert!(client.destroy(&name).is_err());
    }
}
