//! WS-ResourceLifetime: immediate and scheduled resource termination.
//!
//! The paper (§5) contrasts the two lifetime models: *without* WSRF "the
//! consumer has to send a destroy operation to the data service or the
//! data resource will be accessible for as long as the data service is
//! there"; *with* WSRF, soft-state lifetime management lets consumers set
//! a termination time after which the resource is reclaimed.

use crate::clock::Clock;
use dais_util::sync::RwLock;
use dais_xml::{ns, XmlElement};
use std::collections::HashMap;
use std::sync::Arc;

/// Lifetime-management errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifetimeError {
    UnknownResource(String),
}

impl std::fmt::Display for LifetimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifetimeError::UnknownResource(r) => write!(f, "unknown resource: {r}"),
        }
    }
}

impl std::error::Error for LifetimeError {}

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Absolute termination time in clock milliseconds; `None` = no
    /// scheduled termination (lives until explicit destroy).
    termination_at: Option<u64>,
}

/// Tracks termination times for a set of resources (keyed by abstract
/// name) against a [`Clock`].
pub struct LifetimeRegistry {
    clock: Arc<dyn Clock>,
    entries: RwLock<HashMap<String, Entry>>,
}

impl LifetimeRegistry {
    pub fn new(clock: Arc<dyn Clock>) -> LifetimeRegistry {
        LifetimeRegistry { clock, entries: RwLock::new(HashMap::new()) }
    }

    /// Start tracking a resource with no scheduled termination.
    pub fn register(&self, name: impl Into<String>) {
        self.entries.write().insert(name.into(), Entry { termination_at: None });
    }

    /// Stop tracking (explicit destroy).
    pub fn destroy(&self, name: &str) -> Result<(), LifetimeError> {
        self.entries
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| LifetimeError::UnknownResource(name.to_string()))
    }

    /// Is the resource tracked and unexpired?
    pub fn is_alive(&self, name: &str) -> bool {
        let now = self.clock.now_millis();
        self.entries
            .read()
            .get(name)
            .map(|e| e.termination_at.map(|t| t > now).unwrap_or(true))
            .unwrap_or(false)
    }

    /// Set (or clear, with `None`) the termination time, expressed as a
    /// duration from now. Returns the absolute termination time.
    pub fn set_termination_in(
        &self,
        name: &str,
        millis_from_now: Option<u64>,
    ) -> Result<Option<u64>, LifetimeError> {
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(name)
            .ok_or_else(|| LifetimeError::UnknownResource(name.to_string()))?;
        entry.termination_at = millis_from_now.map(|d| self.clock.now_millis() + d);
        Ok(entry.termination_at)
    }

    /// Current termination time of a resource.
    pub fn termination_time(&self, name: &str) -> Result<Option<u64>, LifetimeError> {
        self.entries
            .read()
            .get(name)
            .map(|e| e.termination_at)
            .ok_or_else(|| LifetimeError::UnknownResource(name.to_string()))
    }

    /// Remove and return every expired resource (the sweeper).
    pub fn sweep(&self) -> Vec<String> {
        let now = self.clock.now_millis();
        let mut entries = self.entries.write();
        let expired: Vec<String> = entries
            .iter()
            .filter(|(_, e)| e.termination_at.map(|t| t <= now).unwrap_or(false))
            .map(|(n, _)| n.clone())
            .collect();
        for n in &expired {
            entries.remove(n);
        }
        expired
    }

    /// Number of tracked (not-yet-swept) resources.
    pub fn tracked(&self) -> usize {
        self.entries.read().len()
    }

    /// Current clock reading (for message timestamps).
    pub fn now(&self) -> u64 {
        self.clock.now_millis()
    }
}

/// Build a `SetTerminationTime` response element.
pub fn set_termination_time_response(new_time: Option<u64>, now: u64) -> XmlElement {
    let mut el = XmlElement::new(ns::WSRF_RL, "wsrf-rl", "SetTerminationTimeResponse");
    match new_time {
        Some(t) => el.push(
            XmlElement::new(ns::WSRF_RL, "wsrf-rl", "NewTerminationTime").with_text(t.to_string()),
        ),
        None => el.push(
            XmlElement::new(ns::WSRF_RL, "wsrf-rl", "NewTerminationTime").with_attr("nil", "true"),
        ),
    }
    el.push(XmlElement::new(ns::WSRF_RL, "wsrf-rl", "CurrentTime").with_text(now.to_string()));
    el
}

/// Parse the requested termination duration from a `SetTerminationTime`
/// request: a `RequestedLifetimeDuration` in milliseconds, or a nil
/// `RequestedTerminationTime` meaning "no scheduled termination".
pub fn parse_set_termination_time(request: &XmlElement) -> Option<Option<u64>> {
    if let Some(d) = request.child(ns::WSRF_RL, "RequestedLifetimeDuration") {
        return d.text().trim().parse::<u64>().ok().map(Some);
    }
    if let Some(t) = request.child(ns::WSRF_RL, "RequestedTerminationTime") {
        if t.attribute("nil") == Some("true") {
            return Some(None);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn registry() -> (Arc<ManualClock>, LifetimeRegistry) {
        let clock = ManualClock::new();
        let reg = LifetimeRegistry::new(clock.clone());
        (clock, reg)
    }

    #[test]
    fn explicit_destroy() {
        let (_, reg) = registry();
        reg.register("urn:r1");
        assert!(reg.is_alive("urn:r1"));
        reg.destroy("urn:r1").unwrap();
        assert!(!reg.is_alive("urn:r1"));
        assert_eq!(reg.destroy("urn:r1"), Err(LifetimeError::UnknownResource("urn:r1".into())));
    }

    #[test]
    fn soft_state_expiry() {
        let (clock, reg) = registry();
        reg.register("urn:r1");
        reg.register("urn:r2");
        reg.set_termination_in("urn:r1", Some(1000)).unwrap();
        assert!(reg.is_alive("urn:r1"));
        clock.advance(999);
        assert!(reg.is_alive("urn:r1"));
        clock.advance(1);
        assert!(!reg.is_alive("urn:r1"));
        // r2 has no scheduled termination and lives on.
        assert!(reg.is_alive("urn:r2"));
        let swept = reg.sweep();
        assert_eq!(swept, vec!["urn:r1"]);
        assert_eq!(reg.tracked(), 1);
        assert!(reg.sweep().is_empty());
    }

    #[test]
    fn lease_renewal_extends_life() {
        let (clock, reg) = registry();
        reg.register("urn:r1");
        reg.set_termination_in("urn:r1", Some(100)).unwrap();
        clock.advance(90);
        reg.set_termination_in("urn:r1", Some(100)).unwrap(); // renew
        clock.advance(90);
        assert!(reg.is_alive("urn:r1"));
        clock.advance(20);
        assert!(!reg.is_alive("urn:r1"));
    }

    #[test]
    fn clearing_termination_makes_permanent() {
        let (clock, reg) = registry();
        reg.register("urn:r1");
        reg.set_termination_in("urn:r1", Some(10)).unwrap();
        reg.set_termination_in("urn:r1", None).unwrap();
        clock.advance(1_000_000);
        assert!(reg.is_alive("urn:r1"));
        assert_eq!(reg.termination_time("urn:r1").unwrap(), None);
    }

    #[test]
    fn unknown_resource_errors() {
        let (_, reg) = registry();
        assert!(reg.set_termination_in("urn:x", Some(1)).is_err());
        assert!(reg.termination_time("urn:x").is_err());
        assert!(!reg.is_alive("urn:x"));
    }

    #[test]
    fn message_forms_roundtrip() {
        let req = XmlElement::new(ns::WSRF_RL, "wsrf-rl", "SetTerminationTime").with_child(
            XmlElement::new(ns::WSRF_RL, "wsrf-rl", "RequestedLifetimeDuration").with_text("5000"),
        );
        assert_eq!(parse_set_termination_time(&req), Some(Some(5000)));

        let mut nil_child = XmlElement::new(ns::WSRF_RL, "wsrf-rl", "RequestedTerminationTime");
        nil_child.set_attr("nil", "true");
        let req =
            XmlElement::new(ns::WSRF_RL, "wsrf-rl", "SetTerminationTime").with_child(nil_child);
        assert_eq!(parse_set_termination_time(&req), Some(None));

        let bad = XmlElement::new(ns::WSRF_RL, "wsrf-rl", "SetTerminationTime");
        assert_eq!(parse_set_termination_time(&bad), None);

        let resp = set_termination_time_response(Some(1234), 1000);
        assert_eq!(resp.child_text(ns::WSRF_RL, "NewTerminationTime").as_deref(), Some("1234"));
        assert_eq!(resp.child_text(ns::WSRF_RL, "CurrentTime").as_deref(), Some("1000"));
    }
}
