//! WS-ResourceProperties: fine-grained access to a property document.
//!
//! A resource's property document is an XML element whose children are
//! the individual resource properties (the WS-DAI core properties plus
//! realisation extensions — Figure 4 of the paper). Without WSRF a
//! consumer retrieves the whole document; these operations provide the
//! per-property granularity the paper attributes to the WSRF layering
//! (§5): get one property, get several, query with XPath, and mutate
//! (insert / update / delete).

use dais_xml::{QName, XPathContext, XPathExpr, XPathValue, XmlElement};

/// Property-operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyError {
    /// The named property does not exist in the document.
    UnknownProperty(String),
    /// The XPath query failed to parse or evaluate.
    Query(String),
}

impl std::fmt::Display for PropertyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PropertyError::UnknownProperty(p) => write!(f, "unknown resource property: {p}"),
            PropertyError::Query(m) => write!(f, "property query error: {m}"),
        }
    }
}

impl std::error::Error for PropertyError {}

/// `GetResourceProperty`: all instances of the property named `name`.
/// An empty result means the property is absent (which WSRF treats as a
/// fault for undefined property *names*; callers decide what names are
/// defined).
pub fn get_property(document: &XmlElement, name: &QName) -> Vec<XmlElement> {
    document.elements().filter(|e| &e.name == name).cloned().collect()
}

/// `GetMultipleResourceProperties`.
pub fn get_multiple_properties(document: &XmlElement, names: &[QName]) -> Vec<XmlElement> {
    let mut out = Vec::new();
    for n in names {
        out.extend(get_property(document, n));
    }
    out
}

/// `QueryResourceProperties` with an XPath 1.0 expression evaluated
/// against the property document.
pub fn query_properties(
    document: &XmlElement,
    xpath: &str,
    ctx: &XPathContext,
) -> Result<XPathValue, PropertyError> {
    let expr = XPathExpr::parse(xpath).map_err(|e| PropertyError::Query(e.to_string()))?;
    expr.evaluate_with(document, ctx).map_err(|e| PropertyError::Query(e.to_string()))
}

/// `SetResourceProperties/Insert`: append a new property element.
pub fn insert_property(document: &mut XmlElement, property: XmlElement) {
    document.push(property);
}

/// `SetResourceProperties/Update`: replace all instances of the property
/// with the given elements (which must all bear that name).
pub fn update_property(
    document: &mut XmlElement,
    name: &QName,
    replacements: Vec<XmlElement>,
) -> Result<(), PropertyError> {
    if !document.elements().any(|e| &e.name == name) {
        return Err(PropertyError::UnknownProperty(name.to_string()));
    }
    // Remove existing instances, remembering where the first one sat so
    // replacements keep the document position.
    let mut first_index = None;
    let mut i = 0;
    document.children.retain(|c| {
        let keep = match c {
            dais_xml::XmlNode::Element(e) if &e.name == name => {
                if first_index.is_none() {
                    first_index = Some(i);
                }
                false
            }
            _ => true,
        };
        if keep {
            i += 1;
        }
        keep
    });
    let at = first_index.unwrap_or(document.children.len());
    for (offset, r) in replacements.into_iter().enumerate() {
        document.children.insert(at + offset, dais_xml::XmlNode::Element(r));
    }
    Ok(())
}

/// `SetResourceProperties/Delete`: remove all instances of a property.
pub fn delete_property(document: &mut XmlElement, name: &QName) -> Result<(), PropertyError> {
    if !document.elements().any(|e| &e.name == name) {
        return Err(PropertyError::UnknownProperty(name.to_string()));
    }
    document.children.retain(|c| match c {
        dais_xml::XmlNode::Element(e) => &e.name != name,
        _ => true,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dais_xml::ns;

    fn doc() -> XmlElement {
        XmlElement::new(ns::WSDAI, "wsdai", "PropertyDocument")
            .with_child(XmlElement::new(ns::WSDAI, "wsdai", "Readable").with_text("true"))
            .with_child(XmlElement::new(ns::WSDAI, "wsdai", "Writeable").with_text("false"))
            .with_child(
                XmlElement::new(ns::WSDAI, "wsdai", "DatasetMap").with_attr("uri", "urn:rowset"),
            )
            .with_child(
                XmlElement::new(ns::WSDAI, "wsdai", "DatasetMap").with_attr("uri", "urn:csv"),
            )
    }

    fn q(local: &str) -> QName {
        QName::new(ns::WSDAI, "wsdai", local)
    }

    #[test]
    fn get_single_property() {
        let d = doc();
        let r = get_property(&d, &q("Readable"));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].text(), "true");
        assert!(get_property(&d, &q("Missing")).is_empty());
    }

    #[test]
    fn get_repeated_property() {
        let d = doc();
        let maps = get_property(&d, &q("DatasetMap"));
        assert_eq!(maps.len(), 2);
    }

    #[test]
    fn get_multiple() {
        let d = doc();
        let r = get_multiple_properties(&d, &[q("Readable"), q("Writeable")]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn query_with_xpath() {
        let d = doc();
        let ctx = XPathContext::new().with_namespace("dai", ns::WSDAI);
        let v = query_properties(&d, "count(//dai:DatasetMap)", &ctx).unwrap();
        assert_eq!(v.to_number(), 2.0);
        let v = query_properties(&d, "//dai:Readable = 'true'", &ctx).unwrap();
        assert!(v.to_bool());
        assert!(query_properties(&d, "///", &ctx).is_err());
    }

    #[test]
    fn insert_update_delete() {
        let mut d = doc();
        insert_property(
            &mut d,
            XmlElement::new(ns::WSDAI, "wsdai", "Sensitivity").with_text("Insensitive"),
        );
        assert_eq!(get_property(&d, &q("Sensitivity")).len(), 1);

        update_property(
            &mut d,
            &q("Writeable"),
            vec![XmlElement::new(ns::WSDAI, "wsdai", "Writeable").with_text("true")],
        )
        .unwrap();
        assert_eq!(get_property(&d, &q("Writeable"))[0].text(), "true");
        // Position preserved: Writeable still second.
        assert_eq!(d.elements().nth(1).unwrap().name.local, "Writeable");

        delete_property(&mut d, &q("DatasetMap")).unwrap();
        assert!(get_property(&d, &q("DatasetMap")).is_empty());

        assert_eq!(
            update_property(&mut d, &q("Nope"), vec![]),
            Err(PropertyError::UnknownProperty(format!("{{{}}}Nope", ns::WSDAI)))
        );
        assert!(delete_property(&mut d, &q("Nope")).is_err());
    }

    #[test]
    fn update_replaces_all_instances() {
        let mut d = doc();
        update_property(
            &mut d,
            &q("DatasetMap"),
            vec![XmlElement::new(ns::WSDAI, "wsdai", "DatasetMap").with_attr("uri", "urn:only")],
        )
        .unwrap();
        let maps = get_property(&d, &q("DatasetMap"));
        assert_eq!(maps.len(), 1);
        assert_eq!(maps[0].attribute("uri"), Some("urn:only"));
    }
}
