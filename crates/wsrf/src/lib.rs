//! # dais-wsrf
//!
//! The Web Services Resource Framework pieces DAIS layers over (paper §5,
//! Figure 7): **WS-ResourceProperties** (fine-grained access to a
//! resource's property document) and **WS-ResourceLifetime** (immediate
//! destruction and scheduled, soft-state termination).
//!
//! DAIS deliberately works with or without WSRF: without it a consumer
//! can only fetch the *whole* property document and must destroy
//! resources explicitly; with it, individual properties become
//! addressable and resources can carry termination times. This crate
//! supplies the WSRF half; `dais-core` wires it onto data services.
//!
//! Time is abstracted behind [`Clock`] so soft-state expiry is
//! deterministic in tests and experiments.

pub mod clock;
pub mod lifetime;
pub mod properties;

pub use clock::{Clock, ManualClock, SystemClock};
pub use lifetime::{LifetimeError, LifetimeRegistry};
pub use properties::{
    delete_property, get_property, insert_property, query_properties, update_property,
    PropertyError,
};

/// SOAP action URIs for the WSRF operations, as registered on a
/// WSRF-enabled data service.
pub mod actions {
    pub const GET_RESOURCE_PROPERTY: &str =
        "http://docs.oasis-open.org/wsrf/rpw-2/GetResourceProperty";
    pub const GET_MULTIPLE_RESOURCE_PROPERTIES: &str =
        "http://docs.oasis-open.org/wsrf/rpw-2/GetMultipleResourceProperties";
    pub const QUERY_RESOURCE_PROPERTIES: &str =
        "http://docs.oasis-open.org/wsrf/rpw-2/QueryResourceProperties";
    pub const SET_RESOURCE_PROPERTIES: &str =
        "http://docs.oasis-open.org/wsrf/rpw-2/SetResourceProperties";
    pub const DESTROY: &str =
        "http://docs.oasis-open.org/wsrf/rlw-2/ImmediateResourceTermination/Destroy";
    pub const SET_TERMINATION_TIME: &str =
        "http://docs.oasis-open.org/wsrf/rlw-2/ScheduledResourceTermination/SetTerminationTime";

    /// The complete WSRF layer inventory, for conformance tests.
    pub const ALL: &[&str] = &[
        GET_RESOURCE_PROPERTY,
        GET_MULTIPLE_RESOURCE_PROPERTIES,
        QUERY_RESOURCE_PROPERTIES,
        SET_RESOURCE_PROPERTIES,
        DESTROY,
        SET_TERMINATION_TIME,
    ];
}
