//! Time abstraction for soft-state lifetime management.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic millisecond clock. Lifetime bookkeeping uses logical
/// milliseconds so tests and benchmarks can drive expiry deterministically
/// with a [`ManualClock`].
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary epoch (monotonic).
    fn now_millis(&self) -> u64;
}

/// The real clock: milliseconds since construction.
#[derive(Debug)]
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    pub fn new() -> Self {
        SystemClock { start: Instant::now() }
    }

    /// Convenience: an `Arc<dyn Clock>` of a fresh system clock.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(SystemClock::new())
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_millis(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A hand-cranked clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Arc<ManualClock> {
        Arc::new(ManualClock::default())
    }

    /// Advance time by `millis`.
    pub fn advance(&self, millis: u64) {
        self.now.fetch_add(millis, Ordering::SeqCst);
    }

    /// Jump to an absolute time (must move forward).
    pub fn set(&self, millis: u64) {
        self.now.fetch_max(millis, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_millis(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_millis(), 0);
        c.advance(100);
        assert_eq!(c.now_millis(), 100);
        c.set(50); // cannot move backwards
        assert_eq!(c.now_millis(), 100);
        c.set(500);
        assert_eq!(c.now_millis(), 500);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_millis();
        let b = c.now_millis();
        assert!(b >= a);
    }
}
