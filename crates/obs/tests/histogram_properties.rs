//! Property tests for histogram merge and percentile estimation, on the
//! in-repo `dais_util::prop` harness.

use dais_obs::hist::{Histogram, HistogramSnapshot};
use dais_util::prop::run_cases;

fn values(g: &mut dais_util::prop::Gen) -> Vec<u64> {
    // Spread across many buckets, staying below the clamped top bucket
    // (values >= 2^39 all report the same u64::MAX upper bound, which
    // would void the 2× percentile bound checked below).
    g.vec_of(0, 64, |g| {
        let shift = g.u64_in(0, 40);
        g.u64_in(0, 1 << shift)
    })
}

fn recorded(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn merge_equals_recording_both_streams() {
    run_cases("merge-equivalence", 200, 0x0B51, |g| {
        let a = values(g);
        let b = values(g);
        let mut merged = recorded(&a);
        merged.merge(&recorded(&b));
        let combined: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged, recorded(&combined));
    });
}

#[test]
fn counts_and_sums_are_conserved() {
    run_cases("conservation", 200, 0x0B52, |g| {
        let vs = values(g);
        let s = recorded(&vs);
        assert_eq!(s.count, vs.len() as u64);
        assert_eq!(s.sum, vs.iter().sum::<u64>());
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    });
}

#[test]
fn percentiles_are_monotonic_and_bracket_the_data() {
    run_cases("percentile-bounds", 200, 0x0B53, |g| {
        let vs = values(g);
        let s = recorded(&vs);
        if vs.is_empty() {
            assert_eq!(s.percentile(0.5), 0);
            return;
        }
        let mut prev = 0;
        for p in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let q = s.percentile(p);
            assert!(q >= prev, "percentile not monotonic at p={p}");
            prev = q;
        }
        let max = *vs.iter().max().unwrap();
        let min = *vs.iter().min().unwrap();
        // p100 is at least the max and overestimates by at most one
        // bucket width (2×, +1 for the inclusive bound).
        let p100 = s.percentile(1.0);
        assert!(p100 >= max);
        assert!(p100 <= max.saturating_mul(2).saturating_add(1));
        // p0 lands in the minimum's bucket.
        assert!(s.percentile(0.0) >= min);
    });
}

#[test]
fn merge_is_commutative_and_has_identity() {
    run_cases("merge-algebra", 200, 0x0B54, |g| {
        let a = recorded(&values(g));
        let b = recorded(&values(g));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut with_identity = a;
        with_identity.merge(&HistogramSnapshot::default());
        assert_eq!(with_identity, a);
    });
}
