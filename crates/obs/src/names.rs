//! The span-name inventory.
//!
//! Every span the stack opens is named here, mirroring how SOAP action
//! URIs live in per-crate `mod actions` inventories. The `dais-check`
//! lint `span-name-literal` flags span-opening call sites that pass a
//! raw string literal instead of one of these constants, so the full
//! vocabulary of a trace is readable in one place.

pub mod span_names {
    /// Consumer-side root: one logical request through `ServiceClient`,
    /// covering every retry attempt.
    pub const CLIENT_CALL: &str = "client.call";
    /// One re-sent attempt; a child of `client.call` carrying the
    /// backoff delay and the error that triggered it.
    pub const CLIENT_RETRY: &str = "client.retry";
    /// One `Bus::call`: both wire legs plus dispatch.
    pub const BUS_CALL: &str = "bus.call";
    /// Admission of one queued request into a `BusExecutor` work queue
    /// (the pipelined path's analogue of `bus.call`'s opening). Carries
    /// the queue depth observed at admission; a shed request records
    /// `outcome=shed` and has no `bus.execute` child.
    pub const BUS_ENQUEUE: &str = "bus.enqueue";
    /// Execution of one queued request on an executor worker: both wire
    /// legs plus dispatch, exactly like `bus.call`, plus a
    /// `queue_wait_ns` attribute measuring time spent queued.
    pub const BUS_EXECUTE: &str = "bus.execute";
    /// The request leg: serialise, request interceptor chain, parse.
    pub const BUS_REQUEST: &str = "bus.request";
    /// The service-side dispatch. Its parent comes from the parsed
    /// request's `wsa:MessageID` — the bytes that crossed the wire —
    /// not from the in-process call frame.
    pub const BUS_DISPATCH: &str = "bus.dispatch";
    /// The response leg: serialise, response interceptor chain, parse.
    pub const BUS_RESPONSE: &str = "bus.response";

    /// Every name above, for conformance checks.
    pub const ALL: &[&str] = &[
        CLIENT_CALL,
        CLIENT_RETRY,
        BUS_CALL,
        BUS_ENQUEUE,
        BUS_EXECUTE,
        BUS_REQUEST,
        BUS_DISPATCH,
        BUS_RESPONSE,
    ];
}

#[cfg(test)]
mod tests {
    use super::span_names::ALL;

    #[test]
    fn inventory_is_unique_and_sorted_per_layer() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate span name {name}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "span name '{name}' breaks the lowercase dotted convention"
            );
        }
    }
}
