//! The span-name and journal-event-name inventories.
//!
//! Every span the stack opens is named here, mirroring how SOAP action
//! URIs live in per-crate `mod actions` inventories. The `dais-check`
//! lint `span-name-literal` flags span-opening call sites that pass a
//! raw string literal instead of one of these constants, so the full
//! vocabulary of a trace is readable in one place. The flight-recorder
//! journal has the same discipline: [`event_names`] is the complete
//! vocabulary of [`crate::journal::Journal`] records, and the
//! `event-name-literal` lint rejects ad-hoc literals at emission sites.

pub mod span_names {
    /// Consumer-side root: one logical request through `ServiceClient`,
    /// covering every retry attempt.
    pub const CLIENT_CALL: &str = "client.call";
    /// One re-sent attempt; a child of `client.call` carrying the
    /// backoff delay and the error that triggered it.
    pub const CLIENT_RETRY: &str = "client.retry";
    /// One `Bus::call`: both wire legs plus dispatch.
    pub const BUS_CALL: &str = "bus.call";
    /// Admission of one queued request into a `BusExecutor` work queue
    /// (the pipelined path's analogue of `bus.call`'s opening). Carries
    /// the queue depth observed at admission; a shed request records
    /// `outcome=shed` and has no `bus.execute` child.
    pub const BUS_ENQUEUE: &str = "bus.enqueue";
    /// Execution of one queued request on an executor worker: both wire
    /// legs plus dispatch, exactly like `bus.call`, plus a
    /// `queue_wait_ns` attribute measuring time spent queued.
    pub const BUS_EXECUTE: &str = "bus.execute";
    /// The request leg: serialise, request interceptor chain, parse.
    pub const BUS_REQUEST: &str = "bus.request";
    /// The service-side dispatch. Its parent comes from the parsed
    /// request's `wsa:MessageID` — the bytes that crossed the wire —
    /// not from the in-process call frame.
    pub const BUS_DISPATCH: &str = "bus.dispatch";
    /// The response leg: serialise, response interceptor chain, parse.
    pub const BUS_RESPONSE: &str = "bus.response";

    /// Every name above, for conformance checks.
    pub const ALL: &[&str] = &[
        CLIENT_CALL,
        CLIENT_RETRY,
        BUS_CALL,
        BUS_ENQUEUE,
        BUS_EXECUTE,
        BUS_REQUEST,
        BUS_DISPATCH,
        BUS_RESPONSE,
    ];
}

pub mod event_names {
    //! The journal-event vocabulary: one constant per request-lifecycle
    //! moment the flight recorder can witness. Each event carries a
    //! single `u64` argument whose meaning is fixed per name (see
    //! [`arg_label`]); arguments that measure wall-clock time are elided
    //! by the deterministic journal renderer ([`arg_is_timing`]).

    /// A request entered `Bus::call` / `call_async` and passed endpoint
    /// resolution. Argument: execution mode (0 inline, 1 queued).
    pub const REQ_ADMIT: &str = "req.admit";
    /// The service-side dispatch ran. Argument: serialised request
    /// bytes handed to the handler's parser.
    pub const REQ_DISPATCH: &str = "req.dispatch";
    /// An exchange ended in an error or SOAP fault. Argument: the
    /// retry-layer cause code (`dais_soap::retry::cause_code`).
    pub const REQ_FAULT: &str = "req.fault";
    /// The client retry loop re-sent a request. Argument: the attempt
    /// number of the re-send (2 = first retry).
    pub const REQ_RETRY: &str = "req.retry";
    /// The executor admitted a request into a work queue. Argument:
    /// queue depth observed after the enqueue.
    pub const QUEUE_ENQUEUE: &str = "queue.enqueue";
    /// A worker picked the request off its queue. Argument: queued wait
    /// in nanoseconds (timing — elided by the text renderer).
    pub const QUEUE_DEQUEUE: &str = "queue.dequeue";
    /// Bounded admission refused the request with `Overloaded`.
    /// Argument: queue depth observed at refusal.
    pub const QUEUE_SHED: &str = "queue.shed";
    /// A serialised request left for a non-local transport, or a
    /// response frame was written back by the TCP server. Argument:
    /// payload bytes written.
    pub const WIRE_WRITE: &str = "wire.write";
    /// A response arrived from a non-local transport, or a request
    /// frame reached the TCP server. Argument: payload bytes read.
    pub const WIRE_READ: &str = "wire.read";

    /// Every name above, for conformance checks.
    pub const ALL: &[&str] = &[
        REQ_ADMIT,
        REQ_DISPATCH,
        REQ_FAULT,
        REQ_RETRY,
        QUEUE_ENQUEUE,
        QUEUE_DEQUEUE,
        QUEUE_SHED,
        WIRE_WRITE,
        WIRE_READ,
    ];

    /// The label the renderers print for an event's argument.
    pub fn arg_label(name: &str) -> &'static str {
        match name {
            REQ_ADMIT => "mode",
            REQ_DISPATCH => "bytes",
            REQ_FAULT => "cause",
            REQ_RETRY => "attempt",
            QUEUE_ENQUEUE => "depth",
            QUEUE_DEQUEUE => "waitNs",
            QUEUE_SHED => "depth",
            WIRE_WRITE => "bytes",
            WIRE_READ => "bytes",
            _ => "arg",
        }
    }

    /// Does the argument measure wall-clock time? Timing arguments are
    /// real but nondeterministic, so the deterministic text renderer
    /// elides their values (the same rule spans apply to durations).
    pub fn arg_is_timing(name: &str) -> bool {
        name == QUEUE_DEQUEUE
    }
}

#[cfg(test)]
mod tests {
    use super::{event_names, span_names};

    #[test]
    fn inventory_is_unique_and_sorted_per_layer() {
        let mut seen = std::collections::BTreeSet::new();
        for name in span_names::ALL {
            assert!(seen.insert(*name), "duplicate span name {name}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "span name '{name}' breaks the lowercase dotted convention"
            );
        }
    }

    #[test]
    fn event_inventory_is_unique_and_fully_described() {
        let mut seen = std::collections::BTreeSet::new();
        for name in event_names::ALL {
            assert!(seen.insert(*name), "duplicate event name {name}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "event name '{name}' breaks the lowercase dotted convention"
            );
            assert_ne!(event_names::arg_label(name), "arg", "event '{name}' has no argument label");
        }
        // Span names and event names never collide: a journal line and a
        // trace node can always be told apart by name alone.
        for name in span_names::ALL {
            assert!(!seen.contains(name), "'{name}' is both a span and an event");
        }
    }
}
