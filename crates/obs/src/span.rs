//! Spans, trace contexts, and the per-bus tracer.
//!
//! A [`TraceContext`] is the pair of ids that crosses process (here:
//! serialisation) boundaries; it encodes to a WS-Addressing-friendly URI
//! (`urn:dais:trace:<trace>:<span>`) carried in `wsa:MessageID` and
//! echoed back in `wsa:RelatesTo`. A [`Tracer`] mints ids from a seeded
//! [`SplitMix64`] so a whole trace replays byte-for-byte from a seed,
//! and stamps every span with a monotonic sequence number — start order,
//! not wall-clock, is what the deterministic renderer sorts by.
//!
//! Disabled (the default), every instrumentation site costs one relaxed
//! atomic load and performs no allocation: [`Tracer::span`] returns an
//! inert [`SpanHandle`], attribute setters are no-ops, and nothing is
//! written to the wire.

use dais_util::rng::SplitMix64;
use dais_util::sync::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::render::TraceSink;

/// The on-wire identity of a span: enough for the receiving side to
/// join the sender's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    pub trace_id: u64,
    pub span_id: u64,
}

const URI_PREFIX: &str = "urn:dais:trace:";

impl TraceContext {
    /// The wire form: `urn:dais:trace:<16 hex>:<16 hex>`.
    pub fn encode(&self) -> String {
        format!("{URI_PREFIX}{:016x}:{:016x}", self.trace_id, self.span_id)
    }

    /// Parse the wire form back; `None` for anything else (an untraced
    /// or tampered message id joins no trace).
    pub fn decode(uri: &str) -> Option<TraceContext> {
        let rest = uri.strip_prefix(URI_PREFIX)?;
        let (trace, span) = rest.split_once(':')?;
        if trace.len() != 16 || span.len() != 16 {
            return None;
        }
        Some(TraceContext {
            trace_id: u64::from_str_radix(trace, 16).ok()?,
            span_id: u64::from_str_radix(span, 16).ok()?,
        })
    }
}

/// A finished span, as stored in the sink.
#[derive(Debug, Clone)]
pub struct Span {
    /// Start-order sequence number — the deterministic sort key.
    pub seq: u64,
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_id: Option<u64>,
    /// One of the [`crate::names::span_names`] inventory entries.
    pub name: &'static str,
    /// Attributes in insertion order.
    pub attrs: Vec<(&'static str, String)>,
    /// Wall-clock duration; real but nondeterministic, so the text
    /// renderer elides it.
    pub duration_ns: u64,
}

struct TracerInner {
    enabled: AtomicBool,
    seq: AtomicU64,
    ids: Mutex<SplitMix64>,
    finished: Mutex<Vec<Span>>,
}

impl Default for TracerInner {
    fn default() -> Self {
        TracerInner {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            ids: Mutex::new(SplitMix64::new(0)),
            finished: Mutex::new(Vec::new()),
        }
    }
}

/// Records spans into an in-memory sink. Cheap to clone (shared state);
/// disabled by default.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Is tracing on? One relaxed load — the cost a disabled site pays.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn tracing on, reseeding the id stream and clearing the sink so
    /// a run is reproducible from `seed`.
    pub fn enable(&self, seed: u64) {
        *self.inner.ids.lock() = SplitMix64::new(seed);
        self.inner.seq.store(0, Ordering::Relaxed);
        self.inner.finished.lock().clear();
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn tracing off. Already-recorded spans stay in the sink.
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Open a span: a child of `parent` when given, otherwise the root
    /// of a fresh trace. Inert when tracing is disabled.
    pub fn span(&self, name: &'static str, parent: Option<TraceContext>) -> SpanHandle {
        if !self.enabled() {
            return SpanHandle { live: None };
        }
        let (trace_id, span_id) = {
            let mut ids = self.inner.ids.lock();
            match parent {
                Some(p) => (p.trace_id, ids.next_u64()),
                None => (ids.next_u64(), ids.next_u64()),
            }
        };
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        SpanHandle {
            live: Some(LiveSpan {
                tracer: self.clone(),
                span: Span {
                    seq,
                    trace_id,
                    span_id,
                    parent_id: parent.map(|p| p.span_id),
                    name,
                    attrs: Vec::new(),
                    duration_ns: 0,
                },
                started: Instant::now(),
            }),
        }
    }

    /// Open a span only if there is a parent to join — the propagation
    /// sites use this so a message that carried no (or a mangled) trace
    /// context produces no orphan root.
    pub fn child_span(&self, name: &'static str, parent: Option<TraceContext>) -> SpanHandle {
        match parent {
            Some(_) => self.span(name, parent),
            None => SpanHandle { live: None },
        }
    }

    /// A copy of the finished spans, sorted by start order.
    pub fn sink(&self) -> TraceSink {
        let mut spans = self.inner.finished.lock().clone();
        spans.sort_by_key(|s| s.seq);
        TraceSink { spans }
    }

    /// Drain the finished spans, sorted by start order.
    pub fn take(&self) -> TraceSink {
        let mut spans = std::mem::take(&mut *self.inner.finished.lock());
        spans.sort_by_key(|s| s.seq);
        TraceSink { spans }
    }

    fn record(&self, span: Span) {
        self.inner.finished.lock().push(span);
    }
}

struct LiveSpan {
    tracer: Tracer,
    span: Span,
    started: Instant,
}

/// A span being recorded — or nothing at all, when tracing is off. The
/// span is finished (duration stamped, pushed to the sink) on drop, so
/// early returns record automatically.
pub struct SpanHandle {
    live: Option<LiveSpan>,
}

impl SpanHandle {
    /// The no-op handle; what every instrumentation site holds when
    /// tracing is disabled.
    pub fn inert() -> SpanHandle {
        SpanHandle { live: None }
    }

    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }

    /// This span's wire context, for propagation and for parenting
    /// children. `None` when inert.
    pub fn ctx(&self) -> Option<TraceContext> {
        self.live
            .as_ref()
            .map(|l| TraceContext { trace_id: l.span.trace_id, span_id: l.span.span_id })
    }

    /// Attach an attribute. The value is only formatted when the span is
    /// live, so a disabled site pays nothing.
    pub fn attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(live) = self.live.as_mut() {
            live.span.attrs.push((key, value.to_string()));
        }
    }

    /// Finish now instead of at end of scope.
    pub fn finish(self) {}
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        if let Some(mut live) = self.live.take() {
            live.span.duration_ns = live.started.elapsed().as_nanos() as u64;
            let tracer = live.tracer.clone();
            tracer.record(live.span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::span_names;

    #[test]
    fn context_round_trips_through_the_uri_form() {
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF, span_id: 42 };
        let uri = ctx.encode();
        assert_eq!(uri, "urn:dais:trace:00000000deadbeef:000000000000002a");
        assert_eq!(TraceContext::decode(&uri), Some(ctx));
    }

    #[test]
    fn mangled_contexts_do_not_decode() {
        for bad in [
            "",
            "urn:dais:trace:zz",
            "urn:dais:trace:00000000deadbeef",
            "urn:dais:trace:00000000deadbeef:2a",
            "urn:other:00000000deadbeef:000000000000002a",
            "urn:dais:trace:00000000deadbeeX:000000000000002a",
        ] {
            assert_eq!(TraceContext::decode(bad), None, "{bad:?} decoded");
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        assert!(!t.enabled());
        let mut s = t.span(span_names::CLIENT_CALL, None);
        assert!(!s.is_recording());
        assert_eq!(s.ctx(), None);
        s.attr("ignored", 1);
        drop(s);
        assert!(t.sink().spans.is_empty());
    }

    #[test]
    fn spans_nest_and_record_in_start_order() {
        let t = Tracer::new();
        t.enable(7);
        let root = t.span(span_names::CLIENT_CALL, None);
        let child = t.span(span_names::BUS_CALL, root.ctx());
        let grandchild = t.child_span(span_names::BUS_REQUEST, child.ctx());
        // Finish out of start order on purpose.
        drop(child);
        drop(grandchild);
        drop(root);
        let sink = t.take();
        let names: Vec<&str> = sink.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["client.call", "bus.call", "bus.request"]);
        assert!(sink.spans.iter().all(|s| s.trace_id == sink.spans[0].trace_id));
        assert_eq!(sink.spans[1].parent_id, Some(sink.spans[0].span_id));
        assert_eq!(sink.spans[2].parent_id, Some(sink.spans[1].span_id));
    }

    #[test]
    fn child_span_without_parent_is_inert() {
        let t = Tracer::new();
        t.enable(7);
        let orphan = t.child_span(span_names::BUS_DISPATCH, None);
        assert!(!orphan.is_recording());
        drop(orphan);
        assert!(t.sink().spans.is_empty());
    }

    #[test]
    fn same_seed_reproduces_the_id_stream() {
        let run = |seed: u64| {
            let t = Tracer::new();
            t.enable(seed);
            let root = t.span(span_names::CLIENT_CALL, None);
            let child = t.span(span_names::BUS_CALL, root.ctx());
            drop(child);
            drop(root);
            t.take().spans.iter().map(|s| (s.trace_id, s.span_id)).collect::<Vec<_>>()
        };
        assert_eq!(run(0xA), run(0xA));
        assert_ne!(run(0xA), run(0xB));
    }
}
